// Synthetic generators and workloads: validity, determinism, and the
// dataset properties the substitution argument (DESIGN.md) depends on.

#include "data/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "costmodel/empirical_cdf.h"
#include "data/dataset_stats.h"
#include "data/workload.h"
#include "test_util.h"

namespace topk {
namespace {

void CheckValidStore(const RankingStore& store, uint32_t k, size_t n) {
  EXPECT_EQ(store.k(), k);
  EXPECT_EQ(store.size(), n);
  for (RankingId id = 0; id < store.size(); ++id) {
    const RankingView v = store.view(id);
    for (uint32_t a = 0; a < k; ++a) {
      for (uint32_t b = a + 1; b < k; ++b) {
        EXPECT_NE(v[a], v[b]) << "duplicate item in ranking " << id;
      }
    }
  }
}

TEST(GeneratorTest, ProducesValidRankings) {
  const RankingStore store = Generate(NytLikeOptions(3000, 10, 1));
  CheckValidStore(store, 10, 3000);
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  const RankingStore a = Generate(YagoLikeOptions(500, 10, 7));
  const RankingStore b = Generate(YagoLikeOptions(500, 10, 7));
  ASSERT_EQ(a.size(), b.size());
  for (RankingId id = 0; id < a.size(); ++id) {
    for (uint32_t p = 0; p < 10; ++p) {
      EXPECT_EQ(a.view(id)[p], b.view(id)[p]);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const RankingStore a = Generate(YagoLikeOptions(500, 10, 1));
  const RankingStore b = Generate(YagoLikeOptions(500, 10, 2));
  size_t identical = 0;
  for (RankingId id = 0; id < a.size(); ++id) {
    bool same = true;
    for (uint32_t p = 0; p < 10; ++p) {
      if (a.view(id)[p] != b.view(id)[p]) same = false;
    }
    if (same) ++identical;
  }
  EXPECT_LT(identical, a.size() / 10);
}

TEST(GeneratorTest, NytLikeSkewExceedsYagoLikeSkew) {
  // The defining contrast between the two presets (s = 0.87 vs 0.53).
  const RankingStore nyt = Generate(NytLikeOptions(8000, 10, 3));
  const RankingStore yago = Generate(YagoLikeOptions(8000, 10, 4));
  const double nyt_skew = EstimateZipfSkew(ItemFrequencies(nyt));
  const double yago_skew = EstimateZipfSkew(ItemFrequencies(yago));
  EXPECT_GT(nyt_skew, yago_skew);
}

TEST(GeneratorTest, NytLikeHasMoreNearDuplicates) {
  // Cluster structure shows up as pairwise-distance mass near zero.
  const RankingStore nyt = Generate(NytLikeOptions(6000, 10, 5));
  const RankingStore yago = Generate(YagoLikeOptions(6000, 10, 6));
  Rng rng_a(1);
  Rng rng_b(1);
  const EmpiricalCdf nyt_cdf = SamplePairwiseDistances(nyt, 40000, &rng_a);
  const EmpiricalCdf yago_cdf = SamplePairwiseDistances(yago, 40000, &rng_b);
  EXPECT_GT(nyt_cdf.P(0.2), yago_cdf.P(0.2));
  EXPECT_GT(nyt_cdf.P(0.2), 0.0) << "NYT-like must contain close pairs";
}

TEST(GeneratorTest, MeanClusterSizeOneMeansNoDuplicationMechanism) {
  GeneratorOptions options;
  options.n = 1000;
  options.k = 10;
  options.domain = 40000;
  options.zipf_s = 0.3;
  options.mean_cluster_size = 1.0;
  options.seed = 9;
  const RankingStore store = Generate(options);
  CheckValidStore(store, 10, 1000);
  // With a huge domain, low skew and no clusters, exact duplicates are
  // vanishingly unlikely.
  Rng rng(2);
  const EmpiricalCdf cdf = SamplePairwiseDistances(store, 20000, &rng);
  EXPECT_LT(cdf.P(0.0), 0.01);
}

TEST(GeneratorTest, PerturbKeepsRankingValid) {
  Rng rng(10);
  ZipfSampler sampler(0.8, 1000);
  std::vector<ItemId> items;
  SampleRanking(sampler, 10, &rng, &items);
  for (int round = 0; round < 100; ++round) {
    Perturb(&items, sampler, 3, 0.5, &rng);
    ASSERT_EQ(items.size(), 10u);
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        ASSERT_NE(items[a], items[b]);
      }
    }
  }
}

TEST(WorkloadTest, QueriesAreValidRankings) {
  const RankingStore store = Generate(YagoLikeOptions(2000, 10, 11));
  WorkloadOptions options;
  options.num_queries = 200;
  options.seed = 12;
  const auto queries = MakeWorkload(store, options);
  ASSERT_EQ(queries.size(), 200u);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(query.k(), 10u);
    const auto items = query.view().items();
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        EXPECT_NE(items[a], items[b]);
      }
    }
  }
}

TEST(WorkloadTest, PerturbedQueriesFindNeighbors) {
  // A workload of pure perturbed copies must mostly have non-empty result
  // sets at moderate thresholds — the property the paper's query logs have.
  const RankingStore store = Generate(NytLikeOptions(3000, 10, 13));
  WorkloadOptions options;
  options.num_queries = 100;
  options.perturbed_fraction = 1.0;
  options.seed = 14;
  const auto queries = MakeWorkload(store, options);
  size_t with_results = 0;
  for (const auto& query : queries) {
    if (!testutil::BruteForce(store, query, RawThreshold(0.3, 10)).empty()) {
      ++with_results;
    }
  }
  EXPECT_GT(with_results, 80u);
}

TEST(WorkloadTest, RepeatFractionPinsRepetitionDistribution) {
  const RankingStore store = Generate(YagoLikeOptions(1500, 10, 20));
  WorkloadOptions options;
  options.num_queries = 400;
  options.seed = 21;
  options.repeat_fraction = 0.6;
  options.repeat_zipf_s = 1.0;
  const auto queries = MakeWorkload(store, options);
  ASSERT_EQ(queries.size(), 400u);

  // Tally exact re-issues by item sequence.
  std::map<std::vector<ItemId>, size_t> counts;
  for (const PreparedQuery& query : queries) {
    const auto items = query.view().items();
    ++counts[std::vector<ItemId>(items.begin(), items.end())];
  }
  const size_t distinct = counts.size();
  const size_t repeats = queries.size() - distinct;
  size_t max_count = 0;
  size_t singletons = 0;
  for (const auto& [sequence, count] : counts) {
    max_count = std::max(max_count, count);
    if (count == 1) ++singletons;
  }
  // ~60% of the stream re-issues: the distinct pool is roughly the other
  // 40%, with slack for the random coin.
  EXPECT_GT(repeats, 180u);
  EXPECT_LT(repeats, 290u);
  EXPECT_GT(distinct, 110u);
  // Zipf popularity: a head query soaks up many re-issues while most
  // distinct queries are never repeated.
  EXPECT_GE(max_count, 15u);
  EXPECT_GT(singletons * 2, distinct);

  // Deterministic under the seed.
  const auto again = MakeWorkload(store, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(std::vector<ItemId>(queries[i].view().items().begin(),
                                  queries[i].view().items().end()),
              std::vector<ItemId>(again[i].view().items().begin(),
                                  again[i].view().items().end()));
  }
}

TEST(WorkloadTest, RepeatFractionZeroIsBitCompatible) {
  // The knob must not perturb the RNG stream when disabled: a workload
  // with repeat_fraction = 0 is bit-identical regardless of the skew
  // setting, preserving every pre-knob workload.
  const RankingStore store = Generate(YagoLikeOptions(800, 10, 22));
  WorkloadOptions off;
  off.num_queries = 120;
  off.seed = 23;
  off.repeat_fraction = 0.0;
  WorkloadOptions off_other_skew = off;
  off_other_skew.repeat_zipf_s = 3.0;
  const auto a = MakeWorkload(store, off);
  const auto b = MakeWorkload(store, off_other_skew);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (uint32_t p = 0; p < 10; ++p) {
      ASSERT_EQ(a[i].view()[p], b[i].view()[p]);
    }
  }
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  const RankingStore store = Generate(YagoLikeOptions(1000, 10, 15));
  WorkloadOptions options;
  options.num_queries = 50;
  options.seed = 16;
  const auto a = MakeWorkload(store, options);
  const auto b = MakeWorkload(store, options);
  for (size_t i = 0; i < a.size(); ++i) {
    for (uint32_t p = 0; p < 10; ++p) {
      EXPECT_EQ(a[i].view()[p], b[i].view()[p]);
    }
  }
}

TEST(DatasetStatsTest, ItemFrequenciesSumToNk) {
  const RankingStore store = Generate(YagoLikeOptions(1500, 10, 17));
  const auto freqs = ItemFrequencies(store);
  uint64_t total = 0;
  for (uint64_t f : freqs) total += f;
  EXPECT_EQ(total, store.size() * 10);
}

TEST(DatasetStatsTest, MeasuredInputsAreConsistent) {
  const RankingStore store = Generate(NytLikeOptions(2000, 10, 18));
  const CostModelInputs inputs = MeasureCostModelInputs(store, 128);
  EXPECT_EQ(inputs.n, store.size());
  EXPECT_EQ(inputs.k, 10u);
  EXPECT_EQ(inputs.v, CountDistinctItems(store));
  EXPECT_GT(inputs.zipf_s, 0.0);
  EXPECT_GT(inputs.calib.footrule_ns, 0.0);
  EXPECT_EQ(inputs.profile.num_samples(), 128u);
  EXPECT_EQ(inputs.profile.n(), store.size());
}

}  // namespace
}  // namespace topk
