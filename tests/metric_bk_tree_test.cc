// BK-tree: structural invariants, range-query exactness, and the pruning
// benefit on clustered data.

#include "metric/bk_tree.h"

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(BkTreeTest, EdgeLabelsAreExactParentDistances) {
  const RankingStore store = testutil::MakeClusteredStore(8, 500, 91);
  const BkTree tree = BkTree::BuildAll(&store);
  ASSERT_EQ(tree.size(), store.size());
  const auto& nodes = tree.nodes();
  for (uint32_t parent = 0; parent < nodes.size(); ++parent) {
    for (uint32_t child = nodes[parent].first_child;
         child != BkTree::kNoNode; child = nodes[child].next_sibling) {
      EXPECT_EQ(nodes[child].parent_dist,
                FootruleDistance(store.sorted(nodes[parent].id),
                                 store.sorted(nodes[child].id)));
    }
  }
}

TEST(BkTreeTest, SiblingsHaveDistinctEdgeLabels) {
  const RankingStore store = testutil::MakeClusteredStore(8, 500, 92);
  const BkTree tree = BkTree::BuildAll(&store);
  const auto& nodes = tree.nodes();
  for (uint32_t parent = 0; parent < nodes.size(); ++parent) {
    std::vector<RawDistance> labels;
    for (uint32_t child = nodes[parent].first_child;
         child != BkTree::kNoNode; child = nodes[child].next_sibling) {
      labels.push_back(nodes[child].parent_dist);
    }
    std::sort(labels.begin(), labels.end());
    EXPECT_TRUE(std::adjacent_find(labels.begin(), labels.end()) ==
                labels.end())
        << "two children share an edge label";
  }
}

class BkTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(BkTreeEquivalenceTest, RangeQueryMatchesBruteForce) {
  const auto [k, theta] = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(k, 1000, 93 + k);
  const BkTree tree = BkTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 25, 94);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(tree.RangeQuery(query.sorted_view(), theta_raw),
              testutil::BruteForce(store, query, theta_raw));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BkTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u, 20u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3)));

TEST(BkTreeTest, PrunesDistanceCallsOnSelectiveQueries) {
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 95);
  const BkTree tree = BkTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 10, 96);
  Statistics stats;
  for (const auto& query : queries) {
    tree.RangeQuery(query.sorted_view(), RawThreshold(0.05, 10), &stats);
  }
  // Far fewer distance calls than a full scan would need.
  EXPECT_LT(stats.Get(Ticker::kDistanceCalls),
            queries.size() * store.size() / 2);
}

TEST(BkTreeTest, RootDistanceVariantAvoidsOneCall) {
  const RankingStore store = testutil::MakeClusteredStore(10, 300, 97);
  const BkTree tree = BkTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 5, 98);
  for (const auto& query : queries) {
    const RawDistance root_dist = FootruleDistance(
        query.sorted_view(), store.sorted(tree.nodes()[0].id));
    std::vector<RankingId> with_root;
    tree.RangeQueryWithRootDistance(query.sorted_view(),
                                    RawThreshold(0.2, 10), root_dist,
                                    nullptr, &with_root);
    std::sort(with_root.begin(), with_root.end());
    EXPECT_EQ(with_root,
              tree.RangeQuery(query.sorted_view(), RawThreshold(0.2, 10)));
  }
}

TEST(BkTreeTest, BuildOverSubsetQueriesOnlySubset) {
  const RankingStore store = testutil::MakeClusteredStore(10, 200, 99);
  std::vector<RankingId> subset;
  for (RankingId id = 0; id < store.size(); id += 3) subset.push_back(id);
  const BkTree tree = BkTree::Build(&store, subset);
  EXPECT_EQ(tree.size(), subset.size());
  const auto queries = testutil::MakeQueries(store, 10, 100);
  for (const auto& query : queries) {
    const auto results =
        tree.RangeQuery(query.sorted_view(), RawThreshold(0.3, 10));
    for (RankingId id : results) {
      EXPECT_TRUE(std::find(subset.begin(), subset.end(), id) !=
                  subset.end());
    }
  }
}

TEST(BkTreeTest, EmptyTreeReturnsNothing) {
  const RankingStore store = testutil::MakeClusteredStore(5, 10, 101);
  const BkTree tree = BkTree::Build(&store, {});
  PreparedQuery query(
      std::move(Ranking::Create({1, 2, 3, 4, 5})).ValueOrDie());
  EXPECT_TRUE(tree.RangeQuery(query.sorted_view(), MaxDistance(5)).empty());
}

TEST(BkTreeTest, DuplicateRankingsChainAtDistanceZero) {
  RankingStore store(4);
  const ItemId row[] = {1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) store.AddUnchecked(row);
  const BkTree tree = BkTree::BuildAll(&store);
  PreparedQuery query(std::move(Ranking::Create({1, 2, 3, 4})).ValueOrDie());
  EXPECT_EQ(tree.RangeQuery(query.sorted_view(), 0).size(), 5u);
}

TEST(BkTreeTest, FaithfulModeMatchesOptimizedModeResults) {
  // Disabling the duplicate-distance reuse must never change results —
  // only the distance-call count.
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 102);
  const BkTree fast = BkTree::BuildAll(&store);
  const BkTree faithful = BkTree::BuildAll(
      &store, nullptr, BkTreeOptions{/*reuse_duplicate_distances=*/false});
  const auto queries = testutil::MakeQueries(store, 10, 103);
  for (double theta : {0.0, 0.1, 0.3}) {
    const RawDistance theta_raw = RawThreshold(theta, 10);
    for (const auto& query : queries) {
      Statistics fast_stats;
      Statistics faithful_stats;
      EXPECT_EQ(fast.RangeQuery(query.sorted_view(), theta_raw, &fast_stats),
                faithful.RangeQuery(query.sorted_view(), theta_raw,
                                    &faithful_stats));
      EXPECT_LE(fast_stats.Get(Ticker::kDistanceCalls),
                faithful_stats.Get(Ticker::kDistanceCalls));
    }
  }
}

}  // namespace
}  // namespace topk
