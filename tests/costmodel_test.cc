// Cost model components: Zipf law and estimator, empirical CDF, the
// coupon-collector medoid count (against simulation), calibration and the
// end-to-end tuner.

#include "costmodel/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cn_partitioner.h"
#include "costmodel/empirical_cdf.h"
#include "costmodel/medoid_model.h"
#include "costmodel/zipf.h"
#include "data/dataset_stats.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(ZipfTest, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(3, 0.0), 3.0, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(4, 2.0),
              1.0 + 0.25 + 1.0 / 9 + 1.0 / 16, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double s : {0.0, 0.5, 0.87, 1.5}) {
    double sum = 0;
    for (uint64_t i = 1; i <= 500; ++i) sum += ZipfPmf(i, s, 500);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  for (uint64_t i = 1; i < 100; ++i) {
    EXPECT_GE(ZipfPmf(i, 0.87, 100), ZipfPmf(i + 1, 0.87, 100));
  }
}

TEST(ZipfTest, SquaredMassMatchesDirectSum) {
  const uint64_t v = 300;
  const double s = 0.7;
  double direct = 0;
  for (uint64_t i = 1; i <= v; ++i) {
    const double f = ZipfPmf(i, s, v);
    direct += f * f;
  }
  EXPECT_NEAR(ZipfSquaredMass(v, s), direct, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesFollowTheLaw) {
  const double s = 0.87;
  const uint64_t v = 50;
  ZipfSampler sampler(s, v);
  Rng rng(3);
  std::vector<uint64_t> counts(v, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  for (uint64_t rank : {1u, 2u, 5u, 10u}) {
    const double expected = ZipfPmf(rank, s, v) * kDraws;
    EXPECT_NEAR(counts[rank - 1], expected, expected * 0.1)
        << "rank " << rank;
  }
}

TEST(ZipfEstimatorTest, RecoversKnownSkewFromExactFrequencies) {
  // Feed the estimator exact Zipf frequencies: regression must recover s.
  for (double s : {0.3, 0.53, 0.87, 1.2}) {
    std::vector<uint64_t> freqs;
    for (uint64_t i = 1; i <= 2000; ++i) {
      freqs.push_back(static_cast<uint64_t>(
          1e9 * std::pow(static_cast<double>(i), -s)));
    }
    EXPECT_NEAR(EstimateZipfSkew(freqs), s, 0.02) << "s=" << s;
  }
}

TEST(ZipfEstimatorTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(EstimateZipfSkew({}), 0.0);
  const uint64_t one[] = {42};
  EXPECT_EQ(EstimateZipfSkew(one), 0.0);
}

TEST(EmpiricalCdfTest, StepFunctionProperties) {
  const EmpiricalCdf cdf = EmpiricalCdf::FromSamples({0.1, 0.3, 0.3, 0.7});
  EXPECT_DOUBLE_EQ(cdf.P(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.P(0.1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.P(0.3), 0.75);
  EXPECT_DOUBLE_EQ(cdf.P(0.69), 0.75);
  EXPECT_DOUBLE_EQ(cdf.P(0.7), 1.0);
  EXPECT_DOUBLE_EQ(cdf.P(2.0), 1.0);
}

TEST(EmpiricalCdfTest, MonotoneOnSampledData) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 161);
  Rng rng(4);
  const EmpiricalCdf cdf = SamplePairwiseDistances(store, 20000, &rng);
  double previous = -1;
  for (double x = 0; x <= 1.0; x += 0.05) {
    const double p = cdf.P(x);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
  EXPECT_DOUBLE_EQ(cdf.P(1.0), 1.0);
}

TEST(MedoidModelTest, LimitCases) {
  // Package 1 => every ranking its own medoid; package n => one medoid.
  EXPECT_NEAR(ExpectedMedoids(1000, 1.0), 1000.0, 1e-9);
  EXPECT_NEAR(ExpectedMedoids(1000, 1000.0), 1.0, 1e-9);
}

TEST(MedoidModelTest, MonotoneInPackageSize) {
  // Non-strict overall (the clamp flattens the divergent small-package
  // regime at n), strictly decreasing once the raw sum drops below n.
  double previous = 1e18;
  for (double package : {1.0, 2.0, 5.0, 20.0, 100.0, 500.0}) {
    const double m = ExpectedMedoids(1000, package);
    EXPECT_LE(m, std::max(previous, 1000.0)) << "package=" << package;
    EXPECT_LE(m, 1000.0) << "never more medoids than rankings";
    EXPECT_GE(m, 1.0);
    previous = m;
  }
  EXPECT_LT(ExpectedMedoids(1000, 100.0), ExpectedMedoids(1000, 20.0));
  EXPECT_LT(ExpectedMedoids(1000, 500.0), ExpectedMedoids(1000, 100.0));
}

TEST(MedoidModelTest, GeometricCoverageBallpark) {
  // The coupon-with-packages count should land near the geometric-decay
  // estimate M ~ ln(n) / ln(n / (n - p)).
  const uint64_t n = 10000;
  for (double frac : {0.05, 0.2, 0.5}) {
    const double p = frac * n;
    const double model = ExpectedMedoids(n, p);
    const double geometric =
        std::log(static_cast<double>(n)) /
        std::log(static_cast<double>(n) / (static_cast<double>(n) - p));
    EXPECT_GT(model, 0.3 * geometric);
    EXPECT_LT(model, 3.0 * geometric);
  }
}

TEST(MedoidModelRecurrenceTest, LimitCases) {
  EXPECT_NEAR(ExpectedMedoidsRecurrence(1000, 1.0), 1000.0, 1e-9);
  EXPECT_NEAR(ExpectedMedoidsRecurrence(1000, 1000.0), 1.0, 1e-9);
}

TEST(MedoidModelRecurrenceTest, StrictlyMonotoneAndPhysical) {
  double previous = 1e18;
  for (double package : {1.0, 2.0, 5.0, 20.0, 100.0, 500.0}) {
    const double m = ExpectedMedoidsRecurrence(1000, package);
    EXPECT_LT(m, previous) << "package=" << package;
    EXPECT_LE(m, 1000.0);
    EXPECT_GE(m, 1.0);
    previous = m;
  }
}

TEST(MedoidModelRecurrenceTest, TracksCnSimulationClosely) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 167);
  Rng cdf_rng(8);
  const EmpiricalCdf cdf = SamplePairwiseDistances(store, 50000, &cdf_rng);
  for (double theta_c : {0.2, 0.4}) {
    const double package = cdf.P(theta_c) * static_cast<double>(store.size());
    const double predicted =
        ExpectedMedoidsRecurrence(store.size(), package);
    Rng rng(9);
    const Partitioning actual =
        CnPartition(store, RawThreshold(theta_c, 10), &rng);
    const double ratio =
        predicted / static_cast<double>(actual.partitions.size());
    EXPECT_GT(ratio, 0.5) << "theta_c=" << theta_c;
    EXPECT_LT(ratio, 2.0) << "theta_c=" << theta_c;
  }
}

TEST(MedoidModelTest, AgreesWithCnSimulation) {
  // End-to-end sanity: the assumption-lean model (uniform coverage from
  // an average CDF) over-predicts on strongly clustered data, but must
  // stay within a small constant factor of an actual Chavez-Navarro run —
  // what matters downstream is the argmin location, scored by the
  // Table 5 bench.
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 162);
  Rng cdf_rng(5);
  const EmpiricalCdf cdf = SamplePairwiseDistances(store, 50000, &cdf_rng);
  for (double theta_c : {0.2, 0.4}) {
    const double package = cdf.P(theta_c) * static_cast<double>(store.size());
    const double predicted = ExpectedMedoids(store.size(), package);
    Rng rng(6);
    const Partitioning actual =
        CnPartition(store, RawThreshold(theta_c, 10), &rng);
    const double ratio =
        predicted / static_cast<double>(actual.partitions.size());
    EXPECT_GT(ratio, 0.2) << "theta_c=" << theta_c;
    EXPECT_LT(ratio, 6.0) << "theta_c=" << theta_c;
  }
}

TEST(BallProfileTest, BallsIncludeSelfAndGrowWithRadius) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 168);
  Rng rng(10);
  const BallProfile profile = BallProfile::Sample(store, 64, &rng);
  EXPECT_EQ(profile.n(), store.size());
  EXPECT_GE(profile.MeanBall(0.0), 1.0);  // every ranking covers itself
  double previous = 0;
  for (double theta : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    const double ball = profile.MeanBall(theta);
    EXPECT_GE(ball, previous);
    previous = ball;
  }
  EXPECT_NEAR(profile.MeanBall(1.0), static_cast<double>(store.size()),
              1e-9);
}

TEST(BallProfileTest, HarmonicCountBetweenOneAndN) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 169);
  Rng rng(11);
  const BallProfile profile = BallProfile::Sample(store, 64, &rng);
  double previous = static_cast<double>(store.size()) + 1;
  for (double theta : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    const double m = profile.HarmonicBallCount(theta);
    EXPECT_GE(m, 1.0 - 1e-9);
    EXPECT_LE(m, static_cast<double>(store.size()) + 1e-9);
    EXPECT_LE(m, previous + 1e-9) << "theta=" << theta;
    previous = m;
  }
  EXPECT_NEAR(profile.HarmonicBallCount(1.0), 1.0, 1e-9);
}

TEST(BallProfileTest, PooledCdfMatchesPairSampling) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1000, 170);
  Rng rng_a(12);
  Rng rng_b(13);
  const BallProfile profile = BallProfile::Sample(store, 128, &rng_a);
  const EmpiricalCdf cdf = SamplePairwiseDistances(store, 50000, &rng_b);
  for (double theta : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(profile.P(theta), cdf.P(theta), 0.05) << "theta=" << theta;
  }
}

TEST(BallProfileTest, HarmonicEstimatorTracksCnOnHeavyTailedData) {
  // The motivating case: query-log style duplication where the average
  // ball is dominated by giant clusters. The harmonic estimate must stay
  // close to an actual partitioner run where the coupon model is off by
  // multiples.
  const RankingStore store = Generate(NytLikeOptions(4000, 10, 21));
  Rng rng_profile(14);
  const BallProfile profile = BallProfile::Sample(store, 256, &rng_profile);
  for (double theta_c : {0.1, 0.3}) {
    Rng rng_cn(15);
    const Partitioning actual =
        CnPartition(store, RawThreshold(theta_c, 10), &rng_cn);
    const double harmonic = profile.HarmonicBallCount(theta_c);
    const double ratio =
        harmonic / static_cast<double>(actual.partitions.size());
    EXPECT_GT(ratio, 0.5) << "theta_c=" << theta_c;
    EXPECT_LT(ratio, 2.0) << "theta_c=" << theta_c;
  }
}

TEST(CalibrationTest, ProducesPositiveCosts) {
  const Calibration calib = Calibrate(10);
  EXPECT_GT(calib.footrule_ns, 0.0);
  EXPECT_GT(calib.merge_ns_per_entry, 0.0);
  // A Footrule call costs more than touching one posting entry.
  EXPECT_GT(calib.footrule_ns, calib.merge_ns_per_entry);
}

TEST(CostModelTest, FilterFallsValidationRisesWithThetaC) {
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 163);
  const CostModelInputs inputs = MeasureCostModelInputs(store, 128);
  const CoarseCostModel model(inputs);
  const double theta = 0.2;
  const CostBreakdown low = model.Predict(theta, 0.05);
  const CostBreakdown high = model.Predict(theta, 0.7);
  EXPECT_GT(low.filter_ns, high.filter_ns)
      << "filter cost must fall as the index coarsens";
  EXPECT_LT(low.validate_ns, high.validate_ns)
      << "validation cost must rise as partitions grow";
}

TEST(CostModelTest, MedoidCountDecreasesWithThetaC) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 164);
  const CostModelInputs inputs = MeasureCostModelInputs(store, 128);
  const CoarseCostModel model(inputs);
  double previous = 1e18;
  for (double theta_c : {0.05, 0.2, 0.4, 0.7}) {
    const double m = model.ExpectedMedoidCount(theta_c);
    EXPECT_LE(m, previous);
    previous = m;
  }
}

TEST(CostModelTest, DistinctItemsBelowDomainAndMonotone) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 165);
  const CostModelInputs inputs = MeasureCostModelInputs(store, 128);
  const CoarseCostModel model(inputs);
  double previous = 0;
  for (double medoids : {10.0, 100.0, 1000.0}) {
    const double v_prime = model.ExpectedDistinctMedoidItems(medoids);
    EXPECT_GT(v_prime, previous);
    EXPECT_LE(v_prime, static_cast<double>(inputs.v) + 1e-6);
    previous = v_prime;
  }
}

TEST(CostModelTest, TuneReturnsSeriesArgmin) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 166);
  const CostModelInputs inputs = MeasureCostModelInputs(store, 128);
  const CoarseCostModel model(inputs);
  const std::vector<double> grid = MakeGrid(0.02, 0.8, 0.02);
  const auto result = model.Tune(0.2, grid);
  EXPECT_EQ(result.series.size(), grid.size());
  for (const auto& point : result.series) {
    EXPECT_GE(point.cost.total_ns() + 1e-9, result.best_cost.total_ns());
  }
  EXPECT_GT(result.best_theta_c, 0.0);
  EXPECT_LT(result.best_theta_c, 0.8 + 1e-9);
}

TEST(CostModelTest, MakeGridCoversRangeInclusive) {
  const auto grid = MakeGrid(0.1, 0.5, 0.1);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.1);
  EXPECT_NEAR(grid.back(), 0.5, 1e-12);
}

}  // namespace
}  // namespace topk
