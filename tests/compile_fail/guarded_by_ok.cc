// Positive control for the thread-safety negative compile test: the same
// shape as compile_fail/guarded_by_violation.cc but with the MutexLock in
// place. Must compile cleanly under `clang++ -Wthread-safety
// -Werror=thread-safety` (and under GCC, where the annotations are
// no-ops). If this file stops compiling, the negative test below it is
// meaningless — check tests/CMakeLists.txt.

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace {

// Miniature of the ShardedLruCache shard / QueryFrontend coordinator
// pattern: state guarded by the object's own mutex, touched only by
// methods that take the lock.
struct Shard {
  topk::Mutex mutex;
  int entries TOPK_GUARDED_BY(mutex) = 0;

  void Touch() TOPK_EXCLUDES(mutex) {
    topk::MutexLock lock(&mutex);
    ++entries;  // guarded access under its capability: OK
  }

  int Read() TOPK_EXCLUDES(mutex) {
    topk::MutexLock lock(&mutex);
    return entries;
  }
};

}  // namespace

int main() {
  Shard shard;
  shard.Touch();
  return shard.Read() == 1 ? 0 : 1;
}
