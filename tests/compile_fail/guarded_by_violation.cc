// Negative compile test: this file must FAIL to compile under
// `clang++ -Wthread-safety -Werror=thread-safety`. It is the
// MutexLock-removed twin of compile_fail/guarded_by_ok.cc — exactly the
// edit ("delete one MutexLock from lru_cache.h / frontend.cc") that the
// annotation layer exists to catch. tests/CMakeLists.txt try_compiles it
// at configure time on the Clang thread-safety leg and fails the build if
// it compiles; under GCC the annotations are no-ops and the check is
// skipped (the file then compiles, which is expected and not asserted).

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace {

struct Shard {
  topk::Mutex mutex;
  int entries TOPK_GUARDED_BY(mutex) = 0;

  void Touch() TOPK_EXCLUDES(mutex) {
    // MutexLock deliberately missing: unguarded write to a GUARDED_BY
    // member — must be a -Wthread-safety diagnostic, i.e. a build error.
    ++entries;
  }

  int Read() TOPK_EXCLUDES(mutex) {
    return entries;  // unguarded read: same story
  }
};

}  // namespace

int main() {
  Shard shard;
  shard.Touch();
  return shard.Read() == 1 ? 0 : 1;
}
