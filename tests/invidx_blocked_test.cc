// Blocked inverted index: directory structure, block skipping, both
// processing modes (windowed and scheduled), and exactness.

#include "invidx/blocked_inverted_index.h"

#include <gtest/gtest.h>

#include <span>
#include <tuple>

#include "kernel/block_sweep.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(BlockedIndexTest, BlocksPartitionTheListByRank) {
  const RankingStore store = testutil::MakeUniformStore(6, 300, 50, 61);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    size_t total = 0;
    for (Rank j = 0; j < 6; ++j) {
      const auto block = index.Block(item, j);
      total += block.size();
      for (const AugmentedEntry& entry : block) {
        EXPECT_EQ(entry.rank, j);
        EXPECT_EQ(store.view(entry.id)[j], item);
      }
      // Ids ascending within a block.
      for (size_t i = 1; i < block.size(); ++i) {
        EXPECT_LT(block[i - 1].id, block[i].id);
      }
    }
    EXPECT_EQ(total, index.list(item).size());
  }
}

TEST(BlockedIndexTest, BlockRangeSpansBlocks) {
  const RankingStore store = testutil::MakeUniformStore(6, 300, 50, 62);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    const auto range = index.BlockRange(item, 1, 3);
    size_t expected = index.Block(item, 1).size() +
                      index.Block(item, 2).size() +
                      index.Block(item, 3).size();
    EXPECT_EQ(range.size(), expected);
    for (const AugmentedEntry& entry : range) {
      EXPECT_GE(entry.rank, 1u);
      EXPECT_LE(entry.rank, 3u);
    }
  }
}

class BlockedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, int, bool>> {
};

TEST_P(BlockedEquivalenceTest, MatchesBruteForce) {
  const auto [k, theta, drop_int, scheduled] = GetParam();
  BlockedOptions options;
  options.drop = static_cast<DropMode>(drop_int);
  options.scheduled = scheduled;

  const RankingStore store = testutil::MakeClusteredStore(k, 1200, 63 + k);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index, options);
  const auto queries = testutil::MakeQueries(store, 25, 64);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "k=" << k << " theta=" << theta << " drop=" << drop_int
        << " scheduled=" << scheduled;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3),
                       ::testing::Values(0, 2),
                       ::testing::Bool()));

TEST(BlockedEngineTest, ExactMatchQueriesScanOnlyExactBlocks) {
  // theta = 0: only the k diagonal blocks B_{q_t}@t are touched.
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 65);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 20, 66);

  Statistics stats;
  for (const auto& query : queries) engine.Query(query, 0, &stats);

  // Compare against the total entries the same lists hold.
  size_t full_entries = 0;
  size_t diagonal_entries = 0;
  for (const auto& query : queries) {
    for (Rank t = 0; t < 10; ++t) {
      full_entries += index.list(query.view()[t]).size();
      diagonal_entries += index.Block(query.view()[t], t).size();
    }
  }
  EXPECT_EQ(stats.Get(Ticker::kPostingEntriesScanned), diagonal_entries);
  EXPECT_LT(diagonal_entries, full_entries);
}

TEST(BlockedEngineTest, WindowedModeSkipsEntriesForSmallRawThresholds) {
  // Raw thresholds below k-1 shrink the block window (at k=10 this means
  // normalized theta < ~0.08).
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 67);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index,
                       BlockedOptions{DropMode::kNone, /*scheduled=*/false});
  const auto queries = testutil::MakeQueries(store, 20, 68);
  Statistics stats;
  for (const auto& query : queries) {
    engine.Query(query, /*theta_raw=*/5, &stats);
  }
  EXPECT_GT(stats.Get(Ticker::kPostingEntriesSkipped), 0u);
}

TEST(BlockedEngineTest, SurvivorsAreValidatedExactly) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 69);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 10, 70);
  Statistics stats;
  size_t results = 0;
  for (const auto& query : queries) {
    results += engine.Query(query, RawThreshold(0.2, 10), &stats).size();
  }
  // Every reported result went through a Footrule validation.
  EXPECT_GE(stats.Get(Ticker::kDistanceCalls), results);
}

TEST(BlockedEngineTest, SchedulingTerminatesEarlyForTightThresholds) {
  // With theta = 0 the scheduled mode stops after round 0: scanned
  // entries equal the diagonal blocks (checked above); with a large theta
  // it must scan more.
  const RankingStore store = testutil::MakeClusteredStore(10, 1000, 71);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 10, 72);
  Statistics tight;
  Statistics loose;
  for (const auto& query : queries) {
    engine.Query(query, 0, &tight);
    engine.Query(query, RawThreshold(0.3, 10), &loose);
  }
  EXPECT_LT(tight.Get(Ticker::kPostingEntriesScanned),
            loose.Get(Ticker::kPostingEntriesScanned));
}

TEST(BlockSweepTest, VisitsOnlyNonEmptyBlocksInWindow) {
  const RankingStore store = testutil::MakeUniformStore(6, 200, 40, 73);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    size_t visited_entries = 0;
    Rank last_rank = 0;
    const size_t total = BlockRangeSweep(
        index.list(item), index.block_offsets(item), BlockWindow{1, 4},
        [&](Rank j, std::span<const AugmentedEntry> block) {
          EXPECT_FALSE(block.empty());  // empty blocks are skipped
          EXPECT_GE(j, 1u);
          EXPECT_LE(j, 4u);
          EXPECT_GE(j, last_rank);  // ascending rank order
          last_rank = j;
          for (const AugmentedEntry& entry : block) {
            EXPECT_EQ(entry.rank, j);
          }
          visited_entries += block.size();
        });
    EXPECT_EQ(total, visited_entries);
    EXPECT_EQ(total, index.BlockRange(item, 1, 4).size());
  }
  // Out-of-directory items sweep nothing.
  EXPECT_EQ(BlockRangeSweep(index.list(store.max_item() + 10),
                            index.block_offsets(store.max_item() + 10),
                            BlockWindow{0, 5},
                            [](Rank, std::span<const AugmentedEntry>) {
                              FAIL() << "no blocks expected";
                            }),
            0u);
}

TEST(BlockedEngineTest, TightenedWindowCutsScansAtModerateThresholds) {
  // At theta_raw >= k - 1 the untightened +-theta window degenerates to
  // the full list (|j - t| <= k - 1 always), so any skipping observed
  // here is the discovery-tightened budget at work. Results stay exact
  // (checked against brute force).
  const uint32_t k = 10;
  const RankingStore store = testutil::MakeClusteredStore(k, 1500, 75);
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
  BlockedEngine engine(&store, &index,
                       BlockedOptions{DropMode::kNone, /*scheduled=*/false});
  const auto queries = testutil::MakeQueries(store, 15, 76);
  const RawDistance theta_raw = RawThreshold(0.3, k);  // 33 >= k - 1
  Statistics stats;
  size_t full_list_entries = 0;
  for (const PreparedQuery& query : queries) {
    ASSERT_EQ(engine.Query(query, theta_raw, &stats),
              testutil::BruteForce(store, query, theta_raw));
    for (Rank t = 0; t < k; ++t) {
      full_list_entries += index.list_length(query.view()[t]);
    }
  }
  EXPECT_LT(stats.Get(Ticker::kPostingEntriesScanned), full_list_entries);
  EXPECT_EQ(stats.Get(Ticker::kPostingEntriesScanned) +
                stats.Get(Ticker::kPostingEntriesSkipped),
            full_list_entries);
}

}  // namespace
}  // namespace topk
