// Differential test for the delta inverted index's live-mutability hook:
// an index grown record-by-record through Insert() must answer queries
// bit-identically to one rebuilt from scratch over the same store (and to
// the brute-force ground truth), at every growth step — the exactness
// contract the ROADMAP write path builds on. The global order differs
// between the two (Build optimizes by frequency, Insert freezes
// first-seen order); that moves scan cost, never results, and this test
// is what holds that claim.

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/adapt_search.h"
#include "adapt/delta_inverted_index.h"
#include "core/bounds.h"
#include "core/ranking.h"
#include "data/dataset_stats.h"
#include "mutate/mutable_store.h"
#include "test_util.h"

namespace topk {
namespace {

// Structural invariants of the position-block directory that Prefix()
// depends on: offsets ascend with prefix length, the full prefix is the
// whole list, and every stored entry's rank field really is the record's
// sorted position under the index's own global order.
void CheckStructure(const DeltaInvertedIndex& index,
                    const RankingStore& store) {
  ASSERT_EQ(index.num_indexed(), store.size());
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    size_t previous = 0;
    for (uint32_t len = 0; len <= index.k(); ++len) {
      const size_t size = index.Prefix(item, len).size();
      ASSERT_GE(size, previous) << "item " << item << " len " << len;
      previous = size;
    }
    ASSERT_EQ(previous, index.list(item).size()) << "item " << item;
  }
  for (RankingId id = 0; id < store.size(); ++id) {
    const std::vector<ItemId> sorted = index.SortByGlobalOrder(store.view(id));
    for (uint32_t pos = 0; pos < sorted.size(); ++pos) {
      bool found = false;
      for (const AugmentedEntry& entry : index.list(sorted[pos])) {
        if (entry.id == id && entry.rank == pos) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "record " << id << " missing at pos " << pos;
    }
  }
}

TEST(DeltaInsertTest, InterleavedInsertMatchesRebuildBitExact) {
  constexpr uint32_t kK = 8;
  constexpr size_t kTotal = 600;
  constexpr size_t kBatch = 150;
  const RankingStore source = testutil::MakeClusteredStore(kK, kTotal, 931);

  RankingStore growing(kK);
  DeltaInvertedIndex incremental;
  // One engine reused across all growth steps: exercises the lazy counter
  // growth in AdaptSearchEngine::Query (the store and index both grow
  // underneath it between query phases).
  AdaptSearchEngine live_engine(&growing, &incremental);

  for (size_t grown = 0; grown < kTotal;) {
    // Write phase: interleave store appends with index inserts.
    const size_t end = grown + kBatch;
    for (; grown < end; ++grown) {
      const RankingView record = source.view(static_cast<RankingId>(grown));
      const RankingId id =
          growing.AddUnchecked({record.items().data(), record.items().size()});
      ASSERT_EQ(id, static_cast<RankingId>(grown));
      incremental.Insert(id, record);
    }
    CheckStructure(incremental, growing);

    // Query phase: the grown index, a from-scratch rebuild, and brute
    // force must agree exactly.
    const DeltaInvertedIndex rebuilt = DeltaInvertedIndex::Build(growing);
    CheckStructure(rebuilt, growing);
    AdaptSearchEngine rebuilt_engine(&growing, &rebuilt);
    const auto queries = testutil::MakeQueries(growing, 12, 932 + grown);
    for (const double theta : {0.02, 0.08, 0.2}) {
      const RawDistance theta_raw = RawThreshold(theta, kK);
      for (const PreparedQuery& query : queries) {
        const std::vector<RankingId> expected =
            testutil::BruteForce(growing, query, theta_raw);
        EXPECT_EQ(live_engine.Query(query, theta_raw), expected)
            << "incremental, n=" << grown << " theta=" << theta;
        EXPECT_EQ(rebuilt_engine.Query(query, theta_raw), expected)
            << "rebuilt, n=" << grown << " theta=" << theta;
      }
    }
  }
}

TEST(DeltaInsertTest, InsertIntoBuiltIndexExtendsFrozenOrder) {
  // Build over a prefix, then Insert the rest: the mixed-provenance index
  // (frequency order for built items, first-seen extension for new ones)
  // must still be exact.
  constexpr uint32_t kK = 6;
  const RankingStore source = testutil::MakeClusteredStore(kK, 500, 941);

  RankingStore growing(kK);
  for (RankingId id = 0; id < 300; ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
  }
  DeltaInvertedIndex index = DeltaInvertedIndex::Build(growing);
  for (RankingId id = 300; id < 500; ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  CheckStructure(index, growing);

  AdaptSearchEngine engine(&growing, &index);
  const auto queries = testutil::MakeQueries(growing, 20, 942);
  for (const double theta : {0.05, 0.15}) {
    const RawDistance theta_raw = RawThreshold(theta, kK);
    for (const PreparedQuery& query : queries) {
      EXPECT_EQ(engine.Query(query, theta_raw),
                testutil::BruteForce(growing, query, theta_raw))
          << "theta=" << theta;
    }
  }
}

TEST(DeltaInsertTest, FirstInsertDefinesK) {
  // An index grown from empty (no Build call) adopts k from its first
  // record and stays exact.
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 120, 951);
  RankingStore growing(kK);
  DeltaInvertedIndex index;
  EXPECT_EQ(index.k(), 0u);
  for (RankingId id = 0; id < source.size(); ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  EXPECT_EQ(index.k(), kK);
  CheckStructure(index, growing);

  AdaptSearchEngine engine(&growing, &index);
  const auto queries = testutil::MakeQueries(growing, 15, 952);
  const RawDistance theta_raw = RawThreshold(0.1, kK);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(growing, query, theta_raw));
  }
}

// Regression for the move-semantics bug: moved-from k_/num_indexed_
// stayed stale, so reusing a moved-from index double-counted. The fixed
// contract is "moved-from == empty, immediately reusable" — exactly what
// MutableStore's merge seal relies on.
TEST(DeltaMoveTest, MoveResetsSourceToEmptyAndReusable) {
  constexpr uint32_t kK = 4;
  const RankingStore source = testutil::MakeUniformStore(kK, 80, 120, 961);

  RankingStore first(kK);
  DeltaInvertedIndex index;
  for (RankingId id = 0; id < 40; ++id) {
    const RankingView record = source.view(id);
    first.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }

  DeltaInvertedIndex taken = std::move(index);
  EXPECT_EQ(taken.k(), kK);
  EXPECT_EQ(taken.num_indexed(), 40u);
  CheckStructure(taken, first);
  // Pre-fix these held the stale values (kK / 40) and the reuse below
  // tripped the dense-id invariant.
  EXPECT_EQ(index.k(), 0u);
  EXPECT_EQ(index.num_indexed(), 0u);
  EXPECT_EQ(index.list(first.view(0).items()[0]).size(), 0u);

  // Reuse the moved-from index from scratch over a different record set:
  // it must behave exactly like a fresh one.
  RankingStore second(kK);
  for (RankingId id = 0; id < 40; ++id) {
    const RankingView record = source.view(40 + id);
    second.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  CheckStructure(index, second);
  AdaptSearchEngine engine(&second, &index);
  const auto queries = testutil::MakeQueries(second, 10, 962);
  const RawDistance theta_raw = RawThreshold(0.1, kK);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(second, query, theta_raw));
  }

  // Move-assignment resets the source the same way.
  DeltaInvertedIndex target;
  target = std::move(taken);
  EXPECT_EQ(target.num_indexed(), 40u);
  EXPECT_EQ(taken.k(), 0u);
  EXPECT_EQ(taken.num_indexed(), 0u);
  CheckStructure(target, first);
}

TEST(DeltaMoveTest, SelfMoveAssignIsNoOp) {
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeUniformStore(kK, 30, 60, 971);
  RankingStore store(kK);
  DeltaInvertedIndex index;
  for (RankingId id = 0; id < 30; ++id) {
    const RankingView record = source.view(id);
    store.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  // Through a pointer so the self-move is invisible to -Wself-move; the
  // pre-fix code zeroed k_/num_indexed_ and left the containers in
  // exchange-then-move shambles here.
  DeltaInvertedIndex* alias = &index;
  index = std::move(*alias);
  EXPECT_EQ(index.k(), kK);
  EXPECT_EQ(index.num_indexed(), 30u);
  CheckStructure(index, store);
}

// Satellite coverage: interleaved insert/delete/query streams against a
// rebuilt-from-scratch store, bit-exact at every step — driven through
// MutableStore, whose delta segment is this index (deletes live at the
// store layer; the raw index is append-only by design). The same-range
// delete-then-reinsert case gets fresh ids and fresh delta rows.
TEST(DeltaWritePathTest, InterleavedInsertDeleteQueryMatchesRebuild) {
  constexpr uint32_t kK = 6;
  const RankingStore source = testutil::MakeClusteredStore(kK, 360, 981);
  const auto queries = testutil::MakeQueries(source, 8, 982);
  const RawDistance thetas[] = {RawThreshold(0.05, kK),
                                RawThreshold(0.25, kK)};

  MutableStore store(kK);
  // Shadow of alive rows: global id -> items, replayed into the oracle.
  std::vector<std::pair<RankingId, std::vector<ItemId>>> alive;
  RankingId next = 0;
  const auto insert_row = [&](RankingId source_row) {
    const RankingView record = source.view(source_row);
    const RankingId id = store.Insert(record);
    ASSERT_EQ(id, next++);
    alive.emplace_back(id, std::vector<ItemId>(record.items().begin(),
                                               record.items().end()));
  };
  const auto check_step = [&](const char* where) {
    RankingStore rebuilt(kK);
    std::vector<RankingId> globals;
    for (const auto& [id, items] : alive) {
      rebuilt.AddUnchecked(items);
      globals.push_back(id);
    }
    ASSERT_EQ(store.live_size(), alive.size()) << where;
    for (const RawDistance theta_raw : thetas) {
      for (const PreparedQuery& query : queries) {
        std::vector<RankingId> expected =
            testutil::BruteForce(rebuilt, query, theta_raw);
        for (RankingId& id : expected) id = globals[id];
        EXPECT_EQ(store.RangeQuery(query, theta_raw), expected)
            << where << " theta_raw=" << theta_raw;
      }
    }
  };

  for (RankingId row = 0; row < 120; ++row) insert_row(row);
  check_step("grown");

  // Delete every third row (a mid-stream hole), query, then merge.
  for (size_t i = alive.size(); i-- > 0;) {
    if (i % 3 == 1) {
      ASSERT_TRUE(store.Delete(alive[i].first));
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  check_step("holes");
  store.MergeNow();
  check_step("holes-merged");

  // Delete-then-reinsert of the same id range: remove rows 0..39, then
  // reinsert the same source rows — they come back under fresh ids.
  for (size_t i = alive.size(); i-- > 0;) {
    if (alive[i].first < 40) {
      ASSERT_TRUE(store.Delete(alive[i].first));
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  check_step("range-deleted");
  for (RankingId row = 0; row < 40; ++row) insert_row(row);
  check_step("range-reinserted");
  store.MergeNow();
  check_step("range-reinserted-merged");

  // Keep interleaving past the merge.
  for (RankingId row = 120; row < 360; ++row) {
    insert_row(row);
    if (row % 4 == 2) {
      ASSERT_TRUE(store.Delete(alive[alive.size() / 2].first));
      alive.erase(alive.begin() +
                  static_cast<ptrdiff_t>(alive.size() / 2));
    }
  }
  check_step("final");
}

}  // namespace
}  // namespace topk
