// Differential test for the delta inverted index's live-mutability hook:
// an index grown record-by-record through Insert() must answer queries
// bit-identically to one rebuilt from scratch over the same store (and to
// the brute-force ground truth), at every growth step — the exactness
// contract the ROADMAP write path builds on. The global order differs
// between the two (Build optimizes by frequency, Insert freezes
// first-seen order); that moves scan cost, never results, and this test
// is what holds that claim.

#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/adapt_search.h"
#include "adapt/delta_inverted_index.h"
#include "core/bounds.h"
#include "core/ranking.h"
#include "data/dataset_stats.h"
#include "test_util.h"

namespace topk {
namespace {

// Structural invariants of the position-block directory that Prefix()
// depends on: offsets ascend with prefix length, the full prefix is the
// whole list, and every stored entry's rank field really is the record's
// sorted position under the index's own global order.
void CheckStructure(const DeltaInvertedIndex& index,
                    const RankingStore& store) {
  ASSERT_EQ(index.num_indexed(), store.size());
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    size_t previous = 0;
    for (uint32_t len = 0; len <= index.k(); ++len) {
      const size_t size = index.Prefix(item, len).size();
      ASSERT_GE(size, previous) << "item " << item << " len " << len;
      previous = size;
    }
    ASSERT_EQ(previous, index.list(item).size()) << "item " << item;
  }
  for (RankingId id = 0; id < store.size(); ++id) {
    const std::vector<ItemId> sorted = index.SortByGlobalOrder(store.view(id));
    for (uint32_t pos = 0; pos < sorted.size(); ++pos) {
      bool found = false;
      for (const AugmentedEntry& entry : index.list(sorted[pos])) {
        if (entry.id == id && entry.rank == pos) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "record " << id << " missing at pos " << pos;
    }
  }
}

TEST(DeltaInsertTest, InterleavedInsertMatchesRebuildBitExact) {
  constexpr uint32_t kK = 8;
  constexpr size_t kTotal = 600;
  constexpr size_t kBatch = 150;
  const RankingStore source = testutil::MakeClusteredStore(kK, kTotal, 931);

  RankingStore growing(kK);
  DeltaInvertedIndex incremental;
  // One engine reused across all growth steps: exercises the lazy counter
  // growth in AdaptSearchEngine::Query (the store and index both grow
  // underneath it between query phases).
  AdaptSearchEngine live_engine(&growing, &incremental);

  for (size_t grown = 0; grown < kTotal;) {
    // Write phase: interleave store appends with index inserts.
    const size_t end = grown + kBatch;
    for (; grown < end; ++grown) {
      const RankingView record = source.view(static_cast<RankingId>(grown));
      const RankingId id =
          growing.AddUnchecked({record.items().data(), record.items().size()});
      ASSERT_EQ(id, static_cast<RankingId>(grown));
      incremental.Insert(id, record);
    }
    CheckStructure(incremental, growing);

    // Query phase: the grown index, a from-scratch rebuild, and brute
    // force must agree exactly.
    const DeltaInvertedIndex rebuilt = DeltaInvertedIndex::Build(growing);
    CheckStructure(rebuilt, growing);
    AdaptSearchEngine rebuilt_engine(&growing, &rebuilt);
    const auto queries = testutil::MakeQueries(growing, 12, 932 + grown);
    for (const double theta : {0.02, 0.08, 0.2}) {
      const RawDistance theta_raw = RawThreshold(theta, kK);
      for (const PreparedQuery& query : queries) {
        const std::vector<RankingId> expected =
            testutil::BruteForce(growing, query, theta_raw);
        EXPECT_EQ(live_engine.Query(query, theta_raw), expected)
            << "incremental, n=" << grown << " theta=" << theta;
        EXPECT_EQ(rebuilt_engine.Query(query, theta_raw), expected)
            << "rebuilt, n=" << grown << " theta=" << theta;
      }
    }
  }
}

TEST(DeltaInsertTest, InsertIntoBuiltIndexExtendsFrozenOrder) {
  // Build over a prefix, then Insert the rest: the mixed-provenance index
  // (frequency order for built items, first-seen extension for new ones)
  // must still be exact.
  constexpr uint32_t kK = 6;
  const RankingStore source = testutil::MakeClusteredStore(kK, 500, 941);

  RankingStore growing(kK);
  for (RankingId id = 0; id < 300; ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
  }
  DeltaInvertedIndex index = DeltaInvertedIndex::Build(growing);
  for (RankingId id = 300; id < 500; ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  CheckStructure(index, growing);

  AdaptSearchEngine engine(&growing, &index);
  const auto queries = testutil::MakeQueries(growing, 20, 942);
  for (const double theta : {0.05, 0.15}) {
    const RawDistance theta_raw = RawThreshold(theta, kK);
    for (const PreparedQuery& query : queries) {
      EXPECT_EQ(engine.Query(query, theta_raw),
                testutil::BruteForce(growing, query, theta_raw))
          << "theta=" << theta;
    }
  }
}

TEST(DeltaInsertTest, FirstInsertDefinesK) {
  // An index grown from empty (no Build call) adopts k from its first
  // record and stays exact.
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 120, 951);
  RankingStore growing(kK);
  DeltaInvertedIndex index;
  EXPECT_EQ(index.k(), 0u);
  for (RankingId id = 0; id < source.size(); ++id) {
    const RankingView record = source.view(id);
    growing.AddUnchecked({record.items().data(), record.items().size()});
    index.Insert(id, record);
  }
  EXPECT_EQ(index.k(), kK);
  CheckStructure(index, growing);

  AdaptSearchEngine engine(&growing, &index);
  const auto queries = testutil::MakeQueries(growing, 15, 952);
  const RawDistance theta_raw = RawThreshold(0.1, kK);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(growing, query, theta_raw));
  }
}

}  // namespace
}  // namespace topk
