// Link-coverage canary for the build system: touches at least one symbol
// defined in a .cc file of every src/ module (core, cluster, coarse,
// adapt, invidx, metric, costmodel, data, harness, io), so a translation
// unit accidentally dropped from src/CMakeLists.txt fails this suite's
// link step instead of silently shipping a hole in libtopk.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/bk_partitioner.h"
#include "cluster/cn_partitioner.h"
#include "coarse/batch_query.h"
#include "coarse/coarse_index.h"
#include "core/bounds.h"
#include "core/footrule.h"
#include "core/kendall.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "costmodel/cost_model.h"
#include "data/dataset_stats.h"
#include "data/generator.h"
#include "data/workload.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "io/serialization.h"
#include "metric/knn.h"
#include "metric/linear_scan.h"
#include "serve/fingerprint.h"
#include "serve/frontend.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(BuildSmokeTest, EverySrcModuleLinks) {
  // data: generator + workload.
  const RankingStore store = Generate(NytLikeOptions(/*n=*/200, /*k=*/10,
                                                     /*seed=*/1));
  ASSERT_EQ(store.size(), 200u);
  WorkloadOptions workload_options;
  workload_options.num_queries = 4;
  const std::vector<PreparedQuery> queries =
      MakeWorkload(store, workload_options);
  ASSERT_EQ(queries.size(), 4u);
  const RawDistance theta_raw = RawThreshold(0.2, store.k());

  // core: distance kernels, bounds, statistics.
  const RankingId a = 0, b = 1;
  const RawDistance d_merge = FootruleDistance(store.sorted(a),
                                               store.sorted(b));
  EXPECT_EQ(d_merge, FootruleDistanceNaive(store.view(a), store.view(b)));
  EXPECT_GE(KendallTauTimesTwo(store.view(a), store.view(b), 1), 0u);
  EXPECT_GT(MinDistanceForOverlap(store.k(), 0), 0u);
  Statistics stats;

  // metric: linear scan (the oracle) + KNN.
  const std::vector<RankingId> truth =
      LinearScanQuery(store, queries[0], theta_raw, &stats);
  const std::vector<Neighbor> knn = LinearScanKnn(store, queries[0], 3);
  EXPECT_EQ(knn.size(), 3u);

  // cluster: both partitioners cover the whole store.
  const Partitioning bk =
      BkPartition(store, RawThreshold(0.3, store.k()), BkPartitionMode::kStrict);
  EXPECT_EQ(bk.total_members(), store.size());
  EXPECT_STREQ(BkPartitionModeName(BkPartitionMode::kStrict), "strict");
  Rng rng(5);
  const Partitioning cn =
      CnPartition(store, RawThreshold(0.3, store.k()), &rng);
  EXPECT_EQ(cn.total_members(), store.size());

  // harness + adapt + invidx + metric trees + coarse: every registered
  // engine answers the oracle query identically.
  EngineSuite suite(&store);
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kBkStrict), "bk_strict");
  for (const Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kFVDrop, Algorithm::kListMerge,
        Algorithm::kLaatPrune, Algorithm::kBlockedPrune,
        Algorithm::kBlockedPruneDrop, Algorithm::kCoarse,
        Algorithm::kCoarseDrop, Algorithm::kAdaptSearch, Algorithm::kBkTree,
        Algorithm::kMTree, Algorithm::kLinearScan}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    auto engine = suite.MakeEngine(algorithm);
    EXPECT_EQ(engine->Query(queries[0], theta_raw), truth);
  }
  auto oracle = suite.MakeOracleEngine(queries, theta_raw);
  EXPECT_EQ(oracle->Query(0, queries[0], theta_raw, nullptr, nullptr), truth);
  const RunResult run =
      RunQueries(oracle.get(), queries, theta_raw);
  EXPECT_EQ(run.num_queries, queries.size());
  EXPECT_FALSE(FormatDouble(run.wall_ms).empty());

  // coarse: batch processing agrees with the per-query engines.
  BatchQueryProcessor batch(&store, &suite.coarse_index());
  const auto batch_results = batch.QueryBatch(queries, theta_raw);
  ASSERT_EQ(batch_results.size(), queries.size());
  EXPECT_EQ(batch_results[0], truth);

  // serve: the frontend answers the oracle query (fingerprint.cc +
  // frontend.cc link coverage).
  QueryFrontend frontend(&store);
  const ServeRequest serve_requests[] = {
      ServeRequest::Range(Algorithm::kFV, queries[0], theta_raw)};
  EXPECT_EQ(frontend.ServeBatch(serve_requests)[0].ids, truth);
  EXPECT_NE(MakeCandidateCacheKey(queries[0]).hash, 0u);

  // costmodel (+ data/dataset_stats): measured inputs drive a prediction.
  const CostModelInputs inputs =
      MeasureCostModelInputs(store, /*profile_samples=*/32);
  EXPECT_EQ(inputs.n, store.size());
  const CoarseCostModel model(inputs);
  EXPECT_GT(model.Predict(0.1, 0.3).total_ns(), 0.0);
  EXPECT_EQ(MakeGrid(0.1, 0.5, 0.1).size(), 5u);

  // io: store round-trip through the serialization format.
  const std::string path = ::testing::TempDir() + "/smoke_store.topk";
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  Result<RankingStore> loaded = LoadRankingStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), store.size());
  EXPECT_EQ(loaded.value().k(), store.k());
}

}  // namespace
}  // namespace topk
