// Overlap bounds of Section 6.1: L(k, w), the minimum-overlap inversion,
// and the sufficient-list count — validated against brute force.

#include "core/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/footrule.h"
#include "core/ranking.h"
#include "core/rng.h"

namespace topk {
namespace {

TEST(MinDistanceForOverlapTest, ClosedFormValues) {
  // L(k, w) = (k-w)(k-w+1).
  EXPECT_EQ(MinDistanceForOverlap(5, 5), 0u);
  EXPECT_EQ(MinDistanceForOverlap(5, 4), 2u);
  EXPECT_EQ(MinDistanceForOverlap(5, 0), 30u);
  EXPECT_EQ(MinDistanceForOverlap(10, 0), MaxDistance(10));
  EXPECT_EQ(MinDistanceForOverlap(10, 7), 12u);
}

TEST(MinDistanceForOverlapTest, WitnessAchievesTheBound) {
  // Construct the optimal configuration: w shared items at the top of both
  // rankings, disjoint tails. Its distance must equal L(k, w) exactly.
  for (uint32_t k : {3u, 5u, 10u}) {
    for (uint32_t w = 0; w <= k; ++w) {
      RankingStore store(k);
      std::vector<ItemId> a;
      std::vector<ItemId> b;
      for (uint32_t i = 0; i < w; ++i) {
        a.push_back(i);
        b.push_back(i);
      }
      for (uint32_t i = w; i < k; ++i) {
        a.push_back(100 + i);
        b.push_back(200 + i);
      }
      store.AddUnchecked(a);
      store.AddUnchecked(b);
      EXPECT_EQ(FootruleDistance(store.sorted(0), store.sorted(1)),
                MinDistanceForOverlap(k, w))
          << "k=" << k << " w=" << w;
    }
  }
}

TEST(MinDistanceForOverlapTest, NoConfigurationBeatsTheBound) {
  // Random rankings with a forced overlap can never undercut L(k, w).
  Rng rng(4);
  const uint32_t k = 6;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto w = static_cast<uint32_t>(rng.Below(k + 1));
    // Build two rankings sharing exactly items 0..w-1 at random positions.
    std::vector<ItemId> a;
    std::vector<ItemId> b;
    for (uint32_t i = 0; i < w; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (uint32_t i = w; i < k; ++i) {
      a.push_back(100 + i);
      b.push_back(200 + i);
    }
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    RankingStore store(k);
    store.AddUnchecked(a);
    store.AddUnchecked(b);
    EXPECT_GE(FootruleDistance(store.sorted(0), store.sorted(1)),
              MinDistanceForOverlap(k, w));
  }
}

TEST(MinOverlapTest, ExactInversion) {
  // MinOverlap must be the least w with L(k, w) <= theta.
  for (uint32_t k : {2u, 5u, 10u, 20u}) {
    for (RawDistance theta = 0; theta <= MaxDistance(k); ++theta) {
      const uint32_t w = MinOverlap(k, theta);
      if (theta < MaxDistance(k)) {
        EXPECT_GE(w, 1u) << "valid thresholds imply overlap >= 1";
      }
      EXPECT_LE(MinDistanceForOverlap(k, w), theta);
      if (w > 0) {
        EXPECT_GT(MinDistanceForOverlap(k, w - 1), theta)
            << "k=" << k << " theta=" << theta << " w not minimal";
      }
    }
  }
}

TEST(MinOverlapTest, DominatesPaperClosedForm) {
  // The paper's floor formula may undershoot (be more conservative) but
  // must never exceed the exact inversion — otherwise it would be wrong.
  for (uint32_t k : {2u, 5u, 10u, 20u, 25u}) {
    for (RawDistance theta = 0; theta <= MaxDistance(k); ++theta) {
      EXPECT_LE(MinOverlapPaperFormula(k, theta), MinOverlap(k, theta))
          << "k=" << k << " theta=" << theta;
    }
  }
}

TEST(MinOverlapTest, PaperExampleValues) {
  // theta = 0 forces full overlap; theta = dmax - 1 still needs one item.
  EXPECT_EQ(MinOverlap(10, 0), 10u);
  EXPECT_EQ(MinOverlap(10, MaxDistance(10) - 1), 1u);
  // k=2, theta=2: L(2,1) = 2 <= 2 => w = 1.
  EXPECT_EQ(MinOverlap(2, 2), 1u);
}

TEST(SufficientListsTest, PigeonholeCount) {
  // k - w + 1 lists, clamped to [1, k].
  EXPECT_EQ(SufficientLists(10, 0), 1u);            // w = 10
  EXPECT_EQ(SufficientLists(10, MaxDistance(10)), 10u);  // w = 0 => all
  for (uint32_t k : {5u, 10u}) {
    for (RawDistance theta = 0; theta < MaxDistance(k); ++theta) {
      const uint32_t lists = SufficientLists(k, theta);
      EXPECT_GE(lists, 1u);
      EXPECT_LE(lists, k);
      EXPECT_EQ(lists, k - MinOverlap(k, theta) + 1);
    }
  }
}

TEST(AbsentSuffixCostTest, TriangularNumbers) {
  // sum_{p=t..k-1} (k-p) = m(m+1)/2 with m = k - t.
  EXPECT_EQ(AbsentSuffixCost(10, 0), 55u);
  EXPECT_EQ(AbsentSuffixCost(10, 9), 1u);
  EXPECT_EQ(AbsentSuffixCost(10, 10), 0u);
  for (uint32_t k : {1u, 5u, 10u, 25u}) {
    for (uint32_t t = 0; t <= k; ++t) {
      RawDistance direct = 0;
      for (uint32_t p = t; p < k; ++p) direct += k - p;
      EXPECT_EQ(AbsentSuffixCost(k, t), direct);
    }
  }
}

TEST(AbsentSuffixCostTest, TwoHalvesMakeMaxDistance) {
  for (uint32_t k : {2u, 10u, 25u}) {
    EXPECT_EQ(2 * AbsentSuffixCost(k, 0), MaxDistance(k));
  }
}

}  // namespace
}  // namespace topk
