// The strongest exactness sweep in the suite: a complete enumeration of
// every size-3 ranking over a 6-item universe (120 rankings), queried by
// every 7th of them at every raw threshold, across every algorithm. Any
// missing or spurious result anywhere in the stack fails here.

#include <gtest/gtest.h>

#include "coarse/batch_query.h"
#include "harness/query_algorithms.h"
#include "test_util.h"

namespace topk {
namespace {

RankingStore MakeCompleteUniverse() {
  const uint32_t universe = 6;
  RankingStore store(3);
  for (ItemId a = 0; a < universe; ++a) {
    for (ItemId b = 0; b < universe; ++b) {
      for (ItemId c = 0; c < universe; ++c) {
        if (a != b && b != c && a != c) {
          store.AddUnchecked(std::vector<ItemId>{a, b, c});
        }
      }
    }
  }
  return store;
}

class ExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveTest, EveryThresholdEveryQuery) {
  const auto algorithm = static_cast<Algorithm>(GetParam());
  const RankingStore store = MakeCompleteUniverse();
  ASSERT_EQ(store.size(), 120u);
  EngineSuite suite(&store);

  for (RankingId qid = 0; qid < store.size(); qid += 7) {
    const PreparedQuery query(store.Materialize(qid));
    // dmax = 12 for k = 3; stay below dmax (inverted-index methods cannot
    // see disjoint rankings, per the paper's standing assumption).
    for (RawDistance theta = 0; theta < MaxDistance(3); ++theta) {
      std::vector<PreparedQuery> one;
      one.emplace_back(store.Materialize(qid));
      auto engine = algorithm == Algorithm::kMinimalFV
                        ? suite.MakeOracleEngine(one, theta)
                        : suite.MakeEngine(algorithm);
      EXPECT_EQ(engine->Query(0, query, theta, nullptr, nullptr),
                testutil::BruteForce(store, query, theta))
          << AlgorithmName(algorithm) << " qid=" << qid
          << " theta=" << theta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ExhaustiveTest,
                         ::testing::Range(0, 13));

TEST(ExhaustiveBatchTest, BatchProcessorOverCompleteUniverse) {
  const RankingStore store = MakeCompleteUniverse();
  CoarseOptions options;
  options.theta_c = 0.25;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  BatchQueryProcessor batch(&store, &index,
                            BatchQueryOptions{/*batch_theta_c=*/0.3, 1});

  std::vector<PreparedQuery> queries;
  for (RankingId qid = 0; qid < store.size(); qid += 5) {
    queries.emplace_back(store.Materialize(qid));
  }
  for (RawDistance theta = 0; theta < MaxDistance(3); theta += 3) {
    const auto results = batch.QueryBatch(queries, theta);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(results[i],
                testutil::BruteForce(store, queries[i], theta))
          << "theta=" << theta;
    }
  }
}

}  // namespace
}  // namespace topk
