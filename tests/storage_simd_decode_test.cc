// Bit-identity suite for the SIMD group-varint decode kernels
// (storage/varint_simd.h): whatever backend the build dispatches to,
// DecodeValuesSimd / DeltaPrefixSumInPlace / the dispatching block
// decoders must produce exactly the scalar reference's output — same
// values, same uint32 wraparound, same truncation failures — across
// group-boundary lengths, block-boundary lengths, and fuzzed streams
// (failing seeds printed). On AVX2 builds the suite additionally pins
// the >= 2x decode speedup the storage bench reports.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"
#include "storage/group_varint.h"
#include "storage/posting_codec.h"
#include "storage/varint_simd.h"

namespace topk {
namespace {

using storage::DecodeValuesSimd;
using storage::DeltaPrefixSumInPlace;
using storage::GroupVarintDecodeGroup;
using storage::GroupVarintEncode;
using storage::kBlockEntries;

/// Scalar reference for DecodeValuesSimd: the chained group loop.
const uint8_t* DecodeValuesScalar(const uint8_t* in, const uint8_t* end,
                                  size_t count, uint32_t* out) {
  size_t produced = 0;
  while (produced < count) {
    const size_t m = count - produced < 4 ? count - produced : 4;
    in = GroupVarintDecodeGroup(in, end, m, out + produced);
    if (in == nullptr) return nullptr;
    produced += m;
  }
  return in;
}

/// Values mixing all four byte widths, deterministic per seed.
std::vector<uint32_t> MixedWidthValues(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> values(count);
  for (auto& value : values) {
    switch (rng.Below(4)) {
      case 0: value = static_cast<uint32_t>(rng.Below(1u << 8)); break;
      case 1: value = static_cast<uint32_t>(rng.Below(1u << 16)); break;
      case 2: value = static_cast<uint32_t>(rng.Below(1u << 24)); break;
      default: value = static_cast<uint32_t>(rng.Next()); break;
    }
  }
  return values;
}

TEST(SimdValueDecode, MatchesScalarAtEveryLength) {
  // 0..67 covers partial groups in every position; the fast path engages
  // from length 4 given enough stream slack.
  for (size_t count = 0; count <= 67; ++count) {
    const std::vector<uint32_t> values = MixedWidthValues(count, 1000 + count);
    std::vector<uint8_t> bytes;
    GroupVarintEncode(values.data(), count, &bytes);
    std::vector<uint32_t> simd(count + 1, 0xDEADBEEF);
    std::vector<uint32_t> scalar(count + 1, 0xDEADBEEF);
    const uint8_t* end = bytes.data() + bytes.size();
    const uint8_t* simd_cursor =
        DecodeValuesSimd(bytes.data(), end, count, simd.data());
    const uint8_t* scalar_cursor =
        DecodeValuesScalar(bytes.data(), end, count, scalar.data());
    ASSERT_EQ(simd_cursor, scalar_cursor) << "count=" << count;
    ASSERT_EQ(simd, scalar) << "count=" << count;
  }
}

TEST(SimdValueDecode, TruncationFailsIdenticallyToScalar) {
  const size_t count = 61;
  const std::vector<uint32_t> values = MixedWidthValues(count, 77);
  std::vector<uint8_t> bytes;
  GroupVarintEncode(values.data(), count, &bytes);
  std::vector<uint32_t> out(count);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    const uint8_t* end = bytes.data() + keep;
    EXPECT_EQ(DecodeValuesSimd(bytes.data(), end, count, out.data()),
              nullptr)
        << "keep=" << keep;
    EXPECT_EQ(DecodeValuesScalar(bytes.data(), end, count, out.data()),
              nullptr)
        << "keep=" << keep;
  }
  // The full stream decodes from either path.
  const uint8_t* end = bytes.data() + bytes.size();
  EXPECT_NE(DecodeValuesSimd(bytes.data(), end, count, out.data()), nullptr);
}

TEST(SimdPrefixSum, MatchesScalarIncludingWraparound) {
  for (size_t count = 0; count <= 70; ++count) {
    Rng rng(3000 + count);
    std::vector<uint32_t> deltas(count);
    for (auto& delta : deltas) {
      // Large deltas force uint32 wraparound inside the running sum.
      delta = rng.Below(3) == 0 ? static_cast<uint32_t>(rng.Next())
                                : static_cast<uint32_t>(rng.Below(1000));
    }
    const uint32_t base = static_cast<uint32_t>(rng.Next());
    std::vector<uint32_t> vectorized = deltas;
    DeltaPrefixSumInPlace(vectorized.data(), count, base);
    std::vector<uint32_t> reference = deltas;
    uint32_t previous = base;
    for (size_t i = 0; i < count; ++i) {
      previous += reference[i];
      reference[i] = previous;
    }
    ASSERT_EQ(vectorized, reference) << "count=" << count;
  }
}

TEST(SimdBlockDecode, IdBlocksMatchScalarAtEveryCount) {
  Rng rng(42);
  for (uint32_t count = 1; count <= kBlockEntries; ++count) {
    std::vector<RankingId> ids(count);
    RankingId id = static_cast<RankingId>(rng.Below(1000));
    for (auto& out : ids) {
      out = id;
      id += 1 + static_cast<RankingId>(rng.Below(1u << (rng.Below(4) * 8)));
    }
    std::vector<uint8_t> bytes;
    storage::EncodeIdBlock(ids, &bytes);
    std::vector<RankingId> dispatched(count);
    std::vector<RankingId> scalar(count);
    const uint8_t* end = bytes.data() + bytes.size();
    ASSERT_TRUE(storage::DecodeIdBlock(ids.front(), count, bytes.data(), end,
                                       dispatched.data()));
    ASSERT_TRUE(storage::DecodeIdBlockScalar(ids.front(), count, bytes.data(),
                                             end, scalar.data()));
    ASSERT_EQ(dispatched, scalar) << "count=" << count;
    ASSERT_EQ(dispatched, ids) << "count=" << count;
  }
}

TEST(SimdBlockDecode, AugmentedBlocksMatchScalarAtEveryCount) {
  Rng rng(43);
  for (uint32_t count = 1; count <= kBlockEntries; ++count) {
    std::vector<AugmentedEntry> entries(count);
    RankingId id = static_cast<RankingId>(rng.Below(1000));
    for (auto& entry : entries) {
      entry = AugmentedEntry{id, static_cast<Rank>(rng.Below(50))};
      id += 1 + static_cast<RankingId>(rng.Below(100000));
    }
    std::vector<uint8_t> bytes;
    storage::EncodeAugmentedBlock(entries, &bytes);
    std::vector<AugmentedEntry> dispatched(count);
    std::vector<AugmentedEntry> scalar(count);
    const uint8_t* end = bytes.data() + bytes.size();
    ASSERT_TRUE(storage::DecodeAugmentedBlock(
        entries.front().id, count, bytes.data(), end, dispatched.data()));
    ASSERT_TRUE(storage::DecodeAugmentedBlockScalar(
        entries.front().id, count, bytes.data(), end, scalar.data()));
    ASSERT_EQ(0, std::memcmp(dispatched.data(), scalar.data(),
                             count * sizeof(AugmentedEntry)))
        << "count=" << count;
  }
}

TEST(SimdValueDecodeFuzz, MatchesScalarOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    const size_t count = rng.Below(600);
    const std::vector<uint32_t> values = MixedWidthValues(count, seed * 31);
    std::vector<uint8_t> bytes;
    GroupVarintEncode(values.data(), count, &bytes);
    std::vector<uint32_t> simd(count);
    std::vector<uint32_t> scalar(count);
    const uint8_t* end = bytes.data() + bytes.size();
    ASSERT_EQ(DecodeValuesSimd(bytes.data(), end, count, simd.data()),
              DecodeValuesScalar(bytes.data(), end, count, scalar.data()));
    ASSERT_EQ(simd, scalar);
    ASSERT_EQ(simd, values);
    // A random truncation point must fail identically on both paths.
    if (!bytes.empty()) {
      const size_t keep = rng.Below(bytes.size());
      const uint8_t* cut = bytes.data() + keep;
      ASSERT_EQ(
          DecodeValuesSimd(bytes.data(), cut, count, simd.data()) == nullptr,
          DecodeValuesScalar(bytes.data(), cut, count, scalar.data()) ==
              nullptr)
          << "keep=" << keep;
    }
  }
}

#if defined(TOPK_SIMD_AVX2) && defined(NDEBUG)
TEST(SimdBlockDecode, Avx2DecodeAtLeastTwiceScalar) {
  // The acceptance bar of the AVX2 CI leg, pinned where the hardware is
  // known: shuffle-table decode + vectorized prefix sum must beat the
  // scalar group loop by >= 2x on full id blocks. Best-of timing keeps
  // shared-runner noise out of the ratio.
  constexpr size_t kBlocks = 2048;
  Rng rng(7);
  std::vector<std::vector<uint8_t>> payloads(kBlocks);
  std::vector<RankingId> first_ids(kBlocks);
  std::vector<RankingId> ids(kBlockEntries);
  for (size_t b = 0; b < kBlocks; ++b) {
    RankingId id = static_cast<RankingId>(rng.Below(1u << 20));
    for (auto& out : ids) {
      out = id;
      id += 1 + static_cast<RankingId>(rng.Below(300));
    }
    first_ids[b] = ids.front();
    storage::EncodeIdBlock(ids, &payloads[b]);
  }
  std::vector<RankingId> out(kBlockEntries);
  uint64_t checksum_simd = 0;
  uint64_t checksum_scalar = 0;
  auto time_best_of = [&](auto&& decode_all) {
    uint64_t best = UINT64_MAX;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      decode_all();
      const uint64_t nanos = watch.ElapsedNanos();
      if (nanos < best) best = nanos;
    }
    return best;
  };
  const uint64_t simd_nanos = time_best_of([&] {
    checksum_simd = 0;
    for (size_t b = 0; b < kBlocks; ++b) {
      storage::DecodeIdBlock(first_ids[b], kBlockEntries, payloads[b].data(),
                             payloads[b].data() + payloads[b].size(),
                             out.data());
      checksum_simd += out[kBlockEntries - 1];
    }
  });
  const uint64_t scalar_nanos = time_best_of([&] {
    checksum_scalar = 0;
    for (size_t b = 0; b < kBlocks; ++b) {
      storage::DecodeIdBlockScalar(first_ids[b], kBlockEntries,
                                   payloads[b].data(),
                                   payloads[b].data() + payloads[b].size(),
                                   out.data());
      checksum_scalar += out[kBlockEntries - 1];
    }
  });
  ASSERT_EQ(checksum_simd, checksum_scalar);
  const double speedup = static_cast<double>(scalar_nanos) /
                         static_cast<double>(simd_nanos);
  EXPECT_GE(speedup, 2.0) << "SIMD decode speedup regressed: " << speedup
                          << "x (scalar " << scalar_nanos << "ns, simd "
                          << simd_nanos << "ns)";
}
#endif  // TOPK_SIMD_AVX2 && NDEBUG

}  // namespace
}  // namespace topk
