// Fault-tolerant serving: deadlines and cancellation through every
// front door (QueryFrontend batches, LiveFrontend, ParallelRunner,
// MutableStore), admission-control shedding under real overload, the
// merge circuit breaker with MergeNow recovery, and ResilientReader's
// degraded-read fallback. Stopped or shed queries must return Status
// errors with empty results — never hang, never cache, never publish a
// partial answer — while every OK answer stays bit-exact. The
// failpoint-driven cases need -DTOPK_FAILPOINTS=ON and skip elsewhere;
// the suite also runs under the TSan CI leg.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadline.h"
#include "core/failpoint.h"
#include "core/ranking.h"
#include "core/types.h"
#include "harness/parallel_runner.h"
#include "harness/sharded_store.h"
#include "invidx/plain_inverted_index.h"
#include "mutate/mutable_store.h"
#include "serve/frontend.h"
#include "serve/live_frontend.h"
#include "serve/resilient_reader.h"
#include "storage/compressed_arena.h"
#include "storage/snapshot_manager.h"
#include "test_util.h"

namespace topk {
namespace {

/// Arms one failpoint for the enclosing scope and disarms on exit, so a
/// failing test cannot leak an armed site into its successors.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, FailpointSpec spec)
      : site_(std::move(site)) {
    FailpointRegistry::Instance().Arm(site_, spec);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

/// Spin until `ready()` or a generous wall-clock cap (never hangs CI).
template <typename F>
bool SpinUntil(const F& ready) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!ready()) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::yield();
  }
  return true;
}

class ServeRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = testutil::MakeClusteredStore(/*k=*/10, /*n=*/2000, /*seed=*/81);
    queries_ = testutil::MakeQueries(store_, 8, /*seed=*/82);
    theta_ = RawThreshold(0.3, store_.k());
  }

  RankingStore store_{10};
  std::vector<PreparedQuery> queries_;
  RawDistance theta_ = 0;
};

TEST_F(ServeRobustnessTest, ExpiredDeadlineFailsFastOthersServeExactly) {
  QueryFrontendOptions options;
  options.num_threads = 2;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kFV, query, theta_));
  }
  requests[2].deadline = Deadline::AfterMillis(-1.0);
  requests[5].deadline = Deadline::AfterMillis(-1.0);

  Statistics stats;
  const auto responses = frontend.ServeBatch(requests, &stats);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i == 2 || i == 5) {
      EXPECT_EQ(responses[i].status.code(), Status::Code::kDeadlineExceeded);
      EXPECT_TRUE(responses[i].ids.empty());
    } else {
      ASSERT_TRUE(responses[i].status.ok());
      EXPECT_EQ(responses[i].ids,
                testutil::BruteForce(store_, *requests[i].query, theta_));
    }
  }
  EXPECT_EQ(stats.Get(Ticker::kDeadlineExceeded), 2u);
}

TEST_F(ServeRobustnessTest, StoppedRequestsAreNeverCached) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  QueryFrontend frontend(&store_, options);

  ServeRequest expired =
      ServeRequest::Range(Algorithm::kFV, queries_[0], theta_);
  expired.deadline = Deadline::AfterMillis(-1.0);
  const auto failed = frontend.ServeBatch({&expired, 1});
  ASSERT_EQ(failed[0].status.code(), Status::Code::kDeadlineExceeded);

  // The identical query re-issued with time to spare computes fresh (no
  // poisoned entry from the stopped run) and only THEN becomes cached.
  const ServeRequest fine =
      ServeRequest::Range(Algorithm::kFV, queries_[0], theta_);
  const auto first = frontend.ServeBatch({&fine, 1});
  ASSERT_TRUE(first[0].status.ok());
  EXPECT_FALSE(first[0].result_cache_hit);
  EXPECT_EQ(first[0].ids,
            testutil::BruteForce(store_, queries_[0], theta_));
  const auto second = frontend.ServeBatch({&fine, 1});
  ASSERT_TRUE(second[0].status.ok());
  EXPECT_TRUE(second[0].result_cache_hit);
  EXPECT_EQ(second[0].ids, first[0].ids);
}

TEST_F(ServeRobustnessTest, CancelledTokenAbortsItsRequests) {
  QueryFrontendOptions options;
  options.num_threads = 2;
  options.result_cache_capacity = 0;  // force real execution
  options.candidate_cache_capacity = 0;
  QueryFrontend frontend(&store_, options);

  CancelToken cancel;
  cancel.Cancel();  // tripped before the batch even starts
  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    ServeRequest request = ServeRequest::Range(Algorithm::kFV, query, theta_);
    request.cancel = &cancel;
    requests.push_back(request);
  }
  Statistics stats;
  const auto responses = frontend.ServeBatch(requests, &stats);
  for (const ServeResponse& response : responses) {
    EXPECT_EQ(response.status.code(), Status::Code::kAborted);
    EXPECT_TRUE(response.ids.empty());
  }
  EXPECT_EQ(stats.Get(Ticker::kDeadlineExceeded), requests.size());
}

TEST_F(ServeRobustnessTest, OverloadShedsWholeBatchesWithRetryAfter) {
  QueryFrontendOptions options;
  options.num_threads = 2;
  options.max_inflight_batches = 1;
  options.shed_retry_after_ms = 7.5;
  options.result_cache_capacity = 0;  // keep the long batch long
  options.candidate_cache_capacity = 0;
  QueryFrontend frontend(&store_, options);
  frontend.Prepare(Algorithm::kFV);

  // A big cancellable batch occupies the admission slot...
  CancelToken cancel;
  std::vector<ServeRequest> slow;
  for (int round = 0; round < 500; ++round) {
    for (const PreparedQuery& query : queries_) {
      ServeRequest request = ServeRequest::Range(Algorithm::kFV, query,
                                                 theta_);
      request.cancel = &cancel;
      slow.push_back(request);
    }
  }
  std::vector<ServeResponse> slow_responses;
  std::thread runner([&] { slow_responses = frontend.ServeBatch(slow); });
  ASSERT_TRUE(SpinUntil([&] { return frontend.inflight_batches() >= 1; }));

  // ...so a batch arriving now is shed whole: Unavailable + the
  // configured back-off hint, no engine ever runs for it.
  std::vector<ServeRequest> probe;
  for (const PreparedQuery& query : queries_) {
    probe.push_back(ServeRequest::Range(Algorithm::kFV, query, theta_));
  }
  Statistics stats;
  const auto shed = frontend.ServeBatch(probe, &stats);
  cancel.Cancel();
  runner.join();

  ASSERT_EQ(shed.size(), probe.size());
  for (const ServeResponse& response : shed) {
    EXPECT_EQ(response.status.code(), Status::Code::kUnavailable);
    EXPECT_EQ(response.retry_after_ms, 7.5);
    EXPECT_TRUE(response.ids.empty());
  }
  EXPECT_EQ(stats.Get(Ticker::kLoadShed), probe.size());
  EXPECT_EQ(frontend.inflight_batches(), 0u);

  // The admitted batch finished every request: exactly (before the
  // cancel landed) or as a clean Abort (after) — never a hang, never a
  // truncated answer presented as OK.
  ASSERT_EQ(slow_responses.size(), slow.size());
  size_t aborted = 0;
  for (size_t i = 0; i < slow_responses.size(); ++i) {
    const ServeResponse& response = slow_responses[i];
    if (response.status.ok()) {
      EXPECT_EQ(response.ids,
                testutil::BruteForce(store_, *slow[i].query, theta_));
    } else {
      EXPECT_EQ(response.status.code(), Status::Code::kAborted);
      EXPECT_TRUE(response.ids.empty());
      ++aborted;
    }
  }
  EXPECT_GT(aborted, 0u);
}

// ---------------------------------------------------------------------------

TEST(LiveFrontendRobustnessTest, DeadlineAndCancelStatusPaths) {
  const RankingStore initial = testutil::MakeClusteredStore(10, 1500, 91);
  MutableStore store(initial);
  LiveFrontend frontend(&store);
  const auto queries = testutil::MakeQueries(initial, 4, 92);
  const RawDistance theta = RawThreshold(0.3, initial.k());

  // Pre-expired deadline: DeadlineExceeded, empty, and nothing cached.
  QueryControl expired(Deadline::AfterMillis(-1.0));
  std::vector<RankingId> out{99};
  Statistics stats;
  const Status status =
      frontend.ServeRange(queries[0], theta, &expired, &out, &stats);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(stats.Get(Ticker::kDeadlineExceeded), 1u);
  EXPECT_EQ(frontend.result_cache_size(), 0u);

  // Cancelled token: Aborted, empty, not cached.
  CancelToken token;
  token.Cancel();
  QueryControl cancelled(Deadline::Infinite(), &token);
  const Status aborted =
      frontend.ServeRange(queries[0], theta, &cancelled, &out);
  EXPECT_EQ(aborted.code(), Status::Code::kAborted);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(frontend.result_cache_size(), 0u);

  // Unconstrained Status path answers exactly and matches the legacy
  // vector front door; the k-NN overload follows the same contract.
  ASSERT_TRUE(frontend.ServeRange(queries[0], theta, nullptr, &out).ok());
  EXPECT_EQ(out, testutil::BruteForce(initial, queries[0], theta));
  EXPECT_EQ(frontend.ServeRange(queries[0], theta), out);

  std::vector<Neighbor> neighbors;
  QueryControl knn_expired(Deadline::AfterMillis(-1.0));
  EXPECT_EQ(frontend.ServeKnn(queries[1], 5, &knn_expired, &neighbors).code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(neighbors.empty());
  ASSERT_TRUE(frontend.ServeKnn(queries[1], 5, nullptr, &neighbors).ok());
  EXPECT_EQ(neighbors, frontend.ServeKnn(queries[1], 5));
}

TEST(LiveFrontendRobustnessTest, ConcurrentOverloadShedsNotHangs) {
  const RankingStore initial = testutil::MakeClusteredStore(10, 4000, 101);
  MutableStore store(initial);
  LiveFrontendOptions options;
  options.max_inflight = 1;
  options.result_cache_capacity = 0;  // every call does real work
  options.shed_retry_after_ms = 3.25;
  LiveFrontend frontend(&store, options);
  const auto queries = testutil::MakeQueries(initial, 16, 102);
  const RawDistance dmax = MaxDistance(initial.k());

  std::vector<std::vector<RankingId>> expected;
  expected.reserve(queries.size());
  for (const PreparedQuery& query : queries) {
    expected.push_back(testutil::BruteForce(initial, query, dmax));
  }

  // Four threads hammer one admission slot until the run has observed
  // both outcomes (someone served, someone shed); the round cap keeps a
  // broken build from spinning forever. Every OK answer must be exact,
  // every shed must be the documented Unavailable-and-empty shape.
  constexpr size_t kThreads = 4;
  constexpr size_t kMaxRounds = 20'000;
  std::atomic<size_t> served{0};
  std::atomic<size_t> shed{0};
  std::atomic<int> wrong{0};
  std::atomic<size_t> ready{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      std::vector<RankingId> ids;
      for (size_t round = 0; round < kMaxRounds; ++round) {
        if (served.load() > 0 && shed.load() > 0) break;
        const size_t qi = (t * 31 + round) % queries.size();
        const Status status =
            frontend.ServeRange(queries[qi], dmax, nullptr, &ids);
        if (status.ok()) {
          if (ids != expected[qi]) wrong.fetch_add(1);
          served.fetch_add(1);
        } else if (status.code() == Status::Code::kUnavailable) {
          if (!ids.empty()) wrong.fetch_add(1);
          shed.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(shed.load(), 0u);
  EXPECT_EQ(frontend.inflight(), 0u);
}

TEST(LiveFrontendRobustnessTest, CacheHitBeatsSheddingDuringOverload) {
  const RankingStore initial = testutil::MakeClusteredStore(10, 20000, 111);
  MutableStore store(initial);
  LiveFrontendOptions options;
  options.max_inflight = 1;
  LiveFrontend frontend(&store, options);
  const auto queries = testutil::MakeQueries(initial, 4, 112);
  const RawDistance theta = RawThreshold(0.3, initial.k());

  // Prime the cache while the store is idle.
  std::vector<RankingId> cached;
  ASSERT_TRUE(frontend.ServeRange(queries[0], theta, nullptr, &cached).ok());

  // A worker keeps the admission slot busy with a run of k-NN scans (j
  // varies per round, so every one is a cache miss — real work) while
  // the main thread probes. Both sides treat Unavailable as the benign
  // mutual contention it is and back off; no fatal asserts run while
  // the worker is joinable — failures are recorded and checked after
  // the join.
  std::atomic<bool> stop{false};
  std::atomic<bool> slow_done{false};
  std::atomic<int> slow_failures{0};
  std::thread slow([&] {
    size_t scans = 0;
    for (size_t round = 0; scans < 60 && round < 100'000 && !stop.load();
         ++round) {
      std::vector<Neighbor> out;
      const Status status =
          frontend.ServeKnn(queries[1], 100 + round, nullptr, &out);
      if (status.ok()) {
        ++scans;
      } else if (status.code() == Status::Code::kUnavailable) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        slow_failures.fetch_add(1);
      }
    }
    slow_done.store(true);
  });

  bool observed_shed = false;
  bool hit_failed = false;
  for (size_t iter = 0; !slow_done.load() && !observed_shed; ++iter) {
    // A cached answer serves even with the admission slot occupied (the
    // lookup is cheaper than building the rejection)...
    std::vector<RankingId> hit_out;
    const Status hit = frontend.ServeRange(queries[0], theta, nullptr,
                                           &hit_out);
    if (!hit.ok() || hit_out != cached) hit_failed = true;
    // ...while an uncached arrival lands on the admission gauge and is
    // shed whenever the probe overlaps a scan. The probe's j is unique
    // per iteration: a repeated key would be served from the result
    // cache after its first OK round and could never observe the shed.
    std::vector<Neighbor> miss_out;
    const Status miss =
        frontend.ServeKnn(queries[2], 5000 + iter, nullptr, &miss_out);
    if (miss.code() == Status::Code::kUnavailable) {
      EXPECT_TRUE(miss_out.empty());
      observed_shed = true;
    } else {
      EXPECT_TRUE(miss.ok()) << miss.ToString();
      // Leave a gap so the worker can claim the slot for its next scan.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  stop.store(true);
  slow.join();
  EXPECT_EQ(slow_failures.load(), 0);
  EXPECT_FALSE(hit_failed) << "a primed cache key failed during overload";
  EXPECT_TRUE(observed_shed) << "never caught the store mid-query";
}

// ---------------------------------------------------------------------------

TEST(MergeCircuitBreakerTest, OpensAfterRetriesAndMergeNowRecovers) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "needs -DTOPK_FAILPOINTS=ON";
  }
  const uint32_t kK = 10;
  const RankingStore initial = testutil::MakeClusteredStore(kK, 300, 121);
  MutableStoreOptions options;
  options.merge_max_attempts = 2;
  options.merge_backoff_initial_ms = 0.01;
  options.merge_backoff_max_ms = 0.02;
  MutableStore store(initial, options);

  // Grow a delta so there is something to merge, mirrored into the
  // brute-force oracle.
  RankingStore combined(kK);
  for (RankingId id = 0; id < initial.size(); ++id) {
    combined.AddUnchecked(initial.view(id).items());
  }
  const RankingStore extra = testutil::MakeClusteredStore(kK, 40, 122);
  for (RankingId id = 0; id < extra.size(); ++id) {
    store.Insert(extra.view(id));
    combined.AddUnchecked(extra.view(id).items());
  }

  const auto queries = testutil::MakeQueries(combined, 4, 123);
  const RawDistance theta = RawThreshold(0.3, kK);

  {
    // Every rebuild attempt fails: the cycle retries, gives up, and the
    // circuit opens — while serving stays exact off sealed + delta.
    ScopedFailpoint fault("mutate.merge.rebuild", FailpointSpec{});
    EXPECT_FALSE(store.MergeNow());
    EXPECT_TRUE(store.merge_circuit_open());
    EXPECT_FALSE(store.last_merge_status().ok());
    EXPECT_GE(store.merge_retries(), 1u);
    for (const PreparedQuery& query : queries) {
      EXPECT_EQ(store.RangeQuery(query, theta),
                testutil::BruteForce(combined, query, theta));
    }
  }

  // Fault cleared: MergeNow is the operator lever — it closes the
  // circuit, merges, and exactness holds over the compacted store.
  EXPECT_TRUE(store.MergeNow());
  EXPECT_FALSE(store.merge_circuit_open());
  EXPECT_TRUE(store.last_merge_status().ok());
  EXPECT_EQ(store.delta_size(), 0u);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(store.RangeQuery(query, theta),
              testutil::BruteForce(combined, query, theta));
  }
}

// ---------------------------------------------------------------------------

class ResilientReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = testutil::MakeClusteredStore(/*k=*/10, /*n=*/800, /*seed=*/131);
    queries_ = testutil::MakeQueries(store_, 6, /*seed=*/132);
    dir_ = testing::TempDir() + "/resilient_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void WriteSnapshot() {
    storage::SnapshotManager manager(dir_);
    const PlainInvertedIndex plain = PlainInvertedIndex::Build(store_);
    const auto arena =
        storage::CompressedPostingArena<RankingId>::FromArena(plain.arena());
    ASSERT_TRUE(manager.WriteSnapshot(store_, arena).ok());
  }

  std::vector<RawDistance> Thetas() const {
    const RawDistance dmax = MaxDistance(store_.k());
    return {dmax / 4, dmax / 2, dmax};
  }

  RankingStore store_{10};
  std::vector<PreparedQuery> queries_;
  std::string dir_;
};

TEST_F(ResilientReaderTest, RamOnlyWhenNoSnapshotExists) {
  ResilientReader reader(&store_, {dir_, 3});
  EXPECT_EQ(reader.OpenSnapshotTier().code(), Status::Code::kNotFound);
  EXPECT_FALSE(reader.snapshot_open());
  EXPECT_FALSE(reader.degraded());
  for (const RawDistance theta : Thetas()) {
    for (const PreparedQuery& query : queries_) {
      EXPECT_EQ(reader.RangeQuery(query, theta),
                testutil::BruteForce(store_, query, theta));
    }
  }
}

TEST_F(ResilientReaderTest, SnapshotTierAnswersBitExactly) {
  WriteSnapshot();
  ResilientReader reader(&store_, {dir_, 3});
  ASSERT_TRUE(reader.OpenSnapshotTier().ok());
  EXPECT_TRUE(reader.snapshot_open());
  EXPECT_EQ(reader.snapshot_generation(), 1u);
  Statistics stats;
  for (const RawDistance theta : Thetas()) {
    for (const PreparedQuery& query : queries_) {
      EXPECT_EQ(reader.RangeQuery(query, theta, &stats),
                testutil::BruteForce(store_, query, theta))
          << "theta=" << theta;
    }
  }
  EXPECT_EQ(stats.Get(Ticker::kDegradedReads), 0u);
  EXPECT_FALSE(reader.degraded());
}

TEST_F(ResilientReaderTest, SnapshotFaultDegradesStickilyThenRestores) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "needs -DTOPK_FAILPOINTS=ON";
  }
  WriteSnapshot();
  ResilientReader reader(&store_, {dir_, 3});
  ASSERT_TRUE(reader.OpenSnapshotTier().ok());
  const RawDistance theta = RawThreshold(0.3, store_.k());

  {
    FailpointSpec one_shot;
    one_shot.max_fires = 1;
    ScopedFailpoint fault("serve.snapshot.query", one_shot);
    // The faulting read degrades to RAM and STILL answers exactly — the
    // user sees a correct result, the operator sees the ticker.
    Statistics stats;
    EXPECT_EQ(reader.RangeQuery(queries_[0], theta, &stats),
              testutil::BruteForce(store_, queries_[0], theta));
    EXPECT_EQ(stats.Get(Ticker::kDegradedReads), 1u);
    EXPECT_TRUE(reader.degraded());
    EXPECT_FALSE(reader.snapshot_open());
  }

  // Sticky: the failpoint no longer fires, but the reader does not
  // re-trust the failed tier on its own.
  Statistics stats;
  EXPECT_EQ(reader.RangeQuery(queries_[1], theta, &stats),
            testutil::BruteForce(store_, queries_[1], theta));
  EXPECT_EQ(stats.Get(Ticker::kDegradedReads), 1u);
  EXPECT_TRUE(reader.degraded());

  // The operator lever re-runs recovery and re-arms the fast tier.
  ASSERT_TRUE(reader.RestoreSnapshotTier().ok());
  EXPECT_FALSE(reader.degraded());
  EXPECT_TRUE(reader.snapshot_open());
  Statistics healthy;
  for (const RawDistance t : Thetas()) {
    EXPECT_EQ(reader.RangeQuery(queries_[2], t, &healthy),
              testutil::BruteForce(store_, queries_[2], t));
  }
  EXPECT_EQ(healthy.Get(Ticker::kDegradedReads), 0u);
}

TEST_F(ResilientReaderTest, ExpiredDeadlineStopsEitherTier) {
  WriteSnapshot();
  ResilientReader reader(&store_, {dir_, 3});
  ASSERT_TRUE(reader.OpenSnapshotTier().ok());
  QueryControl expired(Deadline::AfterMillis(-1.0));
  std::vector<RankingId> out{7};
  Statistics stats;
  const Status status = reader.RangeQuery(
      queries_[0], RawThreshold(0.3, store_.k()), &expired, &out, &stats);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(stats.Get(Ticker::kDeadlineExceeded), 1u);
}

// ---------------------------------------------------------------------------

TEST(ParallelRunnerDeadlineTest, StatusOverloadMatchesLegacyWhenUnbounded) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1200, 141);
  const ShardedStore sharded(store, 3, ShardingStrategy::kHashById);
  ParallelRunner runner(&sharded);
  const auto queries = testutil::MakeQueries(store, 5, 142);
  const RawDistance theta = RawThreshold(0.3, store.k());
  for (const PreparedQuery& query : queries) {
    const auto expected = runner.RangeQuery(Algorithm::kFV, query, theta);
    QueryControl control;  // infinite deadline
    std::vector<RankingId> out;
    ASSERT_TRUE(runner
                    .RangeQuery(Algorithm::kFV, 0, query, theta, &control,
                                &out)
                    .ok());
    EXPECT_EQ(out, expected);
    EXPECT_EQ(expected, testutil::BruteForce(store, query, theta));
  }
}

TEST(ParallelRunnerDeadlineTest, ExpiredDeadlineAndCancelStopTheFanOut) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1200, 151);
  const ShardedStore sharded(store, 3, ShardingStrategy::kHashById);
  ParallelRunner runner(&sharded);
  const auto queries = testutil::MakeQueries(store, 2, 152);
  const RawDistance theta = RawThreshold(0.3, store.k());

  QueryControl expired(Deadline::AfterMillis(-1.0));
  std::vector<RankingId> out{3};
  Statistics stats;
  EXPECT_EQ(runner
                .RangeQuery(Algorithm::kFV, 0, queries[0], theta, &expired,
                            &out, &stats)
                .code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(stats.Get(Ticker::kDeadlineExceeded), 1u);

  CancelToken token;
  token.Cancel();
  QueryControl cancelled(Deadline::Infinite(), &token);
  EXPECT_EQ(runner
                .RangeQuery(Algorithm::kFV, 0, queries[1], theta, &cancelled,
                            &out)
                .code(),
            Status::Code::kAborted);
  EXPECT_TRUE(out.empty());

  // The runner is not poisoned by a stopped query.
  EXPECT_EQ(runner.RangeQuery(Algorithm::kFV, queries[0], theta),
            testutil::BruteForce(store, queries[0], theta));
}

}  // namespace
}  // namespace topk
