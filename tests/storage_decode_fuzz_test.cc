// Decoder-hardening fuzz: corrupt and truncated compressed-posting
// payloads must fail *cleanly* — a Status at Adopt time when the
// metadata is inconsistent, `false` from the bool-returning decode
// paths when the payload bytes are bad — and must never read or write
// outside the sections handed to Adopt (the ASan CI leg runs this
// suite; write-side discipline is additionally pinned here with canary
// entries after every decode buffer). The fixture arena deliberately
// mixes the inline tier with block lists at and around the
// kBlockEntries boundary (127/128/129), since the boundary block is
// where an off-by-one in the byte-range walk would live.
//
// Only the bool-returning APIs (DecodeListInto, Adopt) may ever see
// corrupt payload bytes: the span-returning decodes document malformed
// payloads as a checksum-verification bug and TOPK_DCHECK on them,
// which would abort the Debug/ASan builds this suite targets.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/posting_entry.h"
#include "core/rng.h"
#include "core/types.h"
#include "kernel/posting_arena.h"
#include "storage/compressed_arena.h"
#include "storage/posting_codec.h"

namespace topk {
namespace {

using storage::BlockRankRange;

using storage::CompressedBlockMeta;
using storage::CompressedListMeta;
using storage::CompressedPostingArena;
using storage::kBlockEntries;

constexpr RankingId kCanaryId = 0xCAFEF00Du;
constexpr size_t kCanaryEntries = 4;

template <typename Entry>
CompressedPostingArena<Entry> Compress(
    const std::vector<std::vector<Entry>>& lists) {
  PostingArenaBuilder<Entry> builder(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    for (size_t j = 0; j < lists[i].size(); ++j) builder.Count(i);
  }
  builder.FinishCounting();
  for (size_t i = 0; i < lists.size(); ++i) {
    for (const Entry& entry : lists[i]) builder.Append(i, entry);
  }
  return CompressedPostingArena<Entry>::FromArena(
      std::move(builder).Build());
}

RankingId MakeEntry(RankingId id, uint32_t rank, RankingId*) {
  (void)rank;
  return id;
}
AugmentedEntry MakeEntry(RankingId id, uint32_t rank, AugmentedEntry*) {
  return AugmentedEntry{id, rank};
}

/// Lengths straddling the inline tier (<= 8) and the block boundary:
/// 0, 1, 8, 9, 127, 128, 129, 300 — every tier transition the format
/// has. Ids stride with mixed widths so every group-varint byte class
/// appears in the payload.
template <typename Entry>
std::vector<std::vector<Entry>> FixtureLists(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Entry>> lists;
  for (const size_t length : {0u, 1u, 8u, 9u, 127u, 128u, 129u, 300u}) {
    std::vector<Entry> list;
    RankingId id = static_cast<RankingId>(rng.Below(1000));
    for (size_t i = 0; i < length; ++i) {
      list.push_back(MakeEntry(
          id, static_cast<uint32_t>(rng.Below(64)),
          static_cast<Entry*>(nullptr)));
      id += 1 + static_cast<RankingId>(rng.Below(1u << (rng.Below(4) * 8)));
    }
    lists.push_back(std::move(list));
  }
  return lists;
}

template <typename Entry>
Result<CompressedPostingArena<Entry>> AdoptClone(
    const CompressedPostingArena<Entry>& source,
    const std::vector<CompressedListMeta>& lists,
    const std::vector<CompressedBlockMeta>& blocks,
    const std::vector<Entry>& inline_entries,
    const std::vector<uint8_t>& bytes,
    const std::vector<BlockRankRange>& ranks) {
  (void)source;
  return CompressedPostingArena<Entry>::Adopt(lists, blocks, inline_entries,
                                              bytes, ranks);
}

/// Decodes every list of `arena` through the bool-returning path into a
/// canary-guarded buffer: whatever the payload contains, the decoder
/// must stay within the list's `length` entries. Returns one bool per
/// list.
template <typename Entry>
std::vector<bool> DecodeAllWithCanaries(
    const CompressedPostingArena<Entry>& arena) {
  std::vector<bool> ok(arena.num_lists());
  for (size_t i = 0; i < arena.num_lists(); ++i) {
    const size_t length = arena.list_length(i);
    std::vector<Entry> out(length + kCanaryEntries);
    for (size_t c = 0; c < kCanaryEntries; ++c) {
      out[length + c] = MakeEntry(kCanaryId, 0x3F,
                                  static_cast<Entry*>(nullptr));
    }
    ok[i] = arena.DecodeListInto(i, out.data());
    for (size_t c = 0; c < kCanaryEntries; ++c) {
      const Entry canary =
          MakeEntry(kCanaryId, 0x3F, static_cast<Entry*>(nullptr));
      EXPECT_EQ(0, std::memcmp(&out[length + c], &canary, sizeof(Entry)))
          << "decode wrote past list length, list " << i;
    }
  }
  return ok;
}

template <typename Entry>
class DecodeFuzzTest : public ::testing::Test {};
using EntryTypes = ::testing::Types<RankingId, AugmentedEntry>;
TYPED_TEST_SUITE(DecodeFuzzTest, EntryTypes);

TYPED_TEST(DecodeFuzzTest, TruncatedByteStreamFailsCleanly) {
  const auto lists = FixtureLists<TypeParam>(11);
  const auto arena = Compress(lists);
  const std::vector<CompressedListMeta> metas(arena.list_metas().begin(),
                                              arena.list_metas().end());
  const std::vector<CompressedBlockMeta> blocks(arena.block_metas().begin(),
                                                arena.block_metas().end());
  const std::vector<TypeParam> inline_entries(arena.inline_entries().begin(),
                                              arena.inline_entries().end());
  const std::vector<BlockRankRange> ranks(arena.rank_ranges().begin(),
                                          arena.rank_ranges().end());
  const auto full_bytes = arena.byte_stream();
  // Every truncation length: either Adopt rejects (an interior block's
  // byte offset now points past the stream) or adoption succeeds and
  // each list decode returns a clean bool; lists whose payload survived
  // the cut decode to exactly the source entries.
  for (size_t keep = 0; keep <= full_bytes.size(); ++keep) {
    const std::vector<uint8_t> bytes(full_bytes.begin(),
                                     full_bytes.begin() + keep);
    auto adopted = AdoptClone(arena, metas, blocks, inline_entries, bytes,
                              ranks);
    if (!adopted.ok()) continue;
    const std::vector<bool> ok = DecodeAllWithCanaries(adopted.value());
    for (size_t i = 0; i < lists.size(); ++i) {
      if (keep == full_bytes.size()) {
        EXPECT_TRUE(ok[i]) << "full stream, list " << i;
      }
      if (!ok[i]) continue;
      std::vector<TypeParam> out(lists[i].size());
      ASSERT_TRUE(adopted.value().DecodeListInto(i, out.data()));
      if (!lists[i].empty() &&
          (keep == full_bytes.size() ||
           lists[i].size() <=
               CompressedPostingArena<TypeParam>::kInlineMaxEntries)) {
        EXPECT_EQ(0, std::memcmp(out.data(), lists[i].data(),
                                 lists[i].size() * sizeof(TypeParam)))
            << "keep=" << keep << " list=" << i;
      }
    }
  }
}

TYPED_TEST(DecodeFuzzTest, CorruptPayloadBytesFailCleanlyOrDecodeInBounds) {
  const auto lists = FixtureLists<TypeParam>(13);
  const auto arena = Compress(lists);
  const std::vector<CompressedListMeta> metas(arena.list_metas().begin(),
                                              arena.list_metas().end());
  const std::vector<CompressedBlockMeta> blocks(arena.block_metas().begin(),
                                                arena.block_metas().end());
  const std::vector<TypeParam> inline_entries(arena.inline_entries().begin(),
                                              arena.inline_entries().end());
  const std::vector<BlockRankRange> ranks(arena.rank_ranges().begin(),
                                          arena.rank_ranges().end());
  const auto full_bytes = arena.byte_stream();
  ASSERT_FALSE(full_bytes.empty());
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("payload fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    std::vector<uint8_t> bytes(full_bytes.begin(), full_bytes.end());
    const size_t flips = 1 + rng.Below(8);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.Below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.Below(255));
    }
    auto adopted = AdoptClone(arena, metas, blocks, inline_entries, bytes,
                              ranks);
    // Payload corruption is invisible to the metadata bounds checks.
    ASSERT_TRUE(adopted.ok());
    // Every decode must come back as a bool — true or false, corrupt
    // values are fine — without ever leaving the list's entry budget
    // (the canaries assert the write side; ASan asserts the read side).
    DecodeAllWithCanaries(adopted.value());
  }
}

TYPED_TEST(DecodeFuzzTest, CorruptMetadataRejectedOrDecodesInBounds) {
  const auto lists = FixtureLists<TypeParam>(17);
  const auto arena = Compress(lists);
  const std::vector<CompressedListMeta> base_metas(arena.list_metas().begin(),
                                                   arena.list_metas().end());
  const std::vector<CompressedBlockMeta> base_blocks(
      arena.block_metas().begin(), arena.block_metas().end());
  const std::vector<TypeParam> inline_entries(arena.inline_entries().begin(),
                                              arena.inline_entries().end());
  const std::vector<BlockRankRange> base_ranks(arena.rank_ranges().begin(),
                                               arena.rank_ranges().end());
  const std::vector<uint8_t> bytes(arena.byte_stream().begin(),
                                   arena.byte_stream().end());
  size_t rejected = 0;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    SCOPED_TRACE("metadata fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    std::vector<CompressedListMeta> metas = base_metas;
    std::vector<CompressedBlockMeta> blocks = base_blocks;
    std::vector<BlockRankRange> ranks = base_ranks;
    // Smash one random 32-bit word in one of the metadata sections.
    switch (rng.Below(3)) {
      case 0: {
        auto* words = reinterpret_cast<uint32_t*>(metas.data());
        words[rng.Below(metas.size() * 2)] =
            static_cast<uint32_t>(rng.Next());
        break;
      }
      case 1: {
        auto* words = reinterpret_cast<uint32_t*>(blocks.data());
        words[rng.Below(blocks.size() * 4)] =
            static_cast<uint32_t>(rng.Next());
        break;
      }
      default: {
        if (ranks.empty()) continue;
        auto* words = reinterpret_cast<uint32_t*>(ranks.data());
        words[rng.Below(ranks.size())] = static_cast<uint32_t>(rng.Next());
        break;
      }
    }
    auto adopted =
        AdoptClone(arena, metas, blocks, inline_entries, bytes, ranks);
    if (!adopted.ok()) {
      ++rejected;
      continue;
    }
    DecodeAllWithCanaries(adopted.value());
  }
  // The bounds validation must be doing real work: random 32-bit smashes
  // of cursors/counts/offsets overwhelmingly produce inconsistencies.
  EXPECT_GT(rejected, 0u);
}

TYPED_TEST(DecodeFuzzTest, TruncatedMetadataSectionsRejected) {
  const auto lists = FixtureLists<TypeParam>(19);
  const auto arena = Compress(lists);
  const std::vector<CompressedListMeta> metas(arena.list_metas().begin(),
                                              arena.list_metas().end());
  const std::vector<CompressedBlockMeta> blocks(arena.block_metas().begin(),
                                                arena.block_metas().end());
  const std::vector<TypeParam> inline_entries(arena.inline_entries().begin(),
                                              arena.inline_entries().end());
  const std::vector<BlockRankRange> ranks(arena.rank_ranges().begin(),
                                          arena.rank_ranges().end());
  const std::vector<uint8_t> bytes(arena.byte_stream().begin(),
                                   arena.byte_stream().end());
  ASSERT_FALSE(blocks.empty());
  // Cut the block-meta section so a long list dangles off its end.
  {
    const std::vector<CompressedBlockMeta> cut(blocks.begin(),
                                               blocks.end() - 1);
    const std::vector<BlockRankRange> cut_ranks(
        ranks.begin(), ranks.empty() ? ranks.end() : ranks.end() - 1);
    auto adopted =
        AdoptClone(arena, metas, cut, inline_entries, bytes, cut_ranks);
    EXPECT_FALSE(adopted.ok());
  }
  // Cut the inline section under the inline lists.
  if (!inline_entries.empty()) {
    const std::vector<TypeParam> cut(inline_entries.begin(),
                                     inline_entries.end() - 1);
    auto adopted = AdoptClone(arena, metas, blocks, cut, bytes, ranks);
    EXPECT_FALSE(adopted.ok());
  }
  // A rank-range section whose size disagrees with the block count.
  if (!ranks.empty()) {
    const std::vector<BlockRankRange> cut(ranks.begin(), ranks.end() - 1);
    auto adopted =
        AdoptClone(arena, metas, blocks, inline_entries, bytes, cut);
    EXPECT_FALSE(adopted.ok());
  }
}

// Corrupt *rank ranges* with intact payload: every partial decode stays
// memory-safe and still returns a pure subsequence of the true list —
// wrong ranges can only change WHICH blocks decode, never their bytes.
// (Payload is sound here, so the span-returning window decode cannot
// hit its malformed-payload DCHECK.)
TEST(RankWindowFuzz, CorruptRankRangesStillDecodeSubsequences) {
  const auto lists = FixtureLists<AugmentedEntry>(23);
  const auto arena = Compress(lists);
  const std::vector<CompressedListMeta> metas(arena.list_metas().begin(),
                                              arena.list_metas().end());
  const std::vector<CompressedBlockMeta> blocks(arena.block_metas().begin(),
                                                arena.block_metas().end());
  const std::vector<AugmentedEntry> inline_entries(
      arena.inline_entries().begin(), arena.inline_entries().end());
  const std::vector<uint8_t> bytes(arena.byte_stream().begin(),
                                   arena.byte_stream().end());
  const std::vector<BlockRankRange> base_ranks(arena.rank_ranges().begin(),
                                               arena.rank_ranges().end());
  ASSERT_FALSE(base_ranks.empty());
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("rank-range fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    std::vector<BlockRankRange> ranks = base_ranks;
    const size_t flips = 1 + rng.Below(4);
    for (size_t f = 0; f < flips; ++f) {
      BlockRankRange& range = ranks[rng.Below(ranks.size())];
      const uint16_t a = static_cast<uint16_t>(rng.Below(0x10000));
      const uint16_t b = static_cast<uint16_t>(rng.Below(0x10000));
      range.min_rank = a < b ? a : b;  // keep min <= max: Adopt-valid
      range.max_rank = a < b ? b : a;
    }
    auto adopted = CompressedPostingArena<AugmentedEntry>::Adopt(
        metas, blocks, inline_entries, bytes, ranks);
    ASSERT_TRUE(adopted.ok());
    std::vector<AugmentedEntry> scratch;
    for (size_t i = 0; i < lists.size(); ++i) {
      const uint32_t lo = static_cast<uint32_t>(rng.Below(64));
      const uint32_t hi = lo + static_cast<uint32_t>(rng.Below(64));
      BlockSkipStats skip;
      const auto decoded = adopted.value().DecodeBlocksInRankWindow(
          i, lo, hi, &scratch, &skip);
      ASSERT_LE(decoded.size(), lists[i].size());
      // Subsequence check: decoded entries appear in the source list in
      // order (whole blocks, so matching resumes monotonically).
      size_t cursor = 0;
      for (const AugmentedEntry& entry : decoded) {
        while (cursor < lists[i].size() &&
               (lists[i][cursor].id != entry.id ||
                lists[i][cursor].rank != entry.rank)) {
          ++cursor;
        }
        ASSERT_LT(cursor, lists[i].size())
            << "decoded an entry the source list never held, list " << i;
        ++cursor;
      }
    }
  }
}

}  // namespace
}  // namespace topk
