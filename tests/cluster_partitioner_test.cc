// Partitioners: full coverage, radius guarantees per mode, and the
// medoid-count behaviour the cost model relies on.

#include <gtest/gtest.h>

#include <set>

#include "cluster/bk_partitioner.h"
#include "cluster/cn_partitioner.h"
#include "core/footrule.h"
#include "test_util.h"

namespace topk {
namespace {

void CheckCoverage(const Partitioning& partitioning, size_t n) {
  std::set<RankingId> seen;
  for (const Partition& p : partitioning.partitions) {
    ASSERT_FALSE(p.members.empty());
    EXPECT_EQ(p.members.front(), p.medoid)
        << "medoid must lead its member list";
    for (RankingId id : p.members) {
      EXPECT_TRUE(seen.insert(id).second)
          << "ranking " << id << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), n) << "some rankings left unassigned";
}

void CheckRadiusIsUpperBound(const RankingStore& store,
                             const Partitioning& partitioning) {
  for (const Partition& p : partitioning.partitions) {
    for (RankingId id : p.members) {
      EXPECT_LE(FootruleDistance(store.sorted(p.medoid), store.sorted(id)),
                p.radius)
          << "recorded radius does not cover member " << id;
    }
  }
}

TEST(BkPartitionerStrictTest, CoverageAndRadiusWithinThetaC) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1500, 121);
  for (double theta_c : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    const RawDistance raw = RawThreshold(theta_c, 10);
    const Partitioning partitioning =
        BkPartition(store, raw, BkPartitionMode::kStrict);
    CheckCoverage(partitioning, store.size());
    CheckRadiusIsUpperBound(store, partitioning);
    for (const Partition& p : partitioning.partitions) {
      EXPECT_LE(p.radius, raw) << "strict mode must respect theta_C";
    }
  }
}

TEST(BkPartitionerSubtreeTest, CoverageAndRadiusBound) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1500, 122);
  for (double theta_c : {0.1, 0.3, 0.5}) {
    const RawDistance raw = RawThreshold(theta_c, 10);
    const Partitioning partitioning =
        BkPartition(store, raw, BkPartitionMode::kSubtree);
    CheckCoverage(partitioning, store.size());
    // Subtree mode's radius is a path-sum bound: it must still dominate
    // the true member distances even when those exceed theta_C.
    CheckRadiusIsUpperBound(store, partitioning);
  }
}

TEST(BkPartitionerSubtreeTest, CanExceedThetaCButStaysBounded) {
  // The documented deviation: subtree adoption can pull in members whose
  // true distance exceeds theta_C. Whether it happens depends on data;
  // what must always hold is radius >= true distance (checked above) and
  // radius <= depth * theta_C in the worst path.
  const RankingStore store = testutil::MakeClusteredStore(8, 2000, 123);
  const RawDistance raw = RawThreshold(0.2, 8);
  const Partitioning partitioning =
      BkPartition(store, raw, BkPartitionMode::kSubtree);
  CheckCoverage(partitioning, store.size());
}

TEST(CnPartitionerTest, CoverageAndStrictRadius) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1000, 124);
  Rng rng(5);
  for (double theta_c : {0.0, 0.2, 0.5}) {
    const RawDistance raw = RawThreshold(theta_c, 10);
    Rng local(rng.Next());
    const Partitioning partitioning = CnPartition(store, raw, &local);
    CheckCoverage(partitioning, store.size());
    CheckRadiusIsUpperBound(store, partitioning);
    for (const Partition& p : partitioning.partitions) {
      EXPECT_LE(p.radius, raw);
    }
  }
}

TEST(PartitionerTest, ThetaCZeroGroupsOnlyDuplicates) {
  RankingStore store(5);
  const ItemId a[] = {1, 2, 3, 4, 5};
  const ItemId b[] = {9, 8, 7, 6, 5};
  store.AddUnchecked(a);
  store.AddUnchecked(a);
  store.AddUnchecked(b);
  store.AddUnchecked(a);

  const Partitioning bk = BkPartition(store, 0, BkPartitionMode::kStrict);
  EXPECT_EQ(bk.partitions.size(), 2u);

  Rng rng(6);
  const Partitioning cn = CnPartition(store, 0, &rng);
  EXPECT_EQ(cn.partitions.size(), 2u);
}

TEST(PartitionerTest, ThetaCMaxYieldsOnePartition) {
  const RankingStore store = testutil::MakeClusteredStore(5, 200, 125);
  const Partitioning bk =
      BkPartition(store, MaxDistance(5), BkPartitionMode::kStrict);
  EXPECT_EQ(bk.partitions.size(), 1u);
  EXPECT_EQ(bk.partitions[0].members.size(), store.size());

  Rng rng(7);
  const Partitioning cn = CnPartition(store, MaxDistance(5), &rng);
  EXPECT_EQ(cn.partitions.size(), 1u);
}

TEST(PartitionerTest, LargerThetaCMeansFewerPartitions) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1500, 126);
  size_t previous = store.size() + 1;
  for (double theta_c : {0.0, 0.1, 0.2, 0.4, 0.6, 1.0}) {
    const Partitioning partitioning = BkPartition(
        store, RawThreshold(theta_c, 10), BkPartitionMode::kStrict);
    EXPECT_LE(partitioning.partitions.size(), previous)
        << "theta_c=" << theta_c;
    previous = partitioning.partitions.size();
  }
}

TEST(PartitionerTest, MaxRadiusAggregation) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 127);
  const Partitioning partitioning = BkPartition(
      store, RawThreshold(0.3, 10), BkPartitionMode::kStrict);
  RawDistance expected = 0;
  for (const Partition& p : partitioning.partitions) {
    expected = std::max(expected, p.radius);
  }
  EXPECT_EQ(partitioning.max_radius(), expected);
  EXPECT_EQ(partitioning.total_members(), store.size());
}

TEST(CnPartitionerTest, SeedsProduceDifferentButValidPartitionings) {
  const RankingStore store = testutil::MakeClusteredStore(10, 400, 128);
  const RawDistance raw = RawThreshold(0.3, 10);
  Rng rng_a(1);
  Rng rng_b(2);
  const Partitioning a = CnPartition(store, raw, &rng_a);
  const Partitioning b = CnPartition(store, raw, &rng_b);
  CheckCoverage(a, store.size());
  CheckCoverage(b, store.size());
  // Medoid counts land in the same ballpark (same radius, same data).
  const double ratio = static_cast<double>(a.partitions.size()) /
                       static_cast<double>(b.partitions.size());
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace topk
