// Integration: every algorithm in the suite returns the exact result set
// on the same workload; the runner and report plumbing work end to end.

#include <gtest/gtest.h>

#include <sstream>

#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "test_util.h"

namespace topk {
namespace {

class SuiteEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SuiteEquivalenceTest, AllAlgorithmsAgreeWithBruteForce) {
  const auto [algorithm_int, theta] = GetParam();
  const auto algorithm = static_cast<Algorithm>(algorithm_int);
  const uint32_t k = 10;
  const RankingStore store = testutil::MakeClusteredStore(k, 1500, 171);
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 15, 172);
  const RawDistance theta_raw = RawThreshold(theta, k);

  std::unique_ptr<QueryEngine> engine =
      algorithm == Algorithm::kMinimalFV
          ? suite.MakeOracleEngine(queries, theta_raw)
          : suite.MakeEngine(algorithm);
  ASSERT_NE(engine, nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(engine->Query(i, queries[i], theta_raw, nullptr, nullptr),
              testutil::BruteForce(store, queries[i], theta_raw))
        << AlgorithmName(algorithm) << " theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SuiteEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 13),
                       ::testing::Values(0.0, 0.2)));

TEST(RunnerTest, AggregatesAcrossQueries) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 173);
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 25, 174);
  auto engine = suite.MakeEngine(Algorithm::kFV);
  const RunResult result =
      RunQueries(engine.get(), queries, RawThreshold(0.2, 10));
  EXPECT_EQ(result.num_queries, 25u);
  EXPECT_GT(result.wall_ms, 0.0);
  EXPECT_EQ(result.stats.Get(Ticker::kResults), result.total_results);
  EXPECT_GT(result.stats.Get(Ticker::kDistanceCalls), 0u);
  EXPECT_GT(result.mean_ms_per_query(), 0.0);
}

TEST(RunnerTest, CoarsePhasesSumBelowWallTime) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 175);
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 25, 176);
  auto engine = suite.MakeEngine(Algorithm::kCoarse);
  const RunResult result =
      RunQueries(engine.get(), queries, RawThreshold(0.2, 10));
  EXPECT_GT(result.phases.filter_ms, 0.0);
  EXPECT_GT(result.phases.validate_ms, 0.0);
  EXPECT_LE(result.phases.total_ms(), result.wall_ms * 1.5);
}

TEST(EngineSuiteTest, BuildInfoReportsTimeAndMemory) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 177);
  EngineSuite suite(&store);
  for (Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kListMerge, Algorithm::kBlockedPrune,
        Algorithm::kAdaptSearch, Algorithm::kCoarse, Algorithm::kBkTree,
        Algorithm::kMTree}) {
    const IndexBuildInfo info = suite.BuildInfo(algorithm);
    EXPECT_GT(info.memory_bytes, 0u) << AlgorithmName(algorithm);
    EXPECT_GE(info.build_ms, 0.0) << AlgorithmName(algorithm);
  }
}

TEST(EngineSuiteTest, AllAlgorithmsHaveNames) {
  for (int i = 0; i < 13; ++i) {
    EXPECT_STRNE(AlgorithmName(static_cast<Algorithm>(i)), "unknown");
  }
}

TEST(ReportTest, TextTableAlignsColumns) {
  TextTable table({"algorithm", "ms"});
  table.AddRow({"F&V", "12.34"});
  table.AddRow({"Coarse+Drop", "1.20"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("algorithm"), std::string::npos);
  EXPECT_NE(out.find("Coarse+Drop"), std::string::npos);
  EXPECT_NE(out.find("12.34"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.23456, 4), "1.2346");
  EXPECT_EQ(FormatMegabytes(1024 * 1024), "1.00");
  EXPECT_EQ(FormatMegabytes(5 * 1024 * 1024 / 2), "2.50");
}

}  // namespace
}  // namespace topk
