// Differential suite for the compressed storage tier: every decoded
// list and every query answer must be bit-identical to the uncompressed
// path. Codec round-trips (crafted and fuzzed, both entry types), arena
// round-trips at block-boundary lengths, Adopt validation, and the
// engine differential (compressed vs plain F&V / F&V+Drop, tickers
// included) all live here; the mmap snapshot path has its own suite in
// storage_snapshot_test.cc.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/filter_validate.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/posting_arena.h"
#include "storage/compressed_arena.h"
#include "storage/compressed_index.h"
#include "storage/posting_codec.h"
#include "test_util.h"

namespace topk {
namespace {

using storage::CompressedBlockMeta;
using storage::CompressedInvertedIndex;
using storage::CompressedListMeta;
using storage::CompressedPostingArena;
using storage::kBlockEntries;

// ---------------------------------------------------------------------
// Codec round-trips.

std::vector<RankingId> DecodedIds(std::span<const RankingId> ids) {
  std::vector<uint8_t> bytes;
  storage::EncodeIdBlock(ids, &bytes);
  std::vector<RankingId> out(ids.size());
  EXPECT_TRUE(storage::DecodeIdBlock(ids.front(),
                                     static_cast<uint32_t>(ids.size()),
                                     bytes.data(), bytes.data() + bytes.size(),
                                     out.data()));
  return out;
}

TEST(PostingCodec, IdBlockRoundTrips) {
  const std::vector<std::vector<RankingId>> cases = {
      {0},
      {7},
      {0, 1},
      {0, 1, 2, 3, 4},                          // dense deltas, partial group
      {5, 300, 70000, 20000000, 4000000000u},   // 1..4 byte deltas
      {0, 4294967295u},                         // maximal single delta
  };
  for (const auto& ids : cases) {
    EXPECT_EQ(DecodedIds(ids), ids);
  }
  std::vector<RankingId> exact_group_multiple;  // count-1 divisible by 4
  for (uint32_t i = 0; i < 125; ++i) {
    exact_group_multiple.push_back(i * 17);
  }
  EXPECT_EQ(DecodedIds(exact_group_multiple), exact_group_multiple);
  std::vector<RankingId> full_block;  // the kBlockEntries contract edge
  for (uint32_t i = 0; i < kBlockEntries; ++i) {
    full_block.push_back(i * 17);
  }
  EXPECT_EQ(DecodedIds(full_block), full_block);
}

TEST(PostingCodec, AugmentedBlockRoundTrips) {
  std::vector<AugmentedEntry> entries;
  for (uint32_t i = 0; i < kBlockEntries; ++i) {
    entries.push_back(AugmentedEntry{i * 1000003u, i % 25});
  }
  for (const size_t count : {size_t{1}, size_t{2}, size_t{5},
                             size_t{kBlockEntries}}) {
    const std::span<const AugmentedEntry> block(entries.data(), count);
    std::vector<uint8_t> bytes;
    storage::EncodeAugmentedBlock(block, &bytes);
    std::vector<AugmentedEntry> out(count);
    ASSERT_TRUE(storage::DecodeAugmentedBlock(
        block.front().id, static_cast<uint32_t>(count), bytes.data(),
        bytes.data() + bytes.size(), out.data()));
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i].id, block[i].id);
      EXPECT_EQ(out[i].rank, block[i].rank);
    }
  }
}

TEST(PostingCodec, DecodeRejectsTruncatedPayload) {
  std::vector<RankingId> ids;
  for (uint32_t i = 0; i < 64; ++i) ids.push_back(i * 300000);
  std::vector<uint8_t> bytes;
  storage::EncodeIdBlock(ids, &bytes);
  std::vector<RankingId> out(ids.size());
  for (const size_t keep : {size_t{0}, size_t{1}, bytes.size() / 2,
                            bytes.size() - 1}) {
    EXPECT_FALSE(storage::DecodeIdBlock(
        ids.front(), static_cast<uint32_t>(ids.size()), bytes.data(),
        bytes.data() + keep, out.data()))
        << "keep=" << keep;
  }
}

// ---------------------------------------------------------------------
// Arena round-trips.

/// Builds a single-list CSR arena holding ids 0, stride, 2*stride, ...
PostingArena<RankingId> SingleListArena(size_t length, uint32_t stride) {
  PostingArenaBuilder<RankingId> builder(1);
  for (size_t i = 0; i < length; ++i) builder.Count(0);
  builder.FinishCounting();
  for (size_t i = 0; i < length; ++i) {
    builder.Append(0, static_cast<RankingId>(i * stride));
  }
  return std::move(builder).Build();
}

TEST(CompressedArena, RoundTripsBlockBoundaryLengths) {
  // Lengths congruent to -1 / 0 / +1 mod the block size, the inline
  // threshold edges, and an empty list.
  const size_t lengths[] = {0,
                            1,
                            CompressedPostingArena<RankingId>::
                                    kInlineMaxEntries -
                                1,
                            CompressedPostingArena<RankingId>::
                                kInlineMaxEntries,
                            CompressedPostingArena<RankingId>::
                                    kInlineMaxEntries +
                                1,
                            kBlockEntries - 1,
                            kBlockEntries,
                            kBlockEntries + 1,
                            3 * kBlockEntries - 1,
                            3 * kBlockEntries,
                            3 * kBlockEntries + 1};
  for (const size_t length : lengths) {
    const PostingArena<RankingId> arena = SingleListArena(length, 7);
    const auto compressed =
        CompressedPostingArena<RankingId>::FromArena(arena);
    ASSERT_EQ(compressed.num_lists(), 1u);
    EXPECT_EQ(compressed.num_entries(), length);
    EXPECT_EQ(compressed.list_length(0), length);
    std::vector<RankingId> scratch;
    const auto decoded = compressed.DecodeList(0, &scratch);
    ASSERT_EQ(decoded.size(), length) << "length=" << length;
    const auto original = arena.list(0);
    for (size_t i = 0; i < length; ++i) {
      ASSERT_EQ(decoded[i], original[i]) << "length=" << length << " i=" << i;
    }
  }
}

TEST(CompressedArena, ShortListsAreInlineAndZeroDecode) {
  const PostingArena<RankingId> arena = SingleListArena(
      CompressedPostingArena<RankingId>::kInlineMaxEntries, 3);
  const auto compressed = CompressedPostingArena<RankingId>::FromArena(arena);
  EXPECT_TRUE(compressed.is_inline(0));
  EXPECT_EQ(compressed.num_blocks(), 0u);
  std::vector<RankingId> scratch;
  const auto decoded = compressed.DecodeList(0, &scratch);
  // Inline lists are served in place: the scratch buffer is untouched.
  EXPECT_TRUE(scratch.empty());
  EXPECT_EQ(decoded.size(),
            CompressedPostingArena<RankingId>::kInlineMaxEntries);
}

TEST(CompressedArena, NonAscendingListsFallBackToInlineTier) {
  // Rank-major lists (the blocked index) are not delta-encodable; the
  // arena must store them verbatim rather than corrupt them.
  PostingArenaBuilder<RankingId> builder(1);
  const std::vector<RankingId> ids = {9, 4, 7, 1, 8, 2, 6, 0, 5, 3, 10, 12};
  for (size_t i = 0; i < ids.size(); ++i) builder.Count(0);
  builder.FinishCounting();
  for (const RankingId id : ids) builder.Append(0, id);
  const PostingArena<RankingId> arena = std::move(builder).Build();

  const auto compressed = CompressedPostingArena<RankingId>::FromArena(arena);
  EXPECT_TRUE(compressed.is_inline(0));
  std::vector<RankingId> scratch;
  const auto decoded = compressed.DecodeList(0, &scratch);
  ASSERT_EQ(decoded.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(decoded[i], ids[i]);
}

TEST(CompressedArena, OutOfRangeListDecodesEmpty) {
  const PostingArena<RankingId> arena = SingleListArena(10, 1);
  const auto compressed = CompressedPostingArena<RankingId>::FromArena(arena);
  std::vector<RankingId> scratch;
  EXPECT_TRUE(compressed.DecodeList(1, &scratch).empty());
  EXPECT_EQ(compressed.list_length(1), 0u);
}

TEST(CompressedArena, AdoptRejectsMalformedMetadata) {
  const PostingArena<RankingId> arena = SingleListArena(300, 5);
  const auto good = CompressedPostingArena<RankingId>::FromArena(arena);
  const auto lists = good.list_metas();
  const auto blocks = good.block_metas();
  const auto inline_entries = good.inline_entries();
  const auto bytes = good.byte_stream();

  // Unmodified sections adopt fine.
  ASSERT_TRUE(CompressedPostingArena<RankingId>::Adopt(
                  lists, blocks, inline_entries, bytes)
                  .ok());

  // Block count outside [1, kBlockEntries].
  std::vector<CompressedBlockMeta> bad_blocks(blocks.begin(), blocks.end());
  bad_blocks[0].count = kBlockEntries + 1;
  EXPECT_FALSE(CompressedPostingArena<RankingId>::Adopt(
                   lists, bad_blocks, inline_entries, bytes)
                   .ok());

  // Byte offset beyond the stream.
  bad_blocks.assign(blocks.begin(), blocks.end());
  bad_blocks[1].byte_offset = static_cast<uint32_t>(bytes.size() + 1);
  EXPECT_FALSE(CompressedPostingArena<RankingId>::Adopt(
                   lists, bad_blocks, inline_entries, bytes)
                   .ok());

  // List pointing past the block directory.
  std::vector<CompressedListMeta> bad_lists(lists.begin(), lists.end());
  bad_lists[0].head = static_cast<uint32_t>(blocks.size());
  EXPECT_FALSE(CompressedPostingArena<RankingId>::Adopt(
                   bad_lists, blocks, inline_entries, bytes)
                   .ok());

  // Inline list overrunning the inline section.
  bad_lists.assign(lists.begin(), lists.end());
  bad_lists[0].head = CompressedListMeta::kInlineBit | 1u;
  EXPECT_FALSE(CompressedPostingArena<RankingId>::Adopt(
                   bad_lists, blocks, inline_entries, bytes)
                   .ok());
}

// ---------------------------------------------------------------------
// Fuzzed arena round-trips (both entry types). Any failure prints the
// seed that reproduces it.

template <typename Entry>
PostingArena<Entry> RandomArena(Rng* rng, bool ascending);

template <>
PostingArena<RankingId> RandomArena<RankingId>(Rng* rng, bool ascending) {
  const size_t num_lists = 1 + rng->Below(40);
  std::vector<std::vector<RankingId>> lists(num_lists);
  for (auto& list : lists) {
    const size_t length = rng->Below(400);
    RankingId id = static_cast<RankingId>(rng->Below(1000));
    for (size_t i = 0; i < length; ++i) {
      list.push_back(ascending ? id : static_cast<RankingId>(rng->Next()));
      id += 1 + static_cast<RankingId>(rng->Below(1 + rng->Below(100000)));
    }
  }
  PostingArenaBuilder<RankingId> builder(num_lists);
  for (size_t i = 0; i < num_lists; ++i) {
    for (size_t j = 0; j < lists[i].size(); ++j) builder.Count(i);
  }
  builder.FinishCounting();
  for (size_t i = 0; i < num_lists; ++i) {
    for (const RankingId id : lists[i]) builder.Append(i, id);
  }
  return std::move(builder).Build();
}

template <>
PostingArena<AugmentedEntry> RandomArena<AugmentedEntry>(Rng* rng,
                                                         bool ascending) {
  const PostingArena<RankingId> ids = RandomArena<RankingId>(rng, ascending);
  PostingArenaBuilder<AugmentedEntry> builder(ids.num_lists());
  for (size_t i = 0; i < ids.num_lists(); ++i) {
    for (size_t j = 0; j < ids.list_length(i); ++j) builder.Count(i);
  }
  builder.FinishCounting();
  for (size_t i = 0; i < ids.num_lists(); ++i) {
    for (const RankingId id : ids.list(i)) {
      builder.Append(i,
                     AugmentedEntry{id, static_cast<Rank>(rng->Below(25))});
    }
  }
  return std::move(builder).Build();
}

template <typename Entry>
void FuzzRoundTrip(uint64_t seed) {
  SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
               " (re-run with this seed to reproduce)");
  Rng rng(seed);
  const bool ascending = rng.Below(4) != 0;  // mostly codec, some fallback
  const PostingArena<Entry> arena = RandomArena<Entry>(&rng, ascending);
  const auto compressed = CompressedPostingArena<Entry>::FromArena(arena);
  ASSERT_EQ(compressed.num_lists(), arena.num_lists());
  ASSERT_EQ(compressed.num_entries(), arena.num_entries());
  std::vector<Entry> scratch;
  for (size_t i = 0; i < arena.num_lists(); ++i) {
    const auto expected = arena.list(i);
    const auto decoded = compressed.DecodeList(i, &scratch);
    ASSERT_EQ(decoded.size(), expected.size()) << "list " << i;
    ASSERT_EQ(0, std::memcmp(decoded.data(), expected.data(),
                             expected.size() * sizeof(Entry)))
        << "list " << i;
  }
}

TEST(CompressedArenaFuzz, PlainEntriesRoundTrip) {
  for (uint64_t seed = 1; seed <= 25; ++seed) FuzzRoundTrip<RankingId>(seed);
}

TEST(CompressedArenaFuzz, AugmentedEntriesRoundTrip) {
  for (uint64_t seed = 100; seed <= 124; ++seed) {
    FuzzRoundTrip<AugmentedEntry>(seed);
  }
}

// ---------------------------------------------------------------------
// Engine differential: compressed vs plain F&V must be bit-identical —
// results AND tickers — for every drop mode and theta, k = 1 included.

void ExpectEngineEquivalence(const RankingStore& store, uint64_t seed) {
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const CompressedInvertedIndex compressed =
      CompressedInvertedIndex::FromPlain(plain);
  const auto queries = testutil::MakeQueries(store, 10, seed);
  const RawDistance dmax = MaxDistance(store.k());
  const RawDistance thetas[] = {0, dmax / 4, dmax / 2, dmax};
  for (const DropMode drop : {DropMode::kNone, DropMode::kConservative,
                              DropMode::kPositionRefined}) {
    FilterValidateEngine reference(&store, &plain, {drop});
    storage::CompressedFilterValidateEngine tier(&store, &compressed,
                                                 {drop});
    for (const auto& query : queries) {
      for (const RawDistance theta : thetas) {
        Statistics ref_stats;
        Statistics tier_stats;
        const auto expected = reference.Query(query, theta, &ref_stats);
        const auto actual = tier.Query(query, theta, &tier_stats);
        ASSERT_EQ(actual, expected)
            << "drop=" << static_cast<int>(drop) << " theta=" << theta;
        ASSERT_EQ(tier_stats, ref_stats)
            << "drop=" << static_cast<int>(drop) << " theta=" << theta;
      }
    }
  }
}

TEST(CompressedEngine, MatchesPlainOnClusteredStore) {
  ExpectEngineEquivalence(testutil::MakeClusteredStore(10, 600, 7), 77);
}

TEST(CompressedEngine, MatchesPlainOnUniformStore) {
  // Small domain: long posting lists, deep into the block tier.
  ExpectEngineEquivalence(testutil::MakeUniformStore(8, 500, 40, 11), 78);
}

TEST(CompressedEngine, MatchesPlainAtKEqualsOne) {
  ExpectEngineEquivalence(testutil::MakeUniformStore(1, 200, 12, 13), 79);
}

TEST(CompressedEngine, MatchesPlainAtExactBlockBoundaryListLengths) {
  // Every ranking contains item 0, so its posting list length equals n;
  // n = block size +/- 1 and exactly the block size.
  for (const size_t n : {size_t{kBlockEntries - 1}, size_t{kBlockEntries},
                         size_t{kBlockEntries + 1}}) {
    RankingStore store(4);
    for (size_t i = 0; i < n; ++i) {
      const auto base = static_cast<ItemId>(3 * i);
      store.AddUnchecked(
          std::vector<ItemId>{0, base + 1, base + 2, base + 3});
    }
    ExpectEngineEquivalence(store, 80 + n);
  }
}

TEST(CompressedEngine, AgreesWithBruteForceAtModerateTheta) {
  const RankingStore store = testutil::MakeClusteredStore(10, 400, 21);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const CompressedInvertedIndex compressed =
      CompressedInvertedIndex::FromPlain(plain);
  storage::CompressedFilterValidateEngine tier(&store, &compressed, {});
  const RawDistance theta = MaxDistance(store.k()) / 3;
  for (const auto& query : testutil::MakeQueries(store, 8, 22)) {
    EXPECT_EQ(tier.Query(query, theta),
              testutil::BruteForce(store, query, theta));
  }
}

// ---------------------------------------------------------------------
// Id-range sweeps: the compressed engine's block-skip partial decode vs
// the plain engine's exact CSR clip vs the id-filtered full query. All
// three must return identical results (tickers legitimately differ —
// whole-block granularity vs exact clipping — so only results compare).

std::vector<RankingId> FilterToRange(const std::vector<RankingId>& ids,
                                     RankingId lo, RankingId hi) {
  std::vector<RankingId> kept;
  for (const RankingId id : ids) {
    if (id >= lo && id <= hi) kept.push_back(id);
  }
  return kept;
}

TEST(CompressedEngineIdRange, MatchesPlainAndFilteredFullQuery) {
  const RankingStore store = testutil::MakeClusteredStore(10, 700, 33);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const CompressedInvertedIndex compressed =
      CompressedInvertedIndex::FromPlain(plain);
  const RawDistance dmax = MaxDistance(store.k());
  const auto n = static_cast<RankingId>(store.size());
  const std::pair<RankingId, RankingId> ranges[] = {
      {0, n - 1},           // whole store
      {0, n / 3},           // prefix
      {n / 3, 2 * n / 3},   // interior window
      {n - 1, n - 1},       // single id
      {n / 2, n / 4},       // lo > hi: empty by contract
      {n / 2, UINT32_MAX},  // open-ended high bound
  };
  for (const DropMode drop : {DropMode::kNone, DropMode::kConservative,
                              DropMode::kPositionRefined}) {
    FilterValidateEngine reference(&store, &plain, {drop});
    storage::CompressedFilterValidateEngine tier(&store, &compressed,
                                                 {drop});
    for (const auto& query : testutil::MakeQueries(store, 6, 34)) {
      for (const RawDistance theta : {dmax / 4, dmax / 2}) {
        const auto full = reference.Query(query, theta);
        for (const auto& [lo, hi] : ranges) {
          const auto expected = FilterToRange(full, lo, hi);
          ASSERT_EQ(reference.QueryIdRange(query, theta, lo, hi), expected)
              << "plain, drop=" << static_cast<int>(drop)
              << " theta=" << theta << " range=[" << lo << "," << hi << "]";
          ASSERT_EQ(tier.QueryIdRange(query, theta, lo, hi), expected)
              << "compressed, drop=" << static_cast<int>(drop)
              << " theta=" << theta << " range=[" << lo << "," << hi << "]";
        }
      }
    }
  }
}

TEST(CompressedEngineIdRangeFuzz, MatchesFilteredFullQuery) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    const RankingStore store = testutil::MakeUniformStore(
        2 + rng.Below(9), 150 + rng.Below(500), 15 + rng.Below(60),
        seed * 13);
    const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
    const CompressedInvertedIndex compressed =
        CompressedInvertedIndex::FromPlain(plain);
    const DropMode drop_modes[] = {DropMode::kNone, DropMode::kConservative,
                                   DropMode::kPositionRefined};
    const DropMode drop = drop_modes[rng.Below(3)];
    FilterValidateEngine reference(&store, &plain, {drop});
    storage::CompressedFilterValidateEngine tier(&store, &compressed,
                                                 {drop});
    const RawDistance theta = rng.Below(MaxDistance(store.k()) + 1);
    const auto n = static_cast<RankingId>(store.size());
    for (const auto& query : testutil::MakeQueries(store, 4, seed * 17)) {
      const auto full = reference.Query(query, theta);
      for (int r = 0; r < 4; ++r) {
        const auto lo = static_cast<RankingId>(rng.Below(n));
        const auto hi = static_cast<RankingId>(rng.Below(n + n / 2));
        const auto expected = FilterToRange(full, lo, hi);
        ASSERT_EQ(reference.QueryIdRange(query, theta, lo, hi), expected)
            << "plain, range=[" << lo << "," << hi << "] theta=" << theta;
        ASSERT_EQ(tier.QueryIdRange(query, theta, lo, hi), expected)
            << "compressed, range=[" << lo << "," << hi
            << "] theta=" << theta;
      }
    }
  }
}

TEST(CompressedEngine, CompressesZipfWorkloadAtLeastTwofold) {
  // The acceptance bar the bench reports on the real datasets, pinned
  // here on a Zipf-popularity store whose lists are long enough to
  // exercise the block tier (the regime the storage tier exists for).
  GeneratorOptions options;
  options.n = 2000;
  options.k = 10;
  options.domain = 300;
  options.zipf_s = 1.0;
  options.seed = 31;
  const RankingStore store = Generate(options);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const CompressedInvertedIndex compressed =
      CompressedInvertedIndex::FromPlain(plain);
  const auto& arena = plain.arena();
  const size_t uncompressed_bytes =
      arena.num_entries() * sizeof(RankingId) +
      (arena.num_lists() + 1) * sizeof(uint32_t);
  const size_t compressed_bytes = compressed.arena().CompressedBytes();
  ASSERT_GT(compressed_bytes, size_t{0});
  EXPECT_GE(static_cast<double>(uncompressed_bytes) /
                static_cast<double>(compressed_bytes),
            2.0)
      << "compression ratio regressed below 2x: " << compressed_bytes
      << " vs " << uncompressed_bytes << " bytes ("
      << compressed.arena().BytesPerEntry() << " B/entry)";
}

}  // namespace
}  // namespace topk
