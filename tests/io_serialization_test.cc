// Persistence round trips and failure injection: bad magic, wrong kind,
// truncation, bit corruption.

#include "io/serialization.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "cluster/bk_partitioner.h"
#include "coarse/coarse_index.h"
#include "test_util.h"

namespace topk {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, RankingStoreRoundTrip) {
  const RankingStore original = testutil::MakeClusteredStore(10, 500, 301);
  const std::string path = TempPath("store_roundtrip.topk");
  ASSERT_TRUE(SaveRankingStore(original, path).ok());

  auto loaded = LoadRankingStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RankingStore& store = loaded.value();
  ASSERT_EQ(store.size(), original.size());
  ASSERT_EQ(store.k(), original.k());
  for (RankingId id = 0; id < store.size(); ++id) {
    for (uint32_t p = 0; p < store.k(); ++p) {
      ASSERT_EQ(store.view(id)[p], original.view(id)[p]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, PartitioningRoundTripAndIndexRebuild) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 302);
  const Partitioning original =
      BkPartition(store, RawThreshold(0.3, 10), BkPartitionMode::kStrict);
  const std::string path = TempPath("partitioning_roundtrip.topk");
  ASSERT_TRUE(SavePartitioning(original, path).ok());

  auto loaded = LoadPartitioning(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().partitions.size(), original.partitions.size());

  // The loaded partitioning must yield a fully functional coarse index.
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::BuildFromPartitioning(
      &store, options, std::move(loaded).ValueOrDie());
  const auto queries = testutil::MakeQueries(store, 10, 303);
  const RawDistance theta_raw = RawThreshold(0.2, 10);
  for (const auto& query : queries) {
    EXPECT_EQ(index.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileReportsNotFound) {
  auto result = LoadRankingStore(TempPath("does_not_exist.topk"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(SerializationTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.topk");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a topk file at all, padding padding padding";
  out.close();
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, WrongKindRejected) {
  const RankingStore store = testutil::MakeClusteredStore(5, 50, 304);
  const std::string path = TempPath("wrong_kind.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  auto result = LoadPartitioning(path);  // store file, partitioning loader
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("kind"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncationRejected) {
  const RankingStore store = testutil::MakeClusteredStore(5, 100, 305);
  const std::string path = TempPath("truncated.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, BitCorruptionCaughtByChecksum) {
  const RankingStore store = testutil::MakeClusteredStore(5, 100, 306);
  const std::string path = TempPath("corrupt.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() - 3] ^= 0x40;  // flip one payload bit
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, ZeroLengthFileRejected) {
  const std::string path = TempPath("zero_length.topk");
  std::ofstream(path, std::ios::binary).close();
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SerializationTest, BogusPayloadSizeRejectedBeforeAllocating) {
  const RankingStore store = testutil::MakeClusteredStore(5, 50, 307);
  const std::string path = TempPath("bogus_size.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  std::string bytes = SlurpFile(path);
  // The payload size field sits after the 12-byte header. Declare an
  // absurd size: the loader must fail the file-size cross-check with a
  // Status instead of attempting a huge allocation.
  const uint64_t bogus = uint64_t{1} << 60;
  bytes.replace(12, sizeof(bogus),
                std::string(reinterpret_cast<const char*>(&bogus),
                            sizeof(bogus)));
  DumpFile(path, bytes);
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("size"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, TrailingBytesRejected) {
  const RankingStore store = testutil::MakeClusteredStore(5, 50, 308);
  const std::string path = TempPath("trailing.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  std::string bytes = SlurpFile(path);
  bytes += "junk appended after the declared payload";
  DumpFile(path, bytes);
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, OverflowingCountsRejected) {
  const RankingStore store = testutil::MakeClusteredStore(5, 20, 309);
  const std::string path = TempPath("overflow_count.topk");
  ASSERT_TRUE(SaveRankingStore(store, path).ok());
  std::string bytes = SlurpFile(path);
  // The ranking count is the uint64 right after the 28-byte preamble
  // (header + payload size + checksum) and the 4-byte k. Declare a
  // near-2^64 count — `count * sizeof(T)` wraps, so only an
  // overflow-safe bound check catches it — and re-stamp the payload
  // checksum so the count guard (not the checksum) is what trips.
  const uint64_t huge = ~uint64_t{0} - 1;
  bytes.replace(28 + 4, sizeof(huge),
                std::string(reinterpret_cast<const char*>(&huge),
                            sizeof(huge)));
  uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV-1a, as the format uses
  for (size_t i = 28; i < bytes.size(); ++i) {
    checksum ^= static_cast<uint8_t>(bytes[i]);
    checksum *= 0x100000001b3ULL;
  }
  bytes.replace(20, sizeof(checksum),
                std::string(reinterpret_cast<const char*>(&checksum),
                            sizeof(checksum)));
  DumpFile(path, bytes);
  auto result = LoadRankingStore(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("count"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyStoreRoundTrips) {
  RankingStore empty(7);
  const std::string path = TempPath("empty.topk");
  ASSERT_TRUE(SaveRankingStore(empty, path).ok());
  auto loaded = LoadRankingStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().k(), 7u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace topk
