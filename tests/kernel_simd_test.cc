// Differential suite for the vectorized validate kernel (kernel v2).
//
// The SIMD path of FootruleValidator is pinned bit-identical — accept /
// reject decisions, output order, distances, and the kDistanceCalls
// ticker — to the forced-scalar path and to the independent scalar merge
// kernel (core/footrule.h), across k values spanning partial, exact, and
// multi-register lane occupancy, batch remainders of every size modulo
// the lane width, theta = 0 and theta = dmax, and candidates whose items
// lie outside the bound rank table. In a TOPK_SIMD=OFF build both paths
// are the same scalar code and the suite still pins the validator to the
// merge kernel, so it runs (and must pass) in every CI leg.
//
// The epoch seam tests exercise the 2^32-bind wrap path in BindQuery
// (clear + restart past the reserved epoch 0) and the epoch-safety of
// EnsureItemCapacity's zero fill, which aliases "epoch 0, rank 0" and is
// only sound because epoch 0 is never current.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "kernel/footrule_batch.h"
#include "kernel/simd.h"
#include "test_util.h"

namespace topk {
namespace {

std::vector<RankingId> AllIds(const RankingStore& store) {
  std::vector<RankingId> all(store.size());
  for (RankingId id = 0; id < store.size(); ++id) all[id] = id;
  return all;
}

/// Runs ValidateSpan twice — auto (SIMD when compiled) and forced-scalar —
/// and checks both against each other and against the brute-force scan.
void ExpectSpanMatchesScalar(const RankingStore& store,
                             const PreparedQuery& query,
                             std::span<const RankingId> candidates,
                             RawDistance theta_raw) {
  FootruleValidator simd;
  FootruleValidator scalar;
  scalar.set_use_simd(false);
  const size_t domain = static_cast<size_t>(store.max_item()) + 1;

  std::vector<RankingId> got_simd;
  std::vector<RankingId> got_scalar;
  Statistics stats_simd;
  Statistics stats_scalar;
  simd.BindQuery(query.view(), domain);
  simd.ValidateSpan(store, candidates, theta_raw, &got_simd, &stats_simd);
  scalar.BindQuery(query.view(), domain);
  scalar.ValidateSpan(store, candidates, theta_raw, &got_scalar,
                      &stats_scalar);

  ASSERT_EQ(got_simd, got_scalar) << "theta_raw=" << theta_raw;
  EXPECT_EQ(stats_simd.Get(Ticker::kDistanceCalls), candidates.size());
  EXPECT_EQ(stats_scalar.Get(Ticker::kDistanceCalls), candidates.size());
  // Decisions must also agree with the independent merge kernel.
  for (const RankingId id : candidates) {
    const bool want = FootruleDistance(query.sorted_view(),
                                       store.sorted(id)) <= theta_raw;
    const bool got = std::find(got_simd.begin(), got_simd.end(), id) !=
                     got_simd.end();
    ASSERT_EQ(got, want) << "id=" << id << " theta_raw=" << theta_raw;
  }
}

TEST(KernelSimdTest, MatchesScalarAcrossKAndTheta) {
  for (const uint32_t k : {1u, 5u, 25u, 100u}) {
    const RankingStore store =
        testutil::MakeUniformStore(k, 300, 8 * k, 1000 + k);
    const auto queries = testutil::MakeQueries(store, 8, 2000 + k);
    const auto all = AllIds(store);
    for (const PreparedQuery& query : queries) {
      for (const double theta : {0.0, 0.05, 0.3, 0.7, 1.0}) {
        ExpectSpanMatchesScalar(store, query, all, RawThreshold(theta, k));
      }
    }
  }
}

TEST(KernelSimdTest, BatchRemaindersOfEverySizeModuloLaneWidth) {
  // Span sizes around every multiple of the lane width force each
  // combination of full vector batches plus a scalar remainder tail.
  const uint32_t k = 10;
  const RankingStore store = testutil::MakeClusteredStore(k, 4 * 8 + 7, 51);
  const auto queries = testutil::MakeQueries(store, 4, 52);
  const auto all = AllIds(store);
  const RawDistance theta_raw = RawThreshold(0.4, k);
  for (const PreparedQuery& query : queries) {
    for (size_t size = 0; size <= store.size(); ++size) {
      ExpectSpanMatchesScalar(
          store, query, std::span<const RankingId>(all).subspan(0, size),
          theta_raw);
    }
  }
}

TEST(KernelSimdTest, ValidateAllMatchesScalarAndBruteForce) {
  const uint32_t k = 25;
  const RankingStore store = testutil::MakeClusteredStore(k, 500, 53);
  const auto queries = testutil::MakeQueries(store, 10, 54);
  for (const PreparedQuery& query : queries) {
    for (const double theta : {0.0, 0.3, 1.0}) {
      const RawDistance theta_raw = RawThreshold(theta, k);
      FootruleValidator simd;
      FootruleValidator scalar;
      scalar.set_use_simd(false);
      std::vector<RankingId> got_simd;
      std::vector<RankingId> got_scalar;
      simd.BindQuery(query.view());
      simd.ValidateAll(store, theta_raw, &got_simd, nullptr);
      scalar.BindQuery(query.view());
      scalar.ValidateAll(store, theta_raw, &got_scalar, nullptr);
      ASSERT_EQ(got_simd, got_scalar);
      ASSERT_EQ(got_simd, testutil::BruteForce(store, query, theta_raw));
    }
  }
}

TEST(KernelSimdTest, CandidateItemsOutsideTheRankTableAreAbsent) {
  // Candidate items far beyond the *bound* table: the scalar paths take
  // the bounds branch, and the vector paths rely on ValidateSpan growing
  // the lane table to the store's item domain before dispatch (the
  // gathers run unmasked — EnsureItemCapacity is the safety mechanism),
  // after which the grown slots read the absent sentinel. Every distance
  // must come out exactly dmax.
  const uint32_t k = 8;
  RankingStore store(k);
  std::vector<ItemId> items;
  for (uint32_t row = 0; row < 20; ++row) {
    items.clear();
    for (uint32_t p = 0; p < k; ++p) {
      items.push_back(1000000u + row * k + p);
    }
    store.AddUnchecked(items);
  }
  items.clear();
  for (uint32_t p = 0; p < k; ++p) items.push_back(p);
  const PreparedQuery query(Ranking::Create(items).ValueOrDie());

  FootruleValidator validator;
  validator.BindQuery(query.view(), static_cast<size_t>(k));
  for (RankingId id = 0; id < store.size(); ++id) {
    ASSERT_EQ(validator.Distance(store.view(id)), MaxDistance(k));
  }
  ExpectSpanMatchesScalar(store, query, AllIds(store), MaxDistance(k));
  ExpectSpanMatchesScalar(store, query, AllIds(store), MaxDistance(k) - 1);
}

TEST(KernelSimdTest, ExactDuplicatesAcceptedAtThetaZero) {
  const uint32_t k = 5;
  const RankingStore store = testutil::MakeUniformStore(k, 64, 6 * k, 55);
  // Query = a stored ranking: its own id must survive theta = 0 on both
  // paths (distance 0, duplicate-free by construction).
  const PreparedQuery query(store.Materialize(17));
  ExpectSpanMatchesScalar(store, query, AllIds(store), 0);
}

TEST(KernelSimdTest, EpochWrapClearsStaleRanks) {
  const uint32_t k = 6;
  const RankingStore store = testutil::MakeUniformStore(k, 120, 30, 56);
  const auto queries = testutil::MakeQueries(store, 6, 57);
  const RawDistance theta_raw = RawThreshold(0.5, k);

  FootruleValidator validator;
  // Publish a first query normally (slots stamped with a live epoch)...
  validator.BindQuery(queries[0].view());
  ASSERT_EQ(validator.Distance(store.view(3)),
            FootruleDistance(queries[0].sorted_view(), store.sorted(3)));
  // ...then park the counter so the next bind wraps: BindQuery must clear
  // the table and restart past the reserved epoch 0, or the first bind's
  // stale slots would alias the restarted epoch.
  validator.set_epoch_for_testing(UINT32_MAX);
  validator.BindQuery(queries[1].view());
  EXPECT_EQ(validator.epoch_for_testing(), 1u);
  for (RankingId id = 0; id < store.size(); ++id) {
    ASSERT_EQ(validator.Distance(store.view(id)),
              FootruleDistance(queries[1].sorted_view(), store.sorted(id)));
  }
  // The full span path (vector batches included) agrees after the wrap.
  std::vector<RankingId> got;
  validator.ValidateSpan(store, AllIds(store), theta_raw, &got, nullptr);
  EXPECT_EQ(got, testutil::BruteForce(store, queries[1], theta_raw));
}

TEST(KernelSimdTest, CapacityGrowthAfterWrapStaysEpochSafe) {
  // EnsureItemCapacity fills new slots with 0 = (epoch 0, rank 0). Epoch 0
  // is reserved, so the grown slots must read as absent under any bound
  // query — including right after a wrap parked the epoch back at 1.
  const uint32_t k = 4;
  RankingStore store(k);
  ASSERT_TRUE(store.Add(std::vector<ItemId>{0, 1, 2, 3}).ok());
  ASSERT_TRUE(store.Add(std::vector<ItemId>{100, 101, 102, 103}).ok());

  const PreparedQuery small(
      Ranking::Create(std::vector<ItemId>{0, 1, 2, 3}).ValueOrDie());
  FootruleValidator validator;
  validator.set_epoch_for_testing(UINT32_MAX);
  validator.BindQuery(small.view());  // wraps; table covers items < 4
  validator.EnsureItemCapacity(200);  // grow while a query is bound
  // Items 100..103 land in freshly zero-filled slots: absent, not rank 0.
  EXPECT_EQ(validator.Distance(store.view(1)), MaxDistance(k));
  EXPECT_EQ(validator.Distance(store.view(0)), 0u);
  std::vector<RankingId> got;
  validator.ValidateSpan(store, AllIds(store), MaxDistance(k) - 1, &got,
                         nullptr);
  EXPECT_EQ(got, std::vector<RankingId>{0});
}

TEST(KernelSimdTest, BackendNameMatchesCompiledLanes) {
  if (FootruleValidator::SimdCompiled()) {
    EXPECT_STRNE(FootruleValidator::SimdBackendName(), "scalar");
    EXPECT_GT(kSimdLanes, 1u);
  } else {
    EXPECT_STREQ(FootruleValidator::SimdBackendName(), "scalar");
    EXPECT_EQ(kSimdLanes, 1u);
  }
}

}  // namespace
}  // namespace topk
