// Edge cases across the stack: k = 1, single-element stores, all-identical
// collections, maximal thresholds, and duplicate-heavy structures (the
// BK-tree 0-edge and M-tree balanced-tie paths).

#include <gtest/gtest.h>

#include <numeric>

#include "harness/query_algorithms.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(EdgeCaseTest, KEqualsOneRankings) {
  RankingStore store(1);
  for (ItemId item : {3u, 7u, 3u, 9u, 7u, 3u}) {
    store.AddUnchecked(std::vector<ItemId>{item});
  }
  // dmax = 1*2 = 2; identical singletons at 0, different ones at 2.
  EXPECT_EQ(MaxDistance(1), 2u);
  const PreparedQuery query(std::move(Ranking::Create({3})).ValueOrDie());
  EngineSuite suite(&store);
  for (Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kListMerge, Algorithm::kLaatPrune,
        Algorithm::kBlockedPrune, Algorithm::kCoarse, Algorithm::kBkTree,
        Algorithm::kMTree, Algorithm::kAdaptSearch}) {
    auto engine = suite.MakeEngine(algorithm);
    EXPECT_EQ(engine->Query(0, query, 0, nullptr, nullptr),
              (std::vector<RankingId>{0, 2, 5}))
        << AlgorithmName(algorithm);
    EXPECT_EQ(engine->Query(0, query, 1, nullptr, nullptr),
              (std::vector<RankingId>{0, 2, 5}))
        << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, SingleRankingStore) {
  RankingStore store(5);
  store.AddUnchecked(std::vector<ItemId>{1, 2, 3, 4, 5});
  EngineSuite suite(&store);
  const PreparedQuery hit(
      std::move(Ranking::Create({1, 2, 3, 4, 5})).ValueOrDie());
  const PreparedQuery near(
      std::move(Ranking::Create({2, 1, 3, 4, 5})).ValueOrDie());
  for (Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kCoarse, Algorithm::kBkTree,
        Algorithm::kMTree, Algorithm::kLaatPrune, Algorithm::kAdaptSearch}) {
    auto engine = suite.MakeEngine(algorithm);
    EXPECT_EQ(engine->Query(0, hit, 0, nullptr, nullptr),
              (std::vector<RankingId>{0}))
        << AlgorithmName(algorithm);
    EXPECT_EQ(engine->Query(0, near, 1, nullptr, nullptr),
              std::vector<RankingId>{})
        << AlgorithmName(algorithm);
    EXPECT_EQ(engine->Query(0, near, 2, nullptr, nullptr),
              (std::vector<RankingId>{0}))
        << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, AllIdenticalCollection) {
  RankingStore store(5);
  for (int i = 0; i < 500; ++i) {
    store.AddUnchecked(std::vector<ItemId>{5, 4, 3, 2, 1});
  }
  EngineSuite suite(&store);
  const PreparedQuery query(
      std::move(Ranking::Create({5, 4, 3, 2, 1})).ValueOrDie());
  std::vector<RankingId> everyone(store.size());
  std::iota(everyone.begin(), everyone.end(), 0);
  for (Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kCoarse, Algorithm::kBkTree,
        Algorithm::kMTree, Algorithm::kBlockedPrune}) {
    auto engine = suite.MakeEngine(algorithm);
    EXPECT_EQ(engine->Query(0, query, 0, nullptr, nullptr), everyone)
        << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, BkTreeDuplicateChainsSkipDistanceCalls) {
  // 1 seed + 999 exact duplicates: querying must not pay a Footrule call
  // per duplicate (the 0-edge shortcut behind Figure 10's coarse dip).
  RankingStore store(10);
  std::vector<ItemId> row = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int i = 0; i < 1000; ++i) store.AddUnchecked(row);
  const BkTree tree = BkTree::BuildAll(&store);
  const PreparedQuery query(std::move(Ranking::Create(row)).ValueOrDie());
  Statistics stats;
  const auto results = tree.RangeQuery(query.sorted_view(), 0, &stats);
  EXPECT_EQ(results.size(), 1000u);
  EXPECT_LE(stats.Get(Ticker::kDistanceCalls), 2u)
      << "duplicates must reuse the root distance";
}

TEST(EdgeCaseTest, BkTreeDuplicateChainsBuildCheaply) {
  RankingStore store(10);
  std::vector<ItemId> row = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int i = 0; i < 1000; ++i) store.AddUnchecked(row);
  Statistics stats;
  const BkTree tree = BkTree::BuildAll(&store, &stats);
  EXPECT_EQ(tree.size(), 1000u);
  // Linear, not quadratic: one distance call per insert.
  EXPECT_LE(stats.Get(Ticker::kDistanceCalls), 1100u);
}

TEST(EdgeCaseTest, MTreeDuplicateHeavyBuildStaysBalanced) {
  RankingStore store(10);
  std::vector<ItemId> row_a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<ItemId> row_b = {11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  for (int i = 0; i < 1000; ++i) {
    store.AddUnchecked(row_a);
    store.AddUnchecked(row_b);
  }
  MTreeOptions options;
  options.node_capacity = 16;
  Statistics stats;
  const MTree tree = MTree::BuildAll(&store, options, &stats);
  EXPECT_TRUE(tree.CheckInvariants());
  // Balanced tie-splitting keeps construction near-linear; the degenerate
  // (capacity, 1) splitting would need >> 40 distance calls per insert.
  EXPECT_LT(stats.Get(Ticker::kDistanceCalls), 2000u * 64u);
  const PreparedQuery query(std::move(Ranking::Create(row_a)).ValueOrDie());
  EXPECT_EQ(tree.RangeQuery(query.sorted_view(), 0).size(), 1000u);
}

TEST(EdgeCaseTest, ThresholdJustBelowMaxStillExact) {
  const RankingStore store = testutil::MakeClusteredStore(5, 300, 211);
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 5, 212);
  const RawDistance theta_raw = MaxDistance(5) - 1;
  for (Algorithm algorithm :
       {Algorithm::kFV, Algorithm::kListMerge, Algorithm::kLaatPrune,
        Algorithm::kCoarse, Algorithm::kBkTree, Algorithm::kAdaptSearch}) {
    auto engine = suite.MakeEngine(algorithm);
    for (const auto& query : queries) {
      EXPECT_EQ(engine->Query(0, query, theta_raw, nullptr, nullptr),
                testutil::BruteForce(store, query, theta_raw))
          << AlgorithmName(algorithm);
    }
  }
}

TEST(EdgeCaseTest, MetricTreesHandleThetaEqualMax) {
  // Metric trees have no overlap requirement: at theta = dmax they must
  // return everything (unlike inverted-index methods, whose contract
  // requires theta < dmax).
  const RankingStore store = testutil::MakeClusteredStore(5, 200, 213);
  const BkTree bk = BkTree::BuildAll(&store);
  const MTree mt = MTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 3, 214);
  for (const auto& query : queries) {
    EXPECT_EQ(bk.RangeQuery(query.sorted_view(), MaxDistance(5)).size(),
              store.size());
    EXPECT_EQ(mt.RangeQuery(query.sorted_view(), MaxDistance(5)).size(),
              store.size());
  }
}

TEST(EdgeCaseTest, GeneratorZipfTailRespectsCap) {
  GeneratorOptions options;
  options.n = 2000;
  options.k = 10;
  options.domain = 4000;
  options.zipf_s = 0.8;
  options.cluster_zipf_exponent = 1.5;
  options.max_cluster_size = 50;
  options.exact_duplicate_probability = 1.0;
  options.seed = 31;
  const RankingStore store = Generate(options);
  ASSERT_EQ(store.size(), 2000u);
  // With exact duplicates only, runs of identical rankings = clusters;
  // none may exceed the cap.
  size_t run = 1;
  size_t longest = 1;
  for (RankingId id = 1; id < store.size(); ++id) {
    const bool same = std::equal(store.view(id).items().begin(),
                                 store.view(id).items().end(),
                                 store.view(id - 1).items().begin());
    run = same ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  EXPECT_LE(longest, 50u);
  EXPECT_GT(longest, 2u) << "the tail should produce some real clusters";
}

}  // namespace
}  // namespace topk
