// M-tree: invariants, exactness across promotion policies and node
// capacities, and the parent-distance pruning.

#include "metric/m_tree.h"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace topk {
namespace {

class MTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, int,
                                                 uint32_t>> {};

TEST_P(MTreeEquivalenceTest, RangeQueryMatchesBruteForce) {
  const auto [k, theta, promotion_int, capacity] = GetParam();
  MTreeOptions options;
  options.node_capacity = capacity;
  options.promotion = static_cast<MTreeOptions::Promotion>(promotion_int);
  const RankingStore store = testutil::MakeClusteredStore(k, 800, 111 + k);
  const MTree tree = MTree::BuildAll(&store, options);
  EXPECT_EQ(tree.size(), store.size());
  const auto queries = testutil::MakeQueries(store, 15, 112);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(tree.RangeQuery(query.sorted_view(), theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "k=" << k << " theta=" << theta << " promo=" << promotion_int
        << " cap=" << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u),
                       ::testing::Values(0.0, 0.1, 0.3),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(4u, 16u, 64u)));

TEST(MTreeTest, InvariantsHoldAfterManyInserts) {
  for (int promotion = 0; promotion < 3; ++promotion) {
    MTreeOptions options;
    options.node_capacity = 8;
    options.promotion = static_cast<MTreeOptions::Promotion>(promotion);
    const RankingStore store = testutil::MakeClusteredStore(8, 600, 113);
    const MTree tree = MTree::BuildAll(&store, options);
    EXPECT_TRUE(tree.CheckInvariants()) << "promotion=" << promotion;
  }
}

TEST(MTreeTest, SmallCapacityStillExact) {
  MTreeOptions options;
  options.node_capacity = 2;  // worst case: maximal splitting
  const RankingStore store = testutil::MakeClusteredStore(6, 200, 114);
  const MTree tree = MTree::BuildAll(&store, options);
  EXPECT_TRUE(tree.CheckInvariants());
  const auto queries = testutil::MakeQueries(store, 10, 115);
  for (const auto& query : queries) {
    EXPECT_EQ(tree.RangeQuery(query.sorted_view(), RawThreshold(0.2, 6)),
              testutil::BruteForce(store, query, RawThreshold(0.2, 6)));
  }
}

TEST(MTreeTest, HandlesDuplicateHeavyData) {
  RankingStore store(5);
  const ItemId a[] = {1, 2, 3, 4, 5};
  const ItemId b[] = {5, 4, 3, 2, 1};
  for (int i = 0; i < 50; ++i) {
    store.AddUnchecked(a);
    store.AddUnchecked(b);
  }
  MTreeOptions options;
  options.node_capacity = 4;
  const MTree tree = MTree::BuildAll(&store, options);
  EXPECT_TRUE(tree.CheckInvariants());
  PreparedQuery query(std::move(Ranking::Create({1, 2, 3, 4, 5})).ValueOrDie());
  EXPECT_EQ(tree.RangeQuery(query.sorted_view(), 0).size(), 50u);
}

TEST(MTreeTest, PrunesDistanceCallsOnSelectiveQueries) {
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 116);
  const MTree tree = MTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 10, 117);
  Statistics stats;
  for (const auto& query : queries) {
    tree.RangeQuery(query.sorted_view(), RawThreshold(0.05, 10), &stats);
  }
  EXPECT_LT(stats.Get(Ticker::kDistanceCalls),
            queries.size() * store.size());
}

TEST(MTreeTest, EmptyTreeReturnsNothing) {
  const RankingStore store = testutil::MakeClusteredStore(5, 10, 118);
  const MTree tree = MTree::Build(&store, {});
  PreparedQuery query(
      std::move(Ranking::Create({1, 2, 3, 4, 5})).ValueOrDie());
  EXPECT_TRUE(tree.RangeQuery(query.sorted_view(), MaxDistance(5)).empty());
}

TEST(MTreeTest, MemoryUsageGrowsWithSize) {
  const RankingStore small = testutil::MakeClusteredStore(8, 50, 119);
  const RankingStore large = testutil::MakeClusteredStore(8, 2000, 119);
  EXPECT_LT(MTree::BuildAll(&small).MemoryUsage(),
            MTree::BuildAll(&large).MemoryUsage());
}

}  // namespace
}  // namespace topk
