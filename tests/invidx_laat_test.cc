// List-at-a-Time with partial-information bounds: exactness across option
// combinations, and the bound laws themselves (monotonicity, sandwich,
// convergence) recomputed step-by-step against exact distances.

#include "invidx/list_at_a_time.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/bounds.h"
#include "test_util.h"

namespace topk {
namespace {

class LaatEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, int>> {};

TEST_P(LaatEquivalenceTest, MatchesBruteForce) {
  const auto [k, theta, options_mask] = GetParam();
  LaatOptions options;
  options.prune_lower_bound = (options_mask & 1) != 0;
  options.accept_upper_bound = (options_mask & 2) != 0;
  options.refined_lower_bound = (options_mask & 4) != 0;

  const RankingStore store = testutil::MakeClusteredStore(k, 1200, 41 + k);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListAtATimeEngine engine(&index, options);
  const auto queries = testutil::MakeQueries(store, 25, 60);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "k=" << k << " theta=" << theta << " mask=" << options_mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaatEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3),
                       ::testing::Values(0, 1, 2, 3, 7)));

// Reference re-derivation of the bounds, checked per processed list
// against the exact distance: L never decreases, U never increases,
// L <= exact <= U throughout, and both converge to exact at the end.
TEST(LaatBoundsPropertyTest, MonotoneSandwichConvergence) {
  const uint32_t k = 8;
  const RankingStore store = testutil::MakeClusteredStore(k, 400, 47);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  const auto queries = testutil::MakeQueries(store, 10, 48);
  const RawDistance half = AbsentSuffixCost(k, 0);

  for (const PreparedQuery& query : queries) {
    struct Acc {
      RawDistance seen_sum = 0;
      RawDistance seen_q_cost = 0;
      RawDistance seen_tau_cover = 0;
    };
    std::map<RankingId, Acc> accs;
    std::map<RankingId, RawDistance> prev_lower;
    std::map<RankingId, RawDistance> prev_upper;

    RawDistance processed_absent = 0;
    for (Rank t = 0; t < k; ++t) {
      for (const AugmentedEntry& entry : index.list(query.view()[t])) {
        Acc& acc = accs[entry.id];
        const Rank r = entry.rank;
        acc.seen_sum += r > t ? r - t : t - r;
        acc.seen_q_cost += k - t;
        acc.seen_tau_cover += k - r;
      }
      processed_absent += k - t;

      // Evaluate bounds for every candidate seen so far.
      for (const auto& [id, acc] : accs) {
        const RawDistance lower =
            acc.seen_sum + (processed_absent - acc.seen_q_cost);
        const RawDistance upper = lower + AbsentSuffixCost(k, t + 1) +
                                  (half - acc.seen_tau_cover);
        const RawDistance exact =
            FootruleDistance(query.sorted_view(), store.sorted(id));
        EXPECT_LE(lower, exact) << "lower bound not sound";
        EXPECT_GE(upper, exact) << "upper bound not sound";
        if (prev_lower.count(id) > 0) {
          EXPECT_GE(lower, prev_lower[id]) << "lower bound not monotone";
          EXPECT_LE(upper, prev_upper[id]) << "upper bound not monotone";
        }
        prev_lower[id] = lower;
        prev_upper[id] = upper;
      }
    }

    // Convergence: after all k lists, U equals the exact distance.
    for (const auto& [id, acc] : accs) {
      const RawDistance final_value = acc.seen_sum +
                                      (processed_absent - acc.seen_q_cost) +
                                      (half - acc.seen_tau_cover);
      EXPECT_EQ(final_value,
                FootruleDistance(query.sorted_view(), store.sorted(id)));
    }
  }
}

TEST(LaatBoundsPropertyTest, RefinedLowerBoundIsSoundAndTighter) {
  const uint32_t k = 8;
  const RankingStore store = testutil::MakeClusteredStore(k, 400, 49);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  const auto queries = testutil::MakeQueries(store, 10, 50);

  for (const PreparedQuery& query : queries) {
    struct Acc {
      RawDistance seen_sum = 0;
      RawDistance seen_q_cost = 0;
      uint32_t seen_count = 0;
    };
    std::map<RankingId, Acc> accs;
    RawDistance processed_absent = 0;
    for (Rank t = 0; t < k; ++t) {
      for (const AugmentedEntry& entry : index.list(query.view()[t])) {
        Acc& acc = accs[entry.id];
        const Rank r = entry.rank;
        acc.seen_sum += r > t ? r - t : t - r;
        acc.seen_q_cost += k - t;
        ++acc.seen_count;
      }
      processed_absent += k - t;
      for (const auto& [id, acc] : accs) {
        const RawDistance base =
            acc.seen_sum + (processed_absent - acc.seen_q_cost);
        const RawDistance missed = (t + 1) - acc.seen_count;
        const RawDistance refined = base + missed * (missed + 1) / 2;
        EXPECT_GE(refined, base);
        EXPECT_LE(refined,
                  FootruleDistance(query.sorted_view(), store.sorted(id)))
            << "refined lower bound overshoots the exact distance";
      }
    }
  }
}

TEST(LaatTest, PruningReducesWorkAtTightThresholds) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 51);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListAtATimeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 20, 52);
  Statistics stats;
  for (const auto& query : queries) {
    engine.Query(query, RawThreshold(0.05, 10), &stats);
  }
  EXPECT_GT(stats.Get(Ticker::kPrunedByLowerBound), 0u);
}

TEST(LaatTest, UpperBoundAcceptsEarlyAtLooseThresholds) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 53);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListAtATimeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 20, 54);
  Statistics stats;
  for (const auto& query : queries) {
    engine.Query(query, RawThreshold(0.6, 10), &stats);
  }
  EXPECT_GT(stats.Get(Ticker::kAcceptedByUpperBound), 0u);
}

TEST(LaatTest, NoFootruleCallsEver) {
  // The accumulator-only design never touches the stored rankings.
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 55);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListAtATimeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 10, 56);
  Statistics stats;
  for (const auto& query : queries) {
    engine.Query(query, RawThreshold(0.2, 10), &stats);
  }
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), 0u);
}

}  // namespace
}  // namespace topk
