// Crash-safe snapshot lifecycle: SnapshotManager generation rotation,
// startup recovery, quarantine of corrupt/torn files (and ONLY those —
// clean runs must never quarantine), orphan sweeping, and the
// fork/SIGKILL differential: a child process is killed at every
// failpoint the snapshot write path crosses, and the parent must
// recover a bit-exact store from the directory afterwards. The crash
// half needs -DTOPK_FAILPOINTS=ON (the CI failpoints leg); it skips
// cleanly elsewhere.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/ranking.h"
#include "invidx/plain_inverted_index.h"
#include "storage/compressed_arena.h"
#include "storage/snapshot_manager.h"
#include "test_util.h"

namespace topk {
namespace {

namespace fs = std::filesystem;
using storage::CompressedPostingArena;
using storage::OpenedSnapshot;
using storage::SnapshotManager;
using storage::SnapshotManagerOptions;

/// Fresh empty directory under the test tempdir.
std::string MakeDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

CompressedPostingArena<RankingId> ArenaOf(const RankingStore& store) {
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  return CompressedPostingArena<RankingId>::FromArena(plain.arena());
}

/// Row-for-row byte equality between a recovered snapshot and `expected`.
bool StoresBitExact(const RankingStore& actual, const RankingStore& expected) {
  if (actual.size() != expected.size() || actual.k() != expected.k()) {
    return false;
  }
  for (RankingId id = 0; id < expected.size(); ++id) {
    const auto want = expected.view(id).items();
    const auto got = actual.view(id).items();
    if (std::memcmp(got.data(), want.data(), want.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

/// Flips one byte inside the first section payload (the first section
/// starts at the first page boundary — payload corruption the cheap
/// open-time metadata checks alone would miss).
void CorruptPayload(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  const long offset = static_cast<long>(storage::kSnapshotPageSize);
  ASSERT_EQ(std::fseek(file, offset, SEEK_SET), 0);
  int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0xFF, file), EOF);
  ASSERT_EQ(std::fclose(file), 0);
}

size_t CountFilesWithSuffix(const std::string& dir, const std::string& suffix) {
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ++count;
    }
  }
  return count;
}

TEST(SnapshotManagerTest, EmptyDirectoryIsNotFound) {
  SnapshotManager manager(MakeDir("snapmgr_empty"));
  const auto opened = manager.OpenNewestValid();
  EXPECT_EQ(opened.status().code(), Status::Code::kNotFound);
}

TEST(SnapshotManagerTest, GenerationsAdvanceAndOldOnesPrune) {
  const std::string dir = MakeDir("snapmgr_prune");
  SnapshotManagerOptions options;
  options.keep_generations = 2;
  SnapshotManager manager(dir, options);
  const RankingStore store = testutil::MakeClusteredStore(8, 200, 11);
  const auto arena = ArenaOf(store);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(manager.WriteSnapshot(store, arena).ok());
  }
  EXPECT_EQ(manager.ListGenerations(), (std::vector<uint64_t>{3, 4}));
}

TEST(SnapshotManagerTest, OpensNewestAndNeverQuarantinesCleanRuns) {
  const std::string dir = MakeDir("snapmgr_clean");
  SnapshotManager manager(dir);
  const RankingStore old_store = testutil::MakeClusteredStore(8, 150, 21);
  const RankingStore new_store = testutil::MakeClusteredStore(8, 220, 22);
  ASSERT_TRUE(manager.WriteSnapshot(old_store, ArenaOf(old_store)).ok());
  ASSERT_TRUE(manager.WriteSnapshot(new_store, ArenaOf(new_store)).ok());

  Statistics stats;
  auto opened = manager.OpenNewestValid(&stats);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().generation, 2u);
  EXPECT_TRUE(StoresBitExact(opened.value().snapshot.store(), new_store));
  // Zero quarantine false positives: intact generations are never
  // condemned by the recovery scan.
  EXPECT_EQ(manager.QuarantinedCount(), 0u);
  EXPECT_EQ(stats.Get(Ticker::kSnapshotsQuarantined), 0u);
}

TEST(SnapshotManagerTest, CorruptNewestIsQuarantinedAndOlderServes) {
  const std::string dir = MakeDir("snapmgr_corrupt");
  SnapshotManager manager(dir);
  const RankingStore old_store = testutil::MakeClusteredStore(8, 150, 31);
  const RankingStore new_store = testutil::MakeClusteredStore(8, 220, 32);
  ASSERT_TRUE(manager.WriteSnapshot(old_store, ArenaOf(old_store)).ok());
  ASSERT_TRUE(manager.WriteSnapshot(new_store, ArenaOf(new_store)).ok());
  CorruptPayload(manager.GenerationPath(2));

  Statistics stats;
  auto opened = manager.OpenNewestValid(&stats);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().generation, 1u);
  EXPECT_TRUE(StoresBitExact(opened.value().snapshot.store(), old_store));
  EXPECT_EQ(manager.QuarantinedCount(), 1u);
  EXPECT_EQ(stats.Get(Ticker::kSnapshotsQuarantined), 1u);
  // Operator breadcrumbs: the condemned file and its reason survive.
  EXPECT_EQ(CountFilesWithSuffix(dir, ".bad"), 1u);
  EXPECT_EQ(CountFilesWithSuffix(dir, ".bad.reason"), 1u);
  // Recovery is idempotent: the quarantined file is out of the rotation.
  EXPECT_EQ(manager.ListGenerations(), (std::vector<uint64_t>{1}));
}

TEST(SnapshotManagerTest, TruncatedNewestIsQuarantined) {
  const std::string dir = MakeDir("snapmgr_trunc");
  SnapshotManager manager(dir);
  const RankingStore old_store = testutil::MakeClusteredStore(8, 150, 41);
  const RankingStore new_store = testutil::MakeClusteredStore(8, 220, 42);
  ASSERT_TRUE(manager.WriteSnapshot(old_store, ArenaOf(old_store)).ok());
  ASSERT_TRUE(manager.WriteSnapshot(new_store, ArenaOf(new_store)).ok());
  const std::string newest = manager.GenerationPath(2);
  fs::resize_file(newest, fs::file_size(newest) / 2);

  auto opened = manager.OpenNewestValid();
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().generation, 1u);
  EXPECT_TRUE(StoresBitExact(opened.value().snapshot.store(), old_store));
  EXPECT_EQ(manager.QuarantinedCount(), 1u);
}

TEST(SnapshotManagerTest, OrphanTempFilesAreSwept) {
  const std::string dir = MakeDir("snapmgr_orphan");
  SnapshotManager manager(dir);
  const RankingStore store = testutil::MakeClusteredStore(8, 150, 51);
  ASSERT_TRUE(manager.WriteSnapshot(store, ArenaOf(store)).ok());
  {  // a writer that died mid-emission leaves its temp file behind
    std::FILE* file = std::fopen((dir + "/gen-junk.topksnp.tmp").c_str(), "w");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fclose(file), 0);
  }
  ASSERT_TRUE(manager.OpenNewestValid().ok());
  EXPECT_EQ(CountFilesWithSuffix(dir, ".tmp"), 0u);
  EXPECT_EQ(manager.QuarantinedCount(), 0u);
}

// ---------------------------------------------------------------------------
// The SIGKILL differential. One clean traced write discovers every
// failpoint the emission path crosses; then, per site, a forked child
// arms crash-at-first-hit and attempts a write. The kernel kills it
// mid-protocol, and the parent must (a) recover the prior generation
// bit-exact, (b) quarantine nothing (a torn write is never published,
// so there is nothing to condemn), and (c) complete a later write
// normally.

TEST(SnapshotCrashTest, RecoversBitExactAfterSigkillAtEveryWriteSite) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "needs -DTOPK_FAILPOINTS=ON";
  }
  auto& registry = FailpointRegistry::Instance();
  registry.DisarmAll();

  const RankingStore old_store = testutil::MakeClusteredStore(8, 150, 61);
  const RankingStore new_store = testutil::MakeClusteredStore(8, 220, 62);
  const auto old_arena = ArenaOf(old_store);
  const auto new_arena = ArenaOf(new_store);

  // Trace which storage-layer sites one clean emission crosses.
  std::vector<std::string> sites;
  {
    const std::string dir = MakeDir("snapcrash_trace");
    SnapshotManager manager(dir);
    registry.ResetCounts();
    ASSERT_TRUE(manager.WriteSnapshot(new_store, new_arena).ok());
    for (const std::string& site : registry.SitesHit()) {
      if (site.rfind("storage.snapshot.", 0) == 0) sites.push_back(site);
    }
  }
  ASSERT_GE(sites.size(), 4u) << "write path lost its failpoint coverage";

  for (const std::string& site : sites) {
    SCOPED_TRACE(site);
    const std::string dir = MakeDir("snapcrash_" + site);
    SnapshotManager manager(dir);
    ASSERT_TRUE(manager.WriteSnapshot(old_store, old_arena).ok());

    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: die by SIGKILL at the first hit of `site` while emitting
      // generation 2. No gtest machinery here — _exit codes flag the
      // only unexpected outcome (the site was never reached).
      FailpointRegistry::Instance().DisarmAll();
      FailpointRegistry::Instance().ResetCounts();
      if (!FailpointRegistry::Instance()
               .ArmFromSpecString(site + "=crash@1")
               .ok()) {
        _exit(40);
      }
      SnapshotManager child_manager(dir);
      const Status status = child_manager.WriteSnapshot(new_store, new_arena);
      _exit(status.ok() ? 41 : 42);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited instead of crashing";
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    // Recovery: the directory holds either the old generation alone
    // (crash before publish) or old + a fully valid new one (crash
    // after the rename made it durable). Either way the newest valid
    // snapshot is bit-exact to one of the two writes — never a blend —
    // and nothing is quarantined.
    Statistics stats;
    auto opened = manager.OpenNewestValid(&stats);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const OpenedSnapshot& recovered = opened.value();
    if (recovered.generation == 1) {
      EXPECT_TRUE(StoresBitExact(recovered.snapshot.store(), old_store));
    } else {
      EXPECT_EQ(recovered.generation, 2u);
      EXPECT_TRUE(StoresBitExact(recovered.snapshot.store(), new_store));
    }
    EXPECT_EQ(manager.QuarantinedCount(), 0u);
    EXPECT_EQ(stats.Get(Ticker::kSnapshotsQuarantined), 0u);
    EXPECT_EQ(CountFilesWithSuffix(dir, ".tmp"), 0u);  // orphans swept

    // The survivor keeps working: the next emission and recovery are
    // ordinary.
    ASSERT_TRUE(manager.WriteSnapshot(new_store, new_arena).ok());
    auto reopened = manager.OpenNewestValid();
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(StoresBitExact(reopened.value().snapshot.store(), new_store));
  }
}

}  // namespace
}  // namespace topk
