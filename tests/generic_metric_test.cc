// The generic metric tree with non-Footrule metrics, and the fine print
// behind the paper's "any metric distance function" claim: Spearman's
// Footrule is a metric for top-k lists, but Kendall's tau with penalty
// p = 1/2 is only a *near*-metric (Fagin et al.) — its triangle
// inequality fails outright on lists with different domains, so plugging
// it into a metric tree is unsound. The test below pins a concrete
// violation; the positive demos use true metrics (symmetric difference
// over item sets, Hamming over strings).

#include "metric/generic_bk_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/kendall.h"
#include "test_util.h"

namespace topk {
namespace {

/// |D_a symmetric-difference D_b| — a genuine metric on the item sets of
/// rankings (rank-agnostic).
struct SymmetricDifferenceDistance {
  RawDistance operator()(const Ranking& a, const Ranking& b) const {
    RawDistance common = 0;
    for (ItemId item : a.items()) {
      if (b.view().Contains(item)) ++common;
    }
    return (a.k() - common) + (b.k() - common);
  }
};

struct HammingDistance {
  RawDistance operator()(const std::string& a, const std::string& b) const {
    RawDistance d = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) ++d;
    }
    return d;
  }
};

TEST(GenericBkTreeTest, SymmetricDifferenceMatchesLinearScan) {
  const RankingStore store = testutil::MakeClusteredStore(8, 500, 311);
  GenericBkTree<Ranking, SymmetricDifferenceDistance> tree;
  for (RankingId id = 0; id < store.size(); ++id) {
    tree.Insert(store.Materialize(id));
  }
  ASSERT_EQ(tree.size(), store.size());

  const SymmetricDifferenceDistance metric;
  const auto queries = testutil::MakeQueries(store, 10, 312);
  for (const auto& query : queries) {
    for (RawDistance theta : {0u, 2u, 6u, 12u}) {
      std::vector<uint32_t> expected;
      for (RankingId id = 0; id < store.size(); ++id) {
        if (metric(query.ranking, store.Materialize(id)) <= theta) {
          expected.push_back(id);
        }
      }
      auto got = tree.RangeQuery(query.ranking, theta);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "theta=" << theta;
    }
  }
}

TEST(GenericBkTreeTest, SymmetricDifferenceQueriesPrune) {
  const RankingStore store = testutil::MakeClusteredStore(8, 2000, 313);
  GenericBkTree<Ranking, SymmetricDifferenceDistance> tree;
  for (RankingId id = 0; id < store.size(); ++id) {
    tree.Insert(store.Materialize(id));
  }
  const auto queries = testutil::MakeQueries(store, 5, 314);
  Statistics stats;
  for (const auto& query : queries) {
    tree.RangeQuery(query.ranking, 2, &stats);
  }
  EXPECT_LT(stats.Get(Ticker::kDistanceCalls),
            queries.size() * store.size());
}

TEST(GenericBkTreeTest, KendallHalfPenaltyIsOnlyANearMetric) {
  // Documented correction to the paper's "any metric" claim: K^(1/2)
  // violates the triangle inequality on top-k lists over different
  // domains (Fagin et al. classify it as a near-metric), so it must NOT
  // be used with metric trees. Concrete counterexample (k = 4):
  const Ranking a = std::move(Ranking::Create({4, 6, 0, 5})).ValueOrDie();
  const Ranking b = std::move(Ranking::Create({1, 3, 7, 5})).ValueOrDie();
  const Ranking c = std::move(Ranking::Create({7, 6, 1, 5})).ValueOrDie();
  const uint64_t ab = KendallTauTimesTwo(a.view(), b.view(), 1);
  const uint64_t ac = KendallTauTimesTwo(a.view(), c.view(), 1);
  const uint64_t bc = KendallTauTimesTwo(b.view(), c.view(), 1);
  EXPECT_GT(ab, ac + bc) << "expected triangle violation vanished";
}

TEST(GenericBkTreeTest, FootruleHasNoSuchViolation) {
  // The same exhaustive-style probe that finds Kendall violations in
  // seconds never finds one for Footrule — consistent with its metric
  // proof (also covered by the dedicated metric-property tests).
  const Ranking a = std::move(Ranking::Create({4, 6, 0, 5})).ValueOrDie();
  const Ranking b = std::move(Ranking::Create({1, 3, 7, 5})).ValueOrDie();
  const Ranking c = std::move(Ranking::Create({7, 6, 1, 5})).ValueOrDie();
  const SortedRanking sa(a);
  const SortedRanking sb(b);
  const SortedRanking sc(c);
  const RawDistance ab = FootruleDistance(sa.view(), sb.view());
  const RawDistance ac = FootruleDistance(sa.view(), sc.view());
  const RawDistance bc = FootruleDistance(sb.view(), sc.view());
  EXPECT_LE(ab, ac + bc);
}

TEST(GenericBkTreeTest, HammingStringsWorkToo) {
  GenericBkTree<std::string, HammingDistance> tree;
  const std::vector<std::string> words = {"karolin", "kathrin", "kerstin",
                                          "maximus", "marcus ", "karolus"};
  for (const auto& word : words) tree.Insert(word);

  auto got = tree.RangeQuery("karolin", 3);
  std::sort(got.begin(), got.end());
  // karolin:0, kathrin:3, kerstin:3 and karolus:2 qualify; the maximus
  // family is far away.
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(tree.value(got[0]), "karolin");
  EXPECT_EQ(tree.value(got[1]), "kathrin");
  EXPECT_EQ(tree.value(got[2]), "kerstin");
  EXPECT_EQ(tree.value(got[3]), "karolus");
}

TEST(GenericBkTreeTest, EmptyTree) {
  GenericBkTree<std::string, HammingDistance> tree;
  EXPECT_TRUE(tree.RangeQuery("anything", 100).empty());
}

}  // namespace
}  // namespace topk
