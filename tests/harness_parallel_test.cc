// Sharded parallel serving must be invisible in the results: for every
// algorithm, every sharding strategy and shard count, range and k-NN
// answers over the ShardedStore must equal the single-threaded oracle
// (brute force / unsharded searcher) — including empty-result and
// theta ~ dmax edge cases. Also covers the aggregation contract: merged
// tickers, per-shard phase splits, and RunResult metadata.

#include <gtest/gtest.h>

#include <vector>

#include "harness/parallel_runner.h"
#include "harness/sharded_store.h"
#include "metric/knn.h"
#include "test_util.h"

namespace topk {
namespace {

constexpr uint32_t kK = 8;
constexpr size_t kN = 400;

const Algorithm kRangeAlgorithms[] = {
    Algorithm::kFV,           Algorithm::kFVDrop,
    Algorithm::kListMerge,    Algorithm::kLaatPrune,
    Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
    Algorithm::kCoarse,       Algorithm::kCoarseDrop,
    Algorithm::kAdaptSearch,  Algorithm::kBkTree,
    Algorithm::kMTree,        Algorithm::kLinearScan};

const ShardingStrategy kStrategies[] = {ShardingStrategy::kRoundRobin,
                                        ShardingStrategy::kHashById};

class HarnessParallelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HarnessParallelTest, RangeResultsMatchSingleThreadedOracle) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 71);
  const auto queries = testutil::MakeQueries(store, 5, 72);
  // Up to dmax - 1: at theta == dmax exactly, the inverted-index engines'
  // candidate enumeration (posting lists of shared items) excludes fully
  // disjoint rankings by contract — the long-standing bound every
  // differential suite uses.
  const RawDistance thetas[] = {0, 3, RawThreshold(0.25, kK),
                                MaxDistance(kK) - 1};

  for (const ShardingStrategy strategy : kStrategies) {
    const ShardedStore sharded(store, num_shards, strategy);
    ASSERT_EQ(sharded.size(), store.size());
    ParallelRunner runner(&sharded);
    for (const Algorithm algorithm : kRangeAlgorithms) {
      for (const RawDistance theta : thetas) {
        for (const auto& query : queries) {
          ASSERT_EQ(runner.RangeQuery(algorithm, query, theta),
                    testutil::BruteForce(store, query, theta))
              << AlgorithmName(algorithm) << " shards=" << num_shards
              << " strategy=" << ShardingStrategyName(strategy)
              << " theta=" << theta;
        }
      }
    }
  }
}

TEST_P(HarnessParallelTest, OracleEngineMatchesBruteForcePerShard) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 73);
  const auto queries = testutil::MakeQueries(store, 4, 74);
  const RawDistance theta = RawThreshold(0.2, kK);

  const ShardedStore sharded(store, num_shards, ShardingStrategy::kHashById);
  ParallelRunner runner(&sharded);
  runner.PrepareOracle(queries, theta);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(runner.RangeQuery(Algorithm::kMinimalFV, i, queries[i], theta),
              testutil::BruteForce(store, queries[i], theta));
  }
}

TEST_P(HarnessParallelTest, EmptyResultOnDisjointQuery) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 75);
  // Items far outside the generated domain: nothing overlaps, so with a
  // sub-disjoint threshold every shard returns the empty list.
  std::vector<ItemId> alien(kK);
  for (uint32_t p = 0; p < kK; ++p) alien[p] = 1000000 + p;
  const PreparedQuery query(
      std::move(Ranking::Create(std::move(alien))).ValueOrDie());

  const ShardedStore sharded(store, num_shards, ShardingStrategy::kRoundRobin);
  ParallelRunner runner(&sharded);
  for (const Algorithm algorithm : kRangeAlgorithms) {
    EXPECT_TRUE(runner.RangeQuery(algorithm, query, 0).empty())
        << AlgorithmName(algorithm) << " shards=" << num_shards;
  }
}

TEST_P(HarnessParallelTest, ThetaAtDmaxReturnsWholeCollection) {
  const size_t num_shards = GetParam();
  // Domain of k + 2 forces every pair of rankings to share items, so the
  // theta == dmax edge is exact for all engines (candidate enumeration
  // covers the whole collection) and the merge must return every id.
  const RankingStore store = testutil::MakeUniformStore(kK, 300, kK + 2, 76);
  const auto queries = testutil::MakeQueries(store, 2, 77);

  const ShardedStore sharded(store, num_shards, ShardingStrategy::kHashById);
  ParallelRunner runner(&sharded);
  std::vector<RankingId> everything(store.size());
  for (RankingId id = 0; id < store.size(); ++id) everything[id] = id;
  for (const Algorithm algorithm : kRangeAlgorithms) {
    EXPECT_EQ(runner.RangeQuery(algorithm, queries[0], MaxDistance(kK)),
              everything)
        << AlgorithmName(algorithm) << " shards=" << num_shards;
  }
}

TEST_P(HarnessParallelTest, KnnMatchesUnshardedSearcher) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 78);
  const auto queries = testutil::MakeQueries(store, 3, 79);
  const Algorithm backends[] = {Algorithm::kLinearScan, Algorithm::kBkTree,
                                Algorithm::kMTree};
  const size_t js[] = {0, 1, 7, kN + 10};

  for (const ShardingStrategy strategy : kStrategies) {
    const ShardedStore sharded(store, num_shards, strategy);
    ParallelRunner runner(&sharded);
    for (const Algorithm backend : backends) {
      for (const size_t j : js) {
        for (const auto& query : queries) {
          ASSERT_EQ(runner.KnnQuery(backend, query, j),
                    LinearScanKnn(store, query, j))
              << AlgorithmName(backend) << " shards=" << num_shards
              << " strategy=" << ShardingStrategyName(strategy) << " j=" << j;
        }
      }
    }
  }
}

TEST_P(HarnessParallelTest, TickersAggregateExactlyAcrossShards) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 80);
  const auto queries = testutil::MakeQueries(store, 1, 81);

  const ShardedStore sharded(store, num_shards, ShardingStrategy::kRoundRobin);
  ParallelRunner runner(&sharded);
  // LinearScan computes exactly one distance per stored ranking, so the
  // merged cross-shard ticker must equal the collection size regardless
  // of the shard count.
  Statistics stats;
  runner.RangeQuery(Algorithm::kLinearScan, 0, queries[0], 5, &stats, nullptr);
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), store.size());
}

TEST_P(HarnessParallelTest, RunQueriesReportsShardMetadata) {
  const size_t num_shards = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(kK, kN, 82);
  const auto queries = testutil::MakeQueries(store, 6, 83);
  const RawDistance theta = RawThreshold(0.2, kK);

  const ShardedStore sharded(store, num_shards, ShardingStrategy::kHashById);
  ParallelRunner runner(&sharded);
  const RunResult result =
      runner.RunQueries(Algorithm::kCoarse, queries, theta);

  EXPECT_EQ(result.num_queries, queries.size());
  EXPECT_EQ(result.num_shards, num_shards);
  EXPECT_EQ(result.num_threads, num_shards);  // default: one per shard
  EXPECT_EQ(result.shard_phases.size(), num_shards);

  size_t expected_results = 0;
  for (const auto& query : queries) {
    expected_results += testutil::BruteForce(store, query, theta).size();
  }
  EXPECT_EQ(result.total_results, expected_results);

  // The aggregate phase split is exactly the sum of the per-shard splits.
  PhaseTimes summed;
  for (const PhaseTimes& phases : result.shard_phases) {
    summed.MergeFrom(phases);
  }
  EXPECT_DOUBLE_EQ(result.phases.filter_ms, summed.filter_ms);
  EXPECT_DOUBLE_EQ(result.phases.validate_ms, summed.validate_ms);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, HarnessParallelTest,
                         ::testing::Values(1, 2, 3, 7));

TEST(ShardedStoreTest, ShardsPartitionTheCollection) {
  const RankingStore store = testutil::MakeClusteredStore(6, 101, 84);
  for (const ShardingStrategy strategy : kStrategies) {
    const ShardedStore sharded(store, 4, strategy);
    std::vector<bool> seen(store.size(), false);
    size_t total = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      const RankingStore& shard = sharded.shard(s);
      total += shard.size();
      RankingId previous = 0;
      for (RankingId local = 0; local < shard.size(); ++local) {
        const RankingId global = sharded.ToGlobal(s, local);
        ASSERT_LT(global, store.size());
        EXPECT_FALSE(seen[global]) << "duplicate global id " << global;
        seen[global] = true;
        if (local > 0) {
          // Strictly increasing local -> global map: the property the
          // merge relies on.
          EXPECT_GT(global, previous);
        }
        previous = global;
        // The shard row is a verbatim copy of the source ranking.
        EXPECT_TRUE(std::equal(shard.view(local).items().begin(),
                               shard.view(local).items().end(),
                               store.view(global).items().begin()));
      }
    }
    EXPECT_EQ(total, store.size());
  }
}

TEST(ShardedStoreTest, MoreShardsThanRankingsIsLegal) {
  const RankingStore store = testutil::MakeUniformStore(5, 3, 40, 85);
  const ShardedStore sharded(store, 7, ShardingStrategy::kRoundRobin);
  ParallelRunner runner(&sharded);
  const auto queries = testutil::MakeQueries(store, 2, 86);
  for (const auto& query : queries) {
    EXPECT_EQ(runner.RangeQuery(Algorithm::kFV, query, MaxDistance(5)),
              testutil::BruteForce(store, query, MaxDistance(5)));
  }
}

}  // namespace
}  // namespace topk
