// Coarse index: exactness across the full configuration space (the
// paper's Lemma 1 correctness), phase accounting, and structural checks.

#include "coarse/coarse_index.h"

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cn_partitioner.h"
#include "invidx/filter_validate.h"
#include "test_util.h"

namespace topk {
namespace {

class CoarseEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<double, double, int, int>> {};

TEST_P(CoarseEquivalenceTest, MatchesBruteForce) {
  const auto [theta, theta_c, partitioner_int, drop_int] = GetParam();
  CoarseOptions options;
  options.theta_c = theta_c;
  options.partitioner = static_cast<PartitionerKind>(partitioner_int);
  options.drop = static_cast<DropMode>(drop_int);

  const uint32_t k = 10;
  const RankingStore store = testutil::MakeClusteredStore(k, 1200, 131);
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const auto queries = testutil::MakeQueries(store, 20, 132);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(index.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "theta=" << theta << " theta_c=" << theta_c
        << " partitioner=" << PartitionerKindName(options.partitioner)
        << " drop=" << drop_int;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoarseEquivalenceTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.2, 0.3),
                       ::testing::Values(0.06, 0.2, 0.5),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(0, 2)));

TEST(CoarseIndexTest, FallbackWhenRelaxedThresholdReachesMax) {
  // theta + radius >= dmax: the inverted index cannot see disjoint
  // medoids; the engine must fall back to scanning medoids and stay exact.
  const uint32_t k = 5;
  const RankingStore store = testutil::MakeClusteredStore(k, 400, 133);
  CoarseOptions options;
  options.theta_c = 0.8;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const auto queries = testutil::MakeQueries(store, 10, 134);
  const RawDistance theta_raw = RawThreshold(0.5, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(index.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw));
  }
}

TEST(CoarseIndexTest, PartitionCountShrinksWithThetaC) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1500, 135);
  size_t previous = store.size() + 1;
  for (double theta_c : {0.0, 0.1, 0.3, 0.6}) {
    CoarseOptions options;
    options.theta_c = theta_c;
    const CoarseIndex index = CoarseIndex::Build(&store, options);
    EXPECT_LE(index.num_partitions(), previous);
    previous = index.num_partitions();
  }
}

TEST(CoarseIndexTest, StrictModeMaxRadiusWithinThetaC) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 136);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  EXPECT_LE(index.max_radius(), RawThreshold(0.3, 10));
}

TEST(CoarseIndexTest, PhaseTimesAreRecorded) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 137);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const auto queries = testutil::MakeQueries(store, 20, 138);
  PhaseTimes phases;
  for (const auto& query : queries) {
    index.Query(query, RawThreshold(0.2, 10), nullptr, &phases);
  }
  EXPECT_GT(phases.filter_ms, 0.0);
  EXPECT_GT(phases.validate_ms, 0.0);
}

TEST(CoarseIndexTest, DistanceCallsBelowFvOnClusteredData) {
  // The headline effect: partition medoids absorb near-duplicates, so
  // coarse validation needs fewer Footrule calls than validating every
  // candidate as F&V does.
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 139);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);

  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  FilterValidateEngine fv(&store, &plain);

  const auto queries = testutil::MakeQueries(store, 20, 140);
  Statistics coarse_stats;
  Statistics fv_stats;
  const RawDistance theta_raw = RawThreshold(0.1, 10);
  for (const auto& query : queries) {
    index.Query(query, theta_raw, &coarse_stats);
    fv.Query(query, theta_raw, &fv_stats);
  }
  EXPECT_LT(coarse_stats.Get(Ticker::kDistanceCalls),
            fv_stats.Get(Ticker::kDistanceCalls));
}

TEST(CoarseIndexTest, BuildFromExternalPartitioning) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 141);
  Rng rng(11);
  Partitioning partitioning =
      CnPartition(store, RawThreshold(0.25, 10), &rng);
  CoarseOptions options;
  options.theta_c = 0.25;
  const CoarseIndex index = CoarseIndex::BuildFromPartitioning(
      &store, options, std::move(partitioning));
  const auto queries = testutil::MakeQueries(store, 10, 142);
  const RawDistance theta_raw = RawThreshold(0.2, 10);
  for (const auto& query : queries) {
    EXPECT_EQ(index.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw));
  }
}

TEST(CoarseIndexTest, MemoryUsageAccountsPartitions) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 143);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  EXPECT_GT(index.MemoryUsage(), 0u);
  EXPECT_EQ(index.partitioning().total_members(), store.size());
}

TEST(CoarseIndexTest, SingletonPartitionsBehaveAtThetaCZero) {
  const RankingStore store = testutil::MakeClusteredStore(10, 400, 144);
  CoarseOptions options;
  options.theta_c = 0.0;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const auto queries = testutil::MakeQueries(store, 10, 145);
  for (double theta : {0.0, 0.2}) {
    const RawDistance theta_raw = RawThreshold(theta, 10);
    for (const auto& query : queries) {
      EXPECT_EQ(index.Query(query, theta_raw),
                testutil::BruteForce(store, query, theta_raw));
    }
  }
}

}  // namespace
}  // namespace topk
