// KNN queries (extension beyond the paper's range-only evaluation):
// exactness of every searcher against the linear-scan oracle, pruning
// effectiveness, and edge cases.

#include "metric/knn.h"

#include <gtest/gtest.h>

#include "coarse/coarse_index.h"
#include "test_util.h"

namespace topk {
namespace {

class KnnEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, size_t>> {};

TEST_P(KnnEquivalenceTest, AllSearchersMatchLinearScan) {
  const auto [k, j] = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(k, 1000, 221);
  const BkTree bk = BkTree::BuildAll(&store);
  const MTree mt = MTree::BuildAll(&store);
  CoarseOptions coarse_options;
  coarse_options.theta_c = 0.3;
  const CoarseIndex coarse = CoarseIndex::Build(&store, coarse_options);

  const auto queries = testutil::MakeQueries(store, 15, 222);
  for (const PreparedQuery& query : queries) {
    const auto truth = LinearScanKnn(store, query, j);
    EXPECT_EQ(BkTreeKnn(bk, query, j), truth) << "BK k=" << k << " j=" << j;
    EXPECT_EQ(MTreeKnn(mt, query, j), truth) << "MT k=" << k << " j=" << j;
    EXPECT_EQ(coarse.Knn(query, j), truth) << "Coarse k=" << k << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u),
                       ::testing::Values(size_t{1}, size_t{5}, size_t{20},
                                         size_t{100})));

TEST(KnnTest, LinearScanOrdering) {
  RankingStore store(3);
  store.AddUnchecked(std::vector<ItemId>{1, 2, 3});  // id 0
  store.AddUnchecked(std::vector<ItemId>{2, 1, 3});  // id 1, distance 2
  store.AddUnchecked(std::vector<ItemId>{1, 2, 3});  // id 2, duplicate
  store.AddUnchecked(std::vector<ItemId>{7, 8, 9});  // id 3, disjoint
  const PreparedQuery query(
      std::move(Ranking::Create({1, 2, 3})).ValueOrDie());
  const auto nn = LinearScanKnn(store, query, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], (Neighbor{0, 0}));
  EXPECT_EQ(nn[1], (Neighbor{2, 0}));  // tie broken by id
  EXPECT_EQ(nn[2], (Neighbor{1, 2}));
}

TEST(KnnTest, JLargerThanCollectionReturnsEverything) {
  const RankingStore store = testutil::MakeClusteredStore(5, 50, 223);
  const BkTree bk = BkTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 3, 224);
  for (const auto& query : queries) {
    const auto nn = BkTreeKnn(bk, query, 500);
    EXPECT_EQ(nn.size(), store.size());
    for (size_t i = 1; i < nn.size(); ++i) {
      EXPECT_LE(nn[i - 1].distance, nn[i].distance);
    }
  }
}

TEST(KnnTest, JZeroReturnsNothing) {
  const RankingStore store = testutil::MakeClusteredStore(5, 50, 225);
  const BkTree bk = BkTree::BuildAll(&store);
  const MTree mt = MTree::BuildAll(&store);
  const PreparedQuery query(store.Materialize(0));
  EXPECT_TRUE(BkTreeKnn(bk, query, 0).empty());
  EXPECT_TRUE(MTreeKnn(mt, query, 0).empty());
  EXPECT_TRUE(LinearScanKnn(store, query, 0).empty());
}

TEST(KnnTest, TreesPruneDistanceCallsForSmallJ) {
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 226);
  const BkTree bk = BkTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 10, 227);
  Statistics stats;
  for (const auto& query : queries) BkTreeKnn(bk, query, 5, &stats);
  EXPECT_LT(stats.Get(Ticker::kDistanceCalls),
            queries.size() * store.size())
      << "KNN must not degenerate into a full scan";
}

TEST(KnnTest, NeighborDistancesAreExact) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 228);
  const MTree mt = MTree::BuildAll(&store);
  const auto queries = testutil::MakeQueries(store, 5, 229);
  for (const auto& query : queries) {
    for (const Neighbor& neighbor : MTreeKnn(mt, query, 10)) {
      EXPECT_EQ(neighbor.distance,
                FootruleDistance(query.sorted_view(),
                                 store.sorted(neighbor.id)));
    }
  }
}

TEST(KnnTest, DuplicateHeavyCollection) {
  RankingStore store(5);
  const ItemId a[] = {1, 2, 3, 4, 5};
  const ItemId b[] = {1, 2, 3, 5, 4};
  for (int i = 0; i < 100; ++i) {
    store.AddUnchecked(a);
    store.AddUnchecked(b);
  }
  const BkTree bk = BkTree::BuildAll(&store);
  const PreparedQuery query(std::move(Ranking::Create(
                                std::vector<ItemId>(a, a + 5)))
                                .ValueOrDie());
  const auto nn = BkTreeKnn(bk, query, 150);
  ASSERT_EQ(nn.size(), 150u);
  // The 100 exact copies come first (distance 0, ids even), then 50 of
  // the swapped variant (distance 2).
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(nn[i].distance, 0u);
  for (size_t i = 100; i < 150; ++i) EXPECT_EQ(nn[i].distance, 2u);
}

}  // namespace
}  // namespace topk
