// ListMerge: exactness of the on-the-fly distance finalization and its
// threshold-agnostic behaviour.

#include "invidx/list_merge.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace topk {
namespace {

class ListMergeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(ListMergeEquivalenceTest, MatchesBruteForce) {
  const auto [k, theta] = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(k, 1200, 31 + k);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListMergeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 25, 55);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListMergeEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u, 20u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3)));

TEST(ListMergeTest, ScansEveryEntryRegardlessOfThreshold) {
  // The paper calls ListMerge threshold-agnostic: the lists are read fully.
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 32);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListMergeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 10, 33);

  Statistics stats_low;
  Statistics stats_high;
  for (const auto& query : queries) {
    engine.Query(query, RawThreshold(0.0, 10), &stats_low);
    engine.Query(query, RawThreshold(0.3, 10), &stats_high);
  }
  EXPECT_EQ(stats_low.Get(Ticker::kPostingEntriesScanned),
            stats_high.Get(Ticker::kPostingEntriesScanned));
  // And it never calls the standalone distance function.
  EXPECT_EQ(stats_low.Get(Ticker::kDistanceCalls), 0u);
}

TEST(ListMergeTest, ResultsComeOutIdSorted) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 34);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListMergeEngine engine(&index);
  const auto queries = testutil::MakeQueries(store, 10, 35);
  for (const auto& query : queries) {
    const auto results = engine.Query(query, RawThreshold(0.3, 10));
    EXPECT_TRUE(std::is_sorted(results.begin(), results.end()));
  }
}

TEST(ListMergeTest, HandlesQueryWithEmptyLists) {
  const RankingStore store = testutil::MakeUniformStore(5, 100, 30, 36);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListMergeEngine engine(&index);
  PreparedQuery query(
      std::move(Ranking::Create({500, 501, 502, 503, 504})).ValueOrDie());
  EXPECT_TRUE(engine.Query(query, RawThreshold(0.3, 5)).empty());
}

TEST(ListMergeTest, CountsEachCandidateOnce) {
  RankingStore store(3);
  store.AddUnchecked(std::vector<ItemId>{1, 2, 3});
  store.AddUnchecked(std::vector<ItemId>{3, 2, 1});
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListMergeEngine engine(&index);
  PreparedQuery query(std::move(Ranking::Create({1, 2, 3})).ValueOrDie());
  Statistics stats;
  engine.Query(query, MaxDistance(3), &stats);
  // Both rankings share all items with the query; each is one candidate.
  EXPECT_EQ(stats.Get(Ticker::kCandidates), 2u);
  EXPECT_EQ(stats.Get(Ticker::kPostingEntriesScanned), 6u);
}

}  // namespace
}  // namespace topk
