// Statistics tickers, stopwatch and the RNG primitives.

#include "core/statistics.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "core/rng.h"

namespace topk {
namespace {

TEST(StatisticsTest, AddAndGet) {
  Statistics stats;
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), 0u);
  stats.Add(Ticker::kDistanceCalls);
  stats.Add(Ticker::kDistanceCalls, 5);
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), 6u);
}

TEST(StatisticsTest, ResetClearsAll) {
  Statistics stats;
  stats.Add(Ticker::kCandidates, 10);
  stats.Add(Ticker::kResults, 3);
  stats.Reset();
  EXPECT_EQ(stats.Get(Ticker::kCandidates), 0u);
  EXPECT_EQ(stats.Get(Ticker::kResults), 0u);
}

TEST(StatisticsTest, MergeAccumulates) {
  Statistics a;
  Statistics b;
  a.Add(Ticker::kDistanceCalls, 2);
  b.Add(Ticker::kDistanceCalls, 3);
  b.Add(Ticker::kListsDropped, 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(Ticker::kDistanceCalls), 5u);
  EXPECT_EQ(a.Get(Ticker::kListsDropped), 1u);
}

// The parallel runner combines per-shard / per-thread blocks in whatever
// order tasks complete, so the merge must be order-insensitive. Ticker
// addition is unsigned addition: commutative, associative, with the
// default-constructed block as identity. Proved here over ALL tickers
// with distinct per-ticker values (a symmetric counterexample would slip
// through equal values).
TEST(StatisticsTest, MergeIsCommutativeOnAllTickers) {
  Statistics a;
  Statistics b;
  for (int i = 0; i < kNumTickers; ++i) {
    a.Add(static_cast<Ticker>(i), static_cast<uint64_t>(3 * i + 1));
    b.Add(static_cast<Ticker>(i), static_cast<uint64_t>(1000 - 7 * i));
  }
  EXPECT_EQ(Merge(a, b), Merge(b, a));
}

TEST(StatisticsTest, MergeIsAssociativeOnAllTickers) {
  Statistics a;
  Statistics b;
  Statistics c;
  for (int i = 0; i < kNumTickers; ++i) {
    a.Add(static_cast<Ticker>(i), static_cast<uint64_t>(i + 1));
    b.Add(static_cast<Ticker>(i), static_cast<uint64_t>(i * i));
    c.Add(static_cast<Ticker>(i), static_cast<uint64_t>(5000 - 11 * i));
  }
  EXPECT_EQ(Merge(Merge(a, b), c), Merge(a, Merge(b, c)));
  // MergeFrom agrees with the value form regardless of grouping.
  Statistics left_fold = a;
  left_fold.MergeFrom(b);
  left_fold.MergeFrom(c);
  EXPECT_EQ(left_fold, Merge(a, Merge(b, c)));
}

TEST(StatisticsTest, MergeIdentityAndOverflowWrap) {
  Statistics a;
  a.Add(Ticker::kDistanceCalls, 42);
  EXPECT_EQ(Merge(a, Statistics{}), a);
  EXPECT_EQ(Merge(Statistics{}, a), a);

  // Even at wrap-around (unsigned overflow is defined), grouping does not
  // matter — the merge stays associative in the degenerate extreme.
  Statistics big;
  big.Add(Ticker::kDistanceCalls, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(Merge(Merge(big, a), a), Merge(big, Merge(a, a)));
}

TEST(StatisticsTest, NullSafeHelper) {
  AddTicker(nullptr, Ticker::kDistanceCalls);  // must not crash
  Statistics stats;
  AddTicker(&stats, Ticker::kDistanceCalls, 4);
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), 4u);
}

TEST(StatisticsTest, AllTickersHaveNames) {
  for (int i = 0; i < kNumTickers; ++i) {
    EXPECT_STRNE(TickerName(static_cast<Ticker>(i)), "unknown");
  }
}

TEST(PhaseTimesTest, MergeAndTotal) {
  PhaseTimes a{1.5, 2.5};
  PhaseTimes b{0.5, 1.0};
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.filter_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.validate_ms, 3.5);
  EXPECT_DOUBLE_EQ(a.total_ms(), 5.5);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  EXPECT_GT(watch.ElapsedNanos(), 0u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace topk
