// Differential suite for the live write path (mutate/MutableStore and
// harness/ShardedMutableStore): a store mutated incrementally — inserts,
// deletes, foreground and background merges, arbitrary interleavings —
// must answer range and k-NN queries bit-identically to a store rebuilt
// from scratch out of the alive rows in global-id order. The oracle is a
// shadow map of alive (global id -> items) replayed into a fresh
// RankingStore and checked with the canonical reference scans
// (testutil::BruteForce, LinearScanKnn).
//
// The concurrent cases run under the TSan CI leg: writers, a merging
// worker, and readers race freely; exactness is re-established from
// per-thread insert logs after the join.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/types.h"
#include "harness/sharded_mutable_store.h"
#include "metric/knn.h"
#include "mutate/mutable_store.h"
#include "test_util.h"

namespace topk {
namespace {

using ShadowMap = std::map<RankingId, std::vector<ItemId>>;

struct Rebuilt {
  RankingStore store;
  std::vector<RankingId> globals;  // row -> global id, ascending
};

// The differential oracle: the alive rows replayed in ascending global-id
// order into a fresh store.
Rebuilt RebuildFromShadow(uint32_t k, const ShadowMap& alive) {
  Rebuilt r{RankingStore(k), {}};
  r.store.Reserve(alive.size());
  r.globals.reserve(alive.size());
  for (const auto& [id, items] : alive) {
    r.store.AddUnchecked(items);
    r.globals.push_back(id);
  }
  return r;
}

std::vector<RankingId> ExpectedRange(const Rebuilt& r,
                                     const PreparedQuery& query,
                                     RawDistance theta_raw) {
  std::vector<RankingId> locals = testutil::BruteForce(r.store, query,
                                                       theta_raw);
  for (RankingId& id : locals) id = r.globals[id];
  return locals;
}

std::vector<Neighbor> ExpectedKnn(const Rebuilt& r,
                                  const PreparedQuery& query, size_t j) {
  // The local -> global map is strictly increasing, so (distance, local)
  // order IS (distance, global) order.
  std::vector<Neighbor> expected = LinearScanKnn(r.store, query, j);
  for (Neighbor& n : expected) n.id = r.globals[n.id];
  return expected;
}

// Checks one store (any of the two mutable front doors share this
// signature shape) against the rebuilt oracle on a mixed query set.
template <typename Store>
void ExpectBitExact(Store& store, const ShadowMap& alive, uint32_t k,
                    const std::vector<PreparedQuery>& queries,
                    const char* where) {
  const Rebuilt r = RebuildFromShadow(k, alive);
  ASSERT_EQ(store.live_size(), alive.size()) << where;
  // Thetas span tight, loose, and the >= dmax edge where disjoint
  // rankings qualify and the posting union stops being a superset.
  const RawDistance thetas[] = {RawThreshold(0.05, k), RawThreshold(0.3, k),
                                MaxDistance(k)};
  const size_t js[] = {1, 7, alive.size() + 3};
  for (const PreparedQuery& query : queries) {
    for (const RawDistance theta_raw : thetas) {
      EXPECT_EQ(store.RangeQuery(query, theta_raw),
                ExpectedRange(r, query, theta_raw))
          << where << " theta_raw=" << theta_raw;
    }
    for (const size_t j : js) {
      EXPECT_EQ(store.KnnQuery(query, j), ExpectedKnn(r, query, j))
          << where << " j=" << j;
    }
  }
}

TEST(MutableStoreTest, EmptyStoreBasics) {
  MutableStore store(5);
  EXPECT_EQ(store.k(), 5u);
  EXPECT_EQ(store.live_size(), 0u);
  EXPECT_FALSE(store.Contains(0));
  EXPECT_FALSE(store.Delete(0));
  EXPECT_FALSE(store.MergeNow());  // nothing to merge
  const auto queries = testutil::MakeQueries(
      testutil::MakeUniformStore(5, 10, 40, 1001), 3, 1002);
  EXPECT_TRUE(store.RangeQuery(queries[0], MaxDistance(5)).empty());
  EXPECT_TRUE(store.KnnQuery(queries[0], 4).empty());
}

TEST(MutableStoreTest, InterleavedMutationsMatchRebuildBitExact) {
  constexpr uint32_t kK = 7;
  const RankingStore source = testutil::MakeClusteredStore(kK, 700, 1011);
  const auto queries = testutil::MakeQueries(source, 8, 1012);

  // Seeded main segment: rows 0..199 pre-exist as an immutable build.
  RankingStore seed(kK);
  ShadowMap alive;
  for (RankingId id = 0; id < 200; ++id) {
    const auto items = source.view(id).items();
    seed.AddUnchecked(items);
    alive[id] = {items.begin(), items.end()};
  }
  MutableStore store(seed);
  ASSERT_EQ(store.live_size(), 200u);
  ASSERT_EQ(store.total_inserted(), 200u);

  Rng rng(1013);
  size_t next_source = 200;
  std::vector<RankingId> alive_ids;
  for (int step = 0; step < 8; ++step) {
    // ~60 mutations per step: inserts, deletes of random alive ids, and
    // a foreground merge every other step.
    for (int op = 0; op < 60; ++op) {
      const uint64_t dice = rng.Below(10);
      if (dice < 6 && next_source < source.size()) {
        const auto items = source.view(
            static_cast<RankingId>(next_source++)).items();
        const RankingId id = store.Insert(RankingView(items.data(), kK));
        EXPECT_EQ(id, static_cast<RankingId>(store.total_inserted() - 1));
        alive[id] = {items.begin(), items.end()};
      } else if (!alive.empty()) {
        alive_ids.clear();
        for (const auto& [id, items] : alive) alive_ids.push_back(id);
        const RankingId victim =
            alive_ids[rng.Below(alive_ids.size())];
        EXPECT_TRUE(store.Delete(victim));
        EXPECT_FALSE(store.Delete(victim));  // double delete: no-op
        alive.erase(victim);
      }
    }
    if (step % 2 == 1) store.MergeNow();
    ExpectBitExact(store, alive, kK, queries, "interleaved");
  }
  // Drain: delete everything, merge, and the store must answer empty.
  for (const auto& [id, items] : alive) EXPECT_TRUE(store.Delete(id));
  alive.clear();
  EXPECT_TRUE(store.MergeNow());
  EXPECT_EQ(store.tombstone_count(), 0u);  // all compacted
  ExpectBitExact(store, alive, kK, queries, "drained");
}

TEST(MutableStoreTest, DeleteThenReinsertSameIdRangeGetsFreshIds) {
  constexpr uint32_t kK = 6;
  const RankingStore source = testutil::MakeUniformStore(kK, 120, 300, 1021);
  const auto queries = testutil::MakeQueries(source, 6, 1022);

  MutableStore store(kK);
  ShadowMap alive;
  for (RankingId id = 0; id < 120; ++id) {
    const auto items = source.view(id).items();
    EXPECT_EQ(store.Insert(RankingView(items.data(), kK)), id);
    alive[id] = {items.begin(), items.end()};
  }
  // Delete the id range [40, 80), merge it away, then reinsert the SAME
  // content. Ids are never reused: the rows come back as 120..159.
  for (RankingId id = 40; id < 80; ++id) {
    EXPECT_TRUE(store.Delete(id));
    alive.erase(id);
  }
  EXPECT_TRUE(store.MergeNow());
  for (RankingId id = 40; id < 80; ++id) {
    EXPECT_FALSE(store.Contains(id));
    EXPECT_FALSE(store.Delete(id));  // merged away: still dead, no revive
  }
  for (RankingId old_id = 40; old_id < 80; ++old_id) {
    const auto items = source.view(old_id).items();
    const RankingId fresh = store.Insert(RankingView(items.data(), kK));
    EXPECT_EQ(fresh, old_id + 80);
    EXPECT_TRUE(store.Contains(fresh));
    alive[fresh] = {items.begin(), items.end()};
  }
  ExpectBitExact(store, alive, kK, queries, "reinsert-pre-merge");
  EXPECT_TRUE(store.MergeNow());
  ExpectBitExact(store, alive, kK, queries, "reinsert-post-merge");
}

TEST(MutableStoreTest, DmaxThetaIncludesDisjointRankings) {
  // Two rankings with no items in common sit at exactly dmax = k(k+1);
  // a dmax-threshold query through either must return both — the filter
  // path alone would miss the disjoint one.
  constexpr uint32_t kK = 3;
  MutableStore store(kK);
  const std::vector<ItemId> a{0, 1, 2};
  const std::vector<ItemId> b{10, 11, 12};
  store.Insert(RankingView(a.data(), kK));
  store.Insert(RankingView(b.data(), kK));
  const PreparedQuery query(std::move(Ranking::Create({0, 1, 2})).ValueOrDie());
  EXPECT_EQ(store.RangeQuery(query, MaxDistance(kK)),
            (std::vector<RankingId>{0, 1}));
  EXPECT_EQ(store.RangeQuery(query, MaxDistance(kK) - 1),
            (std::vector<RankingId>{0}));
  EXPECT_TRUE(store.Delete(1));
  EXPECT_EQ(store.RangeQuery(query, MaxDistance(kK)),
            (std::vector<RankingId>{0}));
}

TEST(MutableStoreTest, GenerationBumpsOnEveryMutation) {
  constexpr uint32_t kK = 4;
  const RankingStore source = testutil::MakeUniformStore(kK, 8, 32, 1031);
  MutableStore store(kK);
  uint64_t listener_fires = 0;
  store.AddMutationListener([&listener_fires] { ++listener_fires; });

  const uint64_t g0 = store.generation();
  EXPECT_GE(g0, 1u);  // generation 0 is reserved, never published

  const auto items = source.view(0).items();
  store.Insert(RankingView(items.data(), kK));
  const uint64_t g1 = store.generation();
  EXPECT_GT(g1, g0);
  EXPECT_EQ(listener_fires, 1u);

  EXPECT_TRUE(store.Delete(0));
  const uint64_t g2 = store.generation();
  EXPECT_GT(g2, g1);
  EXPECT_EQ(listener_fires, 2u);

  EXPECT_FALSE(store.Delete(0));  // failed mutation: no bump
  EXPECT_EQ(store.generation(), g2);
  EXPECT_EQ(listener_fires, 2u);

  EXPECT_TRUE(store.MergeNow());  // swap bumps
  const uint64_t g3 = store.generation();
  EXPECT_GT(g3, g2);
  EXPECT_EQ(listener_fires, 3u);

  EXPECT_FALSE(store.MergeNow());  // nothing to merge: no bump
  EXPECT_EQ(store.generation(), g3);
  EXPECT_EQ(listener_fires, 3u);
}

TEST(MutableStoreTest, BackgroundWorkerMergesAndStaysExact) {
  constexpr uint32_t kK = 6;
  const RankingStore source = testutil::MakeClusteredStore(kK, 900, 1041);
  const auto queries = testutil::MakeQueries(source, 5, 1042);

  MutableStoreOptions options;
  options.merge_threshold = 64;  // the worker seals whenever delta >= 64
  MutableStore store(kK, options);
  ShadowMap alive;
  for (RankingId id = 0; id < source.size(); ++id) {
    const auto items = source.view(id).items();
    EXPECT_EQ(store.Insert(RankingView(items.data(), kK)), id);
    alive[id] = {items.begin(), items.end()};
    if (id % 7 == 3) {  // deletes racing the background merges
      EXPECT_TRUE(store.Delete(id - 2));
      alive.erase(id - 2);
    }
    if (id % 250 == 249) {
      // Mid-stream differential: exact no matter where the worker is.
      ExpectBitExact(store, alive, kK, queries, "mid-stream");
    }
  }
  // Quiesce: MergeNow waits out any in-flight merge, then folds the rest.
  store.MergeNow();
  EXPECT_LT(store.delta_size(), 64u);
  ExpectBitExact(store, alive, kK, queries, "after-worker");
}

TEST(ShardedMutableStoreTest, MatchesUnshardedBitExact) {
  constexpr uint32_t kK = 7;
  const RankingStore source = testutil::MakeClusteredStore(kK, 400, 1051);
  const auto queries = testutil::MakeQueries(source, 6, 1052);

  for (const ShardingStrategy strategy :
       {ShardingStrategy::kRoundRobin, ShardingStrategy::kHashById}) {
    for (const size_t num_shards : {size_t{1}, size_t{3}}) {
      ShardedMutableStore store(kK, num_shards, strategy);
      ShadowMap alive;
      Rng rng(1053);
      size_t next_source = 0;
      std::vector<RankingId> alive_ids;
      for (int step = 0; step < 4; ++step) {
        for (int op = 0; op < 80; ++op) {
          if (rng.Below(10) < 7 && next_source < source.size()) {
            const auto items = source.view(
                static_cast<RankingId>(next_source++)).items();
            const RankingId id = store.Insert(RankingView(items.data(), kK));
            // Wrapper ids are dense in insertion order, same as the
            // unsharded store's.
            EXPECT_EQ(id, static_cast<RankingId>(store.total_inserted() - 1));
            alive[id] = {items.begin(), items.end()};
          } else if (!alive.empty()) {
            alive_ids.clear();
            for (const auto& [id, items] : alive) alive_ids.push_back(id);
            const RankingId victim = alive_ids[rng.Below(alive_ids.size())];
            EXPECT_TRUE(store.Delete(victim));
            EXPECT_FALSE(store.Contains(victim));
            alive.erase(victim);
          }
        }
        if (step == 2) store.MergeAllNow();
        ExpectBitExact(store, alive, kK, queries,
                       ShardingStrategyName(strategy));
      }
    }
  }
}

TEST(ShardedMutableStoreTest, GenerationSumsShardsAndListenersFanOut) {
  constexpr uint32_t kK = 4;
  const RankingStore source = testutil::MakeUniformStore(kK, 6, 24, 1061);
  ShardedMutableStore store(kK, 3, ShardingStrategy::kHashById);
  uint64_t fires = 0;
  store.AddMutationListener([&fires] { ++fires; });
  const uint64_t g0 = store.generation();
  for (RankingId id = 0; id < 6; ++id) {
    const auto items = source.view(id).items();
    store.Insert(RankingView(items.data(), kK));
  }
  EXPECT_EQ(fires, 6u);
  EXPECT_EQ(store.generation(), g0 + 6);
  EXPECT_TRUE(store.Delete(3));
  EXPECT_EQ(fires, 7u);
  EXPECT_TRUE(store.MergeAllNow());
  EXPECT_GT(store.generation(), g0 + 7);
}

// TSan leg target: writers, background merge worker, and readers race on
// one store. Readers check structural sanity live; exactness is checked
// against the per-writer insert logs after the join.
TEST(MutableStoreTest, ConcurrentWritersAndReadersUnderMerges) {
  constexpr uint32_t kK = 5;
  constexpr size_t kPerWriter = 300;
  const RankingStore source =
      testutil::MakeClusteredStore(kK, 2 * kPerWriter, 1071);
  const auto queries = testutil::MakeQueries(source, 4, 1072);

  MutableStoreOptions options;
  options.merge_threshold = 32;
  MutableStore store(kK, options);

  // Each writer inserts its half of the source and deletes every 5th of
  // its own rows; logs record what it left alive.
  std::vector<ShadowMap> writer_alive(2);
  std::vector<std::thread> writers;
  for (size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const auto items =
            source.view(static_cast<RankingId>(w * kPerWriter + i)).items();
        const RankingId id = store.Insert(RankingView(items.data(), kK));
        if (i % 5 == 4) {
          EXPECT_TRUE(store.Delete(id));
        } else {
          writer_alive[w][id] = {items.begin(), items.end()};
        }
      }
    });
  }
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      const RawDistance theta_raw = RawThreshold(0.2, kK);
      while (!stop_readers.load(std::memory_order_acquire)) {
        for (const PreparedQuery& query : queries) {
          const std::vector<RankingId> ids =
              store.RangeQuery(query, theta_raw);
          EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
          const std::vector<Neighbor> nn = store.KnnQuery(query, 9);
          EXPECT_LE(nn.size(), 9u);
          for (size_t i = 1; i < nn.size(); ++i) {
            EXPECT_LE(nn[i - 1].distance, nn[i].distance);
          }
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ShadowMap alive;
  for (const ShadowMap& log : writer_alive) alive.insert(log.begin(),
                                                         log.end());
  ExpectBitExact(store, alive, kK, queries, "post-join");
  store.MergeNow();
  ExpectBitExact(store, alive, kK, queries, "post-join-merged");
}

// TSan leg target for the sharded wrapper: concurrent writers through the
// coordinator, per-shard background workers underneath.
TEST(ShardedMutableStoreTest, ConcurrentWritersUnderShardMerges) {
  constexpr uint32_t kK = 5;
  constexpr size_t kPerWriter = 200;
  const RankingStore source =
      testutil::MakeClusteredStore(kK, 2 * kPerWriter, 1081);
  const auto queries = testutil::MakeQueries(source, 3, 1082);

  MutableStoreOptions shard_options;
  shard_options.merge_threshold = 16;
  ShardedMutableStore store(kK, 3, ShardingStrategy::kRoundRobin,
                            shard_options);
  std::vector<ShadowMap> writer_alive(2);
  std::vector<std::thread> writers;
  for (size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const auto items =
            source.view(static_cast<RankingId>(w * kPerWriter + i)).items();
        const RankingId id = store.Insert(RankingView(items.data(), kK));
        if (i % 4 == 3) {
          EXPECT_TRUE(store.Delete(id));
        } else {
          writer_alive[w][id] = {items.begin(), items.end()};
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ShadowMap alive;
  for (const ShadowMap& log : writer_alive) alive.insert(log.begin(),
                                                         log.end());
  store.MergeAllNow();
  ExpectBitExact(store, alive, kK, queries, "sharded-post-join");
}

}  // namespace
}  // namespace topk
