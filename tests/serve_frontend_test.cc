// The online serving layer: inter-query batching, exact result/candidate
// caching, generation-based invalidation, and the concurrency contract
// (this suite runs under TSan in CI alongside the parallel harness).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "metric/knn.h"
#include "mutate/mutable_store.h"
#include "serve/frontend.h"
#include "serve/live_frontend.h"
#include "serve/lru_cache.h"
#include "test_util.h"

namespace topk {
namespace {

CandidateCacheKey SetKey(std::vector<ItemId> items) {
  CandidateCacheKey key;
  key.hash = ItemSetFingerprint(items);
  key.items = std::move(items);
  return key;
}

TEST(ShardedLruCacheTest, LruEvictionOrder) {
  ShardedLruCache<CandidateCacheKey, int> cache(/*capacity=*/2,
                                                /*num_shards=*/1);
  EXPECT_EQ(cache.Insert(SetKey({1}), 0, 10), 0u);
  EXPECT_EQ(cache.Insert(SetKey({2}), 0, 20), 0u);
  int value = 0;
  EXPECT_TRUE(cache.Lookup(SetKey({1}), 0, &value));  // {1} now most recent
  EXPECT_EQ(value, 10);
  EXPECT_EQ(cache.Insert(SetKey({3}), 0, 30), 1u);  // evicts LRU = {2}
  EXPECT_FALSE(cache.Lookup(SetKey({2}), 0, &value));
  EXPECT_TRUE(cache.Lookup(SetKey({1}), 0, &value));
  EXPECT_TRUE(cache.Lookup(SetKey({3}), 0, &value));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, CapacityZeroDisables) {
  ShardedLruCache<CandidateCacheKey, int> cache(0, 8);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.Insert(SetKey({1}), 0, 10), 0u);
  int value = 0;
  EXPECT_FALSE(cache.Lookup(SetKey({1}), 0, &value));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCacheTest, EpochMismatchInvalidatesLazily) {
  ShardedLruCache<CandidateCacheKey, int> cache(8, 2);
  cache.Insert(SetKey({1, 2}), /*epoch=*/0, 7);
  int value = 0;
  EXPECT_TRUE(cache.Lookup(SetKey({1, 2}), 0, &value));
  EXPECT_FALSE(cache.Lookup(SetKey({1, 2}), 1, &value));  // stale: erased
  EXPECT_EQ(cache.size(), 0u);
  // Re-inserting under the new generation serves again.
  cache.Insert(SetKey({1, 2}), 1, 8);
  EXPECT_TRUE(cache.Lookup(SetKey({1, 2}), 1, &value));
  EXPECT_EQ(value, 8);
}

TEST(ShardedLruCacheTest, InsertReplacesSameKey) {
  ShardedLruCache<CandidateCacheKey, int> cache(4, 1);
  cache.Insert(SetKey({5}), 0, 1);
  cache.Insert(SetKey({5}), 0, 2);
  int value = 0;
  EXPECT_TRUE(cache.Lookup(SetKey({5}), 0, &value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------

class ServeFrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = testutil::MakeClusteredStore(/*k=*/10, /*n=*/600, /*seed=*/31);
    queries_ = testutil::MakeQueries(store_, 10, /*seed=*/32);
    theta_ = RawThreshold(0.3, store_.k());
  }

  RankingStore store_{10};
  std::vector<PreparedQuery> queries_;
  RawDistance theta_ = 0;
};

TEST_F(ServeFrontendTest, ResponsesAlignWithRequestIdsAcrossThreads) {
  QueryFrontendOptions options;
  options.num_threads = 4;
  QueryFrontend frontend(&store_, options);

  // Duplicate-heavy batch over two algorithms: response i must answer
  // request i exactly, regardless of executor interleaving.
  std::vector<ServeRequest> requests;
  for (int round = 0; round < 3; ++round) {
    for (const PreparedQuery& query : queries_) {
      requests.push_back(ServeRequest::Range(
          round % 2 == 0 ? Algorithm::kCoarse : Algorithm::kFV, query,
          theta_));
    }
  }
  const auto responses = frontend.ServeBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].ids,
              testutil::BruteForce(store_, *requests[i].query,
                                   requests[i].theta_raw))
        << "request " << i;
  }
}

TEST_F(ServeFrontendTest, ReissuedQueriesHitTheResultCache) {
  QueryFrontendOptions options;
  options.num_threads = 1;  // deterministic ticker counts
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kCoarse, query, theta_));
  }
  Statistics cold;
  const auto first = frontend.ServeBatch(requests, &cold);
  EXPECT_EQ(cold.Get(Ticker::kResultCacheHits), 0u);
  EXPECT_EQ(cold.Get(Ticker::kResultCacheMisses), requests.size());

  Statistics warm;
  const auto second = frontend.ServeBatch(requests, &warm);
  EXPECT_EQ(warm.Get(Ticker::kResultCacheHits), requests.size());
  EXPECT_EQ(warm.Get(Ticker::kDistanceCalls), 0u);  // no engine touched
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(second[i].result_cache_hit);
    EXPECT_EQ(second[i].ids, first[i].ids);
  }
}

TEST_F(ServeFrontendTest, PermutedQueriesHitTheCandidateCache) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  QueryFrontend frontend(&store_, options);

  const PreparedQuery& original = queries_[0];
  // Same item set, different order: a different answer key but the same
  // candidate key.
  std::vector<ItemId> reversed(original.view().items().begin(),
                               original.view().items().end());
  std::reverse(reversed.begin(), reversed.end());
  const PreparedQuery permuted(
      std::move(Ranking::Create(reversed)).ValueOrDie());

  Statistics stats;
  const ServeRequest warmup[] = {
      ServeRequest::Range(Algorithm::kFV, original, theta_)};
  frontend.ServeBatch(warmup, &stats);
  EXPECT_EQ(stats.Get(Ticker::kCandidateCacheMisses), 1u);

  Statistics permuted_stats;
  const ServeRequest probe[] = {
      ServeRequest::Range(Algorithm::kFV, permuted, theta_)};
  const auto responses = frontend.ServeBatch(probe, &permuted_stats);
  EXPECT_EQ(permuted_stats.Get(Ticker::kCandidateCacheHits), 1u);
  EXPECT_TRUE(responses[0].candidate_cache_hit);
  EXPECT_FALSE(responses[0].result_cache_hit);
  EXPECT_EQ(responses[0].ids,
            testutil::BruteForce(store_, permuted, theta_));
}

TEST_F(ServeFrontendTest, CapacityZeroStaysExactWithoutCaching) {
  QueryFrontendOptions options;
  options.num_threads = 2;
  options.result_cache_capacity = 0;
  options.candidate_cache_capacity = 0;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (int round = 0; round < 2; ++round) {
    for (const PreparedQuery& query : queries_) {
      requests.push_back(
          ServeRequest::Range(Algorithm::kBlockedPruneDrop, query, theta_));
    }
  }
  Statistics stats;
  const auto responses = frontend.ServeBatch(requests, &stats);
  EXPECT_EQ(stats.Get(Ticker::kResultCacheHits), 0u);
  EXPECT_EQ(stats.Get(Ticker::kCandidateCacheHits), 0u);
  EXPECT_EQ(frontend.result_cache_size(), 0u);
  EXPECT_EQ(frontend.candidate_cache_size(), 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].ids,
              testutil::BruteForce(store_, *requests[i].query, theta_));
  }
}

TEST_F(ServeFrontendTest, CapacityOneEvictsAndStaysExact) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  options.result_cache_capacity = 1;
  options.candidate_cache_capacity = 0;
  QueryFrontend frontend(&store_, options);

  const PreparedQuery& a = queries_[0];
  const PreparedQuery& b = queries_[1];
  auto serve = [&](const PreparedQuery& query, Statistics* stats) {
    const ServeRequest request[] = {
        ServeRequest::Range(Algorithm::kFV, query, theta_)};
    return frontend.ServeBatch(request, stats)[0];
  };
  Statistics stats;
  serve(a, &stats);                              // miss, insert a
  EXPECT_TRUE(serve(a, &stats).result_cache_hit);  // hit
  serve(b, &stats);                              // miss, evicts a
  EXPECT_GE(stats.Get(Ticker::kResultCacheEvictions), 1u);
  const auto a_again = serve(a, &stats);  // miss again, still exact
  EXPECT_FALSE(a_again.result_cache_hit);
  EXPECT_EQ(a_again.ids, testutil::BruteForce(store_, a, theta_));
  EXPECT_EQ(stats.Get(Ticker::kResultCacheHits), 1u);
}

TEST_F(ServeFrontendTest, HugeCapacityCachesEverything) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  options.result_cache_capacity = size_t{1} << 20;
  options.candidate_cache_capacity = size_t{1} << 20;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kCoarse, query, theta_));
  }
  frontend.ServeBatch(requests);
  Statistics warm;
  frontend.ServeBatch(requests, &warm);
  EXPECT_EQ(warm.Get(Ticker::kResultCacheHits), requests.size());
  EXPECT_EQ(warm.Get(Ticker::kResultCacheEvictions), 0u);
}

TEST_F(ServeFrontendTest, InvalidationMakesEveryEntryUnservable) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kFV, query, theta_));
  }
  frontend.ServeBatch(requests);
  const uint64_t before = frontend.epoch();
  frontend.InvalidateCaches();
  EXPECT_EQ(frontend.epoch(), before + 1);

  Statistics stats;
  const auto responses = frontend.ServeBatch(requests, &stats);
  EXPECT_EQ(stats.Get(Ticker::kResultCacheHits), 0u);
  EXPECT_EQ(stats.Get(Ticker::kCandidateCacheHits), 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].ids,
              testutil::BruteForce(store_, *requests[i].query, theta_));
  }
  // The new generation repopulates and serves again.
  Statistics warm;
  frontend.ServeBatch(requests, &warm);
  EXPECT_EQ(warm.Get(Ticker::kResultCacheHits), requests.size());
}

TEST_F(ServeFrontendTest, ExceptionPropagatesAndFrontendStaysUsable) {
  QueryFrontendOptions options;
  options.num_threads = 3;
  QueryFrontend frontend(&store_, options);

  // kMinimalFV is workload-bound and unservable; the batch must rethrow
  // after every other request completed.
  std::vector<ServeRequest> requests;
  requests.push_back(ServeRequest::Range(Algorithm::kFV, queries_[0], theta_));
  requests.push_back(
      ServeRequest::Range(Algorithm::kMinimalFV, queries_[1], theta_));
  requests.push_back(ServeRequest::Range(Algorithm::kFV, queries_[2], theta_));
  EXPECT_THROW(frontend.ServeBatch(requests), std::invalid_argument);

  // Unsupported k-NN backend and null query propagate the same way.
  const ServeRequest bad_backend[] = {
      ServeRequest::Knn(Algorithm::kFV, queries_[0], 5)};
  EXPECT_THROW(frontend.ServeBatch(bad_backend), std::invalid_argument);
  ServeRequest null_query = ServeRequest::Range(Algorithm::kFV, queries_[0],
                                                theta_);
  null_query.query = nullptr;
  const ServeRequest null_batch[] = {null_query};
  EXPECT_THROW(frontend.ServeBatch(null_batch), std::invalid_argument);

  // The pool and caches survive: a clean batch still serves exactly.
  const ServeRequest ok[] = {
      ServeRequest::Range(Algorithm::kFV, queries_[3], theta_)};
  const auto responses = frontend.ServeBatch(ok);
  EXPECT_EQ(responses[0].ids,
            testutil::BruteForce(store_, queries_[3], theta_));
}

TEST_F(ServeFrontendTest, KnnBackendsMatchLinearScanAndCache) {
  QueryFrontendOptions options;
  options.num_threads = 2;
  QueryFrontend frontend(&store_, options);

  const Algorithm backends[] = {Algorithm::kLinearScan, Algorithm::kBkTree,
                                Algorithm::kMTree, Algorithm::kCoarse};
  const size_t js[] = {1, 7, store_.size() + 3};
  std::vector<ServeRequest> requests;
  for (const Algorithm backend : backends) {
    for (const size_t j : js) {
      for (size_t q = 0; q < 4; ++q) {
        requests.push_back(ServeRequest::Knn(backend, queries_[q], j));
      }
    }
  }
  const auto responses = frontend.ServeBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].neighbors,
              LinearScanKnn(store_, *requests[i].query, requests[i].j))
        << "request " << i;
  }
  Statistics warm;
  const auto cached = frontend.ServeBatch(requests, &warm);
  EXPECT_EQ(warm.Get(Ticker::kResultCacheHits), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(cached[i].neighbors, responses[i].neighbors);
  }
}

TEST_F(ServeFrontendTest, ThetaAtDmaxBypassesCandidateCacheExactly) {
  QueryFrontendOptions options;
  options.num_threads = 1;
  QueryFrontend frontend(&store_, options);

  const RawDistance dmax = MaxDistance(store_.k());
  Statistics stats;
  const ServeRequest request[] = {
      ServeRequest::Range(Algorithm::kLinearScan, queries_[0], dmax)};
  const auto responses = frontend.ServeBatch(request, &stats);
  // Everything is within dmax; the posting union would have missed
  // disjoint rankings, so the candidate cache must not have been used.
  EXPECT_EQ(stats.Get(Ticker::kCandidateCacheMisses), 0u);
  EXPECT_EQ(responses[0].ids.size(), store_.size());
  EXPECT_EQ(responses[0].ids,
            testutil::BruteForce(store_, queries_[0], dmax));
}

TEST_F(ServeFrontendTest, InvalidationUnderConcurrentServing) {
  QueryFrontendOptions options;
  options.num_threads = 4;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kCoarse, query, theta_));
    requests.push_back(ServeRequest::Knn(Algorithm::kBkTree, query, 5));
  }
  frontend.Prepare(Algorithm::kCoarse);
  frontend.Prepare(Algorithm::kBkTree);

  // A rebuild-notifier thread bumps generations while batches are in
  // flight; every answer must stay exact and no serve may crash or race
  // (this test is part of the TSan CI job).
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      frontend.InvalidateCaches();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    const auto responses = frontend.ServeBatch(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].kind == ServeKind::kRange) {
        ASSERT_EQ(responses[i].ids,
                  testutil::BruteForce(store_, *requests[i].query, theta_))
            << "round " << round << " request " << i;
      } else {
        ASSERT_EQ(responses[i].neighbors,
                  LinearScanKnn(store_, *requests[i].query, requests[i].j))
            << "round " << round << " request " << i;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  invalidator.join();
}

TEST_F(ServeFrontendTest, ServeWorkloadMatchesSequentialRunner) {
  QueryFrontendOptions options;
  options.num_threads = 3;
  QueryFrontend frontend(&store_, options);
  const RunResult served =
      frontend.ServeWorkload(Algorithm::kCoarse, queries_, theta_);

  EngineSuite suite(&store_);
  auto engine = suite.MakeEngine(Algorithm::kCoarse);
  const RunResult sequential = RunQueries(engine.get(), queries_, theta_);

  EXPECT_EQ(served.num_queries, queries_.size());
  EXPECT_EQ(served.num_threads, 3u);
  EXPECT_EQ(served.result_hash, sequential.result_hash);
  EXPECT_EQ(served.total_results, sequential.total_results);
  EXPECT_EQ(served.stats.Get(Ticker::kResultCacheMisses) +
                served.stats.Get(Ticker::kResultCacheHits),
            queries_.size());
}

TEST_F(ServeFrontendTest, ConcurrentServeBatchCallersSerializeSafely) {
  // Two application threads hammering the same frontend concurrently:
  // serve_mutex_ serializes them (the compile-time contract from
  // core/thread_annotations.h), so every response stays exact and TSan
  // sees no race on the executor slots. Before the coordinator mutex this
  // was documented as caller-must-serialize; now it is load-bearing.
  QueryFrontendOptions options;
  options.num_threads = 3;
  QueryFrontend frontend(&store_, options);

  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : queries_) {
    requests.push_back(ServeRequest::Range(Algorithm::kFV, query, theta_));
  }

  std::atomic<int> failures{0};
  auto caller = [&] {
    for (int round = 0; round < 8; ++round) {
      const auto responses = frontend.ServeBatch(requests);
      for (size_t i = 0; i < requests.size(); ++i) {
        if (responses[i].ids !=
            testutil::BruteForce(store_, *requests[i].query, theta_)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::thread other(caller);
  caller();
  other.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Live mutability: caches must flip atomically with the store. ----

// The satellite bug, reproduced: with invalidation unwired (the pre-PR
// state — nothing bumped the serve generation on a write), a cached
// answer keeps being served after an insert that changed the truth.
TEST(LiveFrontendTest, UnwiredCacheServesStaleHitAfterInsert) {
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 80, 1101);
  MutableStore store(kK);
  for (RankingId id = 0; id < 60; ++id) {
    store.Insert(source.view(id));
  }
  LiveFrontendOptions options;
  options.wire_invalidation = false;  // the bug seam
  LiveFrontend frontend(&store, options);

  // A query whose answer the next insert changes: the query IS row 60,
  // so inserting row 60 adds a distance-0 member.
  const PreparedQuery query(
      std::move(Ranking::Create({source.view(60).items().begin(),
                                 source.view(60).items().end()}))
          .ValueOrDie());
  const RawDistance theta_raw = RawThreshold(0.2, kK);
  const std::vector<RankingId> before =
      frontend.ServeRange(query, theta_raw);  // populates the cache
  const uint64_t epoch_before = frontend.epoch();

  store.Insert(source.view(60));  // mutation; unwired -> no epoch bump
  EXPECT_EQ(frontend.epoch(), epoch_before);

  const std::vector<RankingId> truth = store.RangeQuery(query, theta_raw);
  ASSERT_NE(truth, before) << "insert must change this answer";
  // The stale hit: the cache still serves the pre-insert answer.
  EXPECT_EQ(frontend.ServeRange(query, theta_raw), before);
  EXPECT_NE(frontend.ServeRange(query, theta_raw), truth);
}

// The fix: default wiring registers the mutation listener, every write
// bumps the epoch under the store mutex, and the same sequence serves
// fresh answers.
TEST(LiveFrontendTest, WiredCacheServesFreshAfterEveryMutation) {
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 80, 1101);
  MutableStore store(kK);
  for (RankingId id = 0; id < 60; ++id) {
    store.Insert(source.view(id));
  }
  LiveFrontend frontend(&store, {});  // wire_invalidation = true

  const PreparedQuery query(
      std::move(Ranking::Create({source.view(60).items().begin(),
                                 source.view(60).items().end()}))
          .ValueOrDie());
  const RawDistance theta_raw = RawThreshold(0.2, kK);
  const std::vector<RankingId> before =
      frontend.ServeRange(query, theta_raw);
  const std::vector<Neighbor> knn_before = frontend.ServeKnn(query, 5);
  const uint64_t epoch0 = frontend.epoch();

  const RankingId added = store.Insert(source.view(60));
  EXPECT_GT(frontend.epoch(), epoch0);  // listener fired
  const std::vector<RankingId> after = frontend.ServeRange(query, theta_raw);
  EXPECT_EQ(after, store.RangeQuery(query, theta_raw));
  EXPECT_NE(after, before);
  EXPECT_EQ(frontend.ServeKnn(query, 5), store.KnnQuery(query, 5));
  EXPECT_NE(frontend.ServeKnn(query, 5), knn_before);

  // Delete and merge invalidate too (the merge via the swap's bump).
  const uint64_t epoch1 = frontend.epoch();
  EXPECT_TRUE(store.Delete(added));
  EXPECT_GT(frontend.epoch(), epoch1);
  EXPECT_EQ(frontend.ServeRange(query, theta_raw), before);
  const uint64_t epoch2 = frontend.epoch();
  EXPECT_TRUE(store.MergeNow());
  EXPECT_GT(frontend.epoch(), epoch2);
  EXPECT_EQ(frontend.ServeRange(query, theta_raw),
            store.RangeQuery(query, theta_raw));
  // Repeat hit within a quiet generation stays exact (and cached).
  EXPECT_EQ(frontend.ServeRange(query, theta_raw),
            frontend.ServeRange(query, theta_raw));
}

// QueryFrontend::WatchStore: the batched frontend's epoch follows store
// mutations the same way.
TEST(LiveFrontendTest, WatchStoreBumpsQueryFrontendEpoch) {
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 40, 1111);
  QueryFrontend frontend(&source);
  MutableStore store(source);
  frontend.WatchStore(&store);

  const uint64_t epoch0 = frontend.epoch();
  store.Insert(source.view(0));
  EXPECT_EQ(frontend.epoch(), epoch0 + 1);
  EXPECT_TRUE(store.Delete(0));
  EXPECT_EQ(frontend.epoch(), epoch0 + 2);
  EXPECT_TRUE(store.MergeNow());
  EXPECT_EQ(frontend.epoch(), epoch0 + 3);
  EXPECT_FALSE(store.Delete(0));  // failed mutation: no bump
  EXPECT_EQ(frontend.epoch(), epoch0 + 3);
}

// TSan target: readers serving through the cache race writers mutating
// the store; every served answer must match the store at some point
// inside the call window (checked structurally live, exactly after).
TEST(LiveFrontendTest, ConcurrentServeAndMutateStaysExact) {
  constexpr uint32_t kK = 5;
  const RankingStore source = testutil::MakeClusteredStore(kK, 300, 1121);
  const auto queries = testutil::MakeQueries(source, 4, 1122);
  MutableStoreOptions store_options;
  store_options.merge_threshold = 32;
  MutableStore store(kK, store_options);
  LiveFrontend frontend(&store, {});
  const RawDistance theta_raw = RawThreshold(0.2, kK);

  std::thread writer([&] {
    for (RankingId id = 0; id < 200; ++id) {
      store.Insert(source.view(id));
      if (id % 3 == 2) store.Delete(id - 1);
    }
  });
  for (int round = 0; round < 40; ++round) {
    for (const PreparedQuery& query : queries) {
      const std::vector<RankingId> ids = frontend.ServeRange(query, theta_raw);
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
      EXPECT_LE(frontend.ServeKnn(query, 6).size(), 6u);
    }
  }
  writer.join();
  store.MergeNow();
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(frontend.ServeRange(query, theta_raw),
              store.RangeQuery(query, theta_raw));
    EXPECT_EQ(frontend.ServeKnn(query, 6), store.KnnQuery(query, 6));
  }
}

}  // namespace
}  // namespace topk
