// mmap snapshot suite: write/open round-trip, zero-copy query
// differential against the RAM-resident engines, corruption and
// truncation at every layer of the format (header, section table,
// section payloads), lazy checksum verification, and the MutableStore
// merge-emitted snapshot.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ranking.h"
#include "core/types.h"
#include "invidx/filter_validate.h"
#include "invidx/plain_inverted_index.h"
#include "mutate/mutable_store.h"
#include "storage/compressed_arena.h"
#include "storage/compressed_augmented.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace topk {
namespace {

using storage::CompressedPostingArena;
using storage::OpenStoreSnapshot;
using storage::SnapshotHeader;
using storage::StoreSnapshot;
using storage::VerifySnapshotChecksums;
using storage::WriteStoreSnapshot;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Writes a snapshot of `store` (and its plain index, compressed).
void WriteSnapshotOf(const RankingStore& store, const std::string& path) {
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const auto arena =
      CompressedPostingArena<RankingId>::FromArena(plain.arena());
  ASSERT_TRUE(WriteStoreSnapshot(store, arena, path).ok());
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  if (!bytes.empty()) {  // fwrite(nullptr, ...) is UB even for 0 bytes
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
              bytes.size());
  }
  std::fclose(file);
}

TEST(StoreSnapshot, RoundTripsStoreAndIndex) {
  const RankingStore store = testutil::MakeClusteredStore(10, 400, 3);
  const std::string path = TempPath("roundtrip.snap");
  WriteSnapshotOf(store, path);

  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const StoreSnapshot& snapshot = opened.value();
  ASSERT_TRUE(snapshot.store().external());
  ASSERT_EQ(snapshot.store().size(), store.size());
  ASSERT_EQ(snapshot.store().k(), store.k());
  ASSERT_EQ(snapshot.store().max_item(), store.max_item());
  for (RankingId id = 0; id < store.size(); ++id) {
    const auto expected = store.view(id).items();
    const auto actual = snapshot.store().view(id).items();
    ASSERT_EQ(0, std::memcmp(actual.data(), expected.data(),
                             expected.size_bytes()))
        << "row " << id;
  }
  EXPECT_TRUE(VerifySnapshotChecksums(path).ok());
  std::remove(path.c_str());
}

TEST(StoreSnapshot, MmapQueriesMatchRamEngines) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 5);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const std::string path = TempPath("differential.snap");
  WriteSnapshotOf(store, path);
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const StoreSnapshot& snapshot = opened.value();

  const RawDistance dmax = MaxDistance(store.k());
  for (const DropMode drop : {DropMode::kNone, DropMode::kConservative,
                              DropMode::kPositionRefined}) {
    FilterValidateEngine reference(&store, &plain, {drop});
    storage::CompressedFilterValidateEngine tier(&snapshot.store(),
                                                 &snapshot.index(), {drop});
    for (const auto& query : testutil::MakeQueries(store, 8, 17)) {
      for (const RawDistance theta : {dmax / 4, dmax / 2, dmax}) {
        Statistics ref_stats;
        Statistics tier_stats;
        const auto expected = reference.Query(query, theta, &ref_stats);
        const auto actual = tier.Query(query, theta, &tier_stats);
        ASSERT_EQ(actual, expected)
            << "drop=" << static_cast<int>(drop) << " theta=" << theta;
        ASSERT_EQ(tier_stats, ref_stats);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, OpenIsZeroCopy) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 9);
  const std::string path = TempPath("lazy.snap");
  WriteSnapshotOf(store, path);
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // Zero-copy contract, part 1 (deterministic): the adopted store and
  // index hold NO heap copies of the mapped sections — every byte is
  // served out of the mapping.
  EXPECT_GT(opened.value().mapped_bytes(), size_t{0});
  EXPECT_EQ(opened.value().store().MemoryUsage(), size_t{0});
  EXPECT_EQ(opened.value().index().MemoryUsage(), size_t{0});
  // Part 2 (residency): mincore counts page-cache residency, and a
  // freshly written file is fully cached, so evict it first (the pages
  // are clean after fdatasync); after eviction the mapping must not be
  // fully resident — open touched only metadata. Skipped silently where
  // eviction is unsupported; bench_storage reports the same evidence on
  // the real datasets.
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  ::fdatasync(fd);
  const bool evicted =
      ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) == 0;
  ::close(fd);
  if (evicted) {
    EXPECT_LT(opened.value().ResidentBytes(), opened.value().mapped_bytes())
        << "open faulted in the entire snapshot";
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, RejectsMissingAndEmptyAndTruncatedFiles) {
  EXPECT_FALSE(OpenStoreSnapshot(TempPath("does-not-exist.snap")).ok());

  const std::string path = TempPath("degenerate.snap");
  WriteBytes(path, {});  // zero-length file
  EXPECT_FALSE(OpenStoreSnapshot(path).ok());
  EXPECT_FALSE(VerifySnapshotChecksums(path).ok());

  const RankingStore store = testutil::MakeClusteredStore(8, 120, 13);
  WriteSnapshotOf(store, path);
  const std::vector<uint8_t> good = ReadFile(path);
  // The last section's payload end (NOT the file end: the file is
  // padded out to a page boundary, and shaving padding alone is not
  // corruption).
  storage::SnapshotSection table[storage::kSnapshotSectionCount];
  std::memcpy(table, good.data() + sizeof(SnapshotHeader), sizeof(table));
  const auto last_payload_end = static_cast<size_t>(
      table[storage::kSnapshotSectionCount - 1].offset +
      table[storage::kSnapshotSectionCount - 1].size);
  ASSERT_GT(last_payload_end, size_t{0});
  // Truncation at every structural boundary: mid-header, mid-table,
  // mid-payload, one payload byte short.
  for (const size_t keep :
       {sizeof(SnapshotHeader) / 2, sizeof(SnapshotHeader) + 16,
        good.size() / 2, last_payload_end - 1}) {
    WriteBytes(path, std::vector<uint8_t>(good.begin(),
                                          good.begin() +
                                              static_cast<ptrdiff_t>(keep)));
    EXPECT_FALSE(OpenStoreSnapshot(path).ok()) << "keep=" << keep;
    EXPECT_FALSE(VerifySnapshotChecksums(path).ok()) << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, RejectsHeaderAndTableCorruption) {
  const RankingStore store = testutil::MakeClusteredStore(8, 120, 15);
  const std::string path = TempPath("corrupt-meta.snap");
  WriteSnapshotOf(store, path);
  const std::vector<uint8_t> good = ReadFile(path);

  // Bad magic, bad version, corrupted section table (directory checksum
  // catches the flip), corrupted counts.
  const size_t offsets[] = {0, 8, sizeof(SnapshotHeader) + 8, 16};
  for (const size_t offset : offsets) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= 0xff;
    WriteBytes(path, bad);
    EXPECT_FALSE(OpenStoreSnapshot(path).ok()) << "offset=" << offset;
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, PayloadCorruptionIsCaughtByVerifyNotOpen) {
  const RankingStore store = testutil::MakeClusteredStore(8, 200, 19);
  const std::string path = TempPath("corrupt-payload.snap");
  WriteSnapshotOf(store, path);
  std::vector<uint8_t> bad = ReadFile(path);
  // Flip one byte inside the last section's payload (the compressed
  // byte stream — NOT the trailing page padding, which no checksum
  // covers): open stays lazy and cheap, the full verify must catch it.
  storage::SnapshotSection table[storage::kSnapshotSectionCount];
  std::memcpy(table, bad.data() + sizeof(SnapshotHeader), sizeof(table));
  const auto& last = table[storage::kSnapshotSectionCount - 1];
  ASSERT_GT(last.size, uint64_t{0});
  bad[static_cast<size_t>(last.offset)] ^= 0xff;
  WriteBytes(path, bad);
  auto opened = OpenStoreSnapshot(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(VerifySnapshotChecksums(path).ok());
  std::remove(path.c_str());
}

TEST(StoreSnapshot, MergeEmitsLoadableSnapshot) {
  const RankingStore initial = testutil::MakeClusteredStore(10, 300, 23);
  const std::string path = TempPath("merge-emitted.snap");
  MutableStoreOptions options;
  options.snapshot_path = path;
  MutableStore live(initial, options);

  // Mutate, then merge: the snapshot must freeze the rebuilt segment.
  const RankingStore extra = testutil::MakeClusteredStore(10, 50, 29);
  for (RankingId id = 0; id < extra.size(); ++id) {
    live.Insert(extra.view(id));
  }
  ASSERT_TRUE(live.Delete(3));
  ASSERT_TRUE(live.MergeNow());
  ASSERT_TRUE(live.last_snapshot_status().ok())
      << live.last_snapshot_status().ToString();

  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().store().size(), live.live_size());
  EXPECT_TRUE(VerifySnapshotChecksums(path).ok());

  // The frozen rows answer queries identically to a plain engine over
  // the same rows.
  const RankingStore& frozen = opened.value().store();
  RankingStore rebuilt(frozen.k());
  for (RankingId id = 0; id < frozen.size(); ++id) {
    rebuilt.AddUnchecked(frozen.view(id).items());
  }
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(rebuilt);
  FilterValidateEngine reference(&rebuilt, &plain, {});
  storage::CompressedFilterValidateEngine tier(&frozen,
                                               &opened.value().index(), {});
  const RawDistance theta = MaxDistance(frozen.k()) / 3;
  for (const auto& query : testutil::MakeQueries(rebuilt, 6, 31)) {
    EXPECT_EQ(tier.Query(query, theta), reference.Query(query, theta));
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, RejectsForeignByteOrderAndLayout) {
  const RankingStore store = testutil::MakeClusteredStore(8, 150, 37);
  const std::string path = TempPath("foreign-abi.snap");
  WriteSnapshotOf(store, path);
  const std::vector<uint8_t> good = ReadFile(path);
  // The byte_order and layout tags sit at header offsets 16 and 20; the
  // directory checksum covers only the section table, so tampering with
  // either tag needs no checksum re-fix to reach the guard.
  {
    // A byte-swapped writer: the reader sees the tag permuted.
    std::vector<uint8_t> bad = good;
    std::reverse(bad.begin() + 16, bad.begin() + 20);
    WriteBytes(path, bad);
    auto opened = OpenStoreSnapshot(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().ToString().find("byte order"),
              std::string::npos)
        << opened.status().ToString();
    EXPECT_FALSE(VerifySnapshotChecksums(path).ok());
  }
  {
    // A writer with different struct padding / word sizes: layout tag
    // disagrees with this build's fingerprint.
    std::vector<uint8_t> bad = good;
    bad[20] ^= 0xff;
    WriteBytes(path, bad);
    auto opened = OpenStoreSnapshot(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().ToString().find("layout"), std::string::npos)
        << opened.status().ToString();
    EXPECT_FALSE(VerifySnapshotChecksums(path).ok());
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, AugmentedIndexServesIdenticallyFromMmap) {
  const RankingStore store = testutil::MakeClusteredStore(10, 600, 41);
  const std::string path = TempPath("augmented.snap");
  WriteSnapshotOf(store, path);
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const StoreSnapshot& snapshot = opened.value();
  // The augmented arena is adopted zero-copy like everything else.
  EXPECT_EQ(snapshot.augmented_index().MemoryUsage(), size_t{0});
  EXPECT_GT(snapshot.augmented_index().num_entries(), size_t{0});

  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const RawDistance dmax = MaxDistance(store.k());
  for (const DropMode drop : {DropMode::kNone, DropMode::kConservative,
                              DropMode::kPositionRefined}) {
    FilterValidateEngine reference(&store, &plain, {drop});
    storage::CompressedAugmentedEngine tier(
        &snapshot.store(), &snapshot.augmented_index(), {drop, true});
    for (const auto& query : testutil::MakeQueries(store, 8, 43)) {
      for (const RawDistance theta : {dmax / 8, dmax / 2, dmax}) {
        ASSERT_EQ(tier.Query(query, theta), reference.Query(query, theta))
            << "drop=" << static_cast<int>(drop) << " theta=" << theta;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(StoreSnapshot, WriteRejectsEmptyStore) {
  const RankingStore store(5);
  const CompressedPostingArena<RankingId> arena;
  EXPECT_FALSE(
      WriteStoreSnapshot(store, arena, TempPath("empty.snap")).ok());
}

}  // namespace
}  // namespace topk
