// Batch query processing (the implemented Section 8 outlook): exactness
// against per-query processing, and the filter-sharing effect on related
// queries.

#include "coarse/batch_query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace topk {
namespace {

class BatchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BatchEquivalenceTest, MatchesPerQueryProcessing) {
  const auto [theta, batch_theta_c] = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(10, 1200, 201);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  BatchQueryOptions batch_options;
  batch_options.batch_theta_c = batch_theta_c;
  BatchQueryProcessor batch(&store, &index, batch_options);

  const auto queries = testutil::MakeQueries(store, 40, 202);
  const RawDistance theta_raw = RawThreshold(theta, 10);
  const auto batch_results = batch.QueryBatch(queries, theta_raw);
  ASSERT_EQ(batch_results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch_results[i],
              testutil::BruteForce(store, queries[i], theta_raw))
        << "query " << i << " theta=" << theta
        << " batch_theta_c=" << batch_theta_c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalenceTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.2, 0.3),
                       ::testing::Values(0.0, 0.1, 0.3)));

TEST(BatchQueryTest, EmptyBatch) {
  const RankingStore store = testutil::MakeClusteredStore(10, 100, 203);
  const CoarseIndex index = CoarseIndex::Build(&store, CoarseOptions{});
  BatchQueryProcessor batch(&store, &index);
  EXPECT_TRUE(batch.QueryBatch({}, 10).empty());
}

TEST(BatchQueryTest, RepeatedIdenticalQueriesShareOneProbe) {
  // A batch of N identical queries should probe the index once, not N
  // times: the medoid probe's posting scans appear once.
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 204);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);

  const auto one = testutil::MakeQueries(store, 1, 205);
  std::vector<PreparedQuery> repeated;
  for (int i = 0; i < 20; ++i) {
    repeated.emplace_back(PreparedQuery(
        std::move(Ranking::Create({one[0].view().items().begin(),
                                   one[0].view().items().end()}))
            .ValueOrDie()));
  }

  Statistics individual_stats;
  const RawDistance theta_raw = RawThreshold(0.2, 10);
  for (const auto& query : repeated) {
    index.Query(query, theta_raw, &individual_stats);
  }

  BatchQueryOptions batch_options;
  batch_options.batch_theta_c = 0.0;  // groups exactly the identical ones
  BatchQueryProcessor batch(&store, &index, batch_options);
  Statistics batch_stats;
  const auto results = batch.QueryBatch(repeated, theta_raw, &batch_stats);

  EXPECT_LT(batch_stats.Get(Ticker::kPostingEntriesScanned),
            individual_stats.Get(Ticker::kPostingEntriesScanned));
  for (const auto& r : results) EXPECT_EQ(r, results.front());
}

TEST(BatchQueryTest, PerturbedQueryFamiliesStayExact) {
  // Mimic the query-suggestion workload: families of related queries.
  const RankingStore store = testutil::MakeClusteredStore(10, 1500, 206);
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);

  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.perturbed_fraction = 1.0;
  wopts.perturb_ops = 1;
  wopts.seed = 207;
  const auto queries = MakeWorkload(store, wopts);

  BatchQueryOptions batch_options;
  batch_options.batch_theta_c = 0.2;
  BatchQueryProcessor batch(&store, &index, batch_options);
  const RawDistance theta_raw = RawThreshold(0.15, 10);
  const auto results = batch.QueryBatch(queries, theta_raw);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], testutil::BruteForce(store, queries[i], theta_raw));
  }
}

}  // namespace
}  // namespace topk
