// Shared helpers for the test suite: small deterministic datasets and the
// brute-force equivalence harness every algorithm is checked against.

#ifndef TOPK_TESTS_TEST_UTIL_H_
#define TOPK_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/footrule.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/types.h"
#include "data/generator.h"
#include "data/workload.h"

namespace topk {
namespace testutil {

/// Uniform-random duplicate-free rankings (no cluster structure).
inline RankingStore MakeUniformStore(uint32_t k, size_t n, uint32_t domain,
                                     uint64_t seed) {
  Rng rng(seed);
  RankingStore store(k);
  std::vector<ItemId> items;
  for (size_t i = 0; i < n; ++i) {
    items.clear();
    while (items.size() < k) {
      const auto item = static_cast<ItemId>(rng.Below(domain));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    store.AddUnchecked(items);
  }
  return store;
}

/// Clustered store exercising the near-duplicate structure the coarse
/// index exploits.
inline RankingStore MakeClusteredStore(uint32_t k, size_t n, uint64_t seed) {
  GeneratorOptions options;
  options.n = static_cast<uint32_t>(n);
  options.k = k;
  options.domain = std::max<uint32_t>(4 * k, static_cast<uint32_t>(n));
  options.zipf_s = 0.8;
  options.mean_cluster_size = 5.0;
  options.seed = seed;
  return Generate(options);
}

/// Ground truth by definition (direct Footrule scan, no index involved).
inline std::vector<RankingId> BruteForce(const RankingStore& store,
                                         const PreparedQuery& query,
                                         RawDistance theta_raw) {
  std::vector<RankingId> results;
  for (RankingId id = 0; id < store.size(); ++id) {
    if (FootruleDistance(query.sorted_view(), store.sorted(id)) <=
        theta_raw) {
      results.push_back(id);
    }
  }
  return results;
}

/// Mixed workload: half perturbed copies of stored rankings, half fresh.
inline std::vector<PreparedQuery> MakeQueries(const RankingStore& store,
                                              size_t count, uint64_t seed) {
  WorkloadOptions options;
  options.num_queries = count;
  options.perturbed_fraction = 0.5;
  options.seed = seed;
  return MakeWorkload(store, options);
}

}  // namespace testutil
}  // namespace topk

#endif  // TOPK_TESTS_TEST_UTIL_H_
