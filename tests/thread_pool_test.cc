// ThreadPool unit tests: result/exception plumbing through Submit,
// ParallelFor completeness independent of scheduling order, pool reuse
// across batches, and a many-tiny-tasks stress case that the sanitizer CI
// jobs (ASan/UBSan and TSan) run to catch data races in the pool itself.

#include "harness/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"

namespace topk {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, SubmitWorksWithZeroWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::future<std::string> result =
      pool.Submit([] { return std::string("inline"); });
  EXPECT_EQ(result.get(), "inline");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> result = pool.Submit(
      [] { throw std::runtime_error("worker exploded"); });
  EXPECT_THROW(result.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ResultsIndependentOfCompletionOrder) {
  // Tasks finish in roughly reverse submission order (later tasks sleep
  // less); every future must still hold its own task's value.
  ThreadPool pool(4);
  constexpr int kTasks = 8;
  std::vector<std::future<int>> results;
  results.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    results.push_back(pool.Submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kTasks - i));
      return i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(results[i].get(), i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ThreadPoolTest, ParallelForInlineWhenNoWorkers) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(5);
  pool.ParallelFor(ran.size(),
                   [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionAndCompletesRest) {
  ThreadPool pool(2);
  constexpr size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  auto body = [&hits](size_t i) {
    hits[i].fetch_add(1);
    if (i == 13) throw std::runtime_error("iteration 13");
  };
  EXPECT_THROW(pool.ParallelFor(kN, body), std::runtime_error);
  // Every iteration still ran (the pool does not abandon the batch), so
  // the pool is in a clean, reusable state.
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    const size_t n = 1 + static_cast<size_t>(batch % 7);
    std::vector<int> out(n, -1);
    pool.ParallelFor(n, [&out, batch](size_t i) {
      out[i] = batch + static_cast<int>(i);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], batch + static_cast<int>(i))
          << "batch=" << batch << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, StressManyTinyTasks) {
  // Many tiny tasks through both entry points, exercising queue
  // contention; the sanitizer jobs turn any race in the pool into a
  // failure here.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  std::vector<std::future<void>> pending;
  constexpr uint64_t kSubmitted = 2000;
  pending.reserve(kSubmitted);
  for (uint64_t i = 0; i < kSubmitted; ++i) {
    pending.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  constexpr uint64_t kLooped = 5000;
  pool.ParallelFor(kLooped, [&sum](size_t) { sum.fetch_add(1); });
  for (std::future<void>& f : pending) f.get();
  EXPECT_EQ(sum.load(), kSubmitted * (kSubmitted - 1) / 2 + kLooped);
}

TEST(ThreadPoolTest, SubmitInjectedFaultSurfacesThroughFuture) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "needs -DTOPK_FAILPOINTS=ON";
  }
  auto& registry = FailpointRegistry::Instance();
  registry.DisarmAll();
  registry.ResetCounts();
  FailpointSpec one_shot;
  one_shot.max_fires = 1;
  registry.Arm("harness.thread_pool.task", one_shot);
  ThreadPool pool(2);
  // The probe lives inside the packaged task, so an injected fault takes
  // the same path as an exception from the task body: into the future,
  // never into WorkerLoop (which would std::terminate).
  EXPECT_THROW(pool.Submit([] { return 1; }).get(), std::runtime_error);
  // One-shot spent: the worker survived and the pool keeps working.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
  registry.DisarmAll();
  registry.ResetCounts();
}

TEST(ThreadPoolTest, ParallelForInjectedTaskFaultNoDeadlock) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "needs -DTOPK_FAILPOINTS=ON";
  }
  auto& registry = FailpointRegistry::Instance();
  registry.DisarmAll();
  registry.ResetCounts();
  FailpointSpec one_shot;
  one_shot.max_fires = 1;
  registry.Arm("harness.thread_pool.task", one_shot);
  ThreadPool pool(3);
  constexpr size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  // The fault kills one helper's drain before it claims any index, but
  // ParallelFor joins every helper and the caller's own drain (which
  // never goes through Submit, so it is never probed) covers whatever
  // the dead helper would have done: all indices run, exactly once, and
  // the injected error is rethrown instead of hanging the join.
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&hits](size_t i) { hits[i].fetch_add(1); }),
               std::runtime_error);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  registry.DisarmAll();
  registry.ResetCounts();

  // With the one-shot spent the pool is clean and fully reusable.
  std::vector<std::atomic<int>> again(kN);
  pool.ParallelFor(kN, [&again](size_t i) { again[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(again[i].load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsWithQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
    // Destructor must wait for the single worker to drain the queue.
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace topk
