// Kendall's tau with penalty parameter for top-k lists (Fagin et al.),
// case-by-case and property tests.

#include "core/kendall.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ranking.h"
#include "core/rng.h"

namespace topk {
namespace {

Ranking R(std::vector<ItemId> items) {
  return std::move(Ranking::Create(std::move(items))).ValueOrDie();
}

TEST(KendallTest, IdenticalListsHaveZeroDistance) {
  const Ranking a = R({1, 2, 3});
  EXPECT_EQ(KendallTauTimesTwo(a.view(), a.view(), 1), 0u);
}

TEST(KendallTest, SingleInversionCostsOne) {
  // Same domain, one swapped adjacent pair: exactly one discordant pair.
  const Ranking a = R({1, 2, 3});
  const Ranking b = R({2, 1, 3});
  EXPECT_EQ(KendallTauOptimistic(a.view(), b.view()), 1u);
}

TEST(KendallTest, ReversalCostsAllPairs) {
  const Ranking a = R({1, 2, 3, 4});
  const Ranking b = R({4, 3, 2, 1});
  EXPECT_EQ(KendallTauOptimistic(a.view(), b.view()), 6u);  // C(4,2)
}

TEST(KendallTest, DisjointListsCase3And4) {
  // Disjoint domains of size k: k^2 cross pairs (case 3, penalty 1 each)
  // plus 2*C(k,2) single-list pairs (case 4, penalty p each).
  const Ranking a = R({1, 2, 3});
  const Ranking b = R({4, 5, 6});
  // p = 0: only the 9 cross pairs count.
  EXPECT_EQ(KendallTauTimesTwo(a.view(), b.view(), 0), 18u);
  // p = 1/2: add 6 single-list pairs at 1/2 => 2K = 18 + 6.
  EXPECT_EQ(KendallTauTimesTwo(a.view(), b.view(), 1), 24u);
}

TEST(KendallTest, Case2PenalizesContradictedOrder) {
  // a = [x, y], b contains only y. b implies y ahead of x; a says x ahead
  // of y: contradiction => penalty.
  const Ranking a = R({10, 20});
  const Ranking b = R({20, 30});
  // Pairs over union {10,20,30}:
  //  (10,20): case 2 via a, member-of-b is 20, a ranks 10 first => 1.
  //  (10,30): case 3 => 1.
  //  (20,30): case 2 via b, member-of-a is 20, b ranks 20 first => 0.
  EXPECT_EQ(KendallTauOptimistic(a.view(), b.view()), 2u);
}

TEST(KendallTest, SymmetricInArguments) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ItemId> xs;
    std::vector<ItemId> ys;
    while (xs.size() < 5) {
      const auto v = static_cast<ItemId>(rng.Below(12));
      if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
    }
    while (ys.size() < 5) {
      const auto v = static_cast<ItemId>(rng.Below(12));
      if (std::find(ys.begin(), ys.end(), v) == ys.end()) ys.push_back(v);
    }
    const Ranking a = R(xs);
    const Ranking b = R(ys);
    for (uint64_t p2 : {0u, 1u, 2u}) {
      EXPECT_EQ(KendallTauTimesTwo(a.view(), b.view(), p2),
                KendallTauTimesTwo(b.view(), a.view(), p2));
    }
  }
}

TEST(KendallTest, PenaltyMonotone) {
  // Larger penalty parameter can only increase the distance.
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ItemId> xs;
    std::vector<ItemId> ys;
    while (xs.size() < 4) {
      const auto v = static_cast<ItemId>(rng.Below(10));
      if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
    }
    while (ys.size() < 4) {
      const auto v = static_cast<ItemId>(rng.Below(10));
      if (std::find(ys.begin(), ys.end(), v) == ys.end()) ys.push_back(v);
    }
    const Ranking a = R(xs);
    const Ranking b = R(ys);
    EXPECT_LE(KendallTauTimesTwo(a.view(), b.view(), 0),
              KendallTauTimesTwo(a.view(), b.view(), 1));
  }
}

}  // namespace
}  // namespace topk
