// Footrule distance kernel: worked examples, metric properties, kernel
// equivalence, and threshold conversions.

#include "core/footrule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kendall.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/types.h"

namespace topk {
namespace {

RankingStore MakeRandomStore(uint32_t k, size_t n, uint32_t domain,
                             uint64_t seed) {
  Rng rng(seed);
  RankingStore store(k);
  std::vector<ItemId> items;
  for (size_t i = 0; i < n; ++i) {
    items.clear();
    while (items.size() < k) {
      const auto item = static_cast<ItemId>(rng.Below(domain));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    store.AddUnchecked(items);
  }
  return store;
}

TEST(FootruleTest, IdenticalRankingsHaveZeroDistance) {
  RankingStore store(5);
  const ItemId row[] = {3, 1, 4, 15, 9};
  store.AddUnchecked(row);
  store.AddUnchecked(row);
  EXPECT_EQ(FootruleDistance(store.sorted(0), store.sorted(1)), 0u);
}

TEST(FootruleTest, DisjointRankingsReachMaxDistance) {
  RankingStore store(5);
  const ItemId a[] = {0, 1, 2, 3, 4};
  const ItemId b[] = {10, 11, 12, 13, 14};
  store.AddUnchecked(a);
  store.AddUnchecked(b);
  EXPECT_EQ(FootruleDistance(store.sorted(0), store.sorted(1)),
            MaxDistance(5));
  EXPECT_EQ(MaxDistance(5), 30u);
}

TEST(FootruleTest, SingleSwapCostsTwo) {
  RankingStore store(4);
  const ItemId a[] = {1, 2, 3, 4};
  const ItemId b[] = {2, 1, 3, 4};
  store.AddUnchecked(a);
  store.AddUnchecked(b);
  EXPECT_EQ(FootruleDistance(store.sorted(0), store.sorted(1)), 2u);
}

TEST(FootruleTest, TailReplacementCost) {
  // Replacing the last item: old item pays |k-1 - k| = 1 from each side's
  // perspective => total 2 for last-position replacement.
  RankingStore store(4);
  const ItemId a[] = {1, 2, 3, 4};
  const ItemId b[] = {1, 2, 3, 9};
  store.AddUnchecked(a);
  store.AddUnchecked(b);
  EXPECT_EQ(FootruleDistance(store.sorted(0), store.sorted(1)), 2u);
}

TEST(FootrulePaperExampleTest, Section3WorkedExample) {
  // Section 3 of the paper: tau1 = [2,5,6,4,1], tau2 = [1,4,5],
  // tau3 = [0,8,4,5,7], 1-based ranks, absent rank l = 6:
  // F(tau1,tau2) = 15, F(tau2,tau3) = 17, F(tau1,tau3) = 22.
  const std::vector<ItemId> tau1 = {2, 5, 6, 4, 1};
  const std::vector<ItemId> tau2 = {1, 4, 5};
  const std::vector<ItemId> tau3 = {0, 8, 4, 5, 7};
  EXPECT_EQ(GeneralizedFootrule(tau1, tau2, 6, 1), 15u);
  EXPECT_EQ(GeneralizedFootrule(tau2, tau3, 6, 1), 17u);
  EXPECT_EQ(GeneralizedFootrule(tau1, tau3, 6, 1), 22u);
}

TEST(FootruleTest, AgreesWithGeneralizedForm) {
  // The fixed-k kernel must agree with the generalized form at
  // absent_rank = k, first_rank = 0.
  const RankingStore store = MakeRandomStore(8, 60, 40, 77);
  for (RankingId a = 0; a < 20; ++a) {
    for (RankingId b = 0; b < 20; ++b) {
      const auto va = store.view(a).items();
      const auto vb = store.view(b).items();
      EXPECT_EQ(FootruleDistance(store.sorted(a), store.sorted(b)),
                GeneralizedFootrule({va.begin(), va.end()},
                                    {vb.begin(), vb.end()}, 8, 0));
    }
  }
}

TEST(FootruleTest, MergeKernelMatchesNaiveKernel) {
  const RankingStore store = MakeRandomStore(10, 100, 60, 42);
  for (RankingId a = 0; a < store.size(); ++a) {
    for (RankingId b = a; b < store.size(); ++b) {
      EXPECT_EQ(FootruleDistance(store.sorted(a), store.sorted(b)),
                FootruleDistanceNaive(store.view(a), store.view(b)))
          << "pair " << a << "," << b;
    }
  }
}

class FootruleMetricPropertyTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(FootruleMetricPropertyTest, SymmetryIdentityTriangle) {
  const uint32_t k = GetParam();
  const RankingStore store = MakeRandomStore(k, 40, 3 * k, 1000 + k);
  for (RankingId a = 0; a < store.size(); ++a) {
    EXPECT_EQ(FootruleDistance(store.sorted(a), store.sorted(a)), 0u);
    for (RankingId b = a + 1; b < store.size(); ++b) {
      const RawDistance dab =
          FootruleDistance(store.sorted(a), store.sorted(b));
      EXPECT_EQ(dab, FootruleDistance(store.sorted(b), store.sorted(a)));
      EXPECT_LE(dab, MaxDistance(k));
      // Regularity: distance zero iff the contents coincide (random draws
      // can legitimately repeat, especially at tiny k).
      const bool same_content =
          std::equal(store.view(a).items().begin(),
                     store.view(a).items().end(),
                     store.view(b).items().begin());
      EXPECT_EQ(dab == 0, same_content);
      for (RankingId c = 0; c < store.size(); c += 7) {
        const RawDistance dac =
            FootruleDistance(store.sorted(a), store.sorted(c));
        const RawDistance dbc =
            FootruleDistance(store.sorted(b), store.sorted(c));
        EXPECT_LE(dab, dac + dbc) << "triangle violated";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, FootruleMetricPropertyTest,
                         ::testing::Values(2u, 3u, 5u, 10u, 15u, 20u, 25u));

TEST(FootruleTest, DiaconisGrahamInequalityOnPermutations) {
  // For permutations over the same domain the classical inequality
  // K <= F <= 2K holds; the top-k adaptation reduces to the classical
  // measures when the domains coincide.
  Rng rng(9);
  const uint32_t k = 8;
  std::vector<ItemId> base(k);
  for (uint32_t i = 0; i < k; ++i) base[i] = i + 100;
  RankingStore store(k);
  for (int i = 0; i < 40; ++i) {
    std::vector<ItemId> perm = base;
    rng.Shuffle(&perm);
    store.AddUnchecked(perm);
  }
  for (RankingId a = 0; a < store.size(); ++a) {
    for (RankingId b = a + 1; b < store.size(); ++b) {
      const RawDistance f =
          FootruleDistance(store.sorted(a), store.sorted(b));
      const uint64_t kd = KendallTauOptimistic(store.view(a), store.view(b));
      EXPECT_LE(kd, f);
      EXPECT_LE(f, 2 * kd);
    }
  }
}

TEST(ThresholdConversionTest, RawThresholdBoundaries) {
  // k = 10 => dmax = 110.
  EXPECT_EQ(RawThreshold(0.0, 10), 0u);
  EXPECT_EQ(RawThreshold(1.0, 10), 110u);
  EXPECT_EQ(RawThreshold(0.1, 10), 11u);
  EXPECT_EQ(RawThreshold(0.2, 10), 22u);
  EXPECT_EQ(RawThreshold(0.3, 10), 33u);
  EXPECT_EQ(RawThreshold(2.0, 10), 110u);  // clamped
}

TEST(ThresholdConversionTest, RawThresholdIsExactCutoff) {
  // Every raw distance d qualifies under theta iff d <= RawThreshold.
  for (uint32_t k : {5u, 10u, 20u}) {
    for (double theta : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.77}) {
      const RawDistance cut = RawThreshold(theta, k);
      for (RawDistance d = 0; d <= MaxDistance(k); ++d) {
        const bool qualifies = NormalizeDistance(d, k) <= theta + 1e-12;
        EXPECT_EQ(d <= cut, qualifies) << "k=" << k << " theta=" << theta
                                       << " d=" << d;
      }
    }
  }
}

TEST(ThresholdConversionTest, NormalizeRoundTrip) {
  EXPECT_DOUBLE_EQ(NormalizeDistance(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeDistance(110, 10), 1.0);
  EXPECT_DOUBLE_EQ(NormalizeDistance(55, 10), 0.5);
}

}  // namespace
}  // namespace topk
