// Differential suite for the src/kernel/ layer.
//
// FilterPhase is pinned bit-identical (candidate order included) to the
// pre-refactor F&V filter loop — reproduced here verbatim as the
// reference — across the plain, augmented, and blocked indices, all drop
// policies, and the empty/single-item/dmax edge cases. The batched
// Footrule validator is pinned against the scalar merge kernel, and the
// CSR arena's memory accounting is checked as exact arithmetic.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/blocked_inverted_index.h"
#include "invidx/filter_validate.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "kernel/posting_arena.h"
#include "test_util.h"

namespace topk {
namespace {

// The historical F&V filter loop (invidx/filter_validate.cc before the
// kernel refactor): SelectLists, then scan each kept list and dedup
// through an epoch-stamped visited set, appending in first-encounter
// order. Any divergence from FilterPhase is a kernel regression.
template <typename Index>
std::vector<RankingId> ReferenceFilter(const Index& index, RankingView query,
                                       RawDistance theta_raw, DropMode drop,
                                       size_t id_capacity) {
  VisitedSet visited(id_capacity);
  visited.NextEpoch();
  std::vector<RankingId> candidates;
  const std::vector<uint32_t> positions = SelectLists(
      query, theta_raw, drop,
      [&index](ItemId item) { return index.list_length(item); }, nullptr);
  for (uint32_t pos : positions) {
    for (const auto& entry : index.list(query[pos])) {
      const RankingId id = PostingEntryId(entry);
      if (!visited.TestAndSet(id)) candidates.push_back(id);
    }
  }
  return candidates;
}

template <typename Index>
void ExpectFilterMatchesReference(const Index& index,
                                  const RankingStore& store,
                                  const std::vector<PreparedQuery>& queries,
                                  RawDistance theta_raw, DropMode drop) {
  FilterScratch scratch;
  for (const PreparedQuery& query : queries) {
    Statistics stats;
    const auto got = FilterPhase(index, query.view(), theta_raw, drop,
                                 store.size(), &scratch, &stats);
    const auto want = ReferenceFilter(index, query.view(), theta_raw, drop,
                                      store.size());
    ASSERT_EQ(std::vector<RankingId>(got.begin(), got.end()), want)
        << "drop=" << DropModeName(drop) << " theta_raw=" << theta_raw;
  }
}

class KernelFilterTest : public ::testing::Test {
 protected:
  void RunAcrossIndices(const RankingStore& store,
                        const std::vector<PreparedQuery>& queries,
                        RawDistance theta_raw, DropMode drop) {
    const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
    const AugmentedInvertedIndex augmented =
        AugmentedInvertedIndex::Build(store);
    const BlockedInvertedIndex blocked = BlockedInvertedIndex::Build(store);
    ExpectFilterMatchesReference(plain, store, queries, theta_raw, drop);
    ExpectFilterMatchesReference(augmented, store, queries, theta_raw, drop);
    ExpectFilterMatchesReference(blocked, store, queries, theta_raw, drop);
  }
};

TEST_F(KernelFilterTest, MatchesReferenceAcrossIndicesAndDropPolicies) {
  const RankingStore store = testutil::MakeClusteredStore(7, 400, 21);
  const auto queries = testutil::MakeQueries(store, 25, 22);
  for (const DropMode drop :
       {DropMode::kNone, DropMode::kConservative, DropMode::kPositionRefined}) {
    for (const double theta : {0.0, 0.1, 0.3, 0.6, 0.9}) {
      RunAcrossIndices(store, queries, RawThreshold(theta, 7), drop);
    }
  }
}

TEST_F(KernelFilterTest, EmptyStoreYieldsNoCandidates) {
  const RankingStore store(5);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  FilterScratch scratch;
  const auto queries = testutil::MakeQueries(
      testutil::MakeUniformStore(5, 10, 20, 23), 5, 24);
  for (const PreparedQuery& query : queries) {
    const auto got = FilterPhase(plain, query.view(), RawThreshold(0.5, 5),
                                 DropMode::kNone, store.size(), &scratch);
    EXPECT_TRUE(got.empty());
  }
}

TEST_F(KernelFilterTest, SingleItemRankings) {
  // k = 1: dmax = 2, every drop policy degenerates to "access the list".
  const RankingStore store = testutil::MakeUniformStore(1, 50, 10, 25);
  const auto queries = testutil::MakeQueries(store, 10, 26);
  for (const DropMode drop :
       {DropMode::kNone, DropMode::kConservative, DropMode::kPositionRefined}) {
    RunAcrossIndices(store, queries, RawThreshold(0.4, 1), drop);
  }
}

TEST_F(KernelFilterTest, DmaxThresholdStillMatchesReference) {
  // theta_raw = dmax: MinOverlap is 0, so no list may be dropped; the
  // union is still only the overlapping rankings (the F&V caveat).
  const RankingStore store = testutil::MakeUniformStore(5, 200, 40, 27);
  const auto queries = testutil::MakeQueries(store, 10, 28);
  for (const DropMode drop :
       {DropMode::kNone, DropMode::kConservative, DropMode::kPositionRefined}) {
    RunAcrossIndices(store, queries, MaxDistance(5), drop);
  }
}

TEST_F(KernelFilterTest, SubsetIndexFilterUsesSubsetPositions) {
  // The coarse medoid retrieval filters over a BuildSubset index whose
  // entries are subset positions; id_capacity is the subset size.
  const RankingStore store = testutil::MakeUniformStore(4, 120, 30, 29);
  const std::vector<RankingId> subset = {3, 17, 42, 88, 101};
  const PlainInvertedIndex index =
      PlainInvertedIndex::BuildSubset(store, subset);
  const auto queries = testutil::MakeQueries(store, 10, 30);
  FilterScratch scratch;
  for (const PreparedQuery& query : queries) {
    const auto got = FilterPhase(index, query.view(), RawThreshold(0.5, 4),
                                 DropMode::kNone, subset.size(), &scratch);
    const auto want = ReferenceFilter(index, query.view(),
                                      RawThreshold(0.5, 4), DropMode::kNone,
                                      subset.size());
    ASSERT_EQ(std::vector<RankingId>(got.begin(), got.end()), want);
    for (const RankingId pos : got) ASSERT_LT(pos, subset.size());
  }
}

TEST_F(KernelFilterTest, TickersMatchScannedEntries) {
  const RankingStore store = testutil::MakeUniformStore(5, 150, 35, 31);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  const auto queries = testutil::MakeQueries(store, 5, 32);
  FilterScratch scratch;
  for (const PreparedQuery& query : queries) {
    Statistics stats;
    FilterPhase(index, query.view(), MaxDistance(5) - 1, DropMode::kNone,
                store.size(), &scratch, &stats);
    size_t expected = 0;
    for (const ItemId item : query.view().items()) {
      expected += index.list_length(item);
    }
    EXPECT_EQ(stats.Get(Ticker::kPostingEntriesScanned), expected);
    // FilterPhase leaves kCandidates to the caller.
    EXPECT_EQ(stats.Get(Ticker::kCandidates), 0u);
  }
}

// --- Batched Footrule validator vs. the scalar merge kernel. ---

TEST(FootruleValidatorTest, DistanceMatchesScalarKernel) {
  const RankingStore store = testutil::MakeClusteredStore(10, 300, 33);
  const auto queries = testutil::MakeQueries(store, 20, 34);
  FootruleValidator validator;
  for (const PreparedQuery& query : queries) {
    validator.BindQuery(query.view());
    for (RankingId id = 0; id < store.size(); ++id) {
      ASSERT_EQ(validator.Distance(store.view(id)),
                FootruleDistance(query.sorted_view(), store.sorted(id)));
    }
  }
}

TEST(FootruleValidatorTest, ValidateSpanMatchesScalarDecisions) {
  const RankingStore store = testutil::MakeClusteredStore(8, 250, 35);
  const auto queries = testutil::MakeQueries(store, 15, 36);
  std::vector<RankingId> all(store.size());
  for (RankingId id = 0; id < store.size(); ++id) all[id] = id;
  FootruleValidator validator;
  for (const PreparedQuery& query : queries) {
    for (const double theta : {0.0, 0.05, 0.3, 0.7, 1.0}) {
      const RawDistance theta_raw = RawThreshold(theta, 8);
      validator.BindQuery(query.view());
      std::vector<RankingId> got;
      Statistics stats;
      validator.ValidateSpan(store, all, theta_raw, &got, &stats);
      ASSERT_EQ(got, testutil::BruteForce(store, query, theta_raw))
          << "theta=" << theta;
      // One DFC per candidate, early exit or not (paper accounting).
      EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), store.size());
    }
  }
}

TEST(FootruleValidatorTest, RebindReusesTableAcrossQueries) {
  // Interleaved rebinding must not leak ranks between queries (the epoch
  // stamps, not clears, the table).
  const RankingStore store = testutil::MakeUniformStore(6, 100, 200, 37);
  const auto queries = testutil::MakeQueries(store, 10, 38);
  FootruleValidator validator;
  for (int round = 0; round < 3; ++round) {
    for (const PreparedQuery& query : queries) {
      validator.BindQuery(query.view());
      for (RankingId id = 0; id < store.size(); id += 7) {
        ASSERT_EQ(validator.Distance(store.view(id)),
                  FootruleDistance(query.sorted_view(), store.sorted(id)));
      }
    }
  }
}

TEST(FootruleValidatorTest, ItemDomainCapsTableWithoutChangingDistances) {
  // A query carrying a huge (malformed / adversarial) item id must not
  // force a giant rank table: capped at the store's item domain, the
  // uncovered query item can only be absent from every candidate, which
  // the (Sq - qcover) term accounts for exactly.
  RankingStore store(3);
  ASSERT_TRUE(store.Add(std::vector<ItemId>{0, 1, 2}).ok());
  ASSERT_TRUE(store.Add(std::vector<ItemId>{1, 2, 3}).ok());
  const PreparedQuery query(
      Ranking::Create(std::vector<ItemId>{1, 2, 4000000000u}).ValueOrDie());
  const size_t domain = static_cast<size_t>(store.max_item()) + 1;
  FootruleValidator validator;
  validator.BindQuery(query.view(), domain);
  EXPECT_LE(validator.table_capacity(), domain);
  for (RankingId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(validator.Distance(store.view(id)),
              FootruleDistance(query.sorted_view(), store.sorted(id)));
  }
}

TEST(FootruleValidatorTest, CandidateItemsBeyondTableAreAbsent) {
  // Candidates may contain item ids the query never touched (beyond the
  // table's size); they must count as absent, not crash.
  RankingStore store(3);
  ASSERT_TRUE(store.Add(std::vector<ItemId>{1000000, 2000000, 3000000}).ok());
  const PreparedQuery query(
      Ranking::Create(std::vector<ItemId>{0, 1, 2}).ValueOrDie());
  FootruleValidator validator;
  validator.BindQuery(query.view());
  EXPECT_EQ(validator.Distance(store.view(0)),
            FootruleDistance(query.sorted_view(), store.sorted(0)));
  EXPECT_EQ(validator.Distance(store.view(0)), MaxDistance(3));
}

// --- CSR arena: structure and exact memory accounting. ---

TEST(PostingArenaTest, BuilderProducesExactLists) {
  PostingArenaBuilder<RankingId> builder(4);
  const std::vector<std::pair<size_t, RankingId>> entries = {
      {0, 1}, {2, 2}, {0, 3}, {3, 4}, {0, 5}};
  for (const auto& [list, entry] : entries) builder.Count(list);
  builder.FinishCounting();
  for (const auto& [list, entry] : entries) builder.Append(list, entry);
  const PostingArena<RankingId> arena = std::move(builder).Build();

  EXPECT_EQ(arena.num_lists(), 4u);
  EXPECT_EQ(arena.num_entries(), 5u);
  EXPECT_EQ(std::vector<RankingId>(arena.list(0).begin(), arena.list(0).end()),
            (std::vector<RankingId>{1, 3, 5}));
  EXPECT_TRUE(arena.list(1).empty());
  EXPECT_EQ(arena.list(2).size(), 1u);
  EXPECT_EQ(arena.list(3).front(), 4u);
  EXPECT_TRUE(arena.list(99).empty());
}

TEST(PostingArenaTest, MemoryUsageIsExactArithmetic) {
  const RankingStore store = testutil::MakeUniformStore(5, 500, 80, 39);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  EXPECT_EQ(plain.MemoryUsage(),
            plain.num_entries() * sizeof(RankingId) +
                (static_cast<size_t>(store.max_item()) + 2) *
                    sizeof(uint32_t));

  const AugmentedInvertedIndex augmented =
      AugmentedInvertedIndex::Build(store);
  EXPECT_EQ(augmented.MemoryUsage(),
            augmented.num_entries() * sizeof(AugmentedEntry) +
                (static_cast<size_t>(store.max_item()) + 2) *
                    sizeof(uint32_t));

  const BlockedInvertedIndex blocked = BlockedInvertedIndex::Build(store);
  const size_t num_items = static_cast<size_t>(store.max_item()) + 1;
  EXPECT_EQ(blocked.MemoryUsage(),
            blocked.num_entries() * sizeof(AugmentedEntry) +
                (num_items + 1) * sizeof(uint32_t) +
                num_items * (store.k() + 1) * sizeof(uint32_t));
}

// --- End-to-end: the refactored engines still answer exactly. ---

TEST(KernelEndToEndTest, FvOverArenaMatchesBruteForce) {
  const RankingStore store = testutil::MakeClusteredStore(6, 300, 41);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 20, 42);
  for (const PreparedQuery& query : queries) {
    for (const double theta : {0.1, 0.4, 0.8}) {
      const RawDistance theta_raw = RawThreshold(theta, 6);
      ASSERT_EQ(engine.Query(query, theta_raw),
                testutil::BruteForce(store, query, theta_raw));
    }
  }
}

}  // namespace
}  // namespace topk
