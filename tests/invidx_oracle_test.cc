// Minimal F&V oracle: exact materialization and the paper's cost
// accounting (one distance call per materialized ranking).

#include "invidx/oracle_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace topk {
namespace {

TEST(OracleIndexTest, ReturnsExactlyTheTrueResults) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 81);
  const auto queries = testutil::MakeQueries(store, 20, 82);
  const RawDistance theta_raw = RawThreshold(0.2, 10);
  const OracleIndex oracle =
      OracleIndex::BuildByScan(&store, queries, theta_raw);
  ASSERT_EQ(oracle.num_queries(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(oracle.Query(i, queries[i], theta_raw),
              testutil::BruteForce(store, queries[i], theta_raw));
  }
}

TEST(OracleIndexTest, DistanceCallsEqualMaterializedListSizes) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 83);
  const auto queries = testutil::MakeQueries(store, 20, 84);
  const RawDistance theta_raw = RawThreshold(0.2, 10);
  const OracleIndex oracle =
      OracleIndex::BuildByScan(&store, queries, theta_raw);
  Statistics stats;
  size_t total_results = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    total_results += oracle.Query(i, queries[i], theta_raw, &stats).size();
  }
  // Oracle lists contain exactly the true results, so DFC == results.
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), total_results);
  EXPECT_EQ(stats.Get(Ticker::kResults), total_results);
}

TEST(OracleIndexTest, BuildFromPrecomputedLists) {
  const RankingStore store = testutil::MakeClusteredStore(10, 300, 85);
  const auto queries = testutil::MakeQueries(store, 5, 86);
  const RawDistance theta_raw = RawThreshold(0.1, 10);
  std::vector<std::vector<RankingId>> truth;
  for (const auto& query : queries) {
    truth.push_back(testutil::BruteForce(store, query, theta_raw));
  }
  const OracleIndex oracle = OracleIndex::Build(&store, std::move(truth));
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(oracle.Query(i, queries[i], theta_raw),
              testutil::BruteForce(store, queries[i], theta_raw));
  }
}

TEST(OracleIndexTest, MemoryUsageTracksLists) {
  const RankingStore store = testutil::MakeClusteredStore(10, 300, 87);
  const auto queries = testutil::MakeQueries(store, 10, 88);
  const OracleIndex small =
      OracleIndex::BuildByScan(&store, queries, RawThreshold(0.0, 10));
  const OracleIndex large =
      OracleIndex::BuildByScan(&store, queries, RawThreshold(0.5, 10));
  EXPECT_LE(small.MemoryUsage(), large.MemoryUsage());
}

}  // namespace
}  // namespace topk
