// Reproduces every worked number in the paper's running examples
// (Tables 1 and 4, the Section 6.2 bounds example, the Figure 4 blocked
// index) and documents the one spot where the paper's arithmetic is
// internally inconsistent.

#include <gtest/gtest.h>

#include <vector>

#include "core/bounds.h"
#include "core/footrule.h"
#include "core/ranking.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/blocked_inverted_index.h"

namespace topk {
namespace {

/// Table 4's ten rankings (k = 5).
RankingStore MakeTable4Store() {
  RankingStore store(5);
  const std::vector<std::vector<ItemId>> rows = {
      {1, 2, 3, 4, 5}, {1, 2, 9, 8, 3}, {9, 8, 1, 2, 4}, {7, 1, 9, 4, 5},
      {6, 1, 5, 2, 3}, {4, 5, 1, 2, 3}, {1, 6, 2, 3, 7}, {7, 1, 6, 5, 2},
      {2, 5, 9, 8, 1}, {6, 3, 2, 1, 4}};
  for (const auto& row : rows) store.AddUnchecked(row);
  return store;
}

PreparedQuery MakeSection62Query() {
  // q = [7, 6, 3, 9, 5].
  return PreparedQuery(
      std::move(Ranking::Create({7, 6, 3, 9, 5})).ValueOrDie());
}

TEST(PaperExamplesTest, Section62IndexListForItem7) {
  // "The index list for item 7 is: (tau3 : 0), (tau6 : 4), (tau7 : 0)".
  const RankingStore store = MakeTable4Store();
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  const auto list = index.list(7);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].id, 3u);
  EXPECT_EQ(list[0].rank, 0u);
  EXPECT_EQ(list[1].id, 6u);
  EXPECT_EQ(list[1].rank, 4u);
  EXPECT_EQ(list[2].id, 7u);
  EXPECT_EQ(list[2].rank, 0u);
}

TEST(PaperExamplesTest, Section62LowerBounds) {
  // After seeing only item 7's list: L(tau3) = L(tau7) = 0, L(tau6) = 4.
  // Our lower bound after processing list t=0 (query item 7 at rank 0) is
  // the seen mismatch |q(7) - tau(7)| — identical to the paper's.
  const RankingStore store = MakeTable4Store();
  const PreparedQuery q = MakeSection62Query();
  EXPECT_EQ(q.view()[0], 7u);
  // tau3(7) = 0, tau7(7) = 0, tau6(7) = 4.
  EXPECT_EQ(*store.view(3).RankOf(7), 0u);
  EXPECT_EQ(*store.view(7).RankOf(7), 0u);
  EXPECT_EQ(*store.view(6).RankOf(7), 4u);
}

TEST(PaperExamplesTest, Section62UpperBounds) {
  // The paper reports U(tau3) = U(tau7) = 20 and U(tau6) = 24. Our sound
  // upper bound after one list is
  //   U = L + AbsentSuffixCost(k, 1) + (k(k+1)/2 - seen tau coverage):
  // tau3/tau7 (seen at rank 0):  0 + 10 + (15 - 5) = 20  == paper.
  // tau6       (seen at rank 4): 4 + 10 + (15 - 1) = 28  != paper's 24.
  // The paper's 24 is inconsistent with its own tau3 arithmetic: no sound
  // bound can assign tau6's four uncovered positions {0,1,2,3} a smaller
  // worst case (5+4+3+2 = 14) than tau3's {1,2,3,4} (4+3+2+1 = 10), yet
  // 24 would require exactly that. We assert our values and that they
  // dominate the true final distances.
  const RankingStore store = MakeTable4Store();
  const PreparedQuery q = MakeSection62Query();
  const uint32_t k = 5;
  const RawDistance half = AbsentSuffixCost(k, 0);
  ASSERT_EQ(half, 15u);

  auto upper_after_item7 = [&](RankingId id) -> RawDistance {
    const Rank r = *store.view(id).RankOf(7);
    const RawDistance l = r;  // |0 - r|
    return l + AbsentSuffixCost(k, 1) + (half - (k - r));
  };
  EXPECT_EQ(upper_after_item7(3), 20u);
  EXPECT_EQ(upper_after_item7(7), 20u);
  EXPECT_EQ(upper_after_item7(6), 28u);

  // Sound: the bound dominates the exact distances.
  for (RankingId id : {3u, 6u, 7u}) {
    const RawDistance exact =
        FootruleDistance(q.sorted_view(), store.sorted(id));
    EXPECT_LE(exact, upper_after_item7(id)) << "tau" << id;
  }
  // And the paper's 24 happens to dominate tau6's exact distance too
  // (16), so its pruning decisions would not have been wrong here — the
  // formula just is not a worst-case bound.
  EXPECT_EQ(FootruleDistance(q.sorted_view(), store.sorted(6)), 16u);
}

TEST(PaperExamplesTest, Figure4BlockStructureForItem1) {
  // Figure 4, list of item 1 (ignoring tau10, which is not in Table 4):
  // ranks: tau0,tau1,tau6 at 0 | tau3,tau4,tau7 at 1 | tau2,tau5 at 2 |
  // tau9 at 3 | tau8 at 4.
  const RankingStore store = MakeTable4Store();
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);

  auto ids_at = [&](Rank rank) {
    std::vector<RankingId> ids;
    for (const auto& entry : index.Block(1, rank)) ids.push_back(entry.id);
    return ids;
  };
  EXPECT_EQ(ids_at(0), (std::vector<RankingId>{0, 1, 6}));
  EXPECT_EQ(ids_at(1), (std::vector<RankingId>{3, 4, 7}));
  EXPECT_EQ(ids_at(2), (std::vector<RankingId>{2, 5}));
  EXPECT_EQ(ids_at(3), (std::vector<RankingId>{9}));
  EXPECT_EQ(ids_at(4), (std::vector<RankingId>{8}));
}

TEST(PaperExamplesTest, Figure4BlockStructureForItems2And3And4) {
  const RankingStore store = MakeTable4Store();
  const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);

  auto ids_at = [&](ItemId item, Rank rank) {
    std::vector<RankingId> ids;
    for (const auto& entry : index.Block(item, rank)) ids.push_back(entry.id);
    return ids;
  };
  // item 2: tau8@0 | tau0,tau1@1 | tau6,tau9@2 | tau2,tau4,tau5@3 | tau7@4.
  EXPECT_EQ(ids_at(2, 0), (std::vector<RankingId>{8}));
  EXPECT_EQ(ids_at(2, 1), (std::vector<RankingId>{0, 1}));
  EXPECT_EQ(ids_at(2, 2), (std::vector<RankingId>{6, 9}));
  EXPECT_EQ(ids_at(2, 3), (std::vector<RankingId>{2, 4, 5}));
  EXPECT_EQ(ids_at(2, 4), (std::vector<RankingId>{7}));
  // item 3: tau9@1 | tau0@2 | tau6@3 | tau1,tau4,tau5@4.
  EXPECT_EQ(ids_at(3, 1), (std::vector<RankingId>{9}));
  EXPECT_EQ(ids_at(3, 2), (std::vector<RankingId>{0}));
  EXPECT_EQ(ids_at(3, 3), (std::vector<RankingId>{6}));
  EXPECT_EQ(ids_at(3, 4), (std::vector<RankingId>{1, 4, 5}));
  // item 4: tau5@0 | tau0,tau3@3 | tau2,tau9@4 (tau10 not in Table 4).
  EXPECT_EQ(ids_at(4, 0), (std::vector<RankingId>{5}));
  EXPECT_EQ(ids_at(4, 3), (std::vector<RankingId>{0, 3}));
  EXPECT_EQ(ids_at(4, 4), (std::vector<RankingId>{2, 9}));
}

TEST(PaperExamplesTest, Table1SampleRankings) {
  // Table 1: tau1 = [2,5,4,3], tau2 = [1,4,5,9], tau3 = [0,8,5,7].
  RankingStore store(4);
  store.AddUnchecked(std::vector<ItemId>{2, 5, 4, 3});
  store.AddUnchecked(std::vector<ItemId>{1, 4, 5, 9});
  store.AddUnchecked(std::vector<ItemId>{0, 8, 5, 7});
  // Pairwise distances are symmetric and within [0, dmax = 20].
  for (RankingId a = 0; a < 3; ++a) {
    for (RankingId b = 0; b < 3; ++b) {
      const RawDistance d = FootruleDistance(store.sorted(a),
                                             store.sorted(b));
      EXPECT_LE(d, MaxDistance(4));
      EXPECT_EQ(d, FootruleDistance(store.sorted(b), store.sorted(a)));
    }
  }
}

}  // namespace
}  // namespace topk
