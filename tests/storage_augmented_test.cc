// Differential suite for compressed augmented serving: the rank-range
// block metadata, the rank-windowed partial decode, and the
// CompressedAugmentedEngine must be bit-identical to the uncompressed
// engines — with block skipping on AND off, across every drop mode,
// thetas from 0 to dmax (exhaustive at small k), block-boundary list
// lengths, and fuzzed stores (failing seeds printed). The streaming
// exact finalization is additionally pinned to zero distance calls.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/posting_entry.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/filter_validate.h"
#include "invidx/plain_inverted_index.h"
#include "storage/compressed_arena.h"
#include "storage/compressed_augmented.h"
#include "test_util.h"

namespace topk {
namespace {

using storage::BlockRankRange;
using storage::CompressedAugmentedEngine;
using storage::CompressedAugmentedIndex;
using storage::CompressedAugmentedOptions;
using storage::CompressedListMeta;
using storage::CompressedPostingArena;
using storage::kBlockEntries;

// ---------------------------------------------------------------------
// Rank-range metadata.

TEST(BlockRankRange, DisjointFromIsExactWithoutSaturation) {
  const BlockRankRange range{5, 10};
  EXPECT_TRUE(range.DisjointFrom(0, 4));
  EXPECT_TRUE(range.DisjointFrom(11, 20));
  EXPECT_FALSE(range.DisjointFrom(10, 12));
  EXPECT_FALSE(range.DisjointFrom(0, 5));
  EXPECT_FALSE(range.DisjointFrom(7, 8));   // window inside the range
  EXPECT_FALSE(range.DisjointFrom(0, 20));  // range inside the window
}

TEST(BlockRankRange, SaturatedMaxIsNeverSkippedOnItsHighBound) {
  const BlockRankRange saturated{5, BlockRankRange::kRankRangeUnbounded};
  // max_rank is "+infinity": only the low bound may prove disjointness.
  EXPECT_FALSE(saturated.DisjointFrom(100000, 200000));
  EXPECT_TRUE(saturated.DisjointFrom(0, 4));
}

TEST(CompressedAugmentedArena, RankRangesMatchBlockContents) {
  // Long lists (small domain) so multiple blocks per list exist.
  const RankingStore store = testutil::MakeUniformStore(8, 900, 24, 5);
  const AugmentedInvertedIndex augmented = AugmentedInvertedIndex::Build(store);
  const auto compressed =
      CompressedPostingArena<AugmentedEntry>::FromArena(augmented.arena());
  const auto lists = compressed.list_metas();
  const auto blocks = compressed.block_metas();
  const auto ranks = compressed.rank_ranges();
  ASSERT_EQ(ranks.size(), compressed.num_blocks());
  ASSERT_GT(compressed.num_blocks(), 0u);

  std::vector<AugmentedEntry> scratch;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].length == 0 ||
        (lists[i].head & CompressedListMeta::kInlineBit) != 0) {
      continue;
    }
    const auto decoded = compressed.DecodeList(i, &scratch);
    size_t block = lists[i].head;
    size_t cursor = 0;
    while (cursor < decoded.size()) {
      const uint32_t count = blocks[block].count;
      uint32_t lo = UINT32_MAX;
      uint32_t hi = 0;
      for (uint32_t j = 0; j < count; ++j) {
        lo = std::min(lo, decoded[cursor + j].rank);
        hi = std::max(hi, decoded[cursor + j].rank);
      }
      EXPECT_EQ(ranks[block].min_rank, lo) << "list " << i;
      EXPECT_EQ(ranks[block].max_rank, hi) << "list " << i;  // ranks < k
      cursor += count;
      ++block;
    }
  }
}

TEST(CompressedAugmentedArena, RankWindowDecodeIsTheIntersectingBlocks) {
  const RankingStore store = testutil::MakeUniformStore(10, 1200, 20, 9);
  const auto index = CompressedAugmentedIndex::Build(store);
  const auto& arena = index.arena();
  const auto lists = arena.list_metas();
  const auto blocks = arena.block_metas();
  const auto ranks = arena.rank_ranges();

  std::vector<AugmentedEntry> full_scratch;
  std::vector<AugmentedEntry> window_scratch;
  for (size_t i = 0; i < lists.size(); ++i) {
    const auto full = arena.DecodeList(i, &full_scratch);
    for (const auto& [lo, hi] : {std::pair<uint32_t, uint32_t>{0, 2},
                                {3, 5},
                                {8, 9},
                                {0, 9}}) {
      BlockSkipStats skip;
      const auto windowed =
          arena.DecodeBlocksInRankWindow(i, lo, hi, &window_scratch, &skip);
      if (lists[i].length == 0 ||
          (lists[i].head & CompressedListMeta::kInlineBit) != 0) {
        // Inline lists come back whole, nothing considered or skipped.
        ASSERT_EQ(windowed.size(), full.size());
        EXPECT_EQ(skip.blocks_considered, 0u);
        continue;
      }
      // Expected: concatenation of exactly the non-disjoint blocks.
      std::vector<AugmentedEntry> expected;
      size_t block = lists[i].head;
      size_t cursor = 0;
      size_t expect_skipped = 0;
      while (cursor < full.size()) {
        const uint32_t count = blocks[block].count;
        if (ranks[block].DisjointFrom(lo, hi)) {
          ++expect_skipped;
        } else {
          expected.insert(expected.end(), full.begin() + cursor,
                          full.begin() + cursor + count);
        }
        cursor += count;
        ++block;
      }
      ASSERT_EQ(windowed.size(), expected.size())
          << "list " << i << " window [" << lo << ", " << hi << "]";
      for (size_t j = 0; j < expected.size(); ++j) {
        ASSERT_EQ(windowed[j].id, expected[j].id);
        ASSERT_EQ(windowed[j].rank, expected[j].rank);
      }
      EXPECT_EQ(skip.blocks_skipped, expect_skipped);
      EXPECT_EQ(skip.blocks_considered, block - lists[i].head);
      // Soundness: every in-window entry of the full list is present.
      for (const auto& entry : full) {
        if (entry.rank >= lo && entry.rank <= hi) {
          EXPECT_TRUE(std::any_of(windowed.begin(), windowed.end(),
                                  [&](const AugmentedEntry& e) {
                                    return e.id == entry.id &&
                                           e.rank == entry.rank;
                                  }));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Engine differential: skip-on, skip-off, and the plain reference agree
// on every drop mode and theta.

void ExpectAugmentedEquivalence(const RankingStore& store, uint64_t seed,
                                std::span<const RawDistance> thetas) {
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  const CompressedAugmentedIndex compressed =
      CompressedAugmentedIndex::Build(store);
  const auto queries = testutil::MakeQueries(store, 8, seed);
  for (const DropMode drop : {DropMode::kNone, DropMode::kConservative,
                              DropMode::kPositionRefined}) {
    FilterValidateEngine reference(&store, &plain, {drop});
    CompressedAugmentedEngine with_skip(&store, &compressed, {drop, true});
    CompressedAugmentedEngine without_skip(&store, &compressed,
                                           {drop, false});
    for (const auto& query : queries) {
      for (const RawDistance theta : thetas) {
        const auto expected = reference.Query(query, theta);
        ASSERT_EQ(with_skip.Query(query, theta), expected)
            << "skip=on drop=" << static_cast<int>(drop)
            << " theta=" << theta;
        ASSERT_EQ(without_skip.Query(query, theta), expected)
            << "skip=off drop=" << static_cast<int>(drop)
            << " theta=" << theta;
      }
    }
  }
}

TEST(CompressedAugmentedEngine, MatchesPlainOnClusteredStore) {
  const RankingStore store = testutil::MakeClusteredStore(10, 600, 7);
  const RawDistance dmax = MaxDistance(store.k());
  const RawDistance thetas[] = {0, dmax / 4, dmax / 2, dmax};
  ExpectAugmentedEquivalence(store, 87, thetas);
}

TEST(CompressedAugmentedEngine, MatchesPlainOnUniformStore) {
  // Small domain: long posting lists, deep into the block tier.
  const RankingStore store = testutil::MakeUniformStore(8, 500, 40, 11);
  const RawDistance dmax = MaxDistance(store.k());
  const RawDistance thetas[] = {0, dmax / 4, dmax / 2, dmax};
  ExpectAugmentedEquivalence(store, 88, thetas);
}

TEST(CompressedAugmentedEngine, MatchesPlainExhaustivelyAtSmallK) {
  // Every theta in [0, dmax] at k = 4: the full threshold lattice.
  const RankingStore store = testutil::MakeUniformStore(4, 300, 14, 13);
  std::vector<RawDistance> thetas;
  for (RawDistance theta = 0; theta <= MaxDistance(store.k()); ++theta) {
    thetas.push_back(theta);
  }
  ExpectAugmentedEquivalence(store, 89, thetas);
}

TEST(CompressedAugmentedEngine, MatchesPlainAtBlockBoundaryListLengths) {
  // Every ranking contains item 0, so its posting list length equals n;
  // n = block size +/- 1 and exactly the block size.
  for (const size_t n : {size_t{kBlockEntries - 1}, size_t{kBlockEntries},
                         size_t{kBlockEntries + 1}}) {
    RankingStore store(4);
    for (size_t i = 0; i < n; ++i) {
      const auto base = static_cast<ItemId>(3 * i);
      store.AddUnchecked(
          std::vector<ItemId>{0, base + 1, base + 2, base + 3});
    }
    const RawDistance dmax = MaxDistance(store.k());
    const RawDistance thetas[] = {0, dmax / 4, dmax / 2, dmax};
    ExpectAugmentedEquivalence(store, 90 + n, thetas);
  }
}

TEST(CompressedAugmentedEngine, AgreesWithBruteForce) {
  const RankingStore store = testutil::MakeClusteredStore(10, 400, 21);
  const CompressedAugmentedIndex compressed =
      CompressedAugmentedIndex::Build(store);
  CompressedAugmentedEngine engine(&store, &compressed, {});
  const RawDistance theta = MaxDistance(store.k()) / 3;
  for (const auto& query : testutil::MakeQueries(store, 8, 22)) {
    EXPECT_EQ(engine.Query(query, theta),
              testutil::BruteForce(store, query, theta));
  }
}

TEST(CompressedAugmentedEngineFuzz, MatchesBruteForceOnRandomStores) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    Rng rng(seed);
    const uint32_t k = 2 + static_cast<uint32_t>(rng.Below(9));
    const uint32_t domain = k + 2 + static_cast<uint32_t>(rng.Below(40));
    const size_t n = 50 + rng.Below(300);
    const RankingStore store =
        testutil::MakeUniformStore(k, n, domain, seed * 101);
    const CompressedAugmentedIndex compressed =
        CompressedAugmentedIndex::Build(store);
    const DropMode drop =
        std::array{DropMode::kNone, DropMode::kConservative,
                   DropMode::kPositionRefined}[rng.Below(3)];
    CompressedAugmentedEngine engine(&store, &compressed,
                                     {drop, rng.Below(2) == 0});
    // Thetas stay below dmax, like every inverted-index brute-force
    // differential: a disjoint ranking sits at exactly dmax and appears
    // in no posting list (the documented exactness contract).
    const RawDistance theta = rng.Below(MaxDistance(k));
    for (const auto& query : testutil::MakeQueries(store, 5, seed * 7)) {
      ASSERT_EQ(engine.Query(query, theta),
                testutil::BruteForce(store, query, theta))
          << "k=" << k << " theta=" << theta
          << " drop=" << static_cast<int>(drop);
    }
  }
}

// ---------------------------------------------------------------------
// Ticker evidence: the window actually skips, and complete sweeps
// finalize without a single distance call.

TEST(CompressedAugmentedEngine, TightThetaSkipsBlocksOnConcentratedRanks) {
  // Item 0 appears in every ranking, at a rank that changes every
  // kBlockEntries ids: each block of its posting list covers exactly one
  // rank, so a tight discovery window skips all but the nearby blocks —
  // the rank-mismatch pruning the rank ranges exist for.
  constexpr uint32_t kK = 5;
  RankingStore store(kK);
  for (uint32_t rank = 0; rank < kK; ++rank) {
    for (uint32_t i = 0; i < kBlockEntries; ++i) {
      std::vector<ItemId> items;
      const auto base =
          static_cast<ItemId>(1 + (kK - 1) * (rank * kBlockEntries + i));
      for (uint32_t j = 0; j + 1 < kK; ++j) items.push_back(base + j);
      items.insert(items.begin() + rank, 0);
      store.AddUnchecked(items);
    }
  }
  const CompressedAugmentedIndex compressed =
      CompressedAugmentedIndex::Build(store);
  CompressedAugmentedEngine engine(&store, &compressed, {});
  // Query ranks item 0 first: at theta = 1 only the rank-{0, 1} blocks
  // of its five-block list can discover results.
  PreparedQuery query(
      Ranking::Create(std::vector<ItemId>{0, 1, 2, 3, 4}).ValueOrDie());
  Statistics stats;
  const auto results = engine.Query(query, /*theta_raw=*/1, &stats);
  EXPECT_EQ(stats.Get(Ticker::kBlocksSkipped), 3u);
  EXPECT_EQ(stats.Get(Ticker::kBlocksDecoded), 2u);
  EXPECT_GT(stats.Get(Ticker::kPostingEntriesSkipped), 0u);
  // Identical results with skipping disabled.
  CompressedAugmentedEngine no_skip(&store, &compressed,
                                    {DropMode::kNone, false});
  Statistics no_skip_stats;
  EXPECT_EQ(no_skip.Query(query, 1, &no_skip_stats), results);
  EXPECT_EQ(no_skip_stats.Get(Ticker::kBlocksSkipped), 0u);
}

TEST(CompressedAugmentedEngine, CompleteSweepUsesZeroDistanceCalls) {
  // At theta = dmax nothing is skipped or dropped, so the streaming
  // finalization answers from the accumulators alone: ranks straight
  // from the decode buffer, zero store probes.
  const RankingStore store = testutil::MakeClusteredStore(8, 300, 41);
  const CompressedAugmentedIndex compressed =
      CompressedAugmentedIndex::Build(store);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  FilterValidateEngine reference(&store, &plain, {});
  CompressedAugmentedEngine engine(&store, &compressed, {});
  const RawDistance theta = MaxDistance(store.k());
  for (const auto& query : testutil::MakeQueries(store, 5, 42)) {
    Statistics stats;
    const auto results = engine.Query(query, theta, &stats);
    EXPECT_EQ(results, reference.Query(query, theta));
    EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), 0u);
    EXPECT_EQ(stats.Get(Ticker::kBlocksSkipped), 0u);
  }
}

}  // namespace
}  // namespace topk
