// Plain and augmented inverted indexes: structure, subset builds, the
// visited-set scratch, and memory accounting.

#include "invidx/plain_inverted_index.h"

#include <gtest/gtest.h>

#include "invidx/augmented_inverted_index.h"
#include "invidx/visited_set.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(PlainInvertedIndexTest, PostingListsAreIdSortedAndComplete) {
  const RankingStore store = testutil::MakeUniformStore(5, 300, 60, 11);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  EXPECT_EQ(index.num_indexed(), store.size());
  EXPECT_EQ(index.num_entries(), store.size() * 5);

  size_t total = 0;
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    const auto list = index.list(item);
    total += list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_TRUE(store.view(list[i]).Contains(item));
      if (i > 0) {
        EXPECT_LT(list[i - 1], list[i]);
      }
    }
  }
  EXPECT_EQ(total, store.size() * 5);
}

TEST(PlainInvertedIndexTest, EveryRankingReachableFromItsItems) {
  const RankingStore store = testutil::MakeUniformStore(5, 100, 40, 12);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  for (RankingId id = 0; id < store.size(); ++id) {
    for (ItemId item : store.view(id).items()) {
      const auto list = index.list(item);
      EXPECT_TRUE(std::find(list.begin(), list.end(), id) != list.end());
    }
  }
}

TEST(PlainInvertedIndexTest, OutOfRangeItemYieldsEmptyList) {
  const RankingStore store = testutil::MakeUniformStore(5, 10, 20, 13);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  EXPECT_TRUE(index.list(store.max_item() + 1000).empty());
}

TEST(PlainInvertedIndexTest, SubsetBuildUsesSubsetPositions) {
  const RankingStore store = testutil::MakeUniformStore(4, 50, 30, 14);
  const std::vector<RankingId> subset = {5, 17, 33};
  const PlainInvertedIndex index =
      PlainInvertedIndex::BuildSubset(store, subset);
  EXPECT_EQ(index.num_indexed(), 3u);
  // Entries must be 0, 1 or 2 (positions within subset).
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    for (RankingId pos : index.list(item)) {
      ASSERT_LT(pos, 3u);
      EXPECT_TRUE(store.view(subset[pos]).Contains(item));
    }
  }
}

TEST(PlainInvertedIndexTest, MemoryUsageIsExactHeapBytes) {
  const RankingStore store = testutil::MakeUniformStore(5, 100, 50, 15);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  // The CSR arena allocates exactly: num_entries posting ids plus the
  // (max_item + 2)-slot offsets directory — no capacity-vs-size estimate.
  EXPECT_EQ(index.MemoryUsage(),
            index.num_entries() * sizeof(RankingId) +
                (static_cast<size_t>(store.max_item()) + 2) *
                    sizeof(uint32_t));
  EXPECT_GT(index.MemoryUsage(), store.size() * 5 * sizeof(RankingId));
}

TEST(AugmentedInvertedIndexTest, EntriesCarryExactRanks) {
  const RankingStore store = testutil::MakeUniformStore(6, 200, 50, 16);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    for (const AugmentedEntry& entry : index.list(item)) {
      EXPECT_EQ(store.view(entry.id)[entry.rank], item);
    }
  }
}

TEST(AugmentedInvertedIndexTest, ListsAreIdSorted) {
  const RankingStore store = testutil::MakeUniformStore(6, 200, 50, 17);
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); ++item) {
    const auto list = index.list(item);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1].id, list[i].id);
    }
  }
}

TEST(VisitedSetTest, TestAndSetSemantics) {
  VisitedSet visited(10);
  visited.NextEpoch();
  EXPECT_FALSE(visited.Test(3));
  EXPECT_FALSE(visited.TestAndSet(3));
  EXPECT_TRUE(visited.Test(3));
  EXPECT_TRUE(visited.TestAndSet(3));
}

TEST(VisitedSetTest, EpochResetIsCheapAndComplete) {
  VisitedSet visited(100);
  visited.NextEpoch();
  for (uint32_t i = 0; i < 100; ++i) visited.TestAndSet(i);
  visited.NextEpoch();
  for (uint32_t i = 0; i < 100; ++i) EXPECT_FALSE(visited.Test(i));
}

TEST(VisitedSetTest, EnsureCapacityGrows) {
  VisitedSet visited(4);
  visited.EnsureCapacity(1000);
  visited.NextEpoch();
  EXPECT_FALSE(visited.TestAndSet(999));
  EXPECT_TRUE(visited.Test(999));
}

}  // namespace
}  // namespace topk
