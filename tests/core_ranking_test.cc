// Ranking model: construction validation, views, the sorted
// representation, and the store's flat storage invariants.

#include "core/ranking.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace topk {
namespace {

TEST(RankingTest, CreateValidRanking) {
  auto result = Ranking::Create({2, 5, 4, 3});
  ASSERT_TRUE(result.ok());
  const Ranking& r = result.value();
  EXPECT_EQ(r.k(), 4u);
  EXPECT_EQ(r.view()[0], 2u);
  EXPECT_EQ(r.view()[3], 3u);
}

TEST(RankingTest, CreateRejectsDuplicates) {
  auto result = Ranking::Create({1, 2, 1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(RankingTest, CreateRejectsEmpty) {
  auto result = Ranking::Create({});
  ASSERT_FALSE(result.ok());
}

TEST(RankingTest, RankOfFindsItems) {
  const Ranking r = std::move(Ranking::Create({7, 1, 6, 5, 2})).ValueOrDie();
  EXPECT_EQ(r.view().RankOf(7), 0u);
  EXPECT_EQ(r.view().RankOf(2), 4u);
  EXPECT_FALSE(r.view().RankOf(99).has_value());
  EXPECT_TRUE(r.view().Contains(6));
  EXPECT_FALSE(r.view().Contains(0));
}

TEST(SortedRankingTest, SortsByItemKeepingRanks) {
  const Ranking r = std::move(Ranking::Create({7, 1, 6, 5, 2})).ValueOrDie();
  const SortedRanking sorted(r);
  const SortedRankingView v = sorted.view();
  // Items ascending: 1 2 5 6 7 with original positions 1 4 3 2 0.
  const ItemId expected_items[] = {1, 2, 5, 6, 7};
  const Rank expected_ranks[] = {1, 4, 3, 2, 0};
  for (uint32_t j = 0; j < 5; ++j) {
    EXPECT_EQ(v.item(j), expected_items[j]) << j;
    EXPECT_EQ(v.rank(j), expected_ranks[j]) << j;
  }
}

TEST(RankingStoreTest, AddAndView) {
  RankingStore store(4);
  const ItemId row0[] = {2, 5, 4, 3};
  const ItemId row1[] = {1, 4, 5, 9};
  ASSERT_TRUE(store.Add(row0).ok());
  ASSERT_TRUE(store.Add(row1).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.view(0)[1], 5u);
  EXPECT_EQ(store.view(1)[3], 9u);
  EXPECT_EQ(store.max_item(), 9u);
}

TEST(RankingStoreTest, AddRejectsWrongSize) {
  RankingStore store(4);
  const ItemId row[] = {1, 2, 3};
  EXPECT_FALSE(store.Add(row).ok());
}

TEST(RankingStoreTest, AddRejectsDuplicates) {
  RankingStore store(3);
  const ItemId row[] = {1, 2, 2};
  EXPECT_FALSE(store.Add(row).ok());
}

TEST(RankingStoreTest, SortedViewMatchesPositionView) {
  Rng rng(123);
  RankingStore store(10);
  std::vector<ItemId> items;
  for (int i = 0; i < 200; ++i) {
    items.clear();
    while (items.size() < 10) {
      const auto item = static_cast<ItemId>(rng.Below(1000));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    store.AddUnchecked(items);
  }
  for (RankingId id = 0; id < store.size(); ++id) {
    const RankingView v = store.view(id);
    const SortedRankingView s = store.sorted(id);
    for (uint32_t j = 0; j < s.k(); ++j) {
      // Sorted pairs point back at the right positions.
      EXPECT_EQ(v[s.rank(j)], s.item(j));
      if (j > 0) {
        EXPECT_LT(s.item(j - 1), s.item(j));
      }
    }
  }
}

TEST(RankingStoreTest, MaterializeRoundTrips) {
  RankingStore store(5);
  const ItemId row[] = {9, 3, 7, 1, 5};
  ASSERT_TRUE(store.Add(row).ok());
  const Ranking r = store.Materialize(0);
  for (uint32_t p = 0; p < 5; ++p) EXPECT_EQ(r.view()[p], row[p]);
}

TEST(RankingStoreTest, MemoryUsageGrowsWithContent) {
  RankingStore store(10);
  const size_t before = store.MemoryUsage();
  std::vector<ItemId> items(10);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 10; ++j) items[j] = static_cast<ItemId>(i * 100 + j);
    store.AddUnchecked(items);
  }
  EXPECT_GT(store.MemoryUsage(), before);
}

TEST(PreparedQueryTest, BundlesBothViews) {
  PreparedQuery query(std::move(Ranking::Create({4, 2, 9})).ValueOrDie());
  EXPECT_EQ(query.k(), 3u);
  EXPECT_EQ(query.view()[0], 4u);
  EXPECT_EQ(query.sorted_view().item(0), 2u);
  EXPECT_EQ(query.sorted_view().rank(0), 1u);
}

}  // namespace
}  // namespace topk
