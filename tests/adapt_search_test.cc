// AdaptSearch and the delta inverted index: global-order structure,
// prefix-filter exactness, and the adaptive prefix-length selection.

#include "adapt/adapt_search.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "data/dataset_stats.h"
#include "invidx/filter_validate.h"
#include "test_util.h"

namespace topk {
namespace {

TEST(DeltaIndexTest, GlobalOrderIsAscendingFrequency) {
  const RankingStore store = testutil::MakeClusteredStore(10, 800, 151);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  const std::vector<uint64_t> freqs = ItemFrequencies(store);
  // If OrderOf(a) < OrderOf(b) then freq(a) <= freq(b).
  for (ItemId a = 0; a < freqs.size(); a += 17) {
    for (ItemId b = 0; b < freqs.size(); b += 23) {
      if (index.OrderOf(a) < index.OrderOf(b)) {
        EXPECT_LE(freqs[a], freqs[b]);
      }
    }
  }
}

TEST(DeltaIndexTest, EntriesEncodeSortedPositions) {
  const RankingStore store = testutil::MakeClusteredStore(8, 500, 152);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  for (RankingId id = 0; id < store.size(); ++id) {
    const auto sorted = index.SortByGlobalOrder(store.view(id));
    for (uint32_t pos = 0; pos < sorted.size(); ++pos) {
      // The (item, pos) entry must exist for this record.
      bool found = false;
      for (const AugmentedEntry& entry : index.list(sorted[pos])) {
        if (entry.id == id && entry.rank == pos) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "record " << id << " missing at pos " << pos;
    }
  }
}

TEST(DeltaIndexTest, PrefixIsMonotoneInLength) {
  const RankingStore store = testutil::MakeClusteredStore(8, 500, 153);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  for (ItemId item = 0; item <= store.max_item(); item += 11) {
    size_t previous = 0;
    for (uint32_t len = 0; len <= 8; ++len) {
      const size_t size = index.Prefix(item, len).size();
      EXPECT_GE(size, previous);
      previous = size;
    }
    EXPECT_EQ(previous, index.list(item).size());
  }
}

class AdaptSearchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(AdaptSearchEquivalenceTest, MatchesBruteForce) {
  const auto [k, theta] = GetParam();
  const RankingStore store = testutil::MakeClusteredStore(k, 1200, 154 + k);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  AdaptSearchEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 25, 155);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "k=" << k << " theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptSearchEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u, 20u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3)));

TEST(AdaptSearchTest, ChooseEllWithinValidRange) {
  const RankingStore store = testutil::MakeClusteredStore(10, 1000, 156);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  AdaptSearchEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 20, 157);
  for (double theta : {0.0, 0.1, 0.2, 0.3}) {
    const RawDistance theta_raw = RawThreshold(theta, 10);
    const uint32_t c = MinOverlap(10, theta_raw);
    for (const auto& query : queries) {
      const uint32_t ell = engine.ChooseEll(query, theta_raw);
      EXPECT_GE(ell, 1u);
      EXPECT_LE(ell, std::max(1u, c));
    }
  }
}

TEST(AdaptSearchTest, PrefixFilterScansLessThanFullFv) {
  const RankingStore store = testutil::MakeClusteredStore(10, 3000, 158);
  const DeltaInvertedIndex delta = DeltaInvertedIndex::Build(store);
  const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
  AdaptSearchEngine adapt(&store, &delta);
  FilterValidateEngine fv(&store, &plain);

  const auto queries = testutil::MakeQueries(store, 20, 159);
  Statistics adapt_stats;
  Statistics fv_stats;
  const RawDistance theta_raw = RawThreshold(0.1, 10);
  for (const auto& query : queries) {
    adapt.Query(query, theta_raw, &adapt_stats);
    fv.Query(query, theta_raw, &fv_stats);
  }
  EXPECT_LT(adapt_stats.Get(Ticker::kPostingEntriesScanned),
            fv_stats.Get(Ticker::kPostingEntriesScanned));
}

TEST(AdaptSearchTest, HandlesQueryWithUnseenItems) {
  const RankingStore store = testutil::MakeClusteredStore(5, 300, 160);
  const DeltaInvertedIndex index = DeltaInvertedIndex::Build(store);
  AdaptSearchEngine engine(&store, &index);
  PreparedQuery query(std::move(Ranking::Create(
                          {1000000, 1000001, 1000002, 1000003, 1000004}))
                          .ValueOrDie());
  EXPECT_TRUE(engine.Query(query, RawThreshold(0.3, 5)).empty());
}

}  // namespace
}  // namespace topk
