// Failpoint registry + deadline/cancellation unit tests: deterministic
// firing schedules (fail-nth, every-k, one-shot, probability thinning),
// the spec-string parser, hit tracing, and the QueryControl stop
// contract (amortized deadline polls, sticky latch, cancel tokens).
// The registry itself compiles into every build — only the
// TOPK_FAILPOINT probe macro is gated — so all schedule tests run
// regardless of -DTOPK_FAILPOINTS.

#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/deadline.h"

namespace topk {
namespace {

/// Every test starts and leaves the process-wide registry pristine.
class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
  static void Reset() {
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().ResetCounts();
  }
};

/// The firing pattern of `site` over `hits` sequential evaluations.
std::vector<bool> FiringPattern(const char* site, int hits) {
  std::vector<bool> fired;
  fired.reserve(static_cast<size_t>(hits));
  for (int i = 0; i < hits; ++i) {
    fired.push_back(FailpointRegistry::Instance().Evaluate(site));
  }
  return fired;
}

TEST_F(FailpointRegistryTest, UnarmedSiteCountsHitsButNeverFires) {
  auto& registry = FailpointRegistry::Instance();
  for (const bool fired : FiringPattern("test.unarmed", 10)) {
    EXPECT_FALSE(fired);
  }
  EXPECT_EQ(registry.hits("test.unarmed"), 10u);
  EXPECT_EQ(registry.fires("test.unarmed"), 0u);
}

TEST_F(FailpointRegistryTest, FailNthFiresOnlyFromTheNthHit) {
  FailpointSpec spec;
  spec.start_hit = 3;
  FailpointRegistry::Instance().Arm("test.nth", spec);
  const std::vector<bool> fired = FiringPattern("test.nth", 5);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST_F(FailpointRegistryTest, OneShotFiresExactlyOnce) {
  FailpointSpec spec;
  spec.start_hit = 2;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Arm("test.oneshot", spec);
  const std::vector<bool> fired = FiringPattern("test.oneshot", 6);
  EXPECT_EQ(fired,
            (std::vector<bool>{false, true, false, false, false, false}));
  EXPECT_EQ(FailpointRegistry::Instance().fires("test.oneshot"), 1u);
}

TEST_F(FailpointRegistryTest, EveryKSkipsBetweenFirings) {
  FailpointSpec spec;
  spec.start_hit = 1;
  spec.every = 3;
  FailpointRegistry::Instance().Arm("test.everyk", spec);
  const std::vector<bool> fired = FiringPattern("test.everyk", 7);
  EXPECT_EQ(fired,
            (std::vector<bool>{true, false, false, true, false, false, true}));
}

TEST_F(FailpointRegistryTest, ProbabilityThinningIsDeterministic) {
  FailpointSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  FailpointRegistry::Instance().Arm("test.prob", spec);
  const std::vector<bool> first = FiringPattern("test.prob", 200);
  const uint64_t fired_count = FailpointRegistry::Instance().fires("test.prob");
  // The draw is thinned (not all) but not dead (not none).
  EXPECT_GT(fired_count, 0u);
  EXPECT_LT(fired_count, 200u);

  // Same seed, same schedule -> bit-identical firing pattern on a rerun.
  FailpointRegistry::Instance().ResetCounts();
  EXPECT_EQ(FiringPattern("test.prob", 200), first);
}

TEST_F(FailpointRegistryTest, DisarmStopsFiringButKeepsCountingHits) {
  FailpointSpec spec;
  FailpointRegistry::Instance().Arm("test.disarm", spec);
  EXPECT_TRUE(FailpointRegistry::Instance().Evaluate("test.disarm"));
  FailpointRegistry::Instance().Disarm("test.disarm");
  EXPECT_FALSE(FailpointRegistry::Instance().Evaluate("test.disarm"));
  EXPECT_EQ(FailpointRegistry::Instance().hits("test.disarm"), 2u);
}

TEST_F(FailpointRegistryTest, SitesHitTracesFirstHitOrder) {
  auto& registry = FailpointRegistry::Instance();
  registry.Evaluate("test.trace.b");
  registry.Evaluate("test.trace.a");
  registry.Evaluate("test.trace.b");
  EXPECT_EQ(registry.SitesHit(),
            (std::vector<std::string>{"test.trace.b", "test.trace.a"}));
  registry.ResetCounts();
  EXPECT_TRUE(registry.SitesHit().empty());
  EXPECT_EQ(registry.hits("test.trace.b"), 0u);
}

TEST_F(FailpointRegistryTest, SpecStringArmsScheduleFields) {
  auto& registry = FailpointRegistry::Instance();
  const Status status =
      registry.ArmFromSpecString("test.spec.a=error@2/3x2;test.spec.b=error");
  ASSERT_TRUE(status.ok()) << status.ToString();
  // start 2, every 3, max 2 -> fires on hits 2 and 5 only.
  const std::vector<bool> a = FiringPattern("test.spec.a", 9);
  EXPECT_EQ(a, (std::vector<bool>{false, true, false, false, true, false,
                                  false, false, false}));
  // No schedule -> every hit fires.
  for (const bool fired : FiringPattern("test.spec.b", 3)) {
    EXPECT_TRUE(fired);
  }
}

TEST_F(FailpointRegistryTest, SpecStringRejectsMalformedEntries) {
  auto& registry = FailpointRegistry::Instance();
  for (const char* bad :
       {"nosign", "=error", "test.x=explode", "test.x=error@0",
        "test.x=error@1/0"}) {
    const Status status = registry.ArmFromSpecString(bad);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << bad;
  }
}

TEST_F(FailpointRegistryTest, ProbeMacroMatchesBuildMode) {
  // In a -DTOPK_FAILPOINTS build the macro reaches the registry and an
  // armed site fires; in a default build it folds to `false` and the
  // registry never even sees the hit.
  FailpointRegistry::Instance().Arm("test.macro", FailpointSpec{});
  const bool fired = TOPK_FAILPOINT("test.macro");
  EXPECT_EQ(fired, FailpointsCompiledIn());
  EXPECT_EQ(FailpointRegistry::Instance().hits("test.macro"),
            FailpointsCompiledIn() ? 1u : 0u);
}

// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(Deadline::Infinite().RemainingMillis(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  const Deadline deadline = Deadline::AfterMillis(-1.0);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LT(deadline.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, GenerousDeadlineIsNotExpiredYet) {
  const Deadline deadline = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingMillis(), 0.0);
}

TEST(QueryControlTest, InfiniteControlNeverStops) {
  QueryControl control;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_FALSE(control.ShouldStop());
  }
  EXPECT_FALSE(control.stopped());
}

TEST(QueryControlTest, ExpiredDeadlineStopsOnTheFirstPoll) {
  QueryControl control(Deadline::AfterMillis(-1.0));
  // The first poll on a fresh control is precise — the serving layers'
  // entry checks rely on it to fail already-expired queries fast.
  EXPECT_TRUE(control.ShouldStop());
  EXPECT_TRUE(control.stopped());
  EXPECT_FALSE(control.cancelled());
  // Sticky: every later poll answers immediately.
  EXPECT_TRUE(control.ShouldStop());
}

TEST(QueryControlTest, ExpiredNowIsPrecise) {
  QueryControl expired(Deadline::AfterMillis(-1.0));
  EXPECT_TRUE(expired.ExpiredNow());  // no stride amortization here
  QueryControl live(Deadline::AfterMillis(60'000.0));
  EXPECT_FALSE(live.ExpiredNow());
}

TEST(QueryControlTest, CancelTokenStopsImmediatelyAndIsSticky) {
  CancelToken token;
  QueryControl control(Deadline::Infinite(), &token);
  EXPECT_FALSE(control.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(control.ShouldStop());
  EXPECT_TRUE(control.cancelled());
  EXPECT_TRUE(control.stopped());
}

TEST(QueryControlTest, OneTokenCoversManyControls) {
  CancelToken token;
  QueryControl a(Deadline::Infinite(), &token);
  QueryControl b(Deadline::Infinite(), &token);
  token.Cancel();
  EXPECT_TRUE(a.ShouldStop());
  EXPECT_TRUE(b.ShouldStop());
}

}  // namespace
}  // namespace topk
