// Randomized differential sweep: many random (seed, shape) configurations
// where every engine must agree with brute force bit-for-bit. This is the
// suite's long-tail net — parameters deliberately roam outside the tidy
// defaults (tiny domains, extreme duplication, k values the paper never
// shows, thresholds at awkward raw values).

#include <gtest/gtest.h>

#include "harness/parallel_runner.h"
#include "harness/query_algorithms.h"
#include "harness/sharded_store.h"
#include "metric/knn.h"
#include "serve/frontend.h"
#include "test_util.h"

namespace topk {
namespace {

struct FuzzShape {
  uint32_t k;
  uint32_t n;
  uint32_t domain;
  double zipf_s;
  double mean_cluster;
  double exact_dup;
};

FuzzShape RandomShape(Rng* rng) {
  FuzzShape shape;
  shape.k = 2 + static_cast<uint32_t>(rng->Below(14));           // 2..15
  shape.n = 200 + static_cast<uint32_t>(rng->Below(800));        // 200..999
  shape.domain =
      std::max(3 * shape.k,
               shape.k + static_cast<uint32_t>(rng->Below(400)));
  shape.zipf_s = rng->NextDouble() * 1.4;
  shape.mean_cluster = 1.0 + rng->NextDouble() * 9.0;
  shape.exact_dup = rng->NextDouble();
  return shape;
}

RankingStore MakeStore(const FuzzShape& shape, uint64_t seed) {
  GeneratorOptions options;
  options.k = shape.k;
  options.n = shape.n;
  options.domain = shape.domain;
  options.zipf_s = shape.zipf_s;
  options.mean_cluster_size = shape.mean_cluster;
  options.exact_duplicate_probability = shape.exact_dup;
  options.max_perturb_ops = 1 + shape.k / 4;
  options.seed = seed;
  return Generate(options);
}

class FuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialTest, AllEnginesAgreeOnRandomConfigurations) {
  Rng rng(5000 + static_cast<uint64_t>(GetParam()));
  const FuzzShape shape = RandomShape(&rng);
  const RankingStore store = MakeStore(shape, rng.Next());
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 8, rng.Next());

  // Random thresholds across the whole valid range, biased low (where
  // pruning logic is busiest) but touching the top too.
  std::vector<RawDistance> thetas = {
      0, 1, 2,
      static_cast<RawDistance>(rng.Below(MaxDistance(shape.k))),
      static_cast<RawDistance>(rng.Below(MaxDistance(shape.k))),
      MaxDistance(shape.k) - 1};

  const Algorithm algorithms[] = {
      Algorithm::kFV,           Algorithm::kFVDrop,
      Algorithm::kListMerge,    Algorithm::kLaatPrune,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kAdaptSearch,  Algorithm::kBkTree,
      Algorithm::kMTree};
  for (Algorithm algorithm : algorithms) {
    auto engine = suite.MakeEngine(algorithm);
    for (RawDistance theta : thetas) {
      for (const auto& query : queries) {
        ASSERT_EQ(engine->Query(0, query, theta, nullptr, nullptr),
                  testutil::BruteForce(store, query, theta))
            << AlgorithmName(algorithm) << " k=" << shape.k
            << " n=" << shape.n << " domain=" << shape.domain
            << " theta=" << theta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzDifferentialTest,
                         ::testing::Range(0, 12));

// Sharded-vs-unsharded differential mode: the parallel merge logic is
// fuzzed over random shapes, shard counts, strategies and thread counts,
// not just example-tested. On mismatch the assertion prints the failing
// base seed — rerun by constructing Rng(seed) with that value.
class FuzzShardedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzShardedTest, ShardedMatchesUnshardedOnRandomConfigurations) {
  const uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const FuzzShape shape = RandomShape(&rng);
  const RankingStore store = MakeStore(shape, rng.Next());
  const auto queries = testutil::MakeQueries(store, 6, rng.Next());

  const size_t num_shards = 1 + rng.Below(8);
  const ShardingStrategy strategy = rng.Below(2) == 0
                                        ? ShardingStrategy::kRoundRobin
                                        : ShardingStrategy::kHashById;
  ParallelRunnerOptions options;
  options.num_threads = 1 + rng.Below(4);
  const ShardedStore sharded(store, num_shards, strategy);
  ParallelRunner runner(&sharded, options);

  const std::vector<RawDistance> thetas = {
      0, 1 + static_cast<RawDistance>(rng.Below(MaxDistance(shape.k) - 1)),
      MaxDistance(shape.k) - 1};

  const Algorithm algorithms[] = {
      Algorithm::kFV,           Algorithm::kFVDrop,
      Algorithm::kListMerge,    Algorithm::kLaatPrune,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kAdaptSearch,  Algorithm::kBkTree,
      Algorithm::kMTree,        Algorithm::kLinearScan};
  for (Algorithm algorithm : algorithms) {
    for (RawDistance theta : thetas) {
      for (const auto& query : queries) {
        ASSERT_EQ(runner.RangeQuery(algorithm, query, theta),
                  testutil::BruteForce(store, query, theta))
            << "failing seed=" << seed << " algorithm="
            << AlgorithmName(algorithm) << " shards=" << num_shards
            << " strategy=" << ShardingStrategyName(strategy)
            << " threads=" << options.num_threads << " k=" << shape.k
            << " n=" << shape.n << " theta=" << theta;
      }
    }
  }

  // KNN merge: every backend against the unsharded linear-scan oracle.
  const size_t js[] = {1, 1 + rng.Below(shape.n), shape.n + 3};
  const Algorithm backends[] = {Algorithm::kLinearScan, Algorithm::kBkTree,
                                Algorithm::kMTree};
  for (Algorithm backend : backends) {
    for (size_t j : js) {
      for (const auto& query : queries) {
        ASSERT_EQ(runner.KnnQuery(backend, query, j),
                  LinearScanKnn(store, query, j))
            << "failing seed=" << seed << " backend="
            << AlgorithmName(backend) << " shards=" << num_shards
            << " strategy=" << ShardingStrategyName(strategy)
            << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzShardedTest, ::testing::Range(0, 8));

// Cached-vs-uncached differential mode: the serving frontend is fuzzed
// over random shapes, thread counts, cache capacities (including tiny
// ones that thrash), and random interleavings of re-issued queries and
// generation bumps. Every response — whether it came from an engine, the
// result cache, or the candidate-cache validation path — must be
// bit-identical to the cold path (brute force for range, linear-scan for
// k-NN), so the result multisets (and their hashes) cannot diverge. On
// mismatch the assertion prints the failing base seed.
class FuzzServeTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzServeTest, CachedMatchesColdOnRandomInterleavings) {
  const uint64_t seed = 13000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const FuzzShape shape = RandomShape(&rng);
  const RankingStore store = MakeStore(shape, rng.Next());
  const auto queries = testutil::MakeQueries(store, 10, rng.Next());

  QueryFrontendOptions options;
  options.num_threads = 1 + rng.Below(4);
  options.result_cache_capacity =
      rng.Below(3) == 0 ? rng.Below(8) : 1 + rng.Below(4096);
  options.candidate_cache_capacity =
      rng.Below(3) == 0 ? rng.Below(8) : 1 + rng.Below(4096);
  QueryFrontend frontend(&store, options);

  const Algorithm range_algorithms[] = {
      Algorithm::kFV,     Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse, Algorithm::kAdaptSearch,
      Algorithm::kBkTree, Algorithm::kLinearScan};
  const Algorithm knn_backends[] = {Algorithm::kLinearScan,
                                    Algorithm::kBkTree, Algorithm::kMTree,
                                    Algorithm::kCoarse};
  // Like the other differential modes, thetas stay below dmax — the
  // inverted-index engines' exactness contract (a disjoint ranking never
  // appears in a posting list). The metric engines' dmax behaviour is
  // covered by serve_frontend_test.
  const RawDistance thetas[] = {
      0, 1 + static_cast<RawDistance>(rng.Below(MaxDistance(shape.k) - 1)),
      MaxDistance(shape.k) - 1};

  for (int round = 0; round < 6; ++round) {
    std::vector<ServeRequest> requests;
    const size_t batch_size = 1 + rng.Below(24);
    for (size_t r = 0; r < batch_size; ++r) {
      const PreparedQuery& query = queries[rng.Below(queries.size())];
      if (rng.Below(4) == 0) {
        requests.push_back(
            ServeRequest::Knn(knn_backends[rng.Below(4)], query,
                              1 + rng.Below(shape.n + 4)));
      } else {
        requests.push_back(ServeRequest::Range(
            range_algorithms[rng.Below(6)], query, thetas[rng.Below(3)]));
      }
    }
    const auto responses = frontend.ServeBatch(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].kind == ServeKind::kRange) {
        ASSERT_EQ(responses[i].ids,
                  testutil::BruteForce(store, *requests[i].query,
                                       requests[i].theta_raw))
            << "failing seed=" << seed << " round=" << round
            << " request=" << i << " algorithm="
            << AlgorithmName(requests[i].algorithm)
            << " theta=" << requests[i].theta_raw << " threads="
            << options.num_threads << " result_cache_capacity="
            << options.result_cache_capacity << " candidate_cache_capacity="
            << options.candidate_cache_capacity;
      } else {
        ASSERT_EQ(responses[i].neighbors,
                  LinearScanKnn(store, *requests[i].query, requests[i].j))
            << "failing seed=" << seed << " round=" << round
            << " request=" << i << " backend="
            << AlgorithmName(requests[i].algorithm)
            << " j=" << requests[i].j;
      }
    }
    // Random interleaving of generation bumps with query traffic.
    if (rng.Below(3) == 0) frontend.InvalidateCaches();
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzServeTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace topk
