// Randomized differential sweep: many random (seed, shape) configurations
// where every engine must agree with brute force bit-for-bit. This is the
// suite's long-tail net — parameters deliberately roam outside the tidy
// defaults (tiny domains, extreme duplication, k values the paper never
// shows, thresholds at awkward raw values).

#include <gtest/gtest.h>

#include "harness/parallel_runner.h"
#include "harness/query_algorithms.h"
#include "harness/sharded_store.h"
#include "metric/knn.h"
#include "test_util.h"

namespace topk {
namespace {

struct FuzzShape {
  uint32_t k;
  uint32_t n;
  uint32_t domain;
  double zipf_s;
  double mean_cluster;
  double exact_dup;
};

FuzzShape RandomShape(Rng* rng) {
  FuzzShape shape;
  shape.k = 2 + static_cast<uint32_t>(rng->Below(14));           // 2..15
  shape.n = 200 + static_cast<uint32_t>(rng->Below(800));        // 200..999
  shape.domain =
      std::max(3 * shape.k,
               shape.k + static_cast<uint32_t>(rng->Below(400)));
  shape.zipf_s = rng->NextDouble() * 1.4;
  shape.mean_cluster = 1.0 + rng->NextDouble() * 9.0;
  shape.exact_dup = rng->NextDouble();
  return shape;
}

RankingStore MakeStore(const FuzzShape& shape, uint64_t seed) {
  GeneratorOptions options;
  options.k = shape.k;
  options.n = shape.n;
  options.domain = shape.domain;
  options.zipf_s = shape.zipf_s;
  options.mean_cluster_size = shape.mean_cluster;
  options.exact_duplicate_probability = shape.exact_dup;
  options.max_perturb_ops = 1 + shape.k / 4;
  options.seed = seed;
  return Generate(options);
}

class FuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialTest, AllEnginesAgreeOnRandomConfigurations) {
  Rng rng(5000 + static_cast<uint64_t>(GetParam()));
  const FuzzShape shape = RandomShape(&rng);
  const RankingStore store = MakeStore(shape, rng.Next());
  EngineSuite suite(&store);
  const auto queries = testutil::MakeQueries(store, 8, rng.Next());

  // Random thresholds across the whole valid range, biased low (where
  // pruning logic is busiest) but touching the top too.
  std::vector<RawDistance> thetas = {
      0, 1, 2,
      static_cast<RawDistance>(rng.Below(MaxDistance(shape.k))),
      static_cast<RawDistance>(rng.Below(MaxDistance(shape.k))),
      MaxDistance(shape.k) - 1};

  const Algorithm algorithms[] = {
      Algorithm::kFV,           Algorithm::kFVDrop,
      Algorithm::kListMerge,    Algorithm::kLaatPrune,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kAdaptSearch,  Algorithm::kBkTree,
      Algorithm::kMTree};
  for (Algorithm algorithm : algorithms) {
    auto engine = suite.MakeEngine(algorithm);
    for (RawDistance theta : thetas) {
      for (const auto& query : queries) {
        ASSERT_EQ(engine->Query(0, query, theta, nullptr, nullptr),
                  testutil::BruteForce(store, query, theta))
            << AlgorithmName(algorithm) << " k=" << shape.k
            << " n=" << shape.n << " domain=" << shape.domain
            << " theta=" << theta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzDifferentialTest,
                         ::testing::Range(0, 12));

// Sharded-vs-unsharded differential mode: the parallel merge logic is
// fuzzed over random shapes, shard counts, strategies and thread counts,
// not just example-tested. On mismatch the assertion prints the failing
// base seed — rerun by constructing Rng(seed) with that value.
class FuzzShardedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzShardedTest, ShardedMatchesUnshardedOnRandomConfigurations) {
  const uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const FuzzShape shape = RandomShape(&rng);
  const RankingStore store = MakeStore(shape, rng.Next());
  const auto queries = testutil::MakeQueries(store, 6, rng.Next());

  const size_t num_shards = 1 + rng.Below(8);
  const ShardingStrategy strategy = rng.Below(2) == 0
                                        ? ShardingStrategy::kRoundRobin
                                        : ShardingStrategy::kHashById;
  ParallelRunnerOptions options;
  options.num_threads = 1 + rng.Below(4);
  const ShardedStore sharded(store, num_shards, strategy);
  ParallelRunner runner(&sharded, options);

  const std::vector<RawDistance> thetas = {
      0, 1 + static_cast<RawDistance>(rng.Below(MaxDistance(shape.k) - 1)),
      MaxDistance(shape.k) - 1};

  const Algorithm algorithms[] = {
      Algorithm::kFV,           Algorithm::kFVDrop,
      Algorithm::kListMerge,    Algorithm::kLaatPrune,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kAdaptSearch,  Algorithm::kBkTree,
      Algorithm::kMTree,        Algorithm::kLinearScan};
  for (Algorithm algorithm : algorithms) {
    for (RawDistance theta : thetas) {
      for (const auto& query : queries) {
        ASSERT_EQ(runner.RangeQuery(algorithm, query, theta),
                  testutil::BruteForce(store, query, theta))
            << "failing seed=" << seed << " algorithm="
            << AlgorithmName(algorithm) << " shards=" << num_shards
            << " strategy=" << ShardingStrategyName(strategy)
            << " threads=" << options.num_threads << " k=" << shape.k
            << " n=" << shape.n << " theta=" << theta;
      }
    }
  }

  // KNN merge: every backend against the unsharded linear-scan oracle.
  const size_t js[] = {1, 1 + rng.Below(shape.n), shape.n + 3};
  const Algorithm backends[] = {Algorithm::kLinearScan, Algorithm::kBkTree,
                                Algorithm::kMTree};
  for (Algorithm backend : backends) {
    for (size_t j : js) {
      for (const auto& query : queries) {
        ASSERT_EQ(runner.KnnQuery(backend, query, j),
                  LinearScanKnn(store, query, j))
            << "failing seed=" << seed << " backend="
            << AlgorithmName(backend) << " shards=" << num_shards
            << " strategy=" << ShardingStrategyName(strategy)
            << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzShardedTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace topk
