// Filter & Validate and the drop policy: exactness against brute force
// across thresholds, k values and data shapes; the Lemma 2 soundness guard.

#include "invidx/filter_validate.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/bounds.h"
#include "invidx/drop_policy.h"
#include "test_util.h"

namespace topk {
namespace {

class FvEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, int>> {};

TEST_P(FvEquivalenceTest, MatchesBruteForce) {
  const auto [k, theta, drop_int] = GetParam();
  const auto drop = static_cast<DropMode>(drop_int);
  const RankingStore store = testutil::MakeClusteredStore(k, 1500, 21 + k);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine engine(&store, &index, FilterValidateOptions{drop});
  const auto queries = testutil::MakeQueries(store, 30, 5);
  const RawDistance theta_raw = RawThreshold(theta, k);
  for (const PreparedQuery& query : queries) {
    EXPECT_EQ(engine.Query(query, theta_raw),
              testutil::BruteForce(store, query, theta_raw))
        << "k=" << k << " theta=" << theta
        << " drop=" << DropModeName(drop);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FvEquivalenceTest,
    ::testing::Combine(::testing::Values(5u, 10u, 20u),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3),
                       ::testing::Values(0, 1, 2)));

TEST(FvTest, FindsExactDuplicatesAtThetaZero) {
  RankingStore store(5);
  const ItemId row[] = {1, 2, 3, 4, 5};
  const ItemId other[] = {9, 8, 7, 6, 5};
  store.AddUnchecked(row);
  store.AddUnchecked(other);
  store.AddUnchecked(row);  // duplicate
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine engine(&store, &index);
  PreparedQuery query(std::move(Ranking::Create({1, 2, 3, 4, 5})).ValueOrDie());
  EXPECT_EQ(engine.Query(query, 0), (std::vector<RankingId>{0, 2}));
}

TEST(FvTest, QueryWithUnknownItemsReturnsEmpty) {
  const RankingStore store = testutil::MakeUniformStore(5, 100, 50, 3);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine engine(&store, &index);
  PreparedQuery query(
      std::move(Ranking::Create({900, 901, 902, 903, 904})).ValueOrDie());
  EXPECT_TRUE(engine.Query(query, RawThreshold(0.3, 5)).empty());
}

TEST(FvTest, StatsCountCandidatesAndDistanceCalls) {
  const RankingStore store = testutil::MakeClusteredStore(10, 500, 8);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine engine(&store, &index);
  const auto queries = testutil::MakeQueries(store, 5, 6);
  Statistics stats;
  for (const auto& query : queries) {
    engine.Query(query, RawThreshold(0.2, 10), &stats);
  }
  // F&V validates every candidate exactly once.
  EXPECT_EQ(stats.Get(Ticker::kDistanceCalls), stats.Get(Ticker::kCandidates));
  EXPECT_GT(stats.Get(Ticker::kPostingEntriesScanned), 0u);
}

TEST(FvDropTest, DropReducesScannedEntries) {
  const RankingStore store = testutil::MakeClusteredStore(10, 2000, 9);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine plain_engine(&store, &index);
  FilterValidateEngine drop_engine(
      &store, &index, FilterValidateOptions{DropMode::kConservative});
  const auto queries = testutil::MakeQueries(store, 20, 10);
  Statistics plain_stats;
  Statistics drop_stats;
  const RawDistance theta_raw = RawThreshold(0.1, 10);
  for (const auto& query : queries) {
    plain_engine.Query(query, theta_raw, &plain_stats);
    drop_engine.Query(query, theta_raw, &drop_stats);
  }
  EXPECT_LT(drop_stats.Get(Ticker::kPostingEntriesScanned),
            plain_stats.Get(Ticker::kPostingEntriesScanned));
  EXPECT_GT(drop_stats.Get(Ticker::kListsDropped), 0u);
}

TEST(DropPolicyTest, NoDropAccessesAllLists) {
  PreparedQuery query(
      std::move(Ranking::Create({4, 9, 1, 7, 3})).ValueOrDie());
  const auto lists =
      SelectLists(query.view(), 10, DropMode::kNone,
                  [](ItemId) -> size_t { return 1; });
  EXPECT_EQ(lists.size(), 5u);
}

TEST(DropPolicyTest, ConservativeKeepsKMinusWPlusOne) {
  PreparedQuery query(
      std::move(Ranking::Create({4, 9, 1, 7, 3})).ValueOrDie());
  const uint32_t k = 5;
  for (RawDistance theta = 0; theta < MaxDistance(k); ++theta) {
    const auto lists =
        SelectLists(query.view(), theta, DropMode::kConservative,
                    [](ItemId item) -> size_t { return item; });
    const uint32_t w = MinOverlap(k, theta);
    if (w <= 1) {
      EXPECT_EQ(lists.size(), k);
    } else {
      EXPECT_EQ(lists.size(), k - w + 1);
    }
  }
}

TEST(DropPolicyTest, DropsLongestListsFirst) {
  PreparedQuery query(
      std::move(Ranking::Create({4, 9, 1, 7, 3})).ValueOrDie());
  // Lengths: item 9 -> 90 (longest), item 7 -> 70, etc.
  const auto lists = SelectLists(query.view(), /*theta=*/2,
                                 DropMode::kConservative,
                                 [](ItemId item) -> size_t {
                                   return item * 10;
                                 });
  // theta=2 => w = 4 => keep 2 lists: the two shortest (items 1 and 3 at
  // positions 2 and 4).
  EXPECT_EQ(lists, (std::vector<uint32_t>{2, 4}));
}

TEST(DropPolicyTest, RefinedKeepsTopWPosition) {
  PreparedQuery query(
      std::move(Ranking::Create({4, 9, 1, 7, 3})).ValueOrDie());
  // theta = 0 => w = 5 (exact match), refinement sound (0 <= L(5,5)+1).
  // One list survives and it may be any position (all are top-w).
  const auto lists = SelectLists(query.view(), 0, DropMode::kPositionRefined,
                                 [](ItemId item) -> size_t {
                                   return item;
                                 });
  EXPECT_EQ(lists.size(), 1u);
}

// The heart of the Lemma 2 correction: exhaustively verify on a small
// universe that the selected lists never miss a true result, for every
// threshold — including the regime where the unguarded k-w refinement
// would be unsound.
class DropPolicyExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(DropPolicyExhaustiveTest, SelectedListsCoverAllResults) {
  const auto mode = static_cast<DropMode>(GetParam());
  const uint32_t k = 3;
  const uint32_t universe = 6;
  // All 120 permutations of 3 out of 6 items.
  RankingStore store(k);
  for (ItemId a = 0; a < universe; ++a) {
    for (ItemId b = 0; b < universe; ++b) {
      for (ItemId c = 0; c < universe; ++c) {
        if (a != b && b != c && a != c) {
          store.AddUnchecked(std::vector<ItemId>{a, b, c});
        }
      }
    }
  }
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);

  for (RankingId qid = 0; qid < store.size(); qid += 7) {
    const PreparedQuery query(store.Materialize(qid));
    for (RawDistance theta = 0; theta < MaxDistance(k); ++theta) {
      const auto kept =
          SelectLists(query.view(), theta, mode,
                      [&index](ItemId item) { return index.list_length(item); });
      // Union of kept lists.
      std::vector<bool> reachable(store.size(), false);
      for (uint32_t pos : kept) {
        for (RankingId id : index.list(query.view()[pos])) {
          reachable[id] = true;
        }
      }
      for (RankingId id : testutil::BruteForce(store, query, theta)) {
        EXPECT_TRUE(reachable[id])
            << "mode=" << DropModeName(mode) << " theta=" << theta
            << " misses result " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DropPolicyExhaustiveTest,
                         ::testing::Values(0, 1, 2));

TEST(DropPolicyTest, UnguardedRefinementWouldMissResults) {
  // Documentation of the counterexample requiring the guard (DESIGN.md):
  // k=3, query [a,b,c]; theta = L(3,2) + 2 = 4 keeps w = 2. Dropping to
  // k - w = 1 list can miss an overlap-2 result whose common items are
  // *not* in the top-2 of both rankings.
  const uint32_t k = 3;
  const RawDistance theta = 4;
  ASSERT_EQ(MinOverlap(k, theta), 2u);
  // q = [0, 1, 2]; result candidate tau = [9, 1, 2]: common {1, 2} at
  // positions (1,2) of both => F = (3-0)+(3-0) ... compute exactly:
  RankingStore store(k);
  store.AddUnchecked(std::vector<ItemId>{9, 1, 2});
  const PreparedQuery query(
      std::move(Ranking::Create({0, 1, 2})).ValueOrDie());
  const RawDistance d =
      FootruleDistance(query.sorted_view(), store.sorted(0));
  EXPECT_EQ(d, 6u);  // item 0: 3; item 9: 3; items 1, 2 matched: 0.
  // With theta = 6 (same w bracket: L(3,1)=6 <= 6 => w = 1 ... so use the
  // bracket where it bites): L(3,2) = 2, so theta in [2, 5] keeps w = 2,
  // and the cheapest non-top overlap-2 config costs L + 2 = 4 <= theta.
  RankingStore store2(k);
  store2.AddUnchecked(std::vector<ItemId>{1, 2, 9});  // common {1,2}@(0,1)
  const RawDistance d2 =
      FootruleDistance(query.sorted_view(), store2.sorted(0));
  // q: 0@0, 1@1, 2@2; tau: 1@0, 2@1, 9@2 => |1-0|+|2-1|+(3-0)+(3-2) = 6.
  EXPECT_EQ(d2, 6u);
  // The guard in SelectLists refuses the k-w refinement for theta = 4
  // (L(3,2)+1 = 3 < 4), falling back to k-w+1 = 2 lists.
  const auto kept = SelectLists(query.view(), 4, DropMode::kPositionRefined,
                                [](ItemId) -> size_t { return 1; });
  EXPECT_EQ(kept.size(), 2u);
}

}  // namespace
}  // namespace topk
