// The `storage` benchmark section: the compressed storage tier and the
// mmap snapshot load path, shared by the standalone bench_storage binary
// and bench_baseline (which embeds the section into BENCH_baseline.json).
//
// Five experiments per dataset over storage/:
//
//   compress           posting-arena footprint: uncompressed CSR bytes vs
//                      the block-encoded arena (bytes/entry, ratio,
//                      encode time).
//   decode_throughput  raw block-decode speed over the arena's byte
//                      stream — the scalar group loop vs the dispatched
//                      SIMD backend (storage/varint_simd.h), GB/s and
//                      entries/ns, with the two verified bit-identical
//                      before timing.
//   query              mean query latency through the serving tiers —
//                      RAM uncompressed, RAM compressed, mmap cold (page
//                      cache evicted), mmap warm, plus the compressed
//                      rank-augmented engine served from RAM and from
//                      the snapshot's augmented arena — every tier
//                      checked bit-exact against the RAM baseline.
//   block_skip         rank-window sweep evidence: blocks discarded on
//                      metadata alone vs blocks decoded
//                      (block_skip_ratio), results still exact.
//   snapshot           the zero-copy evidence: snapshot file size vs
//                      bytes resident right after OpenStoreSnapshot
//                      (mincore), plus whether the adopted store/index
//                      hold any heap copies.

#ifndef TOPK_BENCH_STORAGE_BENCH_H_
#define TOPK_BENCH_STORAGE_BENCH_H_

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/statistics.h"
#include "invidx/filter_validate.h"
#include "invidx/plain_inverted_index.h"
#include "json_writer.h"
#include "storage/compressed_augmented.h"
#include "storage/compressed_index.h"
#include "storage/posting_codec.h"
#include "storage/snapshot.h"
#include "storage/varint_simd.h"

namespace topk {
namespace bench {

namespace storage_detail {

using Clock = std::chrono::steady_clock;

inline double ElapsedMsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Flushes `path` to disk and drops its page-cache residency so the
/// next mmap read pays real faults — the "cold" tier. Returns false
/// where the platform cannot evict (the cold row then measures a warm
/// cache and says so via the evicted column).
inline bool EvictFromPageCache(const std::string& path) {
#if defined(__linux__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fdatasync(fd) == 0 &&
                  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

/// One timed pass of the workload through `engine`; also verifies the
/// results against `expected` (one vector per query, ascending ids).
template <typename Engine>
inline double TimedPass(Engine* engine,
                        const std::vector<PreparedQuery>& queries,
                        RawDistance theta_raw,
                        const std::vector<std::vector<RankingId>>& expected,
                        bool* exact) {
  const auto start = Clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto got = engine->Query(queries[i], theta_raw);
    *exact = *exact && got == expected[i];
  }
  return ElapsedMsSince(start);
}

/// Decodes every block of `arena` once per rep through `decode` (the
/// dispatched or scalar id-block decoder), returning wall time. The
/// checksum folds the last id of every block so the loop cannot be
/// optimized away.
template <typename DecodeFn>
inline double TimeBlockDecode(
    const storage::CompressedPostingArena<RankingId>& arena, uint32_t reps,
    const DecodeFn& decode, uint64_t* checksum) {
  const auto blocks = arena.block_metas();
  const auto bytes = arena.byte_stream();
  std::vector<RankingId> out(storage::kBlockEntries);
  *checksum = 0;
  const auto start = Clock::now();
  for (uint32_t rep = 0; rep < reps; ++rep) {
    for (size_t b = 0; b < blocks.size(); ++b) {
      const uint8_t* begin = bytes.data() + blocks[b].byte_offset;
      const uint8_t* end = b + 1 < blocks.size()
                               ? bytes.data() + blocks[b + 1].byte_offset
                               : bytes.data() + bytes.size();
      decode(blocks[b].first_id, blocks[b].count, begin, end, out.data());
      *checksum += out[blocks[b].count - 1];
    }
  }
  return ElapsedMsSince(start);
}

}  // namespace storage_detail

/// Emits the `storage` array (caller owns the surrounding object).
inline void EmitStorageSection(JsonWriter* json, const BenchArgs& args) {
  using storage_detail::Clock;
  using storage_detail::ElapsedMsSince;
  constexpr uint32_t kK = 10;
  const double theta = 0.1;
  const RawDistance theta_raw = RawThreshold(theta, kK);

  struct Dataset {
    const char* name;
    RankingStore store;
  };
  Dataset datasets[] = {
      {"nyt_like", MakeNyt(args, kK)},
      {"yago_like", MakeYago(args, kK)},
  };

  json->Key("storage");
  json->BeginArray();
  for (Dataset& dataset : datasets) {
    const RankingStore& store = dataset.store;
    const auto queries = MakeBenchWorkload(store, args);

    // --- compress: arena footprint before and after block encoding. ---
    const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
    const auto encode_start = Clock::now();
    const storage::CompressedInvertedIndex compressed =
        storage::CompressedInvertedIndex::FromPlain(plain);
    const double encode_ms = ElapsedMsSince(encode_start);
    const auto& arena = compressed.arena();
    const uint64_t uncompressed_bytes = plain.MemoryUsage();
    const uint64_t compressed_bytes = compressed.MemoryUsage();
    json->BeginObject();
    json->Key("bench");
    json->String("compress");
    json->Key("dataset");
    json->String(dataset.name);
    json->Key("n");
    json->Uint(store.size());
    json->Key("k");
    json->Uint(kK);
    json->Key("entries");
    json->Uint(arena.num_entries());
    json->Key("block_entries");
    json->Uint(storage::kBlockEntries);
    json->Key("num_blocks");
    json->Uint(arena.num_blocks());
    json->Key("num_inline_lists");
    json->Uint(arena.num_inline_lists());
    json->Key("uncompressed_bytes");
    json->Uint(uncompressed_bytes);
    json->Key("compressed_bytes");
    json->Uint(compressed_bytes);
    json->Key("bytes_per_entry");
    json->Double(arena.BytesPerEntry());
    json->Key("compression_ratio");
    json->Double(compressed_bytes > 0
                     ? static_cast<double>(uncompressed_bytes) /
                           static_cast<double>(compressed_bytes)
                     : 0);
    json->Key("encode_ms");
    json->Double(encode_ms);
    json->EndObject();
    std::cerr << "  storage compress " << dataset.name << " ratio="
              << (compressed_bytes > 0
                      ? static_cast<double>(uncompressed_bytes) /
                            static_cast<double>(compressed_bytes)
                      : 0)
              << "\n";

    // --- decode_throughput: scalar group loop vs dispatched backend. ---
    {
      const auto blocks = arena.block_metas();
      const auto bytes = arena.byte_stream();
      uint64_t block_entries = 0;
      for (const auto& block : blocks) block_entries += block.count;
      // Bit-identity first: both decoders over every block.
      bool bit_identical = true;
      {
        std::vector<RankingId> a(storage::kBlockEntries);
        std::vector<RankingId> b(storage::kBlockEntries);
        for (size_t blk = 0; blk < blocks.size(); ++blk) {
          const uint8_t* begin = bytes.data() + blocks[blk].byte_offset;
          const uint8_t* end =
              blk + 1 < blocks.size()
                  ? bytes.data() + blocks[blk + 1].byte_offset
                  : bytes.data() + bytes.size();
          const bool ok_a =
              storage::DecodeIdBlock(blocks[blk].first_id, blocks[blk].count,
                                     begin, end, a.data());
          const bool ok_b = storage::DecodeIdBlockScalar(
              blocks[blk].first_id, blocks[blk].count, begin, end, b.data());
          bit_identical = bit_identical && ok_a && ok_b &&
                          std::memcmp(a.data(), b.data(),
                                      blocks[blk].count *
                                          sizeof(RankingId)) == 0;
        }
      }
      // Deterministic rep count: aim for a few million decoded entries so
      // the per-rep wall time is measurable at any dataset scale.
      const auto reps = static_cast<uint32_t>(std::max<uint64_t>(
          1, 4000000 / std::max<uint64_t>(1, block_entries)));
      uint64_t checksum_simd = 0;
      uint64_t checksum_scalar = 0;
      const double simd_ms = storage_detail::TimeBlockDecode(
          arena, reps,
          [](uint32_t first, uint32_t count, const uint8_t* begin,
             const uint8_t* end, RankingId* out) {
            storage::DecodeIdBlock(first, count, begin, end, out);
          },
          &checksum_simd);
      const double scalar_ms = storage_detail::TimeBlockDecode(
          arena, reps,
          [](uint32_t first, uint32_t count, const uint8_t* begin,
             const uint8_t* end, RankingId* out) {
            storage::DecodeIdBlockScalar(first, count, begin, end, out);
          },
          &checksum_scalar);
      bit_identical = bit_identical && checksum_simd == checksum_scalar;
      const double payload_bytes =
          static_cast<double>(bytes.size()) * static_cast<double>(reps);
      const double entries =
          static_cast<double>(block_entries) * static_cast<double>(reps);
      struct Impl {
        const char* impl;
        const char* backend;
        double wall_ms;
      };
      const Impl impls[] = {
          {"dispatched", storage::kDecodeBackendName, simd_ms},
          {"scalar_reference", "scalar", scalar_ms},
      };
      for (const Impl& impl : impls) {
        json->BeginObject();
        json->Key("bench");
        json->String("decode_throughput");
        json->Key("dataset");
        json->String(dataset.name);
        json->Key("impl");
        json->String(impl.impl);
        json->Key("backend");
        json->String(impl.backend);
        json->Key("n");
        json->Uint(store.size());
        json->Key("k");
        json->Uint(kK);
        json->Key("reps");
        json->Uint(reps);
        json->Key("block_entries_decoded");
        json->Uint(block_entries);
        json->Key("bit_identical");
        json->Bool(bit_identical);
        json->Key("wall_ms");
        json->Double(impl.wall_ms);
        json->Key("gb_per_sec");
        json->Double(impl.wall_ms > 0 ? payload_bytes / (impl.wall_ms * 1e6)
                                      : 0);
        json->Key("entries_per_ns");
        json->Double(impl.wall_ms > 0 ? entries / (impl.wall_ms * 1e6) : 0);
        if (impl.impl[0] == 'd') {
          json->Key("speedup_vs_scalar");
          json->Double(impl.wall_ms > 0 ? scalar_ms / impl.wall_ms : 0);
        }
        json->EndObject();
      }
      std::cerr << "  storage decode " << dataset.name << " backend="
                << storage::kDecodeBackendName << " speedup="
                << (simd_ms > 0 ? scalar_ms / simd_ms : 0)
                << (bit_identical ? "" : " NOT-BIT-IDENTICAL") << "\n";
    }

    // The rank-augmented twin of the arena: the same store compressed
    // with per-block rank ranges, shared by the snapshot writer, the
    // augmented serving tiers, and the block-skip experiment below.
    const storage::CompressedAugmentedIndex augmented =
        storage::CompressedAugmentedIndex::Build(store);

    // --- snapshot: write, evict, open, and record residency. ---
    const std::string path =
        std::string("BENCH_storage_snapshot_") + dataset.name + ".tmp";
    const Status written =
        storage::WriteStoreSnapshot(store, arena, augmented.arena(), path);
    if (!written.ok()) {
      std::cerr << "  storage snapshot write FAILED: " << written.ToString()
                << "\n";
      continue;
    }
    const bool evicted = storage_detail::EvictFromPageCache(path);
    auto snapshot = storage::OpenStoreSnapshot(path);
    if (!snapshot.ok()) {
      std::cerr << "  storage snapshot open FAILED: "
                << snapshot.status().ToString() << "\n";
      std::remove(path.c_str());
      continue;
    }
    const size_t mapped = snapshot.value().mapped_bytes();
    const size_t resident_after_open = snapshot.value().ResidentBytes();
    // Zero-copy means the adopted store and index own no heap copies of
    // the mapped sections; residency then proves the payload stayed on
    // disk until queried.
    const bool zero_copy = snapshot.value().store().MemoryUsage() == 0 &&
                           snapshot.value().index().MemoryUsage() == 0;
    json->BeginObject();
    json->Key("bench");
    json->String("snapshot");
    json->Key("dataset");
    json->String(dataset.name);
    json->Key("n");
    json->Uint(store.size());
    json->Key("k");
    json->Uint(kK);
    json->Key("file_bytes");
    json->Uint(mapped);
    json->Key("resident_after_open_bytes");
    json->Uint(resident_after_open);
    json->Key("page_cache_evicted");
    json->Bool(evicted);
    json->Key("zero_copy_load");
    json->Bool(zero_copy);
    json->EndObject();
    std::cerr << "  storage snapshot " << dataset.name << " resident "
              << resident_after_open << "/" << mapped << " bytes"
              << (evicted ? "" : " (eviction unavailable)") << "\n";

    // --- query: the four serving tiers, bit-exact vs the RAM baseline. ---
    // Baseline pass doubles as the expected-results oracle.
    std::vector<std::vector<RankingId>> expected(queries.size());
    FilterValidateEngine ram_plain(&store, &plain);
    const double ram_plain_ms = [&] {
      const auto start = Clock::now();
      for (size_t i = 0; i < queries.size(); ++i) {
        expected[i] = ram_plain.Query(queries[i], theta_raw);
      }
      return ElapsedMsSince(start);
    }();

    storage::CompressedFilterValidateEngine ram_compressed(&store,
                                                           &compressed);
    storage::CompressedFilterValidateEngine mmap_engine(
        &snapshot.value().store(), &snapshot.value().index());

    struct Tier {
      const char* name;
      double wall_ms;
      bool exact;
    };
    std::vector<Tier> tiers;
    tiers.push_back({"ram_uncompressed", ram_plain_ms, true});
    bool exact = true;
    double wall_ms = storage_detail::TimedPass(&ram_compressed, queries,
                                               theta_raw, expected, &exact);
    tiers.push_back({"ram_compressed", wall_ms, exact});
    // Cold: first pass over the evicted mapping pays the page faults.
    exact = true;
    wall_ms = storage_detail::TimedPass(&mmap_engine, queries, theta_raw,
                                        expected, &exact);
    tiers.push_back({"mmap_cold", wall_ms, exact});
    // Warm: same mapping, pages now resident.
    exact = true;
    wall_ms = storage_detail::TimedPass(&mmap_engine, queries, theta_raw,
                                        expected, &exact);
    tiers.push_back({"mmap_warm", wall_ms, exact});
    // Augmented serving: the rank-interleaved codec end to end, from RAM
    // and straight off the snapshot's frozen augmented arena.
    storage::CompressedAugmentedEngine ram_augmented(&store, &augmented);
    exact = true;
    wall_ms = storage_detail::TimedPass(&ram_augmented, queries, theta_raw,
                                        expected, &exact);
    tiers.push_back({"ram_augmented", wall_ms, exact});
    storage::CompressedAugmentedEngine mmap_augmented(
        &snapshot.value().store(), &snapshot.value().augmented_index());
    exact = true;
    wall_ms = storage_detail::TimedPass(&mmap_augmented, queries, theta_raw,
                                        expected, &exact);
    tiers.push_back({"mmap_augmented", wall_ms, exact});

    for (const Tier& tier : tiers) {
      json->BeginObject();
      json->Key("bench");
      json->String("query");
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("tier");
      json->String(tier.name);
      json->Key("n");
      json->Uint(store.size());
      json->Key("k");
      json->Uint(kK);
      json->Key("theta");
      json->Double(theta);
      json->Key("queries");
      json->Uint(queries.size());
      json->Key("exact_match");
      json->Bool(tier.exact);
      json->Key("wall_ms");
      json->Double(tier.wall_ms);
      json->Key("mean_ms_per_query");
      json->Double(tier.wall_ms / static_cast<double>(queries.size()));
      json->EndObject();
      std::cerr << "  storage query " << dataset.name << "/" << tier.name
                << (tier.exact ? " exact" : " MISMATCH") << "\n";
    }

    // --- block_skip: sweep accounting through the skip-enabled engine. ---
    {
      Statistics stats;
      storage::CompressedAugmentedEngine skip_engine(&store, &augmented);
      bool skip_exact = true;
      const auto start = Clock::now();
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto got = skip_engine.Query(queries[i], theta_raw, &stats);
        skip_exact = skip_exact && got == expected[i];
      }
      const double skip_ms = ElapsedMsSince(start);
      const uint64_t skipped = stats.Get(Ticker::kBlocksSkipped);
      const uint64_t decoded = stats.Get(Ticker::kBlocksDecoded);
      const uint64_t swept = skipped + decoded;
      json->BeginObject();
      json->Key("bench");
      json->String("block_skip");
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("n");
      json->Uint(store.size());
      json->Key("k");
      json->Uint(kK);
      json->Key("theta");
      json->Double(theta);
      json->Key("queries");
      json->Uint(queries.size());
      json->Key("blocks_skipped");
      json->Uint(skipped);
      json->Key("blocks_decoded");
      json->Uint(decoded);
      json->Key("block_skip_ratio");
      json->Double(swept > 0 ? static_cast<double>(skipped) /
                                   static_cast<double>(swept)
                             : 0);
      json->Key("posting_entries_skipped");
      json->Uint(stats.Get(Ticker::kPostingEntriesSkipped));
      json->Key("exact_match");
      json->Bool(skip_exact);
      json->Key("wall_ms");
      json->Double(skip_ms);
      json->EndObject();
      std::cerr << "  storage block_skip " << dataset.name << " ratio="
                << (swept > 0 ? static_cast<double>(skipped) /
                                    static_cast<double>(swept)
                              : 0)
                << (skip_exact ? " exact" : " MISMATCH") << "\n";
    }

    std::remove(path.c_str());
  }
  json->EndArray();
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_STORAGE_BENCH_H_
