// The `mutability` benchmark section: the live write path under load,
// shared by the standalone bench_mutability binary and bench_baseline
// (which embeds the section into BENCH_baseline.json).
//
// Three experiments over mutate/MutableStore:
//
//   insert          sustained insert throughput into the delta segment,
//                   with and without the background merge worker folding
//                   sealed deltas underneath the writers.
//   query_vs_delta  range and k-NN latency against a fixed main segment
//                   as the unmerged delta grows (0 / 512 / 2048 rows):
//                   the price of querying main + delta before a merge.
//                   Every row re-checks bit-exactness against a
//                   rebuilt-from-scratch store (the exact_match column is
//                   row identity: a false would surface as a changed row).
//   merge           the seal -> rebuild -> swap cycle: rebuild wall time,
//                   and the worst single-query latency observed while the
//                   merge runs on another thread (the "merge pause" —
//                   readers wait only for the O(1) seal/swap sections).

#ifndef TOPK_BENCH_MUTABILITY_BENCH_H_
#define TOPK_BENCH_MUTABILITY_BENCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/footrule.h"
#include "json_writer.h"
#include "metric/knn.h"
#include "mutate/mutable_store.h"

namespace topk {
namespace bench {

namespace mutability_detail {

using Clock = std::chrono::steady_clock;

inline double ElapsedMsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The query set every experiment shares: issued against main + delta,
/// checked against a rebuild of the same rows.
struct LiveWorkload {
  RankingStore source;           // rows 0..main_n+max_delta feed the store
  std::vector<PreparedQuery> queries;
  size_t main_n;
};

inline LiveWorkload MakeLiveWorkload(const BenchArgs& args, uint32_t k,
                                     size_t max_delta) {
  LiveWorkload w{MakeNyt(args, k), {}, 0};
  w.queries = MakeBenchWorkload(w.source, args);
  w.main_n = w.source.size() > 2 * max_delta
                 ? w.source.size() - max_delta
                 : w.source.size() / 2;
  return w;
}

/// Seeds a store with the workload's main prefix.
inline RankingStore MainPrefix(const LiveWorkload& w) {
  RankingStore main(w.source.k());
  main.Reserve(w.main_n);
  for (RankingId id = 0; id < static_cast<RankingId>(w.main_n); ++id) {
    main.AddUnchecked(w.source.view(id).items());
  }
  return main;
}

}  // namespace mutability_detail

/// Emits the `mutability` array (caller owns the surrounding object).
inline void EmitMutabilitySection(JsonWriter* json, const BenchArgs& args) {
  using mutability_detail::Clock;
  using mutability_detail::ElapsedMsSince;
  constexpr uint32_t kK = 10;
  constexpr size_t kMaxDelta = 2048;
  const auto workload = mutability_detail::MakeLiveWorkload(args, kK,
                                                            kMaxDelta);
  const RankingStore main = mutability_detail::MainPrefix(workload);
  const double theta = 0.1;
  const RawDistance theta_raw = RawThreshold(theta, kK);

  json->Key("mutability");
  json->BeginArray();

  // --- insert: sustained write throughput into the delta. ---
  for (const bool with_worker : {false, true}) {
    MutableStoreOptions options;
    if (with_worker) options.merge_threshold = 1024;
    MutableStore store(kK, options);
    const auto n = static_cast<RankingId>(workload.source.size());
    const auto start = Clock::now();
    for (RankingId id = 0; id < n; ++id) {
      store.Insert(workload.source.view(id));
    }
    const double wall_ms = ElapsedMsSince(start);
    json->BeginObject();
    json->Key("bench");
    json->String("insert");
    json->Key("mode");
    json->String(with_worker ? "with_merge_worker" : "delta_only");
    json->Key("k");
    json->Uint(kK);
    json->Key("inserts");
    json->Uint(n);
    json->Key("wall_ms");
    json->Double(wall_ms);
    json->Key("inserts_per_sec");
    json->Double(static_cast<double>(n) / (wall_ms / 1e3));
    json->EndObject();
    std::cerr << "  mutability insert "
              << (with_worker ? "with_merge_worker" : "delta_only")
              << " done\n";
  }

  // Rows beyond the main prefix that can feed the delta. At CI scale
  // and above this is kMaxDelta; at smoke scale (tiny --nyt-n) it is
  // smaller, and a delta larger than it must be skipped — indexing
  // source.view(main_n + i) past the store is out of bounds (it used to
  // hang the bench chewing on garbage views).
  const size_t avail = workload.source.size() - workload.main_n;

  // --- query_vs_delta: latency and exactness as the delta grows. ---
  for (const size_t delta : {size_t{0}, size_t{512}, kMaxDelta}) {
    if (delta > avail) {
      std::cerr << "  mutability query_vs_delta delta=" << delta
                << " skipped (source has " << avail
                << " spare rows; raise --nyt-n)\n";
      continue;
    }
    MutableStore store(main);
    RankingStore rebuilt = main;  // the oracle: same rows, one segment
    for (size_t i = 0; i < delta; ++i) {
      const RankingView record =
          workload.source.view(static_cast<RankingId>(workload.main_n + i));
      store.Insert(record);
      rebuilt.AddUnchecked(record.items());
    }

    // Exactness first (the oracle scan dominates, so time separately).
    bool range_exact = true;
    bool knn_exact = true;
    for (const PreparedQuery& query : workload.queries) {
      const std::vector<RankingId> got = store.RangeQuery(query, theta_raw);
      std::vector<RankingId> expected;
      for (RankingId id = 0; id < rebuilt.size(); ++id) {
        if (FootruleDistance(query.sorted_view(), rebuilt.sorted(id)) <=
            theta_raw) {
          expected.push_back(id);
        }
      }
      range_exact = range_exact && got == expected;
    }
    const double range_ms = [&] {
      const auto start = Clock::now();
      uint64_t sink = 0;
      for (const PreparedQuery& query : workload.queries) {
        sink += store.RangeQuery(query, theta_raw).size();
      }
      if (sink == UINT64_MAX) std::cerr << "unreachable\n";
      return ElapsedMsSince(start);
    }();
    for (const PreparedQuery& query : workload.queries) {
      knn_exact = knn_exact &&
                  store.KnnQuery(query, 10) == LinearScanKnn(rebuilt,
                                                             query, 10);
    }
    const double knn_ms = [&] {
      const auto start = Clock::now();
      uint64_t sink = 0;
      for (const PreparedQuery& query : workload.queries) {
        sink += store.KnnQuery(query, 10).size();
      }
      if (sink == UINT64_MAX) std::cerr << "unreachable\n";
      return ElapsedMsSince(start);
    }();

    struct Row {
      const char* kind;
      bool exact;
      double wall_ms;
    };
    const Row rows[] = {
        {"range", range_exact, range_ms},
        {"knn", knn_exact, knn_ms},
    };
    for (const Row& row : rows) {
      json->BeginObject();
      json->Key("bench");
      json->String("query_vs_delta");
      json->Key("kind");
      json->String(row.kind);
      json->Key("k");
      json->Uint(kK);
      json->Key("n");
      json->Uint(workload.main_n);
      json->Key("delta");
      json->Uint(delta);
      json->Key("queries");
      json->Uint(workload.queries.size());
      json->Key("exact_match");
      json->Bool(row.exact);
      json->Key("wall_ms");
      json->Double(row.wall_ms);
      json->Key("mean_ms_per_query");
      json->Double(row.wall_ms /
                   static_cast<double>(workload.queries.size()));
      json->EndObject();
    }
    std::cerr << "  mutability query_vs_delta delta=" << delta
              << (range_exact && knn_exact ? " exact" : " MISMATCH")
              << "\n";
  }

  // --- merge: rebuild wall time + worst query latency during it. ---
  {
    MutableStore store(main);
    const size_t merge_delta = std::min(kMaxDelta, avail);
    for (size_t i = 0; i < merge_delta; ++i) {
      store.Insert(workload.source.view(
          static_cast<RankingId>(workload.main_n + i)));
    }
    // Tombstone main rows (512 at CI scale) so the merge also compacts
    // deletes; every id * 2 must land inside the main prefix.
    const auto tombstones =
        static_cast<RankingId>(std::min<size_t>(512, workload.main_n / 2));
    for (RankingId id = 0; id < tombstones; ++id) store.Delete(id * 2);

    double max_query_ms = 0;
    const auto merge_start = Clock::now();
    std::thread merger([&store] { store.MergeNow(); });
    // Hammer queries while the rebuild runs; each should only ever wait
    // for the O(1) seal/swap sections.
    uint64_t during = 0;
    do {
      const PreparedQuery& query =
          workload.queries[during % workload.queries.size()];
      const auto q_start = Clock::now();
      const auto ids = store.RangeQuery(query, theta_raw);
      max_query_ms = std::max(max_query_ms, ElapsedMsSince(q_start));
      during += ids.size() + 1;
    } while (store.tombstone_count() > 0 || store.delta_size() > 0);
    merger.join();
    const double merge_ms = ElapsedMsSince(merge_start);

    json->BeginObject();
    json->Key("bench");
    json->String("merge");
    json->Key("k");
    json->Uint(kK);
    json->Key("n");
    json->Uint(workload.main_n);
    json->Key("delta");
    json->Uint(merge_delta);
    json->Key("merge_wall_ms");
    json->Double(merge_ms);
    // Worst single-query latency observed while the rebuild ran — the
    // "merge pause". Named *_ms so the compare script's drift gate sees it.
    json->Key("merge_pause_ms");
    json->Double(max_query_ms);
    json->EndObject();
    std::cerr << "  mutability merge done (" << merge_ms << " ms, worst query "
              << max_query_ms << " ms)\n";
  }

  json->EndArray();
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_MUTABILITY_BENCH_H_
