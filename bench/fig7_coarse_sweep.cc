// Figure 7: measured filter / validate / overall time of the coarse index
// (F&V medoid retrieval) against theta_C, for k = 10, theta = 0.2, both
// datasets — plus the "small rectangle": the measured time at the
// model-chosen theta_C.
//
// Paper shape to reproduce: filtering time falls with theta_C, validation
// time rises, the sum bottoms out at a sweet spot, and the model's pick
// lands near the measured optimum.

#include <iostream>

#include "bench_util.h"
#include "coarse/coarse_index.h"
#include "costmodel/cost_model.h"
#include "data/dataset_stats.h"
#include "harness/report.h"

namespace topk {
namespace {

struct SweepPoint {
  double theta_c;
  PhaseTimes phases;
};

PhaseTimes MeasureCoarse(const RankingStore& store,
                         const std::vector<PreparedQuery>& queries,
                         double theta_c, double theta) {
  CoarseOptions options;
  options.theta_c = theta_c;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const RawDistance theta_raw = RawThreshold(theta, store.k());
  PhaseTimes phases;
  for (const PreparedQuery& query : queries) {
    index.Query(query, theta_raw, nullptr, &phases);
  }
  return phases;
}

void RunDataset(const char* name, const RankingStore& store,
                const bench::BenchArgs& args, double theta) {
  const auto queries = bench::MakeBenchWorkload(store, args);
  std::cout << "\n--- " << name << " (k=10, theta=" << theta << ") ---\n";

  std::vector<SweepPoint> sweep;
  TextTable table({"theta_C", "filter_ms", "validate_ms", "overall_ms"});
  for (double theta_c = 0.05; theta_c <= 0.80001; theta_c += 0.05) {
    const PhaseTimes phases = MeasureCoarse(store, queries, theta_c, theta);
    sweep.push_back(SweepPoint{theta_c, phases});
    table.AddRow({FormatDouble(theta_c, 2), FormatDouble(phases.filter_ms, 2),
                  FormatDouble(phases.validate_ms, 2),
                  FormatDouble(phases.total_ms(), 2)});
  }
  table.Print(std::cout);

  // Measured optimum across the sweep.
  const SweepPoint* best = &sweep.front();
  for (const SweepPoint& point : sweep) {
    if (point.phases.total_ms() < best->phases.total_ms()) best = &point;
  }

  // Model-chosen theta_C (the "small rectangle" in the paper's plots).
  const CostModelInputs inputs = MeasureCostModelInputs(store, 256);
  const CoarseCostModel model(inputs);
  const auto tuned = model.Tune(theta, MakeGrid(0.05, 0.8, 0.05));
  const PhaseTimes at_model =
      MeasureCoarse(store, queries, tuned.best_theta_c, theta);

  std::cout << "measured optimum: theta_C = "
            << FormatDouble(best->theta_c, 2) << " at "
            << FormatDouble(best->phases.total_ms(), 2) << " ms\n"
            << "model-chosen:     theta_C = "
            << FormatDouble(tuned.best_theta_c, 2) << " at "
            << FormatDouble(at_model.total_ms(), 2) << " ms (difference "
            << FormatDouble(at_model.total_ms() - best->phases.total_ms(), 2)
            << " ms over " << args.queries << " queries)\n";
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Figure 7: coarse index phase times vs theta_C (+ model pick)", args);
  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  RunDataset("NYT-like", nyt, args, 0.2);
  RunDataset("Yago-like", yago, args, 0.2);
  return 0;
}
