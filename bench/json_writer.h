// Minimal streaming JSON writer for the benchmark-baseline emitter.
//
// Just enough JSON for BENCH_baseline.json: objects, arrays, strings,
// numbers, booleans, with commas and two-space indentation managed by a
// nesting stack. Non-finite doubles serialize as null (JSON has no NaN).

#ifndef TOPK_BENCH_JSON_WRITER_H_
#define TOPK_BENCH_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace topk {
namespace bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* os) : os_(os) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Separate();
    WriteEscaped(name);
    *os_ << ": ";
    pending_key_ = true;
  }

  void String(const std::string& value) {
    Separate();
    WriteEscaped(value);
  }
  void Double(double value) {
    Separate();
    if (!std::isfinite(value)) {
      *os_ << "null";
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    *os_ << buffer;
  }
  void Uint(uint64_t value) {
    Separate();
    *os_ << value;
  }
  void Bool(bool value) {
    Separate();
    *os_ << (value ? "true" : "false");
  }

 private:
  struct Scope {
    char close;
    bool has_items = false;
  };

  void Open(char open) {
    Separate();
    *os_ << open;
    scopes_.push_back({static_cast<char>(open == '{' ? '}' : ']')});
  }

  void Close(char close) {
    const bool had_items = scopes_.back().has_items;
    scopes_.pop_back();
    if (had_items) {
      *os_ << '\n';
      Indent();
    }
    *os_ << close;
  }

  /// Emits the comma/newline/indent owed before a new value or key, unless
  /// this value completes a `Key(...)` pair.
  void Separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (scopes_.empty()) return;
    if (scopes_.back().has_items) *os_ << ',';
    *os_ << '\n';
    scopes_.back().has_items = true;
    Indent();
  }

  void Indent() {
    for (size_t i = 0; i < scopes_.size(); ++i) *os_ << "  ";
  }

  void WriteEscaped(const std::string& text) {
    *os_ << '"';
    for (const char c : text) {
      switch (c) {
        case '"':
          *os_ << "\\\"";
          break;
        case '\\':
          *os_ << "\\\\";
          break;
        case '\n':
          *os_ << "\\n";
          break;
        case '\t':
          *os_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            *os_ << buffer;
          } else {
            *os_ << c;
          }
      }
    }
    *os_ << '"';
  }

  std::ostream* os_;
  std::vector<Scope> scopes_;
  bool pending_key_ = false;
};

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_JSON_WRITER_H_
