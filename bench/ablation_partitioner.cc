// Ablation (beyond the paper): how the partitioning strategy behind the
// coarse index affects build cost, partition structure, and query time.
// Compares the strict BK extraction (our default, Lemma 1 by
// construction), the paper's literal subtree extraction (cheaper build,
// looser radii), and Chavez-Navarro random medoids (the cost model's
// assumption).

#include <iostream>

#include "bench_util.h"
#include "coarse/coarse_index.h"
#include "harness/report.h"

namespace topk {
namespace {

void RunDataset(const char* name, const RankingStore& store,
                const bench::BenchArgs& args) {
  const auto queries = bench::MakeBenchWorkload(store, args);
  std::cout << "\n--- " << name << " (k=10, theta=0.2, theta_C=0.3) ---\n";
  TextTable table({"partitioner", "build_s", "partitions", "max_radius",
                   "query_ms", "dfc_thousands"});
  for (PartitionerKind kind :
       {PartitionerKind::kBkStrict, PartitionerKind::kBkSubtree,
        PartitionerKind::kChavezNavarro}) {
    CoarseOptions options;
    options.theta_c = 0.3;
    options.partitioner = kind;
    Stopwatch build_watch;
    const CoarseIndex index = CoarseIndex::Build(&store, options);
    const double build_s = build_watch.ElapsedMillis() / 1000.0;

    Statistics stats;
    const RawDistance theta_raw = RawThreshold(0.2, 10);
    Stopwatch query_watch;
    for (const PreparedQuery& query : queries) {
      index.Query(query, theta_raw, &stats);
    }
    table.AddRow(
        {PartitionerKindName(kind), FormatDouble(build_s, 3),
         std::to_string(index.num_partitions()),
         std::to_string(index.max_radius()),
         FormatDouble(query_watch.ElapsedMillis(), 2),
         FormatDouble(
             static_cast<double>(stats.Get(Ticker::kDistanceCalls)) / 1000.0,
             1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  auto args = bench::BenchArgs::Parse(argc, argv);
  // Chavez-Navarro is O(M * n) distances; keep the default modest.
  if (!args.full && args.nyt_n > 20000) args.nyt_n = 20000;
  bench::PrintHeader("Ablation: coarse-index partitioning strategies", args);
  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  RunDataset("NYT-like", nyt, args);
  RunDataset("Yago-like", yago, args);
  return 0;
}
