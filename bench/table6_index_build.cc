// Table 6: index sizes (MB) and construction times (seconds) for k = 10,
// both datasets; coarse index at theta_C = 0.5.
//
// Paper shape to reproduce: all indexes are of the same order of
// magnitude in size (they all store the rankings' content); the augmented
// inverted index is the largest; the metric trees are compact; the coarse
// index construction dominates everything (BK-tree build + partitioning +
// per-partition trees), while plain inverted index construction — no
// distance computations at all — is by far the cheapest.

#include <iostream>

#include "bench_util.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"

namespace topk {
namespace {

void RunDataset(const char* name, const RankingStore& store) {
  std::cout << "\n--- " << name << " (n=" << store.size() << ", k=10) ---\n";
  EngineSuite suite(&store);
  // The store itself holds the ranking payload every index shares; report
  // it once so sizes can be read as "directory + store".
  std::cout << "ranking store payload: " << FormatMegabytes(
                   store.MemoryUsage())
            << " MB\n";

  struct Row {
    const char* label;
    Algorithm algorithm;
  };
  const Row rows[] = {
      {"Plain Inverted Index", Algorithm::kFV},
      {"Augmented Inverted Index", Algorithm::kListMerge},
      {"Blocked Inverted Index", Algorithm::kBlockedPrune},
      {"Delta Inverted Index", Algorithm::kAdaptSearch},
      {"BK-tree", Algorithm::kBkTree},
      {"M-tree", Algorithm::kMTree},
      {"Coarse Index (theta_C=0.5)", Algorithm::kCoarse},
  };
  TextTable table({"index", "size_MB", "construction_s"});
  for (const Row& row : rows) {
    const IndexBuildInfo info = suite.BuildInfo(row.algorithm);
    table.AddRow({row.label, FormatMegabytes(info.memory_bytes),
                  FormatDouble(info.build_ms / 1000.0, 3)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 6: index size and construction time", args);
  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  RunDataset("NYT-like", nyt);
  RunDataset("Yago-like", yago);
  return 0;
}
