// Ablation (the paper's Section 8 outlook, implemented): batch query
// processing. Clusters the query batch with fixed-radius random medoids
// and shares one relaxed index probe per query cluster. Compares against
// per-query processing on workloads with increasing query-repetition
// rates — the regime the outlook targets.

#include <iostream>

#include "bench_util.h"
#include "coarse/batch_query.h"
#include "harness/report.h"

namespace topk {
namespace {

void Run(const RankingStore& store, const CoarseIndex& index,
         const std::vector<PreparedQuery>& queries, double theta,
         const char* label, TextTable* table) {
  const RawDistance theta_raw = RawThreshold(theta, store.k());

  Statistics single_stats;
  Stopwatch single_watch;
  for (const PreparedQuery& query : queries) {
    index.Query(query, theta_raw, &single_stats);
  }
  const double single_ms = single_watch.ElapsedMillis();

  BatchQueryProcessor batch(&store, &index,
                            BatchQueryOptions{/*batch_theta_c=*/0.1, 17});
  Statistics batch_stats;
  Stopwatch batch_watch;
  batch.QueryBatch(queries, theta_raw, &batch_stats);
  const double batch_ms = batch_watch.ElapsedMillis();

  table->AddRow({label, FormatDouble(theta, 1), FormatDouble(single_ms, 2),
                 FormatDouble(batch_ms, 2),
                 FormatDouble(single_ms / batch_ms, 2)});
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Ablation: batch query processing (NYT-like, k=10)",
                     args);
  const RankingStore store = bench::MakeNyt(args, 10);
  CoarseOptions options;
  options.theta_c = 0.5;
  const CoarseIndex index = CoarseIndex::Build(&store, options);

  TextTable table({"workload", "theta", "per_query_ms", "batched_ms",
                   "speedup"});
  for (double perturbed : {0.3, 0.7, 1.0}) {
    WorkloadOptions wopts;
    wopts.num_queries = args.queries;
    wopts.perturbed_fraction = perturbed;
    wopts.perturb_ops = 1;
    wopts.seed = args.seed + 5;
    const auto queries = MakeWorkload(store, wopts);
    const std::string label =
        "perturbed_fraction=" + FormatDouble(perturbed, 1);
    for (double theta : {0.1, 0.2}) {
      Run(store, index, queries, theta, label.c_str(), &table);
    }
  }
  table.Print(std::cout);
  std::cout << "\nspeedup > 1 means the shared filter passes paid off; the\n"
               "batch path is exact (differential-tested) at any ratio.\n";
  return 0;
}
