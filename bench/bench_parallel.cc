// bench_parallel: sharded parallel query-serving scaling study.
//
// Sweeps thread counts (1/2/4/8, shards == threads) per algorithm against
// the sequential single-threaded runner, then ablates shard count and
// placement strategy at a fixed thread budget, then measures k-NN
// scaling. Every row verifies the parallel result multiset against the
// sequential run's checksum — a speedup that changes answers is a bug,
// not a result.
//
//   build/bench/bench_parallel                  # laptop scale
//   build/bench/bench_parallel --out=par.json   # also emit JSON rows
//
// Shares --nyt-n=/--queries=/--seed= with the other benches. Thread
// counts above the machine's core count are still measured (they show
// the oversubscription plateau); hardware_concurrency is printed so the
// numbers can be read in context.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "json_writer.h"
#include "metric/knn.h"
#include "parallel_util.h"

namespace topk {
namespace {

const Algorithm kScalingAlgorithms[] = {
    Algorithm::kFV, Algorithm::kBlockedPruneDrop, Algorithm::kCoarse,
    Algorithm::kLinearScan};

struct JsonSink {
  bench::JsonWriter* json = nullptr;  // null: table-only run

  void Row(const char* section, const char* algorithm, size_t threads,
           size_t shards, ShardingStrategy strategy, const RunResult& run,
           double speedup, bool exact) {
    if (json == nullptr) return;
    json->BeginObject();
    json->Key("section");
    json->String(section);
    json->Key("algorithm");
    json->String(algorithm);
    json->Key("threads");
    json->Uint(threads);
    json->Key("shards");
    json->Uint(shards);
    json->Key("strategy");
    json->String(ShardingStrategyName(strategy));
    json->Key("wall_ms");
    json->Double(run.wall_ms);
    json->Key("mean_ms_per_query");
    json->Double(run.mean_ms_per_query());
    json->Key("p99_ms");
    json->Double(run.p99_ms);
    json->Key("speedup_vs_sequential");
    json->Double(speedup);
    json->Key("exact_match");
    json->Bool(exact);
    json->EndObject();
  }
};

void RunThreadSweep(const RankingStore& store,
                    std::span<const PreparedQuery> queries,
                    RawDistance theta_raw, JsonSink* sink) {
  PrintBanner(std::cout, "Thread scaling (shards == threads, hash-by-id)");
  TextTable table({"algorithm", "threads", "shards", "wall_ms", "mean_ms",
                   "p99_ms", "speedup", "exact"});
  EngineSuite suite(&store);
  for (const Algorithm algorithm : kScalingAlgorithms) {
    // Sequential reference: the plain single-threaded runner over the
    // unsharded store — the baseline every speedup and checksum is
    // measured against.
    auto engine = suite.MakeEngine(algorithm);
    const RunResult sequential = RunQueries(engine.get(), queries, theta_raw);
    table.AddRow({AlgorithmName(algorithm), "seq", "-",
                  FormatDouble(sequential.wall_ms),
                  FormatDouble(sequential.mean_ms_per_query(), 4),
                  FormatDouble(sequential.p99_ms, 4), "1.00", "ref"});
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      bench::ShardedRunConfig config{threads, threads,
                                     ShardingStrategy::kHashById};
      const RunResult run =
          bench::RunSharded(store, queries, algorithm, theta_raw, config);
      const double speedup = run.wall_ms > 0
                                 ? sequential.wall_ms / run.wall_ms
                                 : 0;
      const bool exact = run.result_hash == sequential.result_hash &&
                         run.total_results == sequential.total_results;
      table.AddRow({AlgorithmName(algorithm), std::to_string(threads),
                    std::to_string(threads), FormatDouble(run.wall_ms),
                    FormatDouble(run.mean_ms_per_query(), 4),
                    FormatDouble(run.p99_ms, 4), FormatDouble(speedup),
                    exact ? "yes" : "NO"});
      sink->Row("thread_sweep", AlgorithmName(algorithm), threads, threads,
                config.strategy, run, speedup, exact);
    }
  }
  table.Print(std::cout);
}

void RunShardAblation(const RankingStore& store,
                      std::span<const PreparedQuery> queries,
                      RawDistance theta_raw, JsonSink* sink) {
  PrintBanner(std::cout,
              "Shard-count / placement ablation (4 threads, Coarse)");
  TextTable table({"strategy", "threads", "shards", "wall_ms", "p99_ms",
                   "speedup", "exact"});
  EngineSuite suite(&store);
  auto engine = suite.MakeEngine(Algorithm::kCoarse);
  const RunResult sequential = RunQueries(engine.get(), queries, theta_raw);
  for (const ShardingStrategy strategy :
       {ShardingStrategy::kRoundRobin, ShardingStrategy::kHashById}) {
    for (const size_t shards : {2u, 4u, 8u, 16u}) {
      bench::ShardedRunConfig config{4, shards, strategy};
      const RunResult run = bench::RunSharded(store, queries,
                                              Algorithm::kCoarse, theta_raw,
                                              config);
      const double speedup =
          run.wall_ms > 0 ? sequential.wall_ms / run.wall_ms : 0;
      const bool exact = run.result_hash == sequential.result_hash &&
                         run.total_results == sequential.total_results;
      table.AddRow({ShardingStrategyName(strategy), "4",
                    std::to_string(shards), FormatDouble(run.wall_ms),
                    FormatDouble(run.p99_ms, 4), FormatDouble(speedup),
                    exact ? "yes" : "NO"});
      sink->Row("shard_ablation", AlgorithmName(Algorithm::kCoarse), 4,
                shards, strategy, run, speedup, exact);
    }
  }
  table.Print(std::cout);
}

void RunKnnSweep(const RankingStore& store,
                 std::span<const PreparedQuery> queries, JsonSink* sink) {
  PrintBanner(std::cout, "k-NN scaling (j=10, shards == threads)");
  TextTable table(
      {"backend", "threads", "wall_ms", "speedup", "exact"});
  constexpr size_t kJ = 10;
  for (const Algorithm backend :
       {Algorithm::kLinearScan, Algorithm::kBkTree, Algorithm::kMTree}) {
    // Sequential reference over the unsharded store.
    EngineSuite suite(&store);
    uint64_t reference_hash = 0;
    Stopwatch sequential_watch;
    for (const PreparedQuery& query : queries) {
      std::vector<Neighbor> neighbors;
      switch (backend) {
        case Algorithm::kBkTree:
          neighbors = BkTreeKnn(suite.bk_tree(), query, kJ);
          break;
        case Algorithm::kMTree:
          neighbors = MTreeKnn(suite.m_tree(), query, kJ);
          break;
        default:
          neighbors = LinearScanKnn(store, query, kJ);
          break;
      }
      for (const Neighbor& n : neighbors) {
        reference_hash += MixId64(n.id) ^ MixId64(n.distance);
      }
    }
    // Tree construction happens on first use inside the loop above for
    // the sequential side; re-time without it.
    sequential_watch.Restart();
    for (const PreparedQuery& query : queries) {
      switch (backend) {
        case Algorithm::kBkTree:
          BkTreeKnn(suite.bk_tree(), query, kJ);
          break;
        case Algorithm::kMTree:
          MTreeKnn(suite.m_tree(), query, kJ);
          break;
        default:
          LinearScanKnn(store, query, kJ);
          break;
      }
    }
    const double sequential_ms = sequential_watch.ElapsedMillis();
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      const ShardedStore sharded(store, threads,
                                 ShardingStrategy::kHashById);
      ParallelRunnerOptions options;
      options.num_threads = threads;
      ParallelRunner runner(&sharded, options);
      // Build the per-shard trees outside the timed window (linear scan
      // needs no index).
      if (backend != Algorithm::kLinearScan) runner.Prepare(backend);
      uint64_t hash = 0;
      Stopwatch watch;
      for (const PreparedQuery& query : queries) {
        for (const Neighbor& n : runner.KnnQuery(backend, query, kJ)) {
          hash += MixId64(n.id) ^ MixId64(n.distance);
        }
      }
      const double wall_ms = watch.ElapsedMillis();
      const double speedup = wall_ms > 0 ? sequential_ms / wall_ms : 0;
      RunResult row;
      row.wall_ms = wall_ms;
      row.num_queries = queries.size();
      table.AddRow({AlgorithmName(backend), std::to_string(threads),
                    FormatDouble(wall_ms), FormatDouble(speedup),
                    hash == reference_hash ? "yes" : "NO"});
      sink->Row("knn_sweep", AlgorithmName(backend), threads, threads,
                ShardingStrategy::kHashById, row, speedup,
                hash == reference_hash);
    }
  }
  table.Print(std::cout);
}

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Parallel sharded query serving", args);
  std::cout << "# hardware_concurrency="
            << std::thread::hardware_concurrency() << "\n";

  const RankingStore store = bench::MakeNyt(args, 10);
  const auto queries = bench::MakeBenchWorkload(store, args);
  const RawDistance theta_raw = RawThreshold(0.3, store.k());

  std::ofstream out;
  std::optional<bench::JsonWriter> json;
  JsonSink sink;
  if (!out_path.empty()) {
    out.open(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    json.emplace(&out);
    json->BeginObject();
    json->Key("schema_version");
    json->Uint(1);
    json->Key("hardware_concurrency");
    json->Uint(std::thread::hardware_concurrency());
    json->Key("rows");
    json->BeginArray();
    sink.json = &*json;
  }

  RunThreadSweep(store, queries, theta_raw, &sink);
  RunShardAblation(store, queries, theta_raw, &sink);
  RunKnnSweep(store, queries, &sink);

  if (sink.json != nullptr) {
    json->EndArray();
    json->EndObject();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
