// Shared scaffolding for the parallel scaling measurements: one sharded
// workload run per (threads, shards, strategy) configuration, used by the
// standalone bench_parallel binary and the parallel_scaling section of
// bench_baseline.

#ifndef TOPK_BENCH_PARALLEL_UTIL_H_
#define TOPK_BENCH_PARALLEL_UTIL_H_

#include <span>

#include "harness/parallel_runner.h"
#include "harness/runner.h"
#include "harness/sharded_store.h"

namespace topk {
namespace bench {

struct ShardedRunConfig {
  size_t threads;
  size_t shards;
  ShardingStrategy strategy = ShardingStrategy::kHashById;
};

/// Shards `store`, builds the per-shard indexes (outside the timed
/// window; RunQueries excludes preparation) and runs the workload.
inline RunResult RunSharded(const RankingStore& store,
                            std::span<const PreparedQuery> queries,
                            Algorithm algorithm, RawDistance theta_raw,
                            const ShardedRunConfig& config) {
  const ShardedStore sharded(store, config.shards, config.strategy);
  ParallelRunnerOptions options;
  options.num_threads = config.threads;
  ParallelRunner runner(&sharded, options);
  return runner.RunQueries(algorithm, queries, theta_raw);
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_PARALLEL_UTIL_H_
