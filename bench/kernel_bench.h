// The `kernel` benchmark section: micro-measurements of the src/kernel/
// layer, shared by the standalone bench_kernel binary and bench_baseline
// (which embeds the section into BENCH_baseline.json).
//
// Two experiments:
//
//   validate           one query vs. a span of candidates, the validate
//                      phase's inner loop: naive O(k^2) kernel, scalar
//                      merge kernel, and the batched validator (rank table
//                      bound once per query + early exit against theta).
//   posting_iteration  sweeping posting lists by item in random probe
//                      order: one std::vector per item (the pre-arena
//                      layout, rebuilt here for comparison) vs. the CSR
//                      posting arena all indices now share.
//
// Every row reports ns per unit and the derived M units/s; the checksum
// accumulated across kernels doubles as a correctness cross-check (all
// three validate kernels must count the same accepted candidates).

#ifndef TOPK_BENCH_KERNEL_BENCH_H_
#define TOPK_BENCH_KERNEL_BENCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/footrule.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/blocked_inverted_index.h"
#include "invidx/plain_inverted_index.h"
#include "json_writer.h"
#include "kernel/footrule_batch.h"
#include "kernel/simd.h"

namespace topk {
namespace bench {

namespace kernel_detail {

using Clock = std::chrono::steady_clock;

inline double ElapsedNsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// Repeats `pass()` (which returns the number of units processed) until
/// ~40ms elapsed and reports ns per unit.
template <typename Pass>
double MeasureNsPerUnit(Pass&& pass) {
  uint64_t units = pass();  // warm-up, faults in code and data
  constexpr double kMinNs = 40e6;
  units = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    units += pass();
    elapsed = ElapsedNsSince(start);
  } while (elapsed < kMinNs);
  return elapsed / static_cast<double>(units);
}

struct ValidateRow {
  const char* kernel;
  double ns_per_candidate;
};

/// Order-insensitive checksum of a result id multiset; the scalar and
/// SIMD rows of one configuration must print the same value or the sweep
/// itself is a failing differential.
inline uint64_t ResultChecksum(uint64_t acc,
                               const std::vector<RankingId>& ids) {
  for (const RankingId id : ids) acc += MixId64(id);
  return acc + MixId64(ids.size());
}

/// Checksums are emitted as hex strings: compare_benchmarks.py treats
/// strings as row identity, so a checksum regression surfaces as a
/// changed row instead of a meaningless numeric delta.
inline std::string ChecksumHex(uint64_t checksum) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

}  // namespace kernel_detail

/// Emits the `kernel` array (caller owns the surrounding object).
inline void EmitKernelSection(JsonWriter* json, const BenchArgs& args) {
  using kernel_detail::MeasureNsPerUnit;
  json->Key("kernel");
  json->BeginArray();

  // --- validate: one query vs. many candidates, per k. ---
  for (const uint32_t k : {5u, 10u, 25u}) {
    const size_t n = 4096;
    Rng rng(args.seed + k);
    RankingStore store(k);
    std::vector<ItemId> items;
    for (size_t i = 0; i < n; ++i) {
      items.clear();
      while (items.size() < k) {
        const auto item = static_cast<ItemId>(rng.Below(8 * k));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      store.AddUnchecked(items);
    }
    WorkloadOptions workload;
    workload.num_queries = 16;
    workload.perturbed_fraction = 0.7;
    workload.seed = args.seed + 99;
    const auto queries = MakeWorkload(store, workload);
    const double theta = 0.3;
    const RawDistance theta_raw = RawThreshold(theta, k);
    std::vector<RankingId> all(store.size());
    for (RankingId id = 0; id < store.size(); ++id) all[id] = id;

    uint64_t sink = 0;
    const double naive_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        for (RankingId id = 0; id < store.size(); ++id) {
          sink += FootruleDistanceNaive(query.view(), store.view(id)) <=
                  theta_raw;
        }
      }
      return queries.size() * store.size();
    });
    const double merge_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        const SortedRankingView q = query.sorted_view();
        for (RankingId id = 0; id < store.size(); ++id) {
          sink += FootruleDistance(q, store.sorted(id)) <= theta_raw;
        }
      }
      return queries.size() * store.size();
    });
    FootruleValidator validator;
    std::vector<RankingId> out;
    const double batched_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        validator.BindQuery(query.view());
        out.clear();
        validator.ValidateSpan(store, all, theta_raw, &out, nullptr);
        sink += out.size();
      }
      return queries.size() * store.size();
    });
    if (sink == UINT64_MAX) std::cerr << "unreachable\n";

    const kernel_detail::ValidateRow rows[] = {
        {"footrule_naive", naive_ns},
        {"footrule_merge", merge_ns},
        {"footrule_batched", batched_ns},
    };
    for (const auto& row : rows) {
      json->BeginObject();
      json->Key("bench");
      json->String("validate");
      json->Key("kernel");
      json->String(row.kernel);
      json->Key("k");
      json->Uint(k);
      json->Key("theta");
      json->Double(theta);
      json->Key("ns_per_candidate");
      json->Double(row.ns_per_candidate);
      json->Key("mcandidates_per_sec");
      json->Double(1e3 / row.ns_per_candidate);
      json->Key("speedup_vs_merge");
      json->Double(merge_ns / row.ns_per_candidate);
      json->EndObject();
    }
    std::cerr << "  kernel validate k=" << k << " done\n";
  }

  // --- posting_iteration: per-item vectors vs. the CSR arena. ---
  {
    const uint32_t k = 10;
    const RankingStore store = MakeNyt(args, k);
    const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
    // Rebuild the pre-arena layout for comparison.
    std::vector<std::vector<RankingId>> vector_lists(
        static_cast<size_t>(store.max_item()) + 1);
    for (RankingId id = 0; id < store.size(); ++id) {
      for (ItemId item : store.view(id).items()) {
        vector_lists[item].push_back(id);
      }
    }
    // Random probe order over the item directory: the access pattern of a
    // query stream, where posting lookups are scattered.
    Rng rng(args.seed + 7);
    std::vector<ItemId> probes(1 << 14);
    for (ItemId& probe : probes) {
      probe = static_cast<ItemId>(rng.Below(vector_lists.size()));
    }

    uint64_t sink = 0;
    struct Layout {
      const char* name;
      double ns_per_entry;
    };
    const double vec_ns = MeasureNsPerUnit([&] {
      uint64_t entries = 0;
      for (const ItemId probe : probes) {
        for (const RankingId id : vector_lists[probe]) sink += id;
        entries += vector_lists[probe].size();
      }
      return entries;
    });
    const double arena_ns = MeasureNsPerUnit([&] {
      uint64_t entries = 0;
      for (const ItemId probe : probes) {
        const auto list = index.list(probe);
        for (const RankingId id : list) sink += id;
        entries += list.size();
      }
      return entries;
    });
    if (sink == UINT64_MAX) std::cerr << "unreachable\n";

    const Layout layouts[] = {
        {"vector_lists", vec_ns},
        {"csr_arena", arena_ns},
    };
    for (const Layout& layout : layouts) {
      json->BeginObject();
      json->Key("bench");
      json->String("posting_iteration");
      json->Key("layout");
      json->String(layout.name);
      json->Key("k");
      json->Uint(k);
      json->Key("ns_per_entry");
      json->Double(layout.ns_per_entry);
      json->Key("mentries_per_sec");
      json->Double(1e3 / layout.ns_per_entry);
      json->Key("speedup_vs_vector_lists");
      json->Double(vec_ns / layout.ns_per_entry);
      json->EndObject();
    }
    std::cerr << "  kernel posting iteration done\n";
  }

  json->EndArray();
}

/// Emits the `simd` array: the scalar-vs-SIMD-vs-block-skip sweep (caller
/// owns the surrounding object). Every row carries a result checksum; rows
/// of one configuration must agree on it (the bench doubles as a coarse
/// differential) and a mismatch is reported on stderr.
inline void EmitSimdSection(JsonWriter* json, const BenchArgs& args) {
  using kernel_detail::MeasureNsPerUnit;
  using kernel_detail::ResultChecksum;
  json->Key("simd");
  json->BeginArray();

  // --- validate: forced-scalar vs the compiled vector backend. ---
  for (const uint32_t k : {5u, 10u, 25u}) {
    const size_t n = 4096;
    Rng rng(args.seed + 31 * k);
    RankingStore store(k);
    std::vector<ItemId> items;
    for (size_t i = 0; i < n; ++i) {
      items.clear();
      while (items.size() < k) {
        const auto item = static_cast<ItemId>(rng.Below(8 * k));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      store.AddUnchecked(items);
    }
    WorkloadOptions workload;
    workload.num_queries = 16;
    workload.perturbed_fraction = 0.7;
    workload.seed = args.seed + 77;
    const auto queries = MakeWorkload(store, workload);
    const double theta = 0.3;
    const RawDistance theta_raw = RawThreshold(theta, k);
    std::vector<RankingId> all(store.size());
    for (RankingId id = 0; id < store.size(); ++id) all[id] = id;

    struct Backend {
      const char* name;
      bool use_simd;
      double ns_per_candidate = 0;
      uint64_t checksum = 0;
    };
    Backend backends[] = {
        {"scalar", false},
        {FootruleValidator::SimdBackendName(), true},
    };
    // Without a compiled vector backend the second row would re-measure
    // the identical scalar code; measure (and emit) it only when it is a
    // real variant.
    const size_t rows = FootruleValidator::SimdCompiled() ? 2 : 1;
    for (size_t b = 0; b < rows; ++b) {
      Backend& backend = backends[b];
      FootruleValidator validator;
      validator.set_use_simd(backend.use_simd);
      std::vector<RankingId> out;
      uint64_t checksum = 0;
      backend.ns_per_candidate = MeasureNsPerUnit([&] {
        checksum = 0;
        for (const PreparedQuery& query : queries) {
          validator.BindQuery(query.view());
          out.clear();
          validator.ValidateSpan(store, all, theta_raw, &out, nullptr);
          checksum = ResultChecksum(checksum, out);
        }
        return queries.size() * store.size();
      });
      backend.checksum = checksum;
    }
    if (rows == 2 && backends[0].checksum != backends[1].checksum) {
      std::cerr << "CHECKSUM MISMATCH: simd validate k=" << k
                << " scalar=" << backends[0].checksum
                << " simd=" << backends[1].checksum << "\n";
    }
    for (size_t b = 0; b < rows; ++b) {
      const Backend& backend = backends[b];
      json->BeginObject();
      json->Key("bench");
      json->String("validate");
      json->Key("kernel");
      json->String("footrule_batched");
      json->Key("backend");
      json->String(backend.name);
      json->Key("k");
      json->Uint(k);
      json->Key("theta");
      json->Double(theta);
      json->Key("ns_per_candidate");
      json->Double(backend.ns_per_candidate);
      json->Key("mcandidates_per_sec");
      json->Double(1e3 / backend.ns_per_candidate);
      json->Key("speedup_vs_scalar");
      json->Double(backends[0].ns_per_candidate / backend.ns_per_candidate);
      json->Key("checksum");
      json->String(kernel_detail::ChecksumHex(backend.checksum));
      json->EndObject();
    }
    std::cerr << "  simd validate k=" << k << " done ("
              << FootruleValidator::SimdBackendName() << " "
              << backends[0].ns_per_candidate /
                     backends[rows - 1].ns_per_candidate
              << "x)\n";
  }

  // --- block_skip: the windowed blocked engine's tightened sweep. ---
  for (const uint32_t k : {10u, 25u}) {
    const RankingStore store = MakeNyt(args, k);
    const BlockedInvertedIndex index = BlockedInvertedIndex::Build(store);
    BlockedEngine engine(&store, &index,
                         BlockedOptions{DropMode::kNone,
                                        /*scheduled=*/false});
    WorkloadOptions workload;
    workload.num_queries = 32;
    workload.perturbed_fraction = 0.7;
    workload.seed = args.seed + 78;
    const auto queries = MakeWorkload(store, workload);
    const double theta = 0.3;
    const RawDistance theta_raw = RawThreshold(theta, k);

    // One accounted pass for the scan/skip tickers and the checksum...
    Statistics stats;
    uint64_t checksum = 0;
    for (const PreparedQuery& query : queries) {
      checksum = ResultChecksum(checksum,
                                engine.Query(query, theta_raw, &stats));
    }
    // ...then timed passes.
    const double ns_per_query = MeasureNsPerUnit([&] {
      uint64_t sink = 0;
      for (const PreparedQuery& query : queries) {
        sink += engine.Query(query, theta_raw, nullptr).size();
      }
      if (sink == UINT64_MAX) std::cerr << "unreachable\n";
      return queries.size();
    });

    json->BeginObject();
    json->Key("bench");
    json->String("block_skip");
    json->Key("mode");
    json->String("windowed_sweep");
    json->Key("k");
    json->Uint(k);
    json->Key("theta");
    json->Double(theta);
    json->Key("ns_per_query");
    json->Double(ns_per_query);
    json->Key("entries_scanned_per_query");
    json->Double(static_cast<double>(
                     stats.Get(Ticker::kPostingEntriesScanned)) /
                 static_cast<double>(queries.size()));
    json->Key("entries_skipped_per_query");
    json->Double(static_cast<double>(
                     stats.Get(Ticker::kPostingEntriesSkipped)) /
                 static_cast<double>(queries.size()));
    json->Key("checksum");
    json->String(kernel_detail::ChecksumHex(checksum));
    json->EndObject();
    std::cerr << "  simd block_skip k=" << k << " done\n";
  }

  json->EndArray();
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_KERNEL_BENCH_H_
