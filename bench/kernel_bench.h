// The `kernel` benchmark section: micro-measurements of the src/kernel/
// layer, shared by the standalone bench_kernel binary and bench_baseline
// (which embeds the section into BENCH_baseline.json).
//
// Two experiments:
//
//   validate           one query vs. a span of candidates, the validate
//                      phase's inner loop: naive O(k^2) kernel, scalar
//                      merge kernel, and the batched validator (rank table
//                      bound once per query + early exit against theta).
//   posting_iteration  sweeping posting lists by item in random probe
//                      order: one std::vector per item (the pre-arena
//                      layout, rebuilt here for comparison) vs. the CSR
//                      posting arena all indices now share.
//
// Every row reports ns per unit and the derived M units/s; the checksum
// accumulated across kernels doubles as a correctness cross-check (all
// three validate kernels must count the same accepted candidates).

#ifndef TOPK_BENCH_KERNEL_BENCH_H_
#define TOPK_BENCH_KERNEL_BENCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/footrule.h"
#include "core/rng.h"
#include "core/types.h"
#include "invidx/plain_inverted_index.h"
#include "json_writer.h"
#include "kernel/footrule_batch.h"

namespace topk {
namespace bench {

namespace kernel_detail {

using Clock = std::chrono::steady_clock;

inline double ElapsedNsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// Repeats `pass()` (which returns the number of units processed) until
/// ~40ms elapsed and reports ns per unit.
template <typename Pass>
double MeasureNsPerUnit(Pass&& pass) {
  uint64_t units = pass();  // warm-up, faults in code and data
  constexpr double kMinNs = 40e6;
  units = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    units += pass();
    elapsed = ElapsedNsSince(start);
  } while (elapsed < kMinNs);
  return elapsed / static_cast<double>(units);
}

struct ValidateRow {
  const char* kernel;
  double ns_per_candidate;
};

}  // namespace kernel_detail

/// Emits the `kernel` array (caller owns the surrounding object).
inline void EmitKernelSection(JsonWriter* json, const BenchArgs& args) {
  using kernel_detail::MeasureNsPerUnit;
  json->Key("kernel");
  json->BeginArray();

  // --- validate: one query vs. many candidates, per k. ---
  for (const uint32_t k : {5u, 10u, 25u}) {
    const size_t n = 4096;
    Rng rng(args.seed + k);
    RankingStore store(k);
    std::vector<ItemId> items;
    for (size_t i = 0; i < n; ++i) {
      items.clear();
      while (items.size() < k) {
        const auto item = static_cast<ItemId>(rng.Below(8 * k));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      store.AddUnchecked(items);
    }
    WorkloadOptions workload;
    workload.num_queries = 16;
    workload.perturbed_fraction = 0.7;
    workload.seed = args.seed + 99;
    const auto queries = MakeWorkload(store, workload);
    const double theta = 0.3;
    const RawDistance theta_raw = RawThreshold(theta, k);
    std::vector<RankingId> all(store.size());
    for (RankingId id = 0; id < store.size(); ++id) all[id] = id;

    uint64_t sink = 0;
    const double naive_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        for (RankingId id = 0; id < store.size(); ++id) {
          sink += FootruleDistanceNaive(query.view(), store.view(id)) <=
                  theta_raw;
        }
      }
      return queries.size() * store.size();
    });
    const double merge_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        const SortedRankingView q = query.sorted_view();
        for (RankingId id = 0; id < store.size(); ++id) {
          sink += FootruleDistance(q, store.sorted(id)) <= theta_raw;
        }
      }
      return queries.size() * store.size();
    });
    FootruleValidator validator;
    std::vector<RankingId> out;
    const double batched_ns = MeasureNsPerUnit([&] {
      for (const PreparedQuery& query : queries) {
        validator.BindQuery(query.view());
        out.clear();
        validator.ValidateSpan(store, all, theta_raw, &out, nullptr);
        sink += out.size();
      }
      return queries.size() * store.size();
    });
    if (sink == UINT64_MAX) std::cerr << "unreachable\n";

    const kernel_detail::ValidateRow rows[] = {
        {"footrule_naive", naive_ns},
        {"footrule_merge", merge_ns},
        {"footrule_batched", batched_ns},
    };
    for (const auto& row : rows) {
      json->BeginObject();
      json->Key("bench");
      json->String("validate");
      json->Key("kernel");
      json->String(row.kernel);
      json->Key("k");
      json->Uint(k);
      json->Key("theta");
      json->Double(theta);
      json->Key("ns_per_candidate");
      json->Double(row.ns_per_candidate);
      json->Key("mcandidates_per_sec");
      json->Double(1e3 / row.ns_per_candidate);
      json->Key("speedup_vs_merge");
      json->Double(merge_ns / row.ns_per_candidate);
      json->EndObject();
    }
    std::cerr << "  kernel validate k=" << k << " done\n";
  }

  // --- posting_iteration: per-item vectors vs. the CSR arena. ---
  {
    const uint32_t k = 10;
    const RankingStore store = MakeNyt(args, k);
    const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
    // Rebuild the pre-arena layout for comparison.
    std::vector<std::vector<RankingId>> vector_lists(
        static_cast<size_t>(store.max_item()) + 1);
    for (RankingId id = 0; id < store.size(); ++id) {
      for (ItemId item : store.view(id).items()) {
        vector_lists[item].push_back(id);
      }
    }
    // Random probe order over the item directory: the access pattern of a
    // query stream, where posting lookups are scattered.
    Rng rng(args.seed + 7);
    std::vector<ItemId> probes(1 << 14);
    for (ItemId& probe : probes) {
      probe = static_cast<ItemId>(rng.Below(vector_lists.size()));
    }

    uint64_t sink = 0;
    struct Layout {
      const char* name;
      double ns_per_entry;
    };
    const double vec_ns = MeasureNsPerUnit([&] {
      uint64_t entries = 0;
      for (const ItemId probe : probes) {
        for (const RankingId id : vector_lists[probe]) sink += id;
        entries += vector_lists[probe].size();
      }
      return entries;
    });
    const double arena_ns = MeasureNsPerUnit([&] {
      uint64_t entries = 0;
      for (const ItemId probe : probes) {
        const auto list = index.list(probe);
        for (const RankingId id : list) sink += id;
        entries += list.size();
      }
      return entries;
    });
    if (sink == UINT64_MAX) std::cerr << "unreachable\n";

    const Layout layouts[] = {
        {"vector_lists", vec_ns},
        {"csr_arena", arena_ns},
    };
    for (const Layout& layout : layouts) {
      json->BeginObject();
      json->Key("bench");
      json->String("posting_iteration");
      json->Key("layout");
      json->String(layout.name);
      json->Key("k");
      json->Uint(k);
      json->Key("ns_per_entry");
      json->Double(layout.ns_per_entry);
      json->Key("mentries_per_sec");
      json->Double(1e3 / layout.ns_per_entry);
      json->Key("speedup_vs_vector_lists");
      json->Double(vec_ns / layout.ns_per_entry);
      json->EndObject();
    }
    std::cerr << "  kernel posting iteration done\n";
  }

  json->EndArray();
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_KERNEL_BENCH_H_
