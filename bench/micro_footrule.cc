// Microbenchmarks (google-benchmark) for the distance kernels and the
// filter-phase primitives — the design-choice evidence behind the
// merge-based Footrule kernel and the cost-model calibration constants.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/footrule.h"
#include "core/kendall.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "invidx/visited_set.h"

namespace topk {
namespace {

RankingStore MakeStore(uint32_t k, size_t n, uint64_t seed) {
  Rng rng(seed);
  RankingStore store(k);
  std::vector<ItemId> items;
  for (size_t i = 0; i < n; ++i) {
    items.clear();
    while (items.size() < k) {
      const auto item = static_cast<ItemId>(rng.Below(8 * k));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    store.AddUnchecked(items);
  }
  return store;
}

void BM_FootruleMerge(benchmark::State& state) {
  const auto k = static_cast<uint32_t>(state.range(0));
  const RankingStore store = MakeStore(k, 1024, 1);
  Rng rng(2);
  for (auto _ : state) {
    const auto a = static_cast<RankingId>(rng.Below(store.size()));
    const auto b = static_cast<RankingId>(rng.Below(store.size()));
    benchmark::DoNotOptimize(
        FootruleDistance(store.sorted(a), store.sorted(b)));
  }
}
BENCHMARK(BM_FootruleMerge)->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25);

void BM_FootruleNaive(benchmark::State& state) {
  const auto k = static_cast<uint32_t>(state.range(0));
  const RankingStore store = MakeStore(k, 1024, 1);
  Rng rng(2);
  for (auto _ : state) {
    const auto a = static_cast<RankingId>(rng.Below(store.size()));
    const auto b = static_cast<RankingId>(rng.Below(store.size()));
    benchmark::DoNotOptimize(
        FootruleDistanceNaive(store.view(a), store.view(b)));
  }
}
BENCHMARK(BM_FootruleNaive)->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25);

void BM_KendallTau(benchmark::State& state) {
  const auto k = static_cast<uint32_t>(state.range(0));
  const RankingStore store = MakeStore(k, 1024, 1);
  Rng rng(2);
  for (auto _ : state) {
    const auto a = static_cast<RankingId>(rng.Below(store.size()));
    const auto b = static_cast<RankingId>(rng.Below(store.size()));
    benchmark::DoNotOptimize(
        KendallTauTimesTwo(store.view(a), store.view(b), 1));
  }
}
BENCHMARK(BM_KendallTau)->Arg(5)->Arg(10)->Arg(20);

void BM_VisitedSetMergeDedup(benchmark::State& state) {
  // The filter phase's inner loop: union k id-sorted lists with epoch
  // deduplication.
  const size_t list_length = static_cast<size_t>(state.range(0));
  constexpr uint32_t kUniverse = 1u << 20;
  Rng rng(3);
  std::vector<std::vector<RankingId>> lists(10);
  for (auto& list : lists) {
    list.resize(list_length);
    for (auto& id : list) id = static_cast<RankingId>(rng.Below(kUniverse));
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  VisitedSet visited(kUniverse);
  std::vector<RankingId> candidates;
  for (auto _ : state) {
    visited.NextEpoch();
    candidates.clear();
    for (const auto& list : lists) {
      for (RankingId id : list) {
        if (!visited.TestAndSet(id)) candidates.push_back(id);
      }
    }
    benchmark::DoNotOptimize(candidates.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(10 * list_length));
}
BENCHMARK(BM_VisitedSetMergeDedup)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
