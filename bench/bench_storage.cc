// bench_storage: standalone benchmark of the compressed storage tier.
//
// Prints the same `storage` section bench_baseline embeds into
// BENCH_baseline.json (posting-arena compression footprint, query
// latency through the four serving tiers with a bit-exactness check
// against the RAM baseline, snapshot residency right after a page-cache
// evicted open — the zero-copy evidence), as its own JSON document
// (default BENCH_storage.json, override with --out=). Useful for
// iterating on storage/ changes without re-running the full baseline.

#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "json_writer.h"
#include "storage_bench.h"

namespace topk {
namespace {

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Storage tier benchmark (JSON)", args);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Uint(1);
  bench::EmitStorageSection(&json, args);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
