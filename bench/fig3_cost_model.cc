// Figure 3: the analytical cost model's filter / validate / overall
// curves against the partitioning threshold theta_C, for both datasets at
// k = 10, theta = 0.2.
//
// The paper plots "runtime cost" in model units; we print nanoseconds per
// query as predicted by the calibrated model. The expected shape: filter
// cost falls with theta_C (fewer medoids), validation cost rises (larger
// partitions), the sum is U-shaped with a sweet spot in between.

#include <iostream>

#include "bench_util.h"
#include "costmodel/cost_model.h"
#include "data/dataset_stats.h"
#include "harness/report.h"

namespace topk {
namespace {

void RunDataset(const char* name, const RankingStore& store, double theta) {
  const CostModelInputs inputs = MeasureCostModelInputs(store, 256);
  std::cout << "\n--- " << name << " (n=" << inputs.n << ", k=" << inputs.k
            << ", v=" << inputs.v
            << ", fitted zipf s=" << FormatDouble(inputs.zipf_s, 3)
            << ", theta=" << theta << ") ---\n";
  const CoarseCostModel model(inputs);

  TextTable table({"theta_C", "filter_cost_ns", "validate_cost_ns",
                   "overall_ns"});
  const auto grid = MakeGrid(0.02, 0.8, 0.02);
  const auto tuned = model.Tune(theta, grid);
  for (const auto& point : tuned.series) {
    table.AddRow({FormatDouble(point.theta_c, 2),
                  FormatDouble(point.cost.filter_ns, 0),
                  FormatDouble(point.cost.validate_ns, 0),
                  FormatDouble(point.cost.total_ns(), 0)});
  }
  table.Print(std::cout);
  std::cout << "model-chosen sweet spot: theta_C = "
            << FormatDouble(tuned.best_theta_c, 2) << " (predicted "
            << FormatDouble(tuned.best_cost.total_ns(), 0) << " ns/query)\n";
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Figure 3: cost model curves vs theta_C", args);

  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  RunDataset("NYT-like", nyt, 0.2);
  RunDataset("Yago-like", yago, 0.2);
  return 0;
}
