// bench_baseline: the machine-readable benchmark baseline.
//
// Where the fig*/table* binaries print the paper's figures as text tables
// for humans, this binary measures the three numbers every future perf PR
// is judged against and writes them as JSON (default BENCH_baseline.json,
// override with --out=):
//
//   footrule_kernel  ns/call and Mcalls/s for the merge and naive distance
//                    kernels (the micro_footrule story, sans google-benchmark)
//   index_build      per-index construction time and memory (the Table 6 story)
//   query_latency    per-algorithm workload wall time and per-query latency
//                    percentiles at several thetas (the Figure 8 story)
//
// Scaling knobs are shared with every other bench (see bench_util.h);
// scripts/run_benchmarks.sh drives this at CI scale.

#include <algorithm>
#include <chrono>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/footrule.h"
#include "core/rng.h"
#include "harness/query_algorithms.h"
#include "harness/runner.h"
#include "json_writer.h"
#include "kernel_bench.h"
#include "mutability_bench.h"
#include "parallel_util.h"
#include "storage_bench.h"

namespace topk {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

RankingStore MakeKernelStore(uint32_t k, size_t n, uint64_t seed) {
  Rng rng(seed);
  RankingStore store(k);
  std::vector<ItemId> items;
  for (size_t i = 0; i < n; ++i) {
    items.clear();
    while (items.size() < k) {
      const auto item = static_cast<ItemId>(rng.Below(8 * k));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    store.AddUnchecked(items);
  }
  return store;
}

/// Times `distance(a, b)` over pre-drawn random pairs until ~50ms have
/// elapsed and reports ns per call. Pairs are generated outside the timed
/// loop so RNG overhead does not bias the kernel number.
template <typename Distance>
double MeasureKernelNs(const RankingStore& store, Distance&& distance) {
  Rng rng(2);
  std::vector<std::pair<RankingId, RankingId>> pairs(4096);
  for (auto& pair : pairs) {
    pair.first = static_cast<RankingId>(rng.Below(store.size()));
    pair.second = static_cast<RankingId>(rng.Below(store.size()));
  }
  // Warm-up: touch the store and fault-in code paths.
  RawDistance sink = 0;
  for (const auto& [a, b] : pairs) sink += distance(a, b);

  constexpr double kMinNs = 50e6;
  uint64_t calls = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    for (const auto& [a, b] : pairs) sink += distance(a, b);
    calls += pairs.size();
    elapsed = ElapsedNs(start);
  } while (elapsed < kMinNs);
  // Keep the accumulated distances observable so the loop cannot be
  // dead-code eliminated.
  if (sink == std::numeric_limits<RawDistance>::max()) {
    std::cerr << "unreachable\n";
  }
  return elapsed / static_cast<double>(calls);
}

void EmitFootruleKernel(bench::JsonWriter* json) {
  json->Key("footrule_kernel");
  json->BeginArray();
  for (const uint32_t k : {5u, 10u, 15u, 20u, 25u}) {
    const RankingStore store = MakeKernelStore(k, 1024, 1);
    struct Kernel {
      const char* name;
      double ns;
    };
    const Kernel kernels[] = {
        {"footrule_merge", MeasureKernelNs(store,
                                           [&store](RankingId a, RankingId b) {
                                             return FootruleDistance(
                                                 store.sorted(a),
                                                 store.sorted(b));
                                           })},
        {"footrule_naive", MeasureKernelNs(store,
                                           [&store](RankingId a, RankingId b) {
                                             return FootruleDistanceNaive(
                                                 store.view(a), store.view(b));
                                           })},
    };
    for (const Kernel& kernel : kernels) {
      json->BeginObject();
      json->Key("kernel");
      json->String(kernel.name);
      json->Key("k");
      json->Uint(k);
      json->Key("ns_per_call");
      json->Double(kernel.ns);
      json->Key("mcalls_per_sec");
      json->Double(1e3 / kernel.ns);
      json->EndObject();
    }
    std::cerr << "  kernel k=" << k << " done\n";
  }
  json->EndArray();
}

struct DatasetRun {
  const char* name;
  const RankingStore* store;
  /// Shared across the index-build and query-latency sections so every
  /// index is constructed exactly once per baseline run.
  EngineSuite* suite;
};

void EmitIndexBuild(bench::JsonWriter* json,
                    const std::vector<DatasetRun>& datasets) {
  struct Row {
    const char* label;
    Algorithm algorithm;
  };
  const Row rows[] = {
      {"plain_inverted", Algorithm::kFV},
      {"augmented_inverted", Algorithm::kListMerge},
      {"blocked_inverted", Algorithm::kBlockedPrune},
      {"delta_inverted", Algorithm::kAdaptSearch},
      {"bk_tree", Algorithm::kBkTree},
      {"m_tree", Algorithm::kMTree},
      {"coarse", Algorithm::kCoarse},
      {"coarse_drop", Algorithm::kCoarseDrop},
  };
  json->Key("index_build");
  json->BeginArray();
  for (const DatasetRun& dataset : datasets) {
    for (const Row& row : rows) {
      const IndexBuildInfo info = dataset.suite->BuildInfo(row.algorithm);
      json->BeginObject();
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("index");
      json->String(row.label);
      json->Key("build_ms");
      json->Double(info.build_ms);
      json->Key("memory_bytes");
      json->Uint(info.memory_bytes);
      json->EndObject();
    }
    std::cerr << "  index build on " << dataset.name << " done\n";
  }
  json->EndArray();
}

void EmitQueryLatency(bench::JsonWriter* json, const bench::BenchArgs& args,
                      const std::vector<DatasetRun>& datasets) {
  const std::vector<Algorithm> algorithms = {
      Algorithm::kFV,           Algorithm::kFVDrop,
      Algorithm::kListMerge,    Algorithm::kLaatPrune,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kAdaptSearch,  Algorithm::kMinimalFV,
      Algorithm::kBkTree,       Algorithm::kMTree,
      Algorithm::kLinearScan,
  };
  const double thetas[] = {0.1, 0.3};
  json->Key("query_latency");
  json->BeginArray();
  for (const DatasetRun& dataset : datasets) {
    const uint32_t k = dataset.store->k();
    const auto queries = bench::MakeBenchWorkload(*dataset.store, args);
    EngineSuite& suite = *dataset.suite;
    for (const Algorithm algorithm : algorithms) {
      for (const double theta : thetas) {
        const RawDistance theta_raw = RawThreshold(theta, k);
        auto engine = algorithm == Algorithm::kMinimalFV
                          ? suite.MakeOracleEngine(queries, theta_raw)
                          : suite.MakeEngine(algorithm);
        const RunResult result = RunQueries(engine.get(), queries, theta_raw);
        json->BeginObject();
        json->Key("dataset");
        json->String(dataset.name);
        json->Key("algorithm");
        json->String(AlgorithmName(algorithm));
        json->Key("k");
        json->Uint(k);
        json->Key("theta");
        json->Double(theta);
        json->Key("queries");
        json->Uint(result.num_queries);
        json->Key("wall_ms");
        json->Double(result.wall_ms);
        json->Key("mean_ms_per_query");
        json->Double(result.mean_ms_per_query());
        json->Key("p50_ms");
        json->Double(result.p50_ms);
        json->Key("p95_ms");
        json->Double(result.p95_ms);
        json->Key("p99_ms");
        json->Double(result.p99_ms);
        json->Key("total_results");
        json->Uint(result.total_results);
        json->EndObject();
      }
      std::cerr << "  latency " << dataset.name << "/"
                << AlgorithmName(algorithm) << " done\n";
    }
  }
  json->EndArray();
}

/// Sharded parallel throughput vs. the sequential runner: threads ==
/// shards sweeps per algorithm on the NYT-like dataset, each row
/// checksum-verified against the sequential result multiset. This is the
/// scaling trajectory (PR 2 onward); absolute speedups depend on the
/// machine's core count, recorded in the meta section.
void EmitParallelScaling(bench::JsonWriter* json, const bench::BenchArgs& args,
                         const std::vector<DatasetRun>& datasets) {
  const Algorithm algorithms[] = {Algorithm::kFV, Algorithm::kCoarse,
                                  Algorithm::kLinearScan};
  const DatasetRun& dataset = datasets.front();  // nyt_like
  const auto queries = bench::MakeBenchWorkload(*dataset.store, args);
  const RawDistance theta_raw = RawThreshold(0.3, dataset.store->k());
  json->Key("parallel_scaling");
  json->BeginArray();
  for (const Algorithm algorithm : algorithms) {
    auto engine = dataset.suite->MakeEngine(algorithm);
    const RunResult sequential = RunQueries(engine.get(), queries, theta_raw);
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      const bench::ShardedRunConfig config{threads, threads,
                                           ShardingStrategy::kHashById};
      const RunResult run = bench::RunSharded(*dataset.store, queries,
                                              algorithm, theta_raw, config);
      json->BeginObject();
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("algorithm");
      json->String(AlgorithmName(algorithm));
      json->Key("threads");
      json->Uint(threads);
      json->Key("shards");
      json->Uint(config.shards);
      json->Key("strategy");
      json->String(ShardingStrategyName(config.strategy));
      json->Key("theta");
      json->Double(0.3);
      json->Key("wall_ms");
      json->Double(run.wall_ms);
      json->Key("mean_ms_per_query");
      json->Double(run.mean_ms_per_query());
      json->Key("p99_ms");
      json->Double(run.p99_ms);
      json->Key("speedup_vs_sequential");
      json->Double(run.wall_ms > 0 ? sequential.wall_ms / run.wall_ms : 0);
      json->Key("exact_match");
      json->Bool(run.result_hash == sequential.result_hash &&
                 run.total_results == sequential.total_results);
      json->EndObject();
    }
    std::cerr << "  parallel scaling " << AlgorithmName(algorithm)
              << " done\n";
  }
  json->EndArray();
}

std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  char buffer[32];
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buffer;
}

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_baseline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Benchmark baseline (JSON)", args);

  // Open the output before the (potentially minutes-long) measurement so
  // an unwritable path fails immediately.
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  EngineSuite nyt_suite(&nyt);
  EngineSuite yago_suite(&yago);
  const std::vector<DatasetRun> datasets = {{"nyt_like", &nyt, &nyt_suite},
                                            {"yago_like", &yago, &yago_suite}};
  bench::JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Uint(1);
  json.Key("meta");
  json.BeginObject();
  json.Key("generated_at_utc");
  json.String(UtcTimestamp());
  json.Key("paper");
  json.String("EDBT 2015, 10.5441/002/edbt.2015.23");
  json.Key("nyt_n");
  json.Uint(args.nyt_n);
  json.Key("yago_n");
  json.Uint(args.yago_n);
  json.Key("queries");
  json.Uint(args.queries);
  json.Key("seed");
  json.Uint(args.seed);
  json.Key("hardware_concurrency");
  json.Uint(std::thread::hardware_concurrency());
  json.EndObject();

  EmitFootruleKernel(&json);
  bench::EmitKernelSection(&json, args);
  bench::EmitSimdSection(&json, args);
  EmitIndexBuild(&json, datasets);
  EmitQueryLatency(&json, args, datasets);
  EmitParallelScaling(&json, args, datasets);
  bench::EmitMutabilitySection(&json, args);
  bench::EmitStorageSection(&json, args);

  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
