// Figure 5: M-tree vs BK-tree wall time on the NYT-like dataset.
// Left plot: k in {5,10,15,20,25} at theta = 0.1.
// Right plot: theta in {0, 0.05, ..., 0.3} at k = 10.
//
// Both trees are the paper's baselines: the BK-tree runs in faithful mode
// (no duplicate-distance reuse — that optimization belongs to the coarse
// index's partition trees, not to the standalone baseline the paper
// measured).
//
// Paper shape to reproduce: the (unbalanced) BK-tree beats the balanced
// M-tree at this intrinsic dimensionality, and both degrade with theta.

#include <iostream>

#include "bench_util.h"
#include "harness/report.h"
#include "metric/bk_tree.h"
#include "metric/m_tree.h"

namespace topk {
namespace {

constexpr BkTreeOptions kFaithful{/*reuse_duplicate_distances=*/false};

double RunTree(const BkTree& tree, const std::vector<PreparedQuery>& queries,
               RawDistance theta_raw) {
  Stopwatch watch;
  for (const PreparedQuery& query : queries) {
    tree.RangeQuery(query.sorted_view(), theta_raw);
  }
  return watch.ElapsedMillis() / 1000.0;
}

double RunTree(const MTree& tree, const std::vector<PreparedQuery>& queries,
               RawDistance theta_raw) {
  Stopwatch watch;
  for (const PreparedQuery& query : queries) {
    tree.RangeQuery(query.sorted_view(), theta_raw);
  }
  return watch.ElapsedMillis() / 1000.0;
}

void Sweep(const bench::BenchArgs& args) {
  std::cout << "\n--- left: vary k (theta = 0.1) ---\n";
  TextTable by_k({"k", "BK-tree_s", "M-tree_s"});
  for (uint32_t k : {5u, 10u, 15u, 20u, 25u}) {
    const RankingStore store = bench::MakeNyt(args, k);
    const auto queries = bench::MakeBenchWorkload(store, args);
    const BkTree bk = BkTree::BuildAll(&store, nullptr, kFaithful);
    const MTree mt = MTree::BuildAll(&store);
    const RawDistance theta_raw = RawThreshold(0.1, k);
    by_k.AddRow({std::to_string(k),
                 FormatDouble(RunTree(bk, queries, theta_raw), 3),
                 FormatDouble(RunTree(mt, queries, theta_raw), 3)});
  }
  by_k.Print(std::cout);

  std::cout << "\n--- right: vary theta (k = 10) ---\n";
  TextTable by_theta({"theta", "BK-tree_s", "M-tree_s"});
  const RankingStore store = bench::MakeNyt(args, 10);
  const auto queries = bench::MakeBenchWorkload(store, args);
  const BkTree bk = BkTree::BuildAll(&store, nullptr, kFaithful);
  const MTree mt = MTree::BuildAll(&store);
  for (double theta : {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}) {
    const RawDistance theta_raw = RawThreshold(theta, 10);
    by_theta.AddRow({FormatDouble(theta, 2),
                     FormatDouble(RunTree(bk, queries, theta_raw), 3),
                     FormatDouble(RunTree(mt, queries, theta_raw), 3)});
  }
  by_theta.Print(std::cout);
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  auto args = bench::BenchArgs::Parse(argc, argv);
  // Metric trees are the slow baselines; keep the default workload small
  // enough that the bench stays snappy.
  if (!args.full && args.queries > 200) args.queries = 200;
  bench::PrintHeader("Figure 5: M-tree vs BK-tree (NYT-like)", args);
  Sweep(args);
  return 0;
}
