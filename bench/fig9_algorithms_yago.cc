// Figure 9: all-algorithm comparison on the Yago-like dataset, k in
// {10, 20}, theta in {0, 0.1, 0.2, 0.3}; coarse settings as in Figure 8.
//
// Paper shape to reproduce: with near-uniform items nothing touches the
// Minimal F&V oracle; ListMerge is surprisingly strong on the small
// collection; Blocked+Prune suffers; Coarse+Drop still beats AdaptSearch.

#include "algo_comparison.h"

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Figure 9: algorithm comparison (Yago-like)", args);
  const RankingStore store10 = bench::MakeYago(args, 10);
  const RankingStore store20 = bench::MakeYago(args, 20);
  bench::RunAlgorithmComparison(args, store10, store20);
  return 0;
}
