// Shared driver for the Figure 8 / Figure 9 all-algorithm comparisons.

#ifndef TOPK_BENCH_ALGO_COMPARISON_H_
#define TOPK_BENCH_ALGO_COMPARISON_H_

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"

namespace topk {
namespace bench {

/// Runs the paper's algorithm roster over theta in {0, .1, .2, .3} for the
/// two stores (k = 10 and k = 20) and prints one ms-per-workload table per
/// k, with the paper's coarse settings (theta_C = 0.5 / 0.06).
inline void RunAlgorithmComparison(const BenchArgs& args,
                                   const RankingStore& store10,
                                   const RankingStore& store20) {
  const std::vector<Algorithm> algorithms = {
      Algorithm::kFV,           Algorithm::kListMerge,
      Algorithm::kAdaptSearch,  Algorithm::kMinimalFV,
      Algorithm::kCoarse,       Algorithm::kCoarseDrop,
      Algorithm::kBlockedPrune, Algorithm::kBlockedPruneDrop,
      Algorithm::kFVDrop,       Algorithm::kLaatPrune,
  };
  const std::vector<double> thetas = {0.0, 0.1, 0.2, 0.3};

  for (const RankingStore* store : {&store10, &store20}) {
    const uint32_t k = store->k();
    std::cout << "\n--- k = " << k
              << " (Coarse theta_C=0.5; Coarse+Drop theta_C=0.06); ms per "
              << args.queries << " queries ---\n";
    const auto queries = MakeBenchWorkload(*store, args);
    EngineSuite suite(store);
    TextTable table({"algorithm", "theta=0", "theta=0.1", "theta=0.2",
                     "theta=0.3"});
    for (Algorithm algorithm : algorithms) {
      std::vector<std::string> row = {AlgorithmName(algorithm)};
      for (double theta : thetas) {
        const RawDistance theta_raw = RawThreshold(theta, k);
        auto engine = algorithm == Algorithm::kMinimalFV
                          ? suite.MakeOracleEngine(queries, theta_raw)
                          : suite.MakeEngine(algorithm);
        const RunResult result =
            RunQueries(engine.get(), queries, theta_raw);
        row.push_back(FormatDouble(result.wall_ms, 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_ALGO_COMPARISON_H_
