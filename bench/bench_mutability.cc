// bench_mutability: standalone benchmark of the live write path.
//
// Prints the same `mutability` section bench_baseline embeds into
// BENCH_baseline.json (insert throughput, query latency at growing delta
// sizes with a bit-exactness check against a rebuilt store, merge wall
// time plus the worst query latency observed while a merge runs), as its
// own JSON document (default BENCH_mutability.json, override with
// --out=). Useful for iterating on mutate/ changes without re-running
// the full baseline.

#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "json_writer.h"
#include "mutability_bench.h"

namespace topk {
namespace {

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_mutability.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Mutability benchmark (JSON)", args);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Uint(1);
  bench::EmitMutabilitySection(&json, args);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
