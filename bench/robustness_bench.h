// The `robustness` benchmark section: what fault tolerance costs when
// nothing is failing, shared by the standalone bench_robustness binary.
//
// Three experiments per dataset:
//
//   deadline_overhead   the price of deadline/cancellation plumbing on
//                       the healthy path: the same workload through
//                       MutableStore with no QueryControl vs an
//                       infinite-deadline control (amortized kStride
//                       polls, precise first poll). The contract the
//                       serving layer makes is overhead_pct < 2.
//   degraded_read       serving latency of ResilientReader's two tiers —
//                       the preferred mmap snapshot tier vs the in-RAM
//                       fallback the reader degrades to when the device
//                       fails — with the two verified bit-identical.
//   snapshot_lifecycle  the crash-safe generation protocol end to end:
//                       WriteSnapshot (temp + fsync + rename + dirsync +
//                       prune) and the OpenNewestValid recovery scan
//                       (orphan sweep + full checksum verify).

#ifndef TOPK_BENCH_ROBUSTNESS_BENCH_H_
#define TOPK_BENCH_ROBUSTNESS_BENCH_H_

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/deadline.h"
#include "core/types.h"
#include "invidx/plain_inverted_index.h"
#include "json_writer.h"
#include "mutate/mutable_store.h"
#include "serve/resilient_reader.h"
#include "storage/compressed_arena.h"
#include "storage/snapshot_manager.h"

namespace topk {
namespace bench {

namespace robustness_detail {

using Clock = std::chrono::steady_clock;

inline double ElapsedMsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace robustness_detail

/// Emits the `robustness` array (caller owns the surrounding object).
inline void EmitRobustnessSection(JsonWriter* json, const BenchArgs& args) {
  using robustness_detail::Clock;
  using robustness_detail::ElapsedMsSince;
  constexpr uint32_t kK = 10;
  const double theta = 0.1;
  const RawDistance theta_raw = RawThreshold(theta, kK);
  constexpr uint32_t kReps = 3;  // best-of to tame scheduler noise

  struct Dataset {
    const char* name;
    RankingStore store;
  };
  Dataset datasets[] = {
      {"nyt_like", MakeNyt(args, kK)},
      {"yago_like", MakeYago(args, kK)},
  };

  json->Key("robustness");
  json->BeginArray();
  for (Dataset& dataset : datasets) {
    const RankingStore& store = dataset.store;
    const auto queries = MakeBenchWorkload(store, args);

    // --- deadline_overhead: control-free vs infinite-deadline pass. ---
    {
      MutableStore live(store);
      std::vector<std::vector<RankingId>> expected(queries.size());
      // Untimed warm-up so the control-free pass does not absorb the
      // one-time cache/page-fault cost (it would read as negative
      // overhead for the control pass).
      for (size_t i = 0; i < queries.size(); ++i) {
        expected[i] = live.RangeQuery(queries[i], theta_raw);
      }
      double no_control_ms = 0;
      for (uint32_t rep = 0; rep < kReps; ++rep) {
        const auto start = Clock::now();
        for (size_t i = 0; i < queries.size(); ++i) {
          expected[i] = live.RangeQuery(queries[i], theta_raw);
        }
        const double ms = ElapsedMsSince(start);
        if (rep == 0 || ms < no_control_ms) no_control_ms = ms;
      }
      bool exact = true;
      double with_control_ms = 0;
      std::vector<RankingId> out;
      for (uint32_t rep = 0; rep < kReps; ++rep) {
        const auto start = Clock::now();
        for (size_t i = 0; i < queries.size(); ++i) {
          QueryControl control;  // infinite deadline, polls still run
          exact = exact &&
                  live.RangeQuery(queries[i], theta_raw, &control, &out).ok() &&
                  out == expected[i];
        }
        const double ms = ElapsedMsSince(start);
        if (rep == 0 || ms < with_control_ms) with_control_ms = ms;
      }
      const double overhead_pct =
          no_control_ms > 0
              ? 100.0 * (with_control_ms - no_control_ms) / no_control_ms
              : 0;
      json->BeginObject();
      json->Key("bench");
      json->String("deadline_overhead");
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("n");
      json->Uint(store.size());
      json->Key("k");
      json->Uint(kK);
      json->Key("theta");
      json->Double(theta);
      json->Key("queries");
      json->Uint(queries.size());
      json->Key("reps");
      json->Uint(kReps);
      json->Key("no_control_wall_ms");
      json->Double(no_control_ms);
      json->Key("with_control_wall_ms");
      json->Double(with_control_ms);
      json->Key("overhead_pct");
      json->Double(overhead_pct);
      json->Key("exact_match");
      json->Bool(exact);
      json->EndObject();
      std::cerr << "  robustness deadline_overhead " << dataset.name << " "
                << overhead_pct << "%" << (exact ? " exact" : " MISMATCH")
                << "\n";
    }

    // The snapshot generation directory both remaining experiments use.
    const std::string dir =
        std::string("BENCH_robustness_snapdir_") + dataset.name + ".tmp";
    std::filesystem::remove_all(dir);
    const PlainInvertedIndex plain = PlainInvertedIndex::Build(store);
    const auto arena =
        storage::CompressedPostingArena<RankingId>::FromArena(plain.arena());

    // --- snapshot_lifecycle: crash-safe write + recovery scan. ---
    {
      storage::SnapshotManager manager(dir);
      const auto write_start = Clock::now();
      const Status written = manager.WriteSnapshot(store, arena);
      const double write_ms = ElapsedMsSince(write_start);
      if (!written.ok()) {
        std::cerr << "  robustness snapshot write FAILED: "
                  << written.ToString() << "\n";
        std::filesystem::remove_all(dir);
        continue;
      }
      const auto open_start = Clock::now();
      auto opened = manager.OpenNewestValid();
      const double open_ms = ElapsedMsSince(open_start);
      if (!opened.ok()) {
        std::cerr << "  robustness snapshot open FAILED: "
                  << opened.status().ToString() << "\n";
        std::filesystem::remove_all(dir);
        continue;
      }
      const uint64_t file_bytes =
          std::filesystem::file_size(manager.GenerationPath(1));
      json->BeginObject();
      json->Key("bench");
      json->String("snapshot_lifecycle");
      json->Key("dataset");
      json->String(dataset.name);
      json->Key("n");
      json->Uint(store.size());
      json->Key("k");
      json->Uint(kK);
      json->Key("file_bytes");
      json->Uint(file_bytes);
      json->Key("write_wall_ms");
      json->Double(write_ms);
      json->Key("open_wall_ms");
      json->Double(open_ms);
      json->EndObject();
      std::cerr << "  robustness snapshot_lifecycle " << dataset.name
                << " write=" << write_ms << "ms open=" << open_ms << "ms\n";
    }

    // --- degraded_read: snapshot tier vs the RAM fallback tier. ---
    {
      ResilientReader snapshot_reader(&store, {dir, 3});
      const Status opened = snapshot_reader.OpenSnapshotTier();
      if (!opened.ok()) {
        std::cerr << "  robustness degraded_read open FAILED: "
                  << opened.ToString() << "\n";
        std::filesystem::remove_all(dir);
        continue;
      }
      ResilientReader ram_reader(&store, {"", 3});  // RAM-only fallback

      struct Tier {
        const char* name;
        ResilientReader* reader;
        double wall_ms = 0;
        std::vector<std::vector<RankingId>> results;
      };
      Tier tiers[] = {{"snapshot", &snapshot_reader, 0, {}},
                      {"ram_fallback", &ram_reader, 0, {}}};
      for (Tier& tier : tiers) {
        tier.results.resize(queries.size());
        for (uint32_t rep = 0; rep < kReps; ++rep) {
          const auto start = Clock::now();
          for (size_t i = 0; i < queries.size(); ++i) {
            tier.results[i] = tier.reader->RangeQuery(queries[i], theta_raw);
          }
          const double ms = ElapsedMsSince(start);
          if (rep == 0 || ms < tier.wall_ms) tier.wall_ms = ms;
        }
      }
      const bool exact = tiers[0].results == tiers[1].results;
      for (const Tier& tier : tiers) {
        json->BeginObject();
        json->Key("bench");
        json->String("degraded_read");
        json->Key("dataset");
        json->String(dataset.name);
        json->Key("tier");
        json->String(tier.name);
        json->Key("n");
        json->Uint(store.size());
        json->Key("k");
        json->Uint(kK);
        json->Key("theta");
        json->Double(theta);
        json->Key("queries");
        json->Uint(queries.size());
        json->Key("reps");
        json->Uint(kReps);
        json->Key("exact_match");
        json->Bool(exact);
        json->Key("wall_ms");
        json->Double(tier.wall_ms);
        json->Key("mean_ms_per_query");
        json->Double(tier.wall_ms / static_cast<double>(queries.size()));
        json->EndObject();
        std::cerr << "  robustness degraded_read " << dataset.name << "/"
                  << tier.name << " " << tier.wall_ms << "ms"
                  << (exact ? " exact" : " MISMATCH") << "\n";
      }
    }

    std::filesystem::remove_all(dir);
  }
  json->EndArray();
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_ROBUSTNESS_BENCH_H_
