// Table 5: the cost the auto-tuner leaves on the table — difference in ms
// (per workload) between the coarse index's best measured time across the
// theta_C sweep and its measured time at the model-chosen theta_C; k = 10,
// theta in {0.1, 0.2, 0.3}, both datasets.
//
// Paper shape to reproduce: differences are small (a few ms to a few tens
// of ms per 1000 queries) — the model lands near the sweet spot.

#include <iostream>

#include "bench_util.h"
#include "coarse/coarse_index.h"
#include "costmodel/cost_model.h"
#include "data/dataset_stats.h"
#include "harness/report.h"

namespace topk {
namespace {

double MeasureCoarseTotal(const RankingStore& store,
                          const std::vector<PreparedQuery>& queries,
                          double theta_c, double theta) {
  CoarseOptions options;
  options.theta_c = theta_c;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  const RawDistance theta_raw = RawThreshold(theta, store.k());
  PhaseTimes phases;
  for (const PreparedQuery& query : queries) {
    index.Query(query, theta_raw, nullptr, &phases);
  }
  return phases.total_ms();
}

void RunDataset(const char* name, const RankingStore& store,
                const bench::BenchArgs& args, TextTable* table) {
  const auto queries = bench::MakeBenchWorkload(store, args);
  const CostModelInputs inputs = MeasureCostModelInputs(store, 256);
  const CoarseCostModel model(inputs);
  const auto grid = MakeGrid(0.05, 0.8, 0.05);

  std::vector<std::string> row = {name};
  for (double theta : {0.1, 0.2, 0.3}) {
    double best_ms = 0;
    bool first = true;
    double best_theta_c = 0;
    for (double theta_c : grid) {
      const double ms = MeasureCoarseTotal(store, queries, theta_c, theta);
      if (first || ms < best_ms) {
        best_ms = ms;
        best_theta_c = theta_c;
        first = false;
      }
    }
    const auto tuned = model.Tune(theta, grid);
    const double model_ms =
        MeasureCoarseTotal(store, queries, tuned.best_theta_c, theta);
    row.push_back(FormatDouble(model_ms - best_ms, 2) + " (best@" +
                  FormatDouble(best_theta_c, 2) + ", model@" +
                  FormatDouble(tuned.best_theta_c, 2) + ")");
  }
  table->AddRow(row);
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Table 5: ms gap between measured-best and model-chosen theta_C",
      args);
  TextTable table({"dataset", "theta=0.1", "theta=0.2", "theta=0.3"});
  const RankingStore nyt = bench::MakeNyt(args, 10);
  const RankingStore yago = bench::MakeYago(args, 10);
  RunDataset("NYT-like", nyt, args, &table);
  RunDataset("Yago-like", yago, args, &table);
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
