// Ablation (beyond the paper): what each ingredient of the Section 6.2
// partial-information processing buys — lower-bound pruning, upper-bound
// early acceptance, and the surplus-slot refinement of the lower bound.

#include <iostream>

#include "bench_util.h"
#include "harness/report.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/list_at_a_time.h"

namespace topk {
namespace {

void RunConfig(const char* label, const RankingStore& store,
               const std::vector<PreparedQuery>& queries,
               const LaatOptions& options, double theta, TextTable* table) {
  const AugmentedInvertedIndex index = AugmentedInvertedIndex::Build(store);
  ListAtATimeEngine engine(&index, options);
  const RawDistance theta_raw = RawThreshold(theta, store.k());
  Statistics stats;
  Stopwatch watch;
  for (const PreparedQuery& query : queries) {
    engine.Query(query, theta_raw, &stats);
  }
  table->AddRow(
      {label, FormatDouble(theta, 1), FormatDouble(watch.ElapsedMillis(), 2),
       std::to_string(stats.Get(Ticker::kPrunedByLowerBound)),
       std::to_string(stats.Get(Ticker::kAcceptedByUpperBound)),
       std::to_string(stats.Get(Ticker::kResults))});
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Ablation: List-at-a-Time bound ingredients (NYT-like, k=10)", args);
  const RankingStore store = bench::MakeNyt(args, 10);
  const auto queries = bench::MakeBenchWorkload(store, args);

  TextTable table({"configuration", "theta", "ms", "pruned_lower",
                   "accepted_upper", "results"});
  for (double theta : {0.1, 0.3}) {
    LaatOptions none;
    none.prune_lower_bound = false;
    none.accept_upper_bound = false;
    RunConfig("no bounds (exhaustive)", store, queries, none, theta, &table);

    LaatOptions prune_only;
    prune_only.accept_upper_bound = false;
    RunConfig("prune only", store, queries, prune_only, theta, &table);

    LaatOptions both;
    RunConfig("prune + early accept", store, queries, both, theta, &table);

    LaatOptions refined;
    refined.refined_lower_bound = true;
    RunConfig("prune + accept + refined L", store, queries, refined, theta,
              &table);
  }
  table.Print(std::cout);
  return 0;
}
