// Figure 6: BK-tree vs the plain inverted index (F&V) on the NYT-like
// dataset; same axes as Figure 5. The BK-tree runs in the paper-faithful
// mode (see fig5_metric_trees.cc).
//
// Paper shape to reproduce: the inverted index outperforms the BK-tree —
// the reason metric-only indexing is dismissed and the hybrid coarse
// index exists. At laptop scale the gap is narrower than at the paper's
// 1M-ranking scale (tree query cost grows faster with n than the
// posting-list scans); EXPERIMENTS.md quantifies this.

#include <iostream>

#include "bench_util.h"
#include "harness/report.h"
#include "invidx/filter_validate.h"
#include "metric/bk_tree.h"

namespace topk {
namespace {

constexpr BkTreeOptions kFaithful{/*reuse_duplicate_distances=*/false};

void Sweep(const bench::BenchArgs& args) {
  std::cout << "\n--- left: vary k (theta = 0.1) ---\n";
  TextTable by_k({"k", "BK-tree_s", "F&V_s"});
  for (uint32_t k : {5u, 10u, 15u, 20u, 25u}) {
    const RankingStore store = bench::MakeNyt(args, k);
    const auto queries = bench::MakeBenchWorkload(store, args);
    const BkTree bk = BkTree::BuildAll(&store, nullptr, kFaithful);
    const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
    FilterValidateEngine fv(&store, &index);
    const RawDistance theta_raw = RawThreshold(0.1, k);

    Stopwatch bk_watch;
    for (const auto& query : queries) {
      bk.RangeQuery(query.sorted_view(), theta_raw);
    }
    const double bk_s = bk_watch.ElapsedMillis() / 1000.0;
    Stopwatch fv_watch;
    for (const auto& query : queries) fv.Query(query, theta_raw);
    const double fv_s = fv_watch.ElapsedMillis() / 1000.0;
    by_k.AddRow({std::to_string(k), FormatDouble(bk_s, 3),
                 FormatDouble(fv_s, 3)});
  }
  by_k.Print(std::cout);

  std::cout << "\n--- right: vary theta (k = 10) ---\n";
  TextTable by_theta({"theta", "BK-tree_s", "F&V_s"});
  const RankingStore store = bench::MakeNyt(args, 10);
  const auto queries = bench::MakeBenchWorkload(store, args);
  const BkTree bk = BkTree::BuildAll(&store, nullptr, kFaithful);
  const PlainInvertedIndex index = PlainInvertedIndex::Build(store);
  FilterValidateEngine fv(&store, &index);
  for (double theta : {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}) {
    const RawDistance theta_raw = RawThreshold(theta, 10);
    Stopwatch bk_watch;
    for (const auto& query : queries) {
      bk.RangeQuery(query.sorted_view(), theta_raw);
    }
    const double bk_s = bk_watch.ElapsedMillis() / 1000.0;
    Stopwatch fv_watch;
    for (const auto& query : queries) fv.Query(query, theta_raw);
    const double fv_s = fv_watch.ElapsedMillis() / 1000.0;
    by_theta.AddRow({FormatDouble(theta, 2), FormatDouble(bk_s, 3),
                     FormatDouble(fv_s, 3)});
  }
  by_theta.Print(std::cout);
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (!args.full && args.queries > 200) args.queries = 200;
  bench::PrintHeader("Figure 6: BK-tree vs inverted index (NYT-like)", args);
  Sweep(args);
  return 0;
}
