// Figure 10: number of distance function calls (DFC, in thousands) for
// the filter-and-validate family — F&V, F&V+Drop, Blocked+Prune+Drop,
// Coarse, Coarse+Drop, Minimal F&V — on both datasets, k in {10, 20},
// theta in {0, 0.1, 0.2, 0.3}.
//
// Paper shape to reproduce: F&V pays by far the most; +Drop slashes it on
// the skewed dataset; the coarse variants can even undercut Minimal F&V
// (duplicates inside a partition are never re-validated); on the
// uniform dataset every algorithm performs many more DFC than the tiny
// result sets would need.

#include <iostream>

#include "bench_util.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"

namespace topk {
namespace {

void RunDataset(const char* name, const RankingStore& store10,
                const RankingStore& store20, const bench::BenchArgs& args) {
  const std::vector<Algorithm> algorithms = {
      Algorithm::kFV,         Algorithm::kFVDrop,
      Algorithm::kBlockedPruneDrop, Algorithm::kCoarse,
      Algorithm::kCoarseDrop, Algorithm::kMinimalFV,
  };
  for (const RankingStore* store : {&store10, &store20}) {
    const uint32_t k = store->k();
    std::cout << "\n--- " << name << ", k = " << k
              << " (DFC in thousands per " << args.queries
              << " queries) ---\n";
    const auto queries = bench::MakeBenchWorkload(*store, args);
    EngineSuite suite(store);
    TextTable table({"algorithm", "theta=0", "theta=0.1", "theta=0.2",
                     "theta=0.3"});
    for (Algorithm algorithm : algorithms) {
      std::vector<std::string> row = {AlgorithmName(algorithm)};
      for (double theta : {0.0, 0.1, 0.2, 0.3}) {
        const RawDistance theta_raw = RawThreshold(theta, k);
        auto engine = algorithm == Algorithm::kMinimalFV
                          ? suite.MakeOracleEngine(queries, theta_raw)
                          : suite.MakeEngine(algorithm);
        const RunResult result =
            RunQueries(engine.get(), queries, theta_raw);
        row.push_back(FormatDouble(
            static_cast<double>(result.stats.Get(Ticker::kDistanceCalls)) /
                1000.0,
            1));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Figure 10: distance function calls", args);
  {
    const RankingStore nyt10 = bench::MakeNyt(args, 10);
    const RankingStore nyt20 = bench::MakeNyt(args, 20);
    RunDataset("NYT-like", nyt10, nyt20, args);
  }
  {
    const RankingStore yago10 = bench::MakeYago(args, 10);
    const RankingStore yago20 = bench::MakeYago(args, 20);
    RunDataset("Yago-like", yago10, yago20, args);
  }
  return 0;
}
