// bench_serving: online serving layer study — cached vs cold throughput.
//
// Sweeps the workload's re-issue fraction (the new Zipf repeat knob)
// against thread counts, serving the same stream three ways through the
// QueryFrontend:
//
//   uncached  caches disabled (capacity 0): the inter-query-parallel
//             baseline, every query runs its engine.
//   first     caches enabled, starting empty: the *online* hit rate —
//             within-stream re-issues already hit.
//   warm      the same stream again over the populated caches: the
//             steady-state ceiling for a repeating workload.
//
// Every row cross-checks the result multiset hash against the sequential
// single-threaded runner — a cache that changes answers is a bug, not a
// speedup. A second section ablates the two cache layers at a fixed
// repeat fraction.
//
//   build/bench/bench_serving                   # laptop scale
//   build/bench/bench_serving --out=serve.json  # also emit JSON rows
//
// Shares --nyt-n=/--queries=/--seed= with the other benches.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "json_writer.h"
#include "serve/frontend.h"

namespace topk {
namespace {

// The sweep serves the paper's hybrid (Coarse); the ablation serves the
// union-validating engines the candidate cache is scoped to (for F&V the
// memoized union equals its own validation set — the layer saves the
// filter scan; for LinearScan it also cuts distance calls to the union).
constexpr Algorithm kSweepAlgorithm = Algorithm::kCoarse;
constexpr Algorithm kAblationAlgorithms[] = {Algorithm::kFV,
                                             Algorithm::kLinearScan};

struct PassRow {
  const char* section;
  Algorithm algorithm;
  double repeat_fraction;
  size_t threads;
  const char* config;  // cache configuration
  const char* pass;    // uncached / first / warm
  const RunResult* run;
  double speedup_vs_uncached;
  bool exact;
};

struct JsonSink {
  bench::JsonWriter* json = nullptr;  // null: table-only run

  void Row(const PassRow& row) {
    if (json == nullptr) return;
    const Statistics& stats = row.run->stats;
    json->BeginObject();
    json->Key("section");
    json->String(row.section);
    json->Key("algorithm");
    json->String(AlgorithmName(row.algorithm));
    json->Key("repeat_fraction");
    json->Double(row.repeat_fraction);
    json->Key("threads");
    json->Uint(row.threads);
    json->Key("config");
    json->String(row.config);
    json->Key("pass");
    json->String(row.pass);
    json->Key("wall_ms");
    json->Double(row.run->wall_ms);
    json->Key("mean_ms_per_query");
    json->Double(row.run->mean_ms_per_query());
    json->Key("p99_ms");
    json->Double(row.run->p99_ms);
    json->Key("qps");
    json->Double(row.run->wall_ms > 0 ? 1000.0 *
                                            static_cast<double>(
                                                row.run->num_queries) /
                                            row.run->wall_ms
                                      : 0);
    json->Key("result_cache_hits");
    json->Uint(stats.Get(Ticker::kResultCacheHits));
    json->Key("result_cache_misses");
    json->Uint(stats.Get(Ticker::kResultCacheMisses));
    json->Key("result_cache_evictions");
    json->Uint(stats.Get(Ticker::kResultCacheEvictions));
    json->Key("candidate_cache_hits");
    json->Uint(stats.Get(Ticker::kCandidateCacheHits));
    json->Key("candidate_cache_misses");
    json->Uint(stats.Get(Ticker::kCandidateCacheMisses));
    json->Key("distance_calls");
    json->Uint(stats.Get(Ticker::kDistanceCalls));
    json->Key("speedup_vs_uncached");
    json->Double(row.speedup_vs_uncached);
    json->Key("exact_match");
    json->Bool(row.exact);
    json->EndObject();
  }
};

double HitRate(const RunResult& run) {
  return run.num_queries == 0
             ? 0
             : static_cast<double>(
                   run.stats.Get(Ticker::kResultCacheHits)) /
                   static_cast<double>(run.num_queries);
}

void RunRepeatSweep(const RankingStore& store, const bench::BenchArgs& args,
                    RawDistance theta_raw, JsonSink* sink) {
  PrintBanner(std::cout,
              "Repeat-fraction x threads sweep (Coarse, theta=0.3)");
  TextTable table({"repeat", "threads", "pass", "wall_ms", "mean_ms",
                   "hit_rate", "speedup", "exact"});

  // Sequential single-threaded reference for the exactness checksum.
  EngineSuite suite(&store);
  auto engine = suite.MakeEngine(kSweepAlgorithm);

  for (const double repeat_fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    WorkloadOptions wopts;
    wopts.num_queries = args.queries;
    wopts.perturbed_fraction = 0.8;
    wopts.seed = args.seed + 77;
    wopts.repeat_fraction = repeat_fraction;
    wopts.repeat_zipf_s = 1.0;
    const auto queries = MakeWorkload(store, wopts);
    const RunResult sequential = RunQueries(engine.get(), queries, theta_raw);

    for (const size_t threads : {1u, 2u, 4u}) {
      QueryFrontendOptions off;
      off.num_threads = threads;
      off.result_cache_capacity = 0;
      off.candidate_cache_capacity = 0;
      QueryFrontend uncached(&store, off);
      uncached.Prepare(kSweepAlgorithm);  // index build before timed pass
      const RunResult cold = uncached.ServeWorkload(kSweepAlgorithm,
                                                    queries, theta_raw);

      QueryFrontendOptions on;
      on.num_threads = threads;
      QueryFrontend cached(&store, on);
      cached.Prepare(kSweepAlgorithm);
      const RunResult first = cached.ServeWorkload(kSweepAlgorithm, queries,
                                                   theta_raw);
      const RunResult warm = cached.ServeWorkload(kSweepAlgorithm, queries,
                                                  theta_raw);

      const auto exact = [&](const RunResult& run) {
        return run.result_hash == sequential.result_hash &&
               run.total_results == sequential.total_results;
      };
      const PassRow rows[] = {
          {"repeat_sweep", kSweepAlgorithm, repeat_fraction, threads, "off",
           "uncached", &cold, 1.0, exact(cold)},
          {"repeat_sweep", kSweepAlgorithm, repeat_fraction, threads, "on",
           "first", &first,
           first.wall_ms > 0 ? cold.wall_ms / first.wall_ms : 0,
           exact(first)},
          {"repeat_sweep", kSweepAlgorithm, repeat_fraction, threads, "on",
           "warm", &warm,
           warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0, exact(warm)},
      };
      for (const PassRow& row : rows) {
        table.AddRow({FormatDouble(repeat_fraction), std::to_string(threads),
                      row.pass, FormatDouble(row.run->wall_ms),
                      FormatDouble(row.run->mean_ms_per_query(), 4),
                      FormatDouble(HitRate(*row.run)),
                      FormatDouble(row.speedup_vs_uncached),
                      row.exact ? "yes" : "NO"});
        sink->Row(row);
      }
    }
  }
  table.Print(std::cout);
}

void RunCacheAblation(const RankingStore& store, const bench::BenchArgs& args,
                      RawDistance theta_raw, JsonSink* sink) {
  PrintBanner(std::cout,
              "Cache-layer ablation (repeat=0.5, 2 threads, first pass)");
  TextTable table({"algorithm", "config", "wall_ms", "result_hits",
                   "candidate_hits", "distance_calls", "speedup", "exact"});

  WorkloadOptions wopts;
  wopts.num_queries = args.queries;
  wopts.perturbed_fraction = 0.8;
  wopts.seed = args.seed + 77;
  wopts.repeat_fraction = 0.5;
  const auto queries = MakeWorkload(store, wopts);

  struct Config {
    const char* name;
    size_t result_capacity;
    size_t candidate_capacity;
  };
  const Config configs[] = {
      {"none", 0, 0},
      {"result_only", 64 * 1024, 0},
      {"candidate_only", 0, 16 * 1024},
      {"both", 64 * 1024, 16 * 1024},
  };
  EngineSuite suite(&store);
  for (const Algorithm algorithm : kAblationAlgorithms) {
    auto engine = suite.MakeEngine(algorithm);
    const RunResult sequential = RunQueries(engine.get(), queries, theta_raw);
    double baseline_ms = 0;
    bool have_baseline = false;
    for (const Config& config : configs) {
      QueryFrontendOptions options;
      options.num_threads = 2;
      options.result_cache_capacity = config.result_capacity;
      options.candidate_cache_capacity = config.candidate_capacity;
      QueryFrontend frontend(&store, options);
      frontend.Prepare(algorithm);
      const RunResult run =
          frontend.ServeWorkload(algorithm, queries, theta_raw);
      if (!have_baseline) {  // first config ("none") is the baseline
        baseline_ms = run.wall_ms;
        have_baseline = true;
      }
      const bool exact = run.result_hash == sequential.result_hash &&
                         run.total_results == sequential.total_results;
      const double speedup = run.wall_ms > 0 ? baseline_ms / run.wall_ms : 0;
      table.AddRow(
          {AlgorithmName(algorithm), config.name, FormatDouble(run.wall_ms),
           std::to_string(run.stats.Get(Ticker::kResultCacheHits)),
           std::to_string(run.stats.Get(Ticker::kCandidateCacheHits)),
           std::to_string(run.stats.Get(Ticker::kDistanceCalls)),
           FormatDouble(speedup), exact ? "yes" : "NO"});
      sink->Row(PassRow{"cache_ablation", algorithm, 0.5, 2, config.name,
                        "first", &run, speedup, exact});
    }
  }
  table.Print(std::cout);
}

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Online serving layer (frontend + caches)", args);
  std::cout << "# hardware_concurrency="
            << std::thread::hardware_concurrency() << "\n";

  const RankingStore store = bench::MakeNyt(args, 10);
  const RawDistance theta_raw = RawThreshold(0.3, store.k());

  std::ofstream out;
  std::optional<bench::JsonWriter> json;
  JsonSink sink;
  if (!out_path.empty()) {
    out.open(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    json.emplace(&out);
    json->BeginObject();
    json->Key("schema_version");
    json->Uint(1);
    json->Key("hardware_concurrency");
    json->Uint(std::thread::hardware_concurrency());
    json->Key("rows");
    json->BeginArray();
    sink.json = &*json;
  }

  RunRepeatSweep(store, args, theta_raw, &sink);
  RunCacheAblation(store, args, theta_raw, &sink);

  if (sink.json != nullptr) {
    json->EndArray();
    json->EndObject();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
