// bench_kernel: standalone micro-benchmark of the src/kernel/ layer.
//
// Prints the same `kernel` section bench_baseline embeds into
// BENCH_baseline.json (naive vs merge vs batched Footrule validation;
// per-item vector lists vs the CSR posting arena), as its own JSON
// document (default BENCH_kernel.json, override with --out=). Useful for
// iterating on kernel changes without re-running the full baseline.

#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "json_writer.h"
#include "kernel_bench.h"

namespace topk {
namespace {

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Kernel micro-benchmark (JSON)", args);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Uint(1);
  bench::EmitKernelSection(&json, args);
  bench::EmitSimdSection(&json, args);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
