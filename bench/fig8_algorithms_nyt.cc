// Figure 8: all-algorithm comparison on the NYT-like dataset, k in
// {10, 20}, theta in {0, 0.1, 0.2, 0.3}; Coarse at theta_C = 0.5,
// Coarse+Drop at theta_C = 0.06 (the paper's settings).
//
// Paper shape to reproduce: Coarse+Drop wins by a wide margin over
// AdaptSearch; Coarse beats Minimal F&V at larger theta thanks to fewer
// Footrule calls; the threshold-agnostic baselines (F&V, ListMerge) are
// flat and slow; everything else degrades as theta grows.

#include "algo_comparison.h"

int main(int argc, char** argv) {
  using namespace topk;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Figure 8: algorithm comparison (NYT-like)", args);
  const RankingStore store10 = bench::MakeNyt(args, 10);
  const RankingStore store20 = bench::MakeNyt(args, 20);
  bench::RunAlgorithmComparison(args, store10, store20);
  return 0;
}
