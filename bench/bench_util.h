// Shared scaffolding for the experiment benches: command-line scaling
// knobs, the two paper-shaped datasets, and workload construction.
//
// Every bench runs at laptop scale by default and prints its exact
// parameters; pass --full for paper-scale collection sizes, or override
// individual knobs (--nyt-n=, --yago-n=, --queries=, --seed=).

#ifndef TOPK_BENCH_BENCH_UTIL_H_
#define TOPK_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/workload.h"

namespace topk {
namespace bench {

struct BenchArgs {
  uint32_t nyt_n = 40000;
  uint32_t yago_n = 25000;
  size_t queries = 300;
  uint64_t seed = 1;
  bool full = false;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&arg](const char* prefix) -> const char* {
        const size_t len = std::strlen(prefix);
        return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = value("--nyt-n=")) {
        args.nyt_n = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      } else if (const char* v = value("--yago-n=")) {
        args.yago_n = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      } else if (const char* v = value("--queries=")) {
        args.queries = std::strtoul(v, nullptr, 10);
      } else if (const char* v = value("--seed=")) {
        args.seed = std::strtoull(v, nullptr, 10);
      } else if (arg == "--full") {
        args.full = true;
        args.nyt_n = 1000000;
        args.yago_n = 25000;
        args.queries = 1000;
      }
    }
    return args;
  }
};

inline RankingStore MakeNyt(const BenchArgs& args, uint32_t k) {
  return Generate(NytLikeOptions(args.nyt_n, k, args.seed));
}

inline RankingStore MakeYago(const BenchArgs& args, uint32_t k) {
  return Generate(YagoLikeOptions(args.yago_n, k, args.seed + 1));
}

inline std::vector<PreparedQuery> MakeBenchWorkload(const RankingStore& store,
                                                    const BenchArgs& args) {
  WorkloadOptions options;
  options.num_queries = args.queries;
  options.perturbed_fraction = 0.7;
  options.seed = args.seed + 99;
  return MakeWorkload(store, options);
}

inline void PrintHeader(const char* title, const BenchArgs& args) {
  std::cout << "##### " << title << " #####\n"
            << "# datasets: NYT-like n=" << args.nyt_n
            << ", Yago-like n=" << args.yago_n
            << "; queries=" << args.queries << "; seed=" << args.seed
            << "\n# paper: EDBT 2015, 10.5441/002/edbt.2015.23\n";
}

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_BENCH_UTIL_H_
