// bench_robustness: what the fault-tolerance machinery costs when
// nothing is failing.
//
// Prints the `robustness` section (deadline/cancellation plumbing
// overhead on the healthy path, snapshot-tier vs degraded-RAM serving
// latency, and the crash-safe snapshot lifecycle write/recovery cost)
// as its own JSON document (default BENCH_robustness.json, override
// with --out=). The committed artifact is the trajectory CI diffs
// against via scripts/compare_benchmarks.py.

#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "json_writer.h"
#include "robustness_bench.h"

namespace topk {
namespace {

int Run(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  bench::PrintHeader("Robustness overhead benchmark (JSON)", args);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Uint(1);
  bench::EmitRobustnessSection(&json, args);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) { return topk::Run(argc, argv); }
