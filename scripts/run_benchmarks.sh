#!/usr/bin/env bash
# Builds (Release) and runs the bench_baseline binary, emitting the
# machine-readable benchmark baseline every perf PR measures against,
# then the bench_parallel scaling study (BENCH_parallel.json next to it),
# the bench_serving cache study (BENCH_serving.json), the
# bench_mutability write-path study (BENCH_mutability.json), and the
# bench_storage compressed-tier study (BENCH_storage.json), and the
# bench_robustness fault-tolerance overhead study
# (BENCH_robustness.json). Each fresh
# artifact is diffed against the committed copy (HEAD) via
# scripts/compare_benchmarks.py, so a run prints its own perf trajectory.
#
# Usage:
#   scripts/run_benchmarks.sh                 # CI-scale run -> BENCH_baseline.json
#                                             # + BENCH_parallel.json + BENCH_serving.json
#                                             # + BENCH_mutability.json + BENCH_storage.json
#   scripts/run_benchmarks.sh --full          # paper-scale collection sizes
#   OUT=my.json BUILD_DIR=build-rel scripts/run_benchmarks.sh --queries=500
#   PARALLEL_OUT= scripts/run_benchmarks.sh   # skip the parallel study
#   SERVING_OUT= scripts/run_benchmarks.sh    # skip the serving study
#   MUTABILITY_OUT= scripts/run_benchmarks.sh # skip the mutability study
#   STORAGE_OUT= scripts/run_benchmarks.sh    # skip the storage study
#   ROBUSTNESS_OUT= scripts/run_benchmarks.sh # skip the robustness study
#   MARCH=x86-64-v3 scripts/run_benchmarks.sh # compile the bench build for
#                                             # that -march so the TOPK_SIMD
#                                             # kernel paths dispatch to a
#                                             # real vector ISA (the default
#                                             # x86-64 target stops at SSE2 =
#                                             # scalar). Sticky per BUILD_DIR:
#                                             # the flag is cached by CMake,
#                                             # so changing MARCH later means
#                                             # passing it again (or wiping
#                                             # the build dir).
#
# Extra arguments are forwarded to all binaries (see bench/bench_util.h
# for the knobs); explicit --nyt-n=/--yago-n=/--queries= override the
# CI-scale defaults below.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_baseline.json}
PARALLEL_OUT=${PARALLEL_OUT-BENCH_parallel.json}
SERVING_OUT=${SERVING_OUT-BENCH_serving.json}
MUTABILITY_OUT=${MUTABILITY_OUT-BENCH_mutability.json}
STORAGE_OUT=${STORAGE_OUT-BENCH_storage.json}
ROBUSTNESS_OUT=${ROBUSTNESS_OUT-BENCH_robustness.json}

# Prints per-section deltas of a fresh artifact against the copy
# committed at HEAD (informational; skipped when python3/git/the
# committed copy are unavailable, or with COMPARE=0 — CI sets that and
# runs the comparison as its own visible step instead).
COMPARE=${COMPARE:-1}
compare_against_committed() {
  local committed_name=$1 fresh=$2
  [[ "$COMPARE" == "1" ]] || return 0
  command -v python3 >/dev/null 2>&1 || return 0
  command -v git >/dev/null 2>&1 || return 0
  local committed_tmp
  committed_tmp=$(mktemp)
  if git show "HEAD:${committed_name}" >"$committed_tmp" 2>/dev/null; then
    echo "--- ${committed_name}: deltas vs committed (HEAD) ---"
    python3 scripts/compare_benchmarks.py "$committed_tmp" "$fresh" || true
  fi
  rm -f "$committed_tmp"
}

# CI-scale defaults: a few minutes on one core. Dropped when the caller
# provides their own scaling knobs (or --full).
DEFAULT_ARGS=(--nyt-n=6000 --yago-n=4000 --queries=100)
for arg in "$@"; do
  case "$arg" in
    --nyt-n=*|--yago-n=*|--queries=*|--full) DEFAULT_ARGS=() ;;
    --out=*) OUT=${arg#--out=} ;;
  esac
done

# -DTOPK_SANITIZE= clears any sanitizer cached in an existing build dir:
# an instrumented binary would record 5-10x inflated latencies as the
# baseline.
MARCH=${MARCH:-}
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DTOPK_SANITIZE= \
  ${MARCH:+"-DCMAKE_CXX_FLAGS=-march=$MARCH"}
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_baseline bench_parallel bench_serving bench_mutability \
  bench_storage bench_robustness

# ${arr[@]+...} keeps the empty-array expansion safe under set -u on
# bash < 4.4 (macOS ships 3.2).
"$BUILD_DIR/bench/bench_baseline" \
  ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$OUT"
echo "baseline written to $OUT"
compare_against_committed BENCH_baseline.json "$OUT"

if [[ -n "$PARALLEL_OUT" ]]; then
  "$BUILD_DIR/bench/bench_parallel" \
    ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$PARALLEL_OUT"
  echo "parallel scaling written to $PARALLEL_OUT"
  compare_against_committed BENCH_parallel.json "$PARALLEL_OUT"
fi

if [[ -n "$SERVING_OUT" ]]; then
  "$BUILD_DIR/bench/bench_serving" \
    ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$SERVING_OUT"
  echo "serving study written to $SERVING_OUT"
  compare_against_committed BENCH_serving.json "$SERVING_OUT"
fi

if [[ -n "$MUTABILITY_OUT" ]]; then
  "$BUILD_DIR/bench/bench_mutability" \
    ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$MUTABILITY_OUT"
  echo "mutability study written to $MUTABILITY_OUT"
  compare_against_committed BENCH_mutability.json "$MUTABILITY_OUT"
fi

if [[ -n "$STORAGE_OUT" ]]; then
  "$BUILD_DIR/bench/bench_storage" \
    ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$STORAGE_OUT"
  echo "storage study written to $STORAGE_OUT"
  compare_against_committed BENCH_storage.json "$STORAGE_OUT"
fi

if [[ -n "$ROBUSTNESS_OUT" ]]; then
  "$BUILD_DIR/bench/bench_robustness" \
    ${DEFAULT_ARGS[@]+"${DEFAULT_ARGS[@]}"} "$@" --out="$ROBUSTNESS_OUT"
  echo "robustness study written to $ROBUSTNESS_OUT"
  compare_against_committed BENCH_robustness.json "$ROBUSTNESS_OUT"
fi
