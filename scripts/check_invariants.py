#!/usr/bin/env python3
"""Repo invariant linter: contracts clang-tidy and -Wthread-safety can't see.

Checks (each is a named rule; any violation exits non-zero):

  epoch-zero      Epoch 0 is reserved ("never published"): every epoch
                  stamp defaults to 0 so a live generation may never BE 0,
                  or stale slots would read as current. Concretely: each
                  `++epoch_` bump must be followed by the wrap guard that
                  restarts at 1 within a few lines, and `epoch_ = 0` may
                  appear only as a declaration initializer.
  raw-std-sync    std::mutex / lock_guard / unique_lock / scoped_lock /
                  condition_variable are banned outside src/core/mutex.h —
                  raw std locking is invisible to the Clang thread-safety
                  analysis, so it silently re-opens the holes the
                  annotations close. Use topk::Mutex / MutexLock / CondVar.
  naked-alloc     No naked `new` / malloc-family calls: every container in
                  the tree owns through std containers or the posting
                  arenas (kernel/filter_validate CSR arena). A raw
                  allocation is either a leak risk or an arena bypass.
  bench-schema    Checked-in BENCH_*.json baselines carry the sections
                  scripts/compare_benchmarks.py gates on; a section
                  silently dropped from a baseline would turn the CI
                  regression gate into a no-op.
  kernel-layering src/kernel/*.h may include only core/*, kernel/*, and
                  the two leaf invidx headers (drop_policy.h,
                  visited_set.h). Kernels are the bottom layer; an engine
                  include would invert the dependency stack.
  decode-noalloc  Decode* function bodies in src/storage/ may not allocate
                  (push_back / resize / new / malloc-family): decode runs
                  in the per-block query hot loop against caller-owned
                  scratch, and a hidden allocation there is a per-query
                  heap churn regression the benches would only catch
                  later. Deliberate scratch setup is exempted line-by-line
                  with an `// alloc-ok: <why>` marker. Covers the SIMD
                  kernels too: any column-0 definition whose name contains
                  Decode (GroupVarintDecodeGroup, DecodeValuesSimd) or the
                  DeltaPrefixSum variants.
  block-skip-guard Skip-metadata readers in src/storage/ (DecodeSelected-
                  Blocks and the *InRange / *InRankWindow sweeps) must
                  discard a block on metadata alone — a guard `continue`
                  before the first BlockBytes() call — so a skipped
                  block's payload byte range is never computed, never
                  read. A reader that touches payload bytes before the
                  skip decision silently faults in mmap-cold pages the
                  sweep promised to leave on disk.
  generation-bump every live-store mutation entry point (Insert / Delete /
                  InstallMergedLocked in src/mutate/ and the sharded
                  router) must bump the store generation via
                  BumpGenerationLocked, or carry an explicit
                  `generation: delegated` marker comment naming who bumps
                  instead. A mutation that skips the bump leaves serve-layer
                  caches answering from a world that no longer exists.
  syscall-status  In src/storage/ and src/io/, a fallible syscall whose
                  result is discarded (the call IS the statement: `fsync(fd);`
                  rather than `if (fsync(fd) != 0) ...`) silently converts an
                  I/O failure into corruption discovered much later — the
                  exact bug class the crash-safe snapshot protocol exists to
                  prevent. Every such call must check its result and carry
                  the errno into a Status (Status::IOErrorFromErrno), or mark
                  a deliberate best-effort discard with
                  `// syscall-ok: <why>`.

Run from anywhere: paths resolve relative to the repo root (parent of this
script's directory). `--self-test` feeds each rule a synthetic violation
and fails if any rule does not fire.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# epoch-zero ----------------------------------------------------------------

# A bump must reach its `epoch_ = 1` wrap reset within this many lines.
EPOCH_WRAP_WINDOW = 5
EPOCH_BUMP_RE = re.compile(r"\+\+\s*epoch_|epoch_\s*\+\+|epoch_\s*\+=\s*1")
EPOCH_RESET_RE = re.compile(r"epoch_\s*=\s*1\b")
EPOCH_ZERO_ASSIGN_RE = re.compile(r"\bepoch_\s*=\s*0\b")
# `uint32_t epoch_ = 0;` (a declaration initializer) is the one legal spelling.
EPOCH_ZERO_DECL_RE = re.compile(
    r"\b(?:uint\d+_t|size_t|int|long|unsigned)\s+epoch_\s*=\s*0\b")

# raw-std-sync --------------------------------------------------------------

STD_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b")
STD_SYNC_ALLOWED = {"src/core/mutex.h"}

# naked-alloc ---------------------------------------------------------------

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # `new T`, `new T[n]` — placement new is also banned
    r"|\bnew\s*\("       # ...spelled separately so both report
    r"|\b(?:malloc|calloc|realloc|free)\s*\(")
ALLOC_ALLOWED: set[str] = set()  # arenas use std::vector storage today

# bench-schema --------------------------------------------------------------

BENCH_REQUIRED_SECTIONS = {
    "BENCH_baseline.json": [
        "schema_version", "meta", "footrule_kernel", "kernel", "simd",
        "index_build", "query_latency", "parallel_scaling", "mutability",
        "storage",
    ],
    "BENCH_parallel.json": ["schema_version", "hardware_concurrency", "rows"],
    "BENCH_serving.json": ["schema_version", "hardware_concurrency", "rows"],
    "BENCH_mutability.json": ["schema_version", "mutability"],
    "BENCH_storage.json": ["schema_version", "storage"],
    "BENCH_robustness.json": ["schema_version", "robustness"],
}

# generation-bump -----------------------------------------------------------

# Files holding live-store mutation entry points. Every matching method
# definition must either bump the generation (BumpGenerationLocked) or
# carry the `generation: delegated` marker comment saying who bumps.
GENERATION_FILE_PREFIXES = ("src/mutate/",
                            "src/harness/sharded_mutable_store")
GENERATION_ENTRY_RE = re.compile(
    r"\b\w+::(Insert|Delete|InstallMergedLocked)\s*\(")
GENERATION_BUMP_RE = re.compile(r"\bBumpGenerationLocked\s*\(")
GENERATION_DELEGATED_MARKER = "generation: delegated"

# decode-noalloc ------------------------------------------------------------

# A decode-kernel definition starts at column 0 (calls sit indented; the
# tree is clang-formatted, so definitions never are). The name test is
# substring-based so GroupVarintDecodeGroup and the SIMD bodies
# (DecodeValuesSimd, DeltaPrefixSumInPlace) are covered alongside the
# plain Decode* entry points.
DECODE_DEF_RE = re.compile(r"^[^\s/].*\b(?:\w*Decode\w*|DeltaPrefixSum\w*)\s*\(")
DECODE_ALLOC_RE = re.compile(
    r"\b(?:push_back|emplace_back|emplace|resize|reserve|insert|assign)\s*\("
    r"|\bnew\b|\b(?:malloc|calloc|realloc)\s*\(")
DECODE_ALLOC_OK_MARKER = "alloc-ok:"

# block-skip-guard -----------------------------------------------------------

# Skip-metadata reader definitions: the block-selective sweeps over a
# compressed arena. Same column-0 convention as DECODE_DEF_RE.
SKIP_READER_DEF_RE = re.compile(
    r"^[^\s/].*\b\w*(?:SelectedBlocks|InRange|InRankWindow)\s*\(")
BLOCK_BYTES_RE = re.compile(r"\bBlockBytes\s*\(")
SKIP_CONTINUE_RE = re.compile(r"\bcontinue\s*;")

# syscall-status ------------------------------------------------------------

# Directories where unchecked fallible syscalls are banned (persistence
# code: a swallowed I/O error here IS data loss).
SYSCALL_DIR_PREFIXES = ("src/storage/", "src/io/")
# The fallible calls the persistence layer actually uses. Infallible or
# can't-meaningfully-fail calls (getpid, strerror) are deliberately absent.
SYSCALL_NAMES = (
    "open", "close", "fopen", "fclose", "fflush", "fwrite", "fread",
    "fputs", "fseek", "ftell", "fsync", "fdatasync", "rename", "remove",
    "unlink", "ftruncate", "mmap", "munmap", "msync", "madvise", "fstat",
)
# Statement-position call: the (optionally ::/std::-qualified, optionally
# (void)-cast) syscall is the first token of the statement, so its return
# value cannot be feeding any check.
SYSCALL_STMT_RE = re.compile(
    r"^\s*(?:\(void\)\s*)?(?:::|std::)?(" + "|".join(SYSCALL_NAMES) +
    r")\s*\(")
SYSCALL_OK_MARKER = "syscall-ok:"

# kernel-layering -----------------------------------------------------------

LOCAL_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
KERNEL_ALLOWED_INCLUDE_PREFIXES = ("core/", "kernel/")
KERNEL_ALLOWED_INCLUDE_EXACT = {
    "invidx/drop_policy.h",  # leaf enum, no engine deps
    "invidx/visited_set.h",  # leaf epoch-stamped bitset, no engine deps
}


def strip_comments_and_strings(line: str) -> str:
    """Blanks string/char literals and drops a trailing // comment.

    Line-local (block comments spanning lines are not handled); good
    enough for this tree, which clang-format keeps free of mid-line /*.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Failure:
    def __init__(self, rule: str, where: str, message: str):
        self.rule, self.where, self.message = rule, where, message

    def __str__(self) -> str:
        return f"{self.where}: [{self.rule}] {self.message}"


def source_files() -> list[Path]:
    return sorted(p for p in SRC.rglob("*") if p.suffix in (".h", ".cc"))


def check_epoch_zero(path: Path, lines: list[str]) -> list[Failure]:
    failures = []
    rel = path.relative_to(REPO_ROOT).as_posix()
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if EPOCH_BUMP_RE.search(line):
            window = [strip_comments_and_strings(l)
                      for l in lines[i:i + 1 + EPOCH_WRAP_WINDOW]]
            if not any(EPOCH_RESET_RE.search(l) for l in window):
                failures.append(Failure(
                    "epoch-zero", f"{rel}:{i + 1}",
                    "epoch bump without the wrap guard restarting at 1 "
                    f"within {EPOCH_WRAP_WINDOW} lines — a wrapped counter "
                    "would publish the reserved epoch 0"))
        if EPOCH_ZERO_ASSIGN_RE.search(line) and not EPOCH_ZERO_DECL_RE.search(line):
            failures.append(Failure(
                "epoch-zero", f"{rel}:{i + 1}",
                "`epoch_ = 0` outside a declaration initializer publishes "
                "the reserved epoch"))
    return failures


def check_raw_std_sync(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if rel in STD_SYNC_ALLOWED:
        return []
    failures = []
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        match = STD_SYNC_RE.search(line)
        if match:
            failures.append(Failure(
                "raw-std-sync", f"{rel}:{i + 1}",
                f"{match.group(0)} is invisible to -Wthread-safety; use the "
                "annotated wrappers in core/mutex.h"))
    return failures


def check_naked_alloc(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if rel in ALLOC_ALLOWED:
        return []
    failures = []
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if line.lstrip().startswith("#"):
            continue  # preprocessor: `#include <new>` is not an allocation
        match = ALLOC_RE.search(line)
        if match:
            failures.append(Failure(
                "naked-alloc", f"{rel}:{i + 1}",
                f"naked allocation ({match.group(0).strip()}) — own through "
                "std containers or the posting arenas"))
    return failures


def check_bench_schema() -> list[Failure]:
    failures = []
    for name, required in BENCH_REQUIRED_SECTIONS.items():
        path = REPO_ROOT / name
        if not path.exists():
            failures.append(Failure(
                "bench-schema", name, "baseline file missing"))
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            failures.append(Failure("bench-schema", name, f"unreadable: {err}"))
            continue
        for section in required:
            if section not in data:
                failures.append(Failure(
                    "bench-schema", name,
                    f"missing section '{section}' — compare_benchmarks.py "
                    "would silently stop gating it"))
    return failures


def check_generation_bump(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if not rel.startswith(GENERATION_FILE_PREFIXES) or path.suffix != ".cc":
        return []
    failures = []
    i, n = 0, len(lines)
    while i < n:
        match = GENERATION_ENTRY_RE.search(
            strip_comments_and_strings(lines[i]))
        if not match:
            i += 1
            continue
        # Walk the definition body by brace balance. The delegated marker
        # is a comment, so it is checked against the raw line; it may also
        # sit in the comment block directly above the signature.
        name, start = match.group(1), i
        depth, seen_open = 0, False
        satisfied = any(GENERATION_DELEGATED_MARKER in l
                        for l in lines[max(0, start - 3):start])
        while i < n:
            code = strip_comments_and_strings(lines[i])
            if (GENERATION_BUMP_RE.search(code)
                    or GENERATION_DELEGATED_MARKER in lines[i]):
                satisfied = True
            depth += code.count("{") - code.count("}")
            seen_open = seen_open or "{" in code
            if seen_open and depth <= 0:
                break
            i += 1
        if not satisfied:
            failures.append(Failure(
                "generation-bump", f"{rel}:{start + 1}",
                f"mutation entry point {name}() neither calls "
                "BumpGenerationLocked nor carries a "
                f"'{GENERATION_DELEGATED_MARKER}' marker — serve-layer "
                "caches would keep answering from the pre-mutation world"))
        i += 1
    return failures


def check_decode_noalloc(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if not rel.startswith("src/storage/"):
        return []
    failures = []
    i, n = 0, len(lines)
    while i < n:
        if not DECODE_DEF_RE.match(strip_comments_and_strings(lines[i])):
            i += 1
            continue
        # Walk the definition body by brace balance; the signature may
        # span lines before the opening brace.
        start = i
        depth, seen_open = 0, False
        while i < n:
            code = strip_comments_and_strings(lines[i])
            if (seen_open and DECODE_ALLOC_RE.search(code)
                    and DECODE_ALLOC_OK_MARKER not in lines[i]):
                failures.append(Failure(
                    "decode-noalloc", f"{rel}:{i + 1}",
                    "allocation inside a Decode* body (started at line "
                    f"{start + 1}) — decode runs in the per-block query hot "
                    "loop; mark deliberate scratch setup with "
                    f"'// {DECODE_ALLOC_OK_MARKER} <why>'"))
            depth += code.count("{") - code.count("}")
            seen_open = seen_open or "{" in code
            if seen_open and depth <= 0:
                break
            if not seen_open and ";" in code:
                break  # declaration, not a definition
            i += 1
        i += 1
    return failures


def check_block_skip_guard(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if not rel.startswith("src/storage/"):
        return []
    failures = []
    i, n = 0, len(lines)
    while i < n:
        if not SKIP_READER_DEF_RE.match(strip_comments_and_strings(lines[i])):
            i += 1
            continue
        # Walk the definition body by brace balance. The first BlockBytes
        # call must come after a metadata-guard `continue` — otherwise the
        # reader computed a payload byte range for a block it might still
        # skip. Delegating wrappers (no BlockBytes at all) pass trivially.
        start = i
        depth, seen_open, seen_continue = 0, False, False
        while i < n:
            code = strip_comments_and_strings(lines[i])
            if seen_open and SKIP_CONTINUE_RE.search(code):
                seen_continue = True
            if seen_open and BLOCK_BYTES_RE.search(code):
                if not seen_continue:
                    failures.append(Failure(
                        "block-skip-guard", f"{rel}:{i + 1}",
                        "BlockBytes() reached before the metadata-guard "
                        "`continue` in a skip-metadata reader (definition "
                        f"at line {start + 1}) — a skipped block's payload "
                        "bytes must never be touched"))
                break  # first BlockBytes decides; rest of body is fine
            depth += code.count("{") - code.count("}")
            seen_open = seen_open or "{" in code
            if seen_open and depth <= 0:
                break
            if not seen_open and ";" in code:
                break  # declaration, not a definition
            i += 1
        i += 1
    return failures


def check_syscall_status(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if not rel.startswith(SYSCALL_DIR_PREFIXES):
        return []

    def starts_statement(index: int) -> bool:
        """True when line `index` begins a statement (not a wrapped
        continuation of a checked expression clang-format broke onto its
        own line, e.g. the second `fwrite(...) != 1 ||` of a chain)."""
        for j in range(index - 1, -1, -1):
            prev = strip_comments_and_strings(lines[j]).strip()
            if not prev:
                continue
            return prev.endswith((";", "{", "}", ":")) or prev.startswith("#")
        return True

    failures = []
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        match = SYSCALL_STMT_RE.match(line)
        if match and SYSCALL_OK_MARKER not in raw and starts_statement(i):
            failures.append(Failure(
                "syscall-status", f"{rel}:{i + 1}",
                f"{match.group(1)}() result discarded — check it and carry "
                "errno into a Status (Status::IOErrorFromErrno), or mark a "
                "deliberate best-effort discard with "
                f"'// {SYSCALL_OK_MARKER} <why>'"))
    return failures


def check_kernel_layering(path: Path, lines: list[str]) -> list[Failure]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    if not rel.startswith("src/kernel/") or path.suffix != ".h":
        return []
    failures = []
    for i, raw in enumerate(lines):
        match = LOCAL_INCLUDE_RE.match(raw)
        if not match:
            continue
        include = match.group(1)
        if include.startswith(KERNEL_ALLOWED_INCLUDE_PREFIXES):
            continue
        if include in KERNEL_ALLOWED_INCLUDE_EXACT:
            continue
        failures.append(Failure(
            "kernel-layering", f"{rel}:{i + 1}",
            f'kernel header includes "{include}" — kernels are the bottom '
            "layer and may depend only on core/, kernel/, and the leaf "
            "invidx headers"))
    return failures


def run_checks() -> list[Failure]:
    failures: list[Failure] = []
    for path in source_files():
        lines = path.read_text().splitlines()
        failures += check_epoch_zero(path, lines)
        failures += check_raw_std_sync(path, lines)
        failures += check_naked_alloc(path, lines)
        failures += check_generation_bump(path, lines)
        failures += check_kernel_layering(path, lines)
        failures += check_decode_noalloc(path, lines)
        failures += check_block_skip_guard(path, lines)
        failures += check_syscall_status(path, lines)
    failures += check_bench_schema()
    return failures


# --self-test ---------------------------------------------------------------

def self_test() -> int:
    """Feeds each rule a synthetic violation; fails if any rule is asleep."""
    fake = SRC / "kernel" / "fake.h"  # path only; never written to disk
    fake_mutate = SRC / "mutate" / "fake.cc"
    fake_storage = SRC / "storage" / "fake.cc"
    cases = [
        ("epoch-zero bump without reset",
         lambda: check_epoch_zero(fake, ["++epoch_;", "touched_.clear();"])),
        ("epoch-zero published zero",
         lambda: check_epoch_zero(fake, ["epoch_ = 0;"])),
        ("raw-std-sync",
         lambda: check_raw_std_sync(fake, ["std::mutex mu;"])),
        ("naked-alloc new",
         lambda: check_naked_alloc(fake, ["auto* p = new Node();"])),
        ("naked-alloc malloc",
         lambda: check_naked_alloc(fake, ["void* p = malloc(64);"])),
        ("kernel-layering",
         lambda: check_kernel_layering(fake, ['#include "serve/frontend.h"'])),
        ("generation-bump missing",
         lambda: check_generation_bump(fake_mutate, [
             "RankingId MutableStore::Insert(RankingView record) {",
             "  delta_.store.AddUnchecked(record.items());",
             "  return 0;", "}"])),
        ("decode-noalloc push_back in hot loop",
         lambda: check_decode_noalloc(fake_storage, [
             "const uint8_t* DecodeBlock(std::vector<int>* out) {",
             "  for (int i = 0; i < 4; ++i) out->push_back(i);",
             "  return nullptr;", "}"])),
        ("decode-noalloc SIMD group kernel",
         lambda: check_decode_noalloc(fake_storage, [
             "inline const uint8_t* GroupVarintDecodeGroup(uint32_t* out) {",
             "  auto* scratch = new uint32_t[4];",
             "  return nullptr;", "}"])),
        ("decode-noalloc prefix-sum kernel",
         lambda: check_decode_noalloc(fake_storage, [
             "inline void DeltaPrefixSumInPlace(std::vector<int>* v) {",
             "  v->resize(8);", "}"])),
        ("block-skip-guard BlockBytes before the guard",
         lambda: check_block_skip_guard(fake_storage, [
             "std::span<const int> Arena::DecodeSelectedBlocks(size_t i) {",
             "  for (size_t b = 0; b < 4; ++b) {",
             "    const auto [begin, end] = BlockBytes(b);",
             "    if (discard(b)) continue;",
             "    Decode(begin, end);", "  }", "  return {};", "}"])),
        ("block-skip-guard no guard at all",
         lambda: check_block_skip_guard(fake_storage, [
             "std::span<const int> Arena::DecodeBlocksInRankWindow(size_t i) {",
             "  const auto [begin, end] = BlockBytes(0);",
             "  return {};", "}"])),
        ("syscall-status discarded fsync",
         lambda: check_syscall_status(fake_storage, ["  ::fsync(fd);"])),
        ("syscall-status discarded std::fclose",
         lambda: check_syscall_status(fake_storage, ["  std::fclose(f);"])),
        ("syscall-status (void)-cast discard still flagged",
         lambda: check_syscall_status(fake_storage, ["  (void)unlink(tmp);"])),
        ("syscall-status covers src/io too",
         lambda: check_syscall_status(SRC / "io" / "fake.cc",
                                      ["  rename(a, b);"])),
    ]
    negatives = [
        ("epoch-zero legal wrap", lambda: check_epoch_zero(fake, [
            "++epoch_;", "if (epoch_ == 0) {",
            "  std::fill(s.begin(), s.end(), 0);", "  epoch_ = 1;", "}"])),
        ("epoch-zero declaration",
         lambda: check_epoch_zero(fake, ["uint32_t epoch_ = 0;"])),
        ("raw-std-sync comment only",
         lambda: check_raw_std_sync(fake, ["// std::mutex is banned here"])),
        ("naked-alloc 'renew' identifier",
         lambda: check_naked_alloc(fake, ["renewed = true; news_count++;"])),
        ("kernel-layering core include",
         lambda: check_kernel_layering(fake, ['#include "core/types.h"'])),
        ("generation-bump direct bump",
         lambda: check_generation_bump(fake_mutate, [
             "RankingId MutableStore::Insert(RankingView record) {",
             "  delta_.store.AddUnchecked(record.items());",
             "  BumpGenerationLocked();", "  return 0;", "}"])),
        ("generation-bump delegated marker",
         lambda: check_generation_bump(fake_mutate, [
             "RankingId ShardedMutableStore::Insert(RankingView record) {",
             "  // generation: delegated to the owning shard's Insert bump.",
             "  return shards_[0]->Insert(record);", "}"])),
        ("generation-bump non-mutating method",
         lambda: check_generation_bump(fake_mutate, [
             "bool MutableStore::Contains(RankingId id) const {",
             "  return true;", "}"])),
        ("decode-noalloc marked scratch setup",
         lambda: check_decode_noalloc(fake_storage, [
             "const uint8_t* DecodeList(std::vector<int>* scratch) {",
             "  scratch->resize(8);  // alloc-ok: grow-only scratch setup",
             "  return nullptr;", "}"])),
        ("decode-noalloc alloc outside a Decode body",
         lambda: check_decode_noalloc(fake_storage, [
             "void BuildArena(std::vector<int>* out) {",
             "  out->push_back(1);", "}"])),
        ("decode-noalloc declaration only",
         lambda: check_decode_noalloc(fake_storage, [
             "const uint8_t* DecodeBlock(std::vector<int>* out);",
             "void Other() { out->push_back(1); }"])),
        ("decode-noalloc clean body",
         lambda: check_decode_noalloc(fake_storage, [
             "const uint8_t* DecodeBlock(uint32_t* out) {",
             "  *out = 1;", "  return nullptr;", "}"])),
        ("block-skip-guard continue precedes BlockBytes",
         lambda: check_block_skip_guard(fake_storage, [
             "std::span<const int> Arena::DecodeSelectedBlocks(size_t i) {",
             "  for (size_t b = 0; b < 4; ++b) {",
             "    if (discard(b)) continue;",
             "    const auto [begin, end] = BlockBytes(b);",
             "    Decode(begin, end);", "  }", "  return {};", "}"])),
        ("block-skip-guard delegating wrapper",
         lambda: check_block_skip_guard(fake_storage, [
             "std::span<const int> Arena::DecodeBlocksInRange(size_t i) {",
             "  return DecodeSelectedBlocks(i, s, k, [](size_t) {",
             "    return false; });", "}"])),
        ("block-skip-guard full decoder is out of scope",
         lambda: check_block_skip_guard(fake_storage, [
             "bool Arena::DecodeListInto(size_t i, int* out) {",
             "  const auto [begin, end] = BlockBytes(0);",
             "  return true;", "}"])),
        ("block-skip-guard declaration only",
         lambda: check_block_skip_guard(fake_storage, [
             "std::span<const int> DecodeBlocksInRange(size_t i) const;"])),
        ("syscall-status checked call",
         lambda: check_syscall_status(fake_storage, [
             "  if (::fsync(fd) != 0) return Err();"])),
        ("syscall-status result captured",
         lambda: check_syscall_status(fake_storage, [
             "  const bool failed = std::fclose(f) != 0;"])),
        ("syscall-status marked best-effort discard",
         lambda: check_syscall_status(fake_storage, [
             "  ::close(fd);  // syscall-ok: errno already captured above"])),
        ("syscall-status outside persistence dirs",
         lambda: check_syscall_status(fake, ["  ::fsync(fd);"])),
        ("syscall-status identifier containing a syscall name",
         lambda: check_syscall_status(fake_storage, [
             "  remove_stale_generations(dir);"])),
    ]
    ok = True
    for name, check in cases:
        if not check():
            print(f"self-test FAILED: rule did not fire for: {name}")
            ok = False
    for name, check in negatives:
        hits = check()
        if hits:
            print(f"self-test FAILED: false positive for: {name}: {hits[0]}")
            ok = False
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a synthetic violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    failures = run_checks()
    for failure in failures:
        print(failure)
    if failures:
        print(f"\ncheck_invariants: {len(failures)} violation(s)")
        return 1
    print("check_invariants: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
