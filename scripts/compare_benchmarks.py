#!/usr/bin/env python3
"""Diff two benchmark JSON artifacts and print per-section deltas.

Tracks the perf trajectory across PRs: run the benches fresh, then compare
against the committed artifact to see exactly which rows moved.

Usage:
  scripts/compare_benchmarks.py OLD.json NEW.json [options]

Options:
  --print-above=PCT   only print numeric deltas with |delta| >= PCT
                      (default 5.0; use 0 to print everything)
  --fail-above=PCT    exit 1 if any timing/throughput field (wall_ms,
                      *_ms, ns_per_call, qps, mcalls_per_sec) moved by
                      more than PCT percent (default: never fail — the
                      diff is informational). CI wires this as an
                      *advisory* threshold: the workflow converts the
                      non-zero exit into a ::warning:: annotation instead
                      of failing the job, because CI-scale runs on shared
                      hardware are too noisy for a hard gate.
  --fail-above=SECTION:PCT
                      per-section override of the global threshold; may
                      be repeated. SECTION matches a row's section path
                      exactly or as a path prefix ("kernel" covers
                      "kernel" and "kernel/..."), so micro-benchmark
                      sections (kernel, simd) can run a tighter advisory
                      gate than end-to-end wall times without touching
                      the global value. An override with no global still
                      gates only its sections.

Rows are matched structurally: a row's identity is its section (the JSON
path of the array that holds it) plus all string/bool fields and the
shape knobs (k, n, threads, shards, j, ...). Every other numeric field is
compared and reported as a percent delta, so the script works for any
BENCH_*.json the suite emits without per-file schemas.
"""

import json
import sys

# Integer fields that describe the experiment's shape (part of a row's
# identity) rather than a measurement.
ID_INT_FIELDS = {
    "k", "n", "threads", "shards", "j", "queries", "schema_version",
    "num_queries", "block", "batch_size", "delta", "inserts",
    "block_entries", "reps", "block_entries_decoded",
}

# Float fields that are sweep knobs, not measurements: without these in
# the identity, rows differing only by theta / repeat fraction collide
# and get matched positionally.
ID_FLOAT_FIELDS = {
    "theta", "theta_c", "repeat_fraction", "repeat_zipf_s", "zipf_s",
    "fraction", "radius",
}

# Fields whose regressions --fail-above should gate on (suffix or exact
# match; mean_ms_per_query ends in "_per_query", not "_ms"). The kernel
# section's per-unit metrics ("ns_per_candidate", "ns_per_entry") and
# their throughput duals ("_per_sec" covers mcalls/mcandidates/mentries,
# and gb_per_sec; "_per_ns" covers the storage decode kernels'
# entries_per_ns) must be here or the drift gate is blind to the kernel
# and decode benches.
TIMING_FIELDS = ("_ms", "ns_per_call", "ns_per_candidate", "ns_per_entry",
                 "ns_per_query", "qps", "_per_sec", "_per_ns", "wall_ms",
                 "mean_ms_per_query")


def iter_rows(node, path=""):
    """Yields (section_path, row_dict) for every dict inside an array."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from iter_rows(value, f"{path}/{key}" if path else key)
    elif isinstance(node, list):
        for element in node:
            if isinstance(element, dict):
                yield path, element
            else:
                yield from iter_rows(element, path)


def is_identity_field(key, value):
    if isinstance(value, bool) or isinstance(value, str):
        return True
    if isinstance(value, int) and key in ID_INT_FIELDS:
        return True
    if isinstance(value, float) and key in ID_FLOAT_FIELDS:
        return True
    return False


def identity(section, row):
    parts = [section]
    for key in sorted(row):
        if is_identity_field(key, row[key]):
            parts.append(f"{key}={row[key]!r}")
    return tuple(parts)


def numeric_fields(row):
    for key in sorted(row):
        value = row[key]
        if is_identity_field(key, value):
            continue
        if isinstance(value, (int, float)) and value is not None:
            yield key, float(value)


def label(key):
    return " ".join(part for part in key[1:]) or "(row)"


def section_threshold(section, fail_above, section_overrides):
    """Most specific (longest) matching override, else the global value."""
    best = None
    for name, pct in section_overrides.items():
        if section == name or section.startswith(name + "/"):
            if best is None or len(name) > len(best[0]):
                best = (name, pct)
    if best is not None:
        return best[1]
    return fail_above


def main(argv):
    print_above = 5.0
    fail_above = None
    section_overrides = {}
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--print-above="):
            print_above = float(arg.split("=", 1)[1])
        elif arg.startswith("--fail-above="):
            value = arg.split("=", 1)[1]
            if ":" in value:
                section, pct = value.rsplit(":", 1)
                section_overrides[section] = float(pct)
            else:
                fail_above = float(value)
        elif arg.startswith("--"):
            sys.exit(f"unknown option: {arg}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)

    with open(paths[0]) as f:
        old_doc = json.load(f)
    with open(paths[1]) as f:
        new_doc = json.load(f)

    def collect(doc):
        table = {}
        for section, row in iter_rows(doc):
            key = identity(section, row)
            # Duplicate identities (repeated measurements) get an index.
            while key in table:
                key = key + ("dup",)
            table[key] = (section, row)
        return table

    old_rows = collect(old_doc)
    new_rows = collect(new_doc)

    matched = sorted(set(old_rows) & set(new_rows))
    only_old = sorted(set(old_rows) - set(new_rows))
    only_new = sorted(set(new_rows) - set(old_rows))

    worst = (0.0, None, None)  # |delta|, field, row label
    gate_exceeded = []
    current_section = None
    printed = 0
    for key in matched:
        section, old_row = old_rows[key]
        _, new_row = new_rows[key]
        new_values = dict(numeric_fields(new_row))
        for field, old_value in numeric_fields(old_row):
            if field not in new_values:
                continue
            new_value = new_values[field]
            if old_value == 0:
                continue
            delta = 100.0 * (new_value - old_value) / abs(old_value)
            is_timing = any(field.endswith(t) or field == t
                            for t in TIMING_FIELDS)
            if is_timing and abs(delta) > worst[0]:
                worst = (abs(delta), field, label(key))
            threshold = section_threshold(section, fail_above,
                                          section_overrides)
            if (threshold is not None and is_timing
                    and abs(delta) > threshold):
                gate_exceeded.append((key, field, delta))
            if abs(delta) >= print_above:
                if section != current_section:
                    print(f"== {section} ==")
                    current_section = section
                print(f"  {label(key)}: {field} "
                      f"{old_value:g} -> {new_value:g} ({delta:+.1f}%)")
                printed += 1

    for key in only_old:
        print(f"-- only in {paths[0]}: {key[0]} {label(key)}")
    for key in only_new:
        print(f"++ only in {paths[1]}: {key[0]} {label(key)}")

    print(f"== summary: {len(matched)} rows matched "
          f"({printed} deltas >= {print_above:g}% printed), "
          f"{len(only_old)} only-old, {len(only_new)} only-new", end="")
    if worst[1] is not None:
        print(f"; worst timing delta {worst[0]:.1f}% "
              f"({worst[1]} @ {worst[2]})", end="")
    print()

    if gate_exceeded:
        for key, field, delta in gate_exceeded:
            sec = key[0]
            limit = section_threshold(sec, fail_above, section_overrides)
            print(f"FAIL: {sec} {label(key)}: {field} moved {delta:+.1f}% "
                  f"(threshold {limit:g}%)")
        print(f"FAIL: {len(gate_exceeded)} timing deltas exceed their "
              f"thresholds")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
