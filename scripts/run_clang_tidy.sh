#!/usr/bin/env bash
# clang-tidy over the library sources, driven by compile_commands.json.
#
# Usage:
#   scripts/run_clang_tidy.sh              # configure build/ if needed, lint src/
#   BUILD_DIR=out scripts/run_clang_tidy.sh
#   scripts/run_clang_tidy.sh src/serve/frontend.cc   # lint specific files
#
# Checks and the documented suppression list live in .clang-tidy;
# WarningsAsErrors: '*' there makes any finding a non-zero exit, which is
# what the CI lint job keys off. Requires clang-tidy (any recent LLVM);
# exits 2 with a message when it is not installed so local runs on
# GCC-only boxes fail loudly instead of false-passing.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: $CLANG_TIDY not found in PATH" >&2
  echo "  (install clang-tidy, or set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== configuring $BUILD_DIR (for compile_commands.json)"
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  # Library TUs only: tests/bench/examples link against the same headers
  # (covered transitively via HeaderFilterRegex) and gtest macros trip
  # checks that have nothing to do with shipped code.
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

echo "== clang-tidy (${#files[@]} files, -j$JOBS)"
status=0
printf '%s\n' "${files[@]}" \
  | xargs -P "$JOBS" -I{} "$CLANG_TIDY" -p "$BUILD_DIR" --quiet {} \
  || status=$?
if [[ $status -ne 0 ]]; then
  echo "== clang-tidy FAILED (see findings above; suppressions are"
  echo "   documented in .clang-tidy — extend only with a rationale)"
  exit 1
fi
echo "== clang-tidy clean"
