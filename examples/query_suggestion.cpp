// Query suggestion over a search-engine query log — the paper's
// introductory motivation: "finding historic queries by their result lists
// with respect to the currently issued query".
//
// We synthesize a query log's result rankings (NYT-like: skewed item
// popularity, popular queries re-issued many times), index them with the
// coarse index, and for a fresh query's result list retrieve all historic
// queries whose results are similar enough to suggest.
//
//   build/examples/query_suggestion

#include <iostream>

#include "topk.h"

int main() {
  using namespace topk;

  // 1. The query log: 30k historic top-10 result rankings.
  std::cout << "generating historic query-result rankings...\n";
  const RankingStore log = Generate(NytLikeOptions(30000, 10, 42));

  // 2. Index once; serve ad-hoc similarity queries afterwards.
  CoarseOptions options;
  options.theta_c = 0.5;
  options.drop = DropMode::kPositionRefined;  // Coarse+Drop
  Stopwatch build_watch;
  const CoarseIndex index = CoarseIndex::Build(&log, options);
  std::cout << "coarse index: " << index.num_partitions()
            << " partitions over " << log.size() << " rankings, built in "
            << FormatDouble(build_watch.ElapsedMillis() / 1000.0, 2)
            << " s, " << FormatMegabytes(index.MemoryUsage()) << " MB\n\n";

  // 3. A "currently issued" query: the live engine returned this top-10
  //    list (here: a perturbed copy of some historic ranking).
  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.perturbed_fraction = 1.0;
  wopts.seed = 7;
  const auto current = MakeWorkload(log, wopts);

  const double theta = 0.2;  // how similar counts as "related"
  for (size_t i = 0; i < current.size(); ++i) {
    Statistics stats;
    Stopwatch watch;
    const auto similar =
        index.Query(current[i], RawThreshold(theta, log.k()), &stats);
    std::cout << "query #" << i << ": " << similar.size()
              << " historic queries with result-list distance <= " << theta
              << " (" << FormatDouble(watch.ElapsedMillis(), 3) << " ms, "
              << stats.Get(Ticker::kDistanceCalls) << " distance calls, "
              << stats.Get(Ticker::kPartitionsProbed)
              << " partitions probed)\n";
    // A real system would now surface the queries behind the top matches.
    for (size_t j = 0; j < similar.size() && j < 3; ++j) {
      const RawDistance d = FootruleDistance(current[i].sorted_view(),
                                             log.sorted(similar[j]));
      std::cout << "    suggestion " << j << ": historic ranking "
                << similar[j] << " at distance "
                << FormatDouble(NormalizeDistance(d, log.k()), 3) << "\n";
    }
  }
  return 0;
}
