// Query suggestion over a search-engine query log — the paper's
// introductory motivation: "finding historic queries by their result lists
// with respect to the currently issued query".
//
// We synthesize a query log's result rankings (NYT-like: skewed item
// popularity, popular queries re-issued many times), shard them, and
// serve ad-hoc similarity queries through the parallel runner: every
// query fans out across the shards on a fixed thread pool and the
// per-shard answers are merged exactly (Coarse+Drop per shard).
//
//   build/examples/query_suggestion

#include <algorithm>
#include <iostream>
#include <thread>

#include "topk.h"

int main() {
  using namespace topk;

  // 1. The query log: 30k historic top-10 result rankings.
  std::cout << "generating historic query-result rankings...\n";
  const RankingStore log = Generate(NytLikeOptions(30000, 10, 42));

  // 2. Shard the log and build one engine suite per shard. Hash placement
  //    spreads the log's re-issued near-duplicate queries over all shards
  //    instead of loading one.
  const size_t num_threads =
      std::max<size_t>(1, std::min<size_t>(
                              4, std::thread::hardware_concurrency()));
  ShardedStore shards(log, /*num_shards=*/4, ShardingStrategy::kHashById);
  ParallelRunnerOptions options;
  options.num_threads = num_threads;
  // Match the paper's Coarse+Drop tuning used by this workload.
  options.suite_config.coarse_drop_theta_c = 0.5;
  ParallelRunner runner(&shards, options);

  Stopwatch build_watch;
  runner.Prepare(Algorithm::kCoarseDrop);  // builds all shards in parallel
  std::cout << "coarse index: " << shards.num_shards() << " shards over "
            << log.size() << " rankings, built in "
            << FormatDouble(build_watch.ElapsedMillis() / 1000.0, 2)
            << " s, serving on " << runner.num_threads() << " threads\n\n";

  // 3. A "currently issued" query: the live engine returned this top-10
  //    list (here: a perturbed copy of some historic ranking).
  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.perturbed_fraction = 1.0;
  wopts.seed = 7;
  const auto current = MakeWorkload(log, wopts);

  const double theta = 0.2;  // how similar counts as "related"
  for (size_t i = 0; i < current.size(); ++i) {
    Statistics stats;
    Stopwatch watch;
    const auto similar = runner.RangeQuery(
        Algorithm::kCoarseDrop, current[i], RawThreshold(theta, log.k()),
        &stats);
    std::cout << "query #" << i << ": " << similar.size()
              << " historic queries with result-list distance <= " << theta
              << " (" << FormatDouble(watch.ElapsedMillis(), 3) << " ms, "
              << stats.Get(Ticker::kDistanceCalls) << " distance calls, "
              << stats.Get(Ticker::kPartitionsProbed)
              << " partitions probed across shards)\n";
    // A real system would now surface the queries behind the top matches.
    for (size_t j = 0; j < similar.size() && j < 3; ++j) {
      const RawDistance d = FootruleDistance(current[i].sorted_view(),
                                             log.sorted(similar[j]));
      std::cout << "    suggestion " << j << ": historic ranking "
                << similar[j] << " at distance "
                << FormatDouble(NormalizeDistance(d, log.k()), 3) << "\n";
    }
  }
  return 0;
}
