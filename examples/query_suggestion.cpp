// Query suggestion over a search-engine query log — the paper's
// introductory motivation: "finding historic queries by their result lists
// with respect to the currently issued query".
//
// We synthesize a query log's result rankings (NYT-like: skewed item
// popularity, popular queries re-issued many times) and serve a live
// query stream through the online frontend: whole queries are batched
// across a thread pool and re-issued queries hit the exact result cache
// — the shape of a production suggestion service, with bit-exact
// answers. (The Coarse engine served here bypasses the candidate cache
// by design: its own filter beats validating the full posting union;
// see serve/candidate_cache.h for the engines that use that layer.)
//
//   build/examples/query_suggestion

#include <algorithm>
#include <iostream>
#include <thread>

#include "topk.h"

int main() {
  using namespace topk;

  // 1. The query log: 30k historic top-10 result rankings.
  std::cout << "generating historic query-result rankings...\n";
  const RankingStore log = Generate(NytLikeOptions(30000, 10, 42));

  // 2. The serving frontend: per-executor Coarse engines over one shared
  //    index, fronted by the exact result cache.
  const size_t num_threads =
      std::max<size_t>(1, std::min<size_t>(
                              4, std::thread::hardware_concurrency()));
  QueryFrontendOptions options;
  options.num_threads = num_threads;
  QueryFrontend frontend(&log, options);

  Stopwatch build_watch;
  frontend.Prepare(Algorithm::kCoarse);
  std::cout << "coarse index over " << log.size()
            << " rankings built in "
            << FormatDouble(build_watch.ElapsedMillis() / 1000.0, 2)
            << " s, serving on " << frontend.num_threads() << " threads\n\n";

  // 3. The live stream: users re-issue popular queries constantly (60%
  //    of this stream re-issues earlier queries, Zipf-skewed), the rest
  //    are fresh or lightly edited result lists.
  WorkloadOptions wopts;
  wopts.num_queries = 2000;
  wopts.perturbed_fraction = 1.0;
  wopts.repeat_fraction = 0.6;
  wopts.seed = 7;
  const auto stream = MakeWorkload(log, wopts);

  const double theta = 0.2;  // how similar counts as "related"
  const RawDistance theta_raw = RawThreshold(theta, log.k());

  // Serve the whole stream as one batch (cold caches), then once more
  // warm — the steady state of a long-running suggestion service.
  std::vector<ServeRequest> requests;
  for (const PreparedQuery& query : stream) {
    requests.push_back(
        ServeRequest::Range(Algorithm::kCoarse, query, theta_raw));
  }
  Statistics cold_stats;
  Stopwatch cold_watch;
  const auto cold = frontend.ServeBatch(requests, &cold_stats);
  const double cold_ms = cold_watch.ElapsedMillis();

  Statistics warm_stats;
  Stopwatch warm_watch;
  const auto warm = frontend.ServeBatch(requests, &warm_stats);
  const double warm_ms = warm_watch.ElapsedMillis();

  const auto hit_rate = [&](const Statistics& stats) {
    return static_cast<double>(stats.Get(Ticker::kResultCacheHits)) /
           static_cast<double>(stream.size());
  };
  std::cout << "cold pass: " << FormatDouble(cold_ms, 1) << " ms for "
            << stream.size() << " queries ("
            << FormatDouble(100 * hit_rate(cold_stats), 1)
            << "% served from cache — within-stream re-issues)\n"
            << "warm pass: " << FormatDouble(warm_ms, 1) << " ms ("
            << FormatDouble(100 * hit_rate(warm_stats), 1)
            << "% served from cache, "
            << FormatDouble(warm_ms > 0 ? cold_ms / warm_ms : 0, 1)
            << "x faster, zero distance calls on hits)\n\n";

  // 4. Surface suggestions for a few live queries, straight from the
  //    (now warm) frontend.
  for (size_t i = 0; i < 3; ++i) {
    const auto& similar = warm[i].ids;
    std::cout << "query #" << i << ": " << similar.size()
              << " historic queries with result-list distance <= " << theta
              << (warm[i].result_cache_hit ? " (cache hit)" : "") << "\n";
    for (size_t s = 0; s < similar.size() && s < 3; ++s) {
      const RawDistance d = FootruleDistance(stream[i].sorted_view(),
                                             log.sorted(similar[s]));
      std::cout << "    suggestion " << s << ": historic ranking "
                << similar[s] << " at distance "
                << FormatDouble(NormalizeDistance(d, log.k()), 3) << "\n";
    }
  }
  return 0;
}
