// Persistence workflow: generate a collection once, save the dataset and
// its (expensive) partitioning to disk, then serve queries from a cold
// start by loading both and rebuilding the cheap structures.
//
//   build/examples/persistence [directory]

#include <iostream>
#include <string>

#include "topk.h"

int main(int argc, char** argv) {
  using namespace topk;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string store_path = dir + "/example_rankings.topk";
  const std::string parts_path = dir + "/example_partitioning.topk";

  // --- First run: build everything and persist the expensive parts. ---
  {
    std::cout << "building collection + partitioning...\n";
    const RankingStore store = Generate(NytLikeOptions(15000, 10, 77));
    Stopwatch partition_watch;
    const Partitioning partitioning = BkPartition(
        store, RawThreshold(0.4, store.k()), BkPartitionMode::kStrict);
    std::cout << "  partitioned " << store.size() << " rankings into "
              << partitioning.partitions.size() << " partitions in "
              << FormatDouble(partition_watch.ElapsedMillis(), 1) << " ms\n";

    if (Status s = SaveRankingStore(store, store_path); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    if (Status s = SavePartitioning(partitioning, parts_path); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    std::cout << "  saved dataset to " << store_path
              << "\n  saved partitioning to " << parts_path << "\n\n";
  }

  // --- Cold start: load, rebuild the cheap structures, serve. ---
  std::cout << "cold start: loading...\n";
  Stopwatch load_watch;
  auto store = LoadRankingStore(store_path);
  if (!store.ok()) {
    std::cerr << store.status().ToString() << "\n";
    return 1;
  }
  auto partitioning = LoadPartitioning(parts_path);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }
  CoarseOptions options;
  options.theta_c = 0.4;
  const CoarseIndex index = CoarseIndex::BuildFromPartitioning(
      &store.value(), options, std::move(partitioning).ValueOrDie());
  std::cout << "  ready in " << FormatDouble(load_watch.ElapsedMillis(), 1)
            << " ms (" << index.num_partitions() << " partitions)\n\n";

  // Serve a few queries.
  WorkloadOptions wopts;
  wopts.num_queries = 3;
  wopts.seed = 3;
  const auto queries = MakeWorkload(store.value(), wopts);
  for (size_t i = 0; i < queries.size(); ++i) {
    Statistics stats;
    const auto results =
        index.Query(queries[i], RawThreshold(0.2, 10), &stats);
    std::cout << "query #" << i << ": " << results.size() << " results, "
              << stats.Get(Ticker::kDistanceCalls) << " distance calls\n";
  }

  std::remove(store_path.c_str());
  std::remove(parts_path.c_str());
  return 0;
}
