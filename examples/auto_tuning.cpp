// Automatic theta_C tuning with the Section 5 cost model: measure the
// dataset's distributional inputs, calibrate unit costs, sweep the model,
// build the index at the predicted sweet spot — then verify against a
// hand-tuned sweep.
//
//   build/examples/auto_tuning

#include <iostream>

#include "topk.h"

int main() {
  using namespace topk;

  std::cout << "generating dataset...\n";
  const RankingStore store = Generate(NytLikeOptions(20000, 10, 5));

  WorkloadOptions wopts;
  wopts.num_queries = 200;
  wopts.seed = 11;
  const auto queries = MakeWorkload(store, wopts);
  const double theta = 0.2;
  const RawDistance theta_raw = RawThreshold(theta, store.k());

  // 1. Measure model inputs: Zipf skew, distance profile, unit costs.
  std::cout << "measuring cost-model inputs...\n";
  const CostModelInputs inputs = MeasureCostModelInputs(store, 192);
  std::cout << "  n = " << inputs.n << ", distinct items v = " << inputs.v
            << ", fitted zipf s = " << FormatDouble(inputs.zipf_s, 3)
            << "\n  footrule = " << FormatDouble(inputs.calib.footrule_ns, 1)
            << " ns/call, merge = "
            << FormatDouble(inputs.calib.merge_ns_per_entry, 2)
            << " ns/entry\n";

  // 2. Ask the model for the sweet spot.
  const CoarseCostModel model(inputs);
  const auto tuned = model.Tune(theta, MakeGrid(0.05, 0.75, 0.05));
  std::cout << "model-chosen theta_C = "
            << FormatDouble(tuned.best_theta_c, 2) << "\n\n";

  // 3. Compare against an actual sweep (what manual tuning would do).
  auto measure = [&](double theta_c) {
    CoarseOptions options;
    options.theta_c = theta_c;
    const CoarseIndex index = CoarseIndex::Build(&store, options);
    PhaseTimes phases;
    for (const PreparedQuery& query : queries) {
      index.Query(query, theta_raw, nullptr, &phases);
    }
    return phases.total_ms();
  };

  TextTable table({"theta_C", "measured_ms", "model_ns_per_query"});
  double best_ms = 0;
  double best_theta_c = 0;
  bool first = true;
  for (const auto& point : tuned.series) {
    const double ms = measure(point.theta_c);
    table.AddRow({FormatDouble(point.theta_c, 2), FormatDouble(ms, 2),
                  FormatDouble(point.cost.total_ns(), 0)});
    if (first || ms < best_ms) {
      best_ms = ms;
      best_theta_c = point.theta_c;
      first = false;
    }
  }
  table.Print(std::cout);

  const double model_ms = measure(tuned.best_theta_c);
  std::cout << "\nmeasured optimum:  theta_C = "
            << FormatDouble(best_theta_c, 2) << " (" << FormatDouble(best_ms, 2)
            << " ms)\nmodel's pick costs " << FormatDouble(model_ms, 2)
            << " ms — " << FormatDouble(model_ms - best_ms, 2)
            << " ms off the hand-tuned optimum over " << queries.size()
            << " queries\n";
  return 0;
}
