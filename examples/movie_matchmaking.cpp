// Matchmaking by favorite lists — the paper's dating-portal motivation:
// "dating portals let users create favorite lists that are used to search
// for similarly minded mates".
//
// Each user has a top-10 favorite-movies list (Yago-like: mild popularity
// skew, most lists distinctive). Given a user, find everyone whose list is
// within a distance budget, comparing the plain F&V pipeline against
// F&V+Drop and showing what the overlap bound buys.
//
//   build/examples/movie_matchmaking

#include <iostream>

#include "topk.h"

int main() {
  using namespace topk;

  std::cout << "generating user favorite lists...\n";
  const RankingStore users = Generate(YagoLikeOptions(20000, 10, 99));
  const PlainInvertedIndex index = PlainInvertedIndex::Build(users);

  FilterValidateEngine plain(&users, &index);
  FilterValidateEngine dropping(
      &users, &index, FilterValidateOptions{DropMode::kPositionRefined});

  // The "logged-in user": take an existing list and tweak it slightly.
  const RankingId me = 4242;
  auto mine = users.Materialize(me);
  std::cout << "my favorites (user " << me << "): [";
  for (uint32_t p = 0; p < mine.k(); ++p) {
    std::cout << (p > 0 ? ", " : "") << mine.view()[p];
  }
  std::cout << "]\n\n";
  const PreparedQuery query(std::move(mine));

  std::cout << "matches within distance budget (excluding myself):\n";
  for (double theta : {0.05, 0.1, 0.2, 0.3}) {
    const RawDistance theta_raw = RawThreshold(theta, users.k());
    Statistics plain_stats;
    Statistics drop_stats;
    const auto matches = plain.Query(query, theta_raw, &plain_stats);
    const auto matches_drop = dropping.Query(query, theta_raw, &drop_stats);
    if (matches != matches_drop) {
      std::cerr << "BUG: drop policy changed the result set\n";
      return 1;
    }
    size_t others = matches.size();
    for (RankingId id : matches) {
      if (id == me) --others;
    }
    std::cout << "  theta = " << FormatDouble(theta, 2) << ": " << others
              << " match(es); F&V validated "
              << plain_stats.Get(Ticker::kCandidates)
              << " candidates, F&V+Drop only "
              << drop_stats.Get(Ticker::kCandidates) << " ("
              << drop_stats.Get(Ticker::kListsDropped)
              << " posting lists never read)\n";
  }

  // Show the best match's list for flavor.
  const auto matches =
      plain.Query(query, RawThreshold(0.3, users.k()));
  RankingId best = kInvalidRankingId;
  RawDistance best_distance = MaxDistance(users.k()) + 1;
  for (RankingId id : matches) {
    if (id == me) continue;
    const RawDistance d =
        FootruleDistance(query.sorted_view(), users.sorted(id));
    if (d < best_distance) {
      best_distance = d;
      best = id;
    }
  }
  if (best != kInvalidRankingId) {
    std::cout << "\nclosest mate: user " << best << " at distance "
              << FormatDouble(NormalizeDistance(best_distance, users.k()), 3)
              << " with favorites [";
    const RankingView view = users.view(best);
    for (uint32_t p = 0; p < view.k(); ++p) {
      std::cout << (p > 0 ? ", " : "") << view[p];
    }
    std::cout << "]\n";
  }
  return 0;
}
