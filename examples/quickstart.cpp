// Quickstart: index a handful of top-k rankings and answer a similarity
// query with the coarse index.
//
//   build/examples/quickstart

#include <iostream>

#include "topk.h"

int main() {
  using namespace topk;

  // A collection of top-5 rankings (items are ids; position 0 is the top).
  RankingStore store(/*k=*/5);
  store.AddUnchecked(std::vector<ItemId>{1, 2, 3, 4, 5});   // tau0
  store.AddUnchecked(std::vector<ItemId>{1, 2, 9, 8, 3});   // tau1
  store.AddUnchecked(std::vector<ItemId>{9, 8, 1, 2, 4});   // tau2
  store.AddUnchecked(std::vector<ItemId>{7, 1, 9, 4, 5});   // tau3
  store.AddUnchecked(std::vector<ItemId>{6, 1, 5, 2, 3});   // tau4
  store.AddUnchecked(std::vector<ItemId>{4, 5, 1, 2, 3});   // tau5
  store.AddUnchecked(std::vector<ItemId>{1, 6, 2, 3, 7});   // tau6
  store.AddUnchecked(std::vector<ItemId>{7, 1, 6, 5, 2});   // tau7
  store.AddUnchecked(std::vector<ItemId>{2, 5, 9, 8, 1});   // tau8
  store.AddUnchecked(std::vector<ItemId>{6, 3, 2, 1, 4});   // tau9

  // Build the coarse index: partitions of radius <= theta_C around medoid
  // rankings, medoids in an inverted index, partitions as BK-trees.
  CoarseOptions options;
  options.theta_c = 0.3;
  const CoarseIndex index = CoarseIndex::Build(&store, options);
  std::cout << "indexed " << store.size() << " rankings in "
            << index.num_partitions() << " partitions\n";

  // Ad-hoc query: ranking and threshold arrive at query time.
  auto ranking = Ranking::Create({1, 2, 3, 4, 6});
  if (!ranking.ok()) {
    std::cerr << ranking.status().ToString() << "\n";
    return 1;
  }
  const PreparedQuery query(std::move(ranking).ValueOrDie());

  for (double theta : {0.1, 0.2, 0.4}) {
    Statistics stats;
    const auto results =
        index.Query(query, RawThreshold(theta, store.k()), &stats);
    std::cout << "theta = " << theta << ": " << results.size()
              << " result(s) [";
    for (size_t i = 0; i < results.size(); ++i) {
      std::cout << (i > 0 ? ", " : "") << "tau" << results[i];
    }
    std::cout << "] with " << stats.Get(Ticker::kDistanceCalls)
              << " distance calls\n";
  }

  // Exact distances for context.
  std::cout << "\nexact normalized distances to the query:\n";
  for (RankingId id = 0; id < store.size(); ++id) {
    const RawDistance d =
        FootruleDistance(query.sorted_view(), store.sorted(id));
    std::cout << "  tau" << id << ": " << NormalizeDistance(d, store.k())
              << "\n";
  }
  return 0;
}
