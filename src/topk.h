// Umbrella header for the top-k-list similarity search library.
//
// Reproduction of Milchevski, Anand, Michel: "The Sweet Spot between
// Inverted Indices and Metric-Space Indexing for Top-K-List Similarity
// Search" (EDBT 2015). See README.md for a tour and DESIGN.md for the
// system inventory.

#ifndef TOPK_TOPK_H_
#define TOPK_TOPK_H_

#include "adapt/adapt_search.h"
#include "adapt/delta_inverted_index.h"
#include "cluster/bk_partitioner.h"
#include "cluster/cn_partitioner.h"
#include "cluster/partitioner.h"
#include "coarse/batch_query.h"
#include "coarse/coarse_index.h"
#include "core/bounds.h"
#include "core/footrule.h"
#include "core/kendall.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/status.h"
#include "core/types.h"
#include "costmodel/calibration.h"
#include "costmodel/cost_model.h"
#include "costmodel/empirical_cdf.h"
#include "costmodel/medoid_model.h"
#include "costmodel/zipf.h"
#include "data/dataset_stats.h"
#include "data/generator.h"
#include "data/workload.h"
#include "harness/parallel_runner.h"
#include "harness/query_algorithms.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/sharded_store.h"
#include "harness/thread_pool.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/blocked_inverted_index.h"
#include "invidx/filter_validate.h"
#include "invidx/list_at_a_time.h"
#include "invidx/list_merge.h"
#include "invidx/oracle_index.h"
#include "invidx/plain_inverted_index.h"
#include "io/serialization.h"
#include "metric/bk_tree.h"
#include "metric/generic_bk_tree.h"
#include "metric/knn.h"
#include "metric/linear_scan.h"
#include "metric/m_tree.h"
#include "serve/candidate_cache.h"
#include "serve/fingerprint.h"
#include "serve/frontend.h"
#include "serve/lru_cache.h"
#include "serve/result_cache.h"

#endif  // TOPK_TOPK_H_
