#include "costmodel/zipf.h"

#include <algorithm>
#include <cmath>

#include "core/status.h"

namespace topk {

double GeneralizedHarmonic(uint64_t v, double s) {
  double sum = 0;
  for (uint64_t i = 1; i <= v; ++i) {
    sum += std::pow(static_cast<double>(i), -s);
  }
  return sum;
}

double ZipfPmf(uint64_t rank, double s, uint64_t v) {
  TOPK_DCHECK(rank >= 1 && rank <= v);
  return std::pow(static_cast<double>(rank), -s) / GeneralizedHarmonic(v, s);
}

double ZipfSquaredMass(uint64_t v, double s) {
  const double h = GeneralizedHarmonic(v, s);
  return GeneralizedHarmonic(v, 2 * s) / (h * h);
}

ZipfSampler::ZipfSampler(double s, uint64_t num_items) : s_(s) {
  TOPK_DCHECK(num_items > 0);
  cdf_.resize(num_items);
  double acc = 0;
  for (uint64_t i = 1; i <= num_items; ++i) {
    acc += std::pow(static_cast<double>(i), -s);
    cdf_[i - 1] = acc;
  }
  for (double& x : cdf_) x /= acc;  // normalize without a second harmonic
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

uint64_t ZipfSampler::SampleBelow(Rng* rng, uint64_t bound) const {
  TOPK_DCHECK(bound >= 1 && bound <= cdf_.size());
  // Inverse-CDF over the truncated prefix: scaling u by the prefix mass
  // renormalizes without touching the table.
  const double u = rng->NextDouble() * cdf_[bound - 1];
  const auto it = std::lower_bound(cdf_.begin(), cdf_.begin() + bound, u);
  const auto rank = static_cast<uint64_t>(it - cdf_.begin());
  return rank < bound ? rank : bound - 1;  // floating-point edge guard
}

double EstimateZipfSkew(std::span<const uint64_t> frequencies) {
  std::vector<uint64_t> nonzero;
  nonzero.reserve(frequencies.size());
  for (uint64_t f : frequencies) {
    if (f > 0) nonzero.push_back(f);
  }
  if (nonzero.size() < 2) return 0;
  std::sort(nonzero.begin(), nonzero.end(), std::greater<>());

  // Least squares on (log rank, log frequency).
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  const double m = static_cast<double>(nonzero.size());
  for (size_t i = 0; i < nonzero.size(); ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(nonzero[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = m * sxx - sx * sx;
  if (denom <= 0) return 0;
  const double slope = (m * sxy - sx * sy) / denom;
  return std::max(0.0, -slope);
}

}  // namespace topk
