// Sampled per-ranking coverage profile — the distributional input of the
// cost model.
//
// The paper's Section 5 assumes only the pairwise-distance CDF, which
// prices every ranking's theta_C-ball at the same average size. On heavy-
// tailed collections (a query log's duplicate structure) that assumption
// collapses: a few giant clusters dominate the average ball while most
// rankings sit in tiny ones, so the coupon-package medoid count predicts
// far too few medoids. The BallProfile keeps the per-point view: for a
// sample of rankings it records the full histogram of distances to the
// *entire* collection, from which both the pooled CDF (the paper's input)
// and per-point ball sizes are available at every radius.
//
// Medoid-count estimation from the profile (the kHarmonicBalls estimator):
// under random-order medoid picking, a cluster of rankings whose balls
// coincide contributes exactly one medoid, i.e. each ranking x is a medoid
// with probability ~ 1/B_x(theta_C); hence
//
//   M(theta_C) ~ n * E_x[ 1 / B_x(theta_C) ].
//
// Limits agree with the paper's model (B = 1 everywhere -> n; B = n -> 1),
// and the estimate tracks actual partitioner runs on heterogeneous data
// where the homogeneous model is off by multiples (see costmodel tests and
// bench/table5_model_accuracy).

#ifndef TOPK_COSTMODEL_BALL_PROFILE_H_
#define TOPK_COSTMODEL_BALL_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/ranking.h"
#include "core/rng.h"

namespace topk {

class BallProfile {
 public:
  /// Computes the distance histogram of `num_samples` random rankings
  /// against the whole store: num_samples * n Footrule calls, done once
  /// per dataset and shared by every model evaluation.
  static BallProfile Sample(const RankingStore& store, size_t num_samples,
                            Rng* rng);

  size_t n() const { return n_; }
  uint32_t k() const { return k_; }
  size_t num_samples() const { return prefix_.size(); }

  /// E_x[B_x(theta)]: expected number of rankings (including x itself)
  /// within normalized radius theta of a random ranking x.
  double MeanBall(double theta_norm) const;

  /// n * E_x[1 / B_x(theta)] — the harmonic-mean medoid-count estimate.
  double HarmonicBallCount(double theta_norm) const;

  /// Pooled pairwise CDF P[X <= theta] (self-pairs excluded), the paper's
  /// distributional input.
  double P(double theta_norm) const;

 private:
  size_t n_ = 0;
  uint32_t k_ = 0;
  // prefix_[s][d] = number of rankings at raw distance <= d from sample s
  // (self included), for d in [0, dmax].
  std::vector<std::vector<uint32_t>> prefix_;
};

}  // namespace topk

#endif  // TOPK_COSTMODEL_BALL_PROFILE_H_
