#include "costmodel/empirical_cdf.h"

#include <algorithm>

#include "core/footrule.h"
#include "core/status.h"

namespace topk {

EmpiricalCdf EmpiricalCdf::FromSamples(std::vector<double> samples) {
  EmpiricalCdf cdf;
  cdf.sorted_ = std::move(samples);
  std::sort(cdf.sorted_.begin(), cdf.sorted_.end());
  return cdf;
}

double EmpiricalCdf::P(double x) const {
  if (sorted_.empty()) return 0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

EmpiricalCdf SamplePairwiseDistances(const RankingStore& store,
                                     size_t num_pairs, Rng* rng) {
  TOPK_DCHECK(store.size() >= 2);
  std::vector<double> samples;
  samples.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    const auto a = static_cast<RankingId>(rng->Below(store.size()));
    auto b = static_cast<RankingId>(rng->Below(store.size() - 1));
    if (b >= a) ++b;
    const RawDistance d = FootruleDistance(store.sorted(a), store.sorted(b));
    samples.push_back(NormalizeDistance(d, store.k()));
  }
  return EmpiricalCdf::FromSamples(std::move(samples));
}

}  // namespace topk
