// The coarse index's analytical cost model and theta_C auto-tuner
// (Section 5, Table 3, Figure 3).
//
// Inputs: collection size n, ranking size k, item-domain size v, the Zipf
// skew s of item popularity, the sampled distance profile, and the
// calibrated unit costs. The model predicts, for a query threshold theta
// and a candidate partitioning threshold theta_C:
//
//   medoids   M      = medoid-count estimate at theta_C (see below)
//   items     v'     = v * (1 - (1 - k/v)^M)                       (Eq 6)
//   list len  E[Y]   = M * H_{v',2s} / H_{v',s}^2                  (Eq 5)
//   filter    cost   = Costmerge(k * E[Y]) + k * E[Y] * CostFootrule
//   validate  cost   = n * P[X <= theta + theta_C] * CostFootrule  (Eq 3-4)
//
// Two medoid estimators are provided:
//   kCouponPackages — the paper's coupon-collector-with-packages argument
//                     (Eq 1-2) fed with the average ball size; exact under
//                     the paper's homogeneity assumption.
//   kHarmonicBalls  — n * E[1/B_x(theta_C)] from the sampled per-point
//                     profile (default); equals the coupon model on
//                     homogeneous data and stays accurate on heavy-tailed
//                     duplicate structure (see ball_profile.h).
//
// Tune() sweeps a theta_C grid and returns the argmin — the model-chosen
// sweet spot plotted as the small rectangle in Figure 7 and scored in
// Table 5.

#ifndef TOPK_COSTMODEL_COST_MODEL_H_
#define TOPK_COSTMODEL_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/ball_profile.h"
#include "costmodel/calibration.h"

namespace topk {

struct CostModelInputs {
  uint64_t n = 0;        // number of rankings
  uint32_t k = 0;        // ranking size
  uint64_t v = 0;        // global item-domain size (distinct items)
  double zipf_s = 0;     // item-popularity skew
  BallProfile profile;   // sampled distance profile (CDF + ball sizes)
  Calibration calib;     // unit costs
};

enum class MedoidEstimator { kHarmonicBalls, kCouponPackages };

struct CostModelOptions {
  MedoidEstimator estimator = MedoidEstimator::kHarmonicBalls;
};

struct CostBreakdown {
  double filter_ns = 0;
  double validate_ns = 0;
  double total_ns() const { return filter_ns + validate_ns; }
};

class CoarseCostModel {
 public:
  explicit CoarseCostModel(CostModelInputs inputs,
                           CostModelOptions options = {});

  /// Predicted per-query cost at (theta, theta_C), both normalized.
  CostBreakdown Predict(double theta, double theta_c) const;

  /// Model internals, exposed for tests and the Figure 3 bench.
  double ExpectedMedoidCount(double theta_c) const;
  double ExpectedDistinctMedoidItems(double medoid_count) const;
  double ExpectedIndexListLength(double medoid_count) const;

  struct TunePoint {
    double theta_c;
    CostBreakdown cost;
  };
  struct TuneResult {
    double best_theta_c = 0;
    CostBreakdown best_cost;
    std::vector<TunePoint> series;
  };
  /// Evaluates the model across `theta_c_grid` and returns the argmin.
  TuneResult Tune(double theta, std::span<const double> theta_c_grid) const;

  const CostModelInputs& inputs() const { return inputs_; }

 private:
  CostModelInputs inputs_;
  CostModelOptions options_;
};

/// Evenly spaced grid helper for sweeps: lo, lo+step, ..., <= hi.
std::vector<double> MakeGrid(double lo, double hi, double step);

}  // namespace topk

#endif  // TOPK_COSTMODEL_COST_MODEL_H_
