// Expected medoid count via the coupon-collector-with-packages argument
// (Section 5, Equations (1) and (2)).
//
// Under Chavez-Navarro partitioning, each random medoid absorbs roughly
// p = P[X <= theta_C] * n rankings. Treating rankings as coupons acquired
// in duplicate-free packages of size p, the expected number of packages
// (medoids) needed to cover all n rankings is
//
//   M(n, theta_C) = (1/p) * sum_{i=0}^{n-1} h(n, i, p),
//   h(n, i, p)    = 1                          if i mod p == 0
//                 = (n - (i mod p)) / (n - i)  otherwise.
//
// Limits check out: p = 1 gives M = n (singletons), p = n gives M = 1.
//
// Deviation from the paper (documented in DESIGN.md): the raw sum
// diverges for small packages — e.g. n = 1000, p = 2 yields M ≈ 2292 > n,
// which no clustering can produce. ExpectedMedoids clamps the result into
// the physically possible range [1, n].

#ifndef TOPK_COSTMODEL_MEDOID_MODEL_H_
#define TOPK_COSTMODEL_MEDOID_MODEL_H_

#include <cstdint>

namespace topk {

/// Expected medoid count for collection size `n` and expected package size
/// `package` (clamped into [1, n]) — the paper's Eq. (1)-(2), verbatim
/// except for the physical clamp.
double ExpectedMedoids(uint64_t n, double package);

/// Recurrence form of the same model, used by the cost model: each round
/// picks a medoid from the still-unassigned rankings (guaranteed new, the
/// paper's stated deviation from the standard coupon collector) and
/// absorbs each remaining ranking with probability (package-1)/n:
///
///   r_{m+1} = r_m - 1 - (package - 1) * r_m / n,   M = rounds to r = 0.
///
/// Unlike the closed-form sum, this stays within [1, n] for every package
/// size and tracks Chavez-Navarro simulations closely (see tests); both
/// agree in the limits (package 1 -> n, package n -> 1).
double ExpectedMedoidsRecurrence(uint64_t n, double package);

}  // namespace topk

#endif  // TOPK_COSTMODEL_MEDOID_MODEL_H_
