#include "costmodel/calibration.h"

#include <algorithm>
#include <vector>

#include "core/footrule.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "invidx/visited_set.h"

namespace topk {

namespace {

RankingStore MakeRandomStore(uint32_t k, size_t n, Rng* rng) {
  RankingStore store(k);
  std::vector<ItemId> items(k);
  const uint64_t domain = std::max<uint64_t>(4 * k, 1000);
  for (size_t i = 0; i < n; ++i) {
    size_t filled = 0;
    while (filled < k) {
      const auto item = static_cast<ItemId>(rng->Below(domain));
      if (std::find(items.begin(), items.begin() + filled, item) ==
          items.begin() + filled) {
        items[filled++] = item;
      }
    }
    store.AddUnchecked(items);
  }
  return store;
}

}  // namespace

Calibration Calibrate(uint32_t k, uint64_t seed) {
  Rng rng(seed);
  Calibration calib;

  // Footrule cost: time a loop of distance calls over random pairs. The
  // accumulated sum keeps the optimizer from eliding the loop.
  {
    constexpr size_t kPairs = 200000;
    const RankingStore store = MakeRandomStore(k, 512, &rng);
    volatile RawDistance sink = 0;
    Stopwatch watch;
    for (size_t i = 0; i < kPairs; ++i) {
      const auto a = static_cast<RankingId>(rng.Below(store.size()));
      const auto b = static_cast<RankingId>(rng.Below(store.size()));
      sink = sink + FootruleDistance(store.sorted(a), store.sorted(b));
    }
    calib.footrule_ns =
        static_cast<double>(watch.ElapsedNanos()) / static_cast<double>(kPairs);
  }

  // Merge cost: time the union of k id-sorted posting lists with epoch
  // deduplication — the filter phase's inner loop.
  {
    constexpr size_t kListLength = 40000;
    constexpr uint32_t kUniverse = 1u << 20;
    std::vector<std::vector<RankingId>> lists(k);
    for (auto& list : lists) {
      list.resize(kListLength);
      for (auto& id : list) id = static_cast<RankingId>(rng.Below(kUniverse));
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    size_t total_entries = 0;
    for (const auto& list : lists) total_entries += list.size();

    VisitedSet visited(kUniverse);
    std::vector<RankingId> candidates;
    candidates.reserve(total_entries);
    constexpr int kRounds = 8;
    Stopwatch watch;
    for (int round = 0; round < kRounds; ++round) {
      visited.NextEpoch();
      candidates.clear();
      for (const auto& list : lists) {
        for (RankingId id : list) {
          if (!visited.TestAndSet(id)) candidates.push_back(id);
        }
      }
    }
    calib.merge_ns_per_entry =
        static_cast<double>(watch.ElapsedNanos()) /
        static_cast<double>(total_entries * kRounds);
  }
  return calib;
}

}  // namespace topk
