// Zipf item-popularity model (Section 5, "Cost for Retrieving Partitions").
//
// The cost model assumes item frequencies follow Zipf's law with skew s:
// f(i; s, v) = 1 / (i^s * H_{v,s}) for the i-th most popular of v items,
// and that query items follow the same law. This header provides the law,
// a CDF-inversion sampler used by the synthetic generators, and the
// log-log regression estimator the paper uses to fit s from data
// (s = 0.87 for NYT, s = 0.53 for Yago).

#ifndef TOPK_COSTMODEL_ZIPF_H_
#define TOPK_COSTMODEL_ZIPF_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.h"

namespace topk {

/// Generalized harmonic number H_{v,s} = sum_{i=1..v} i^{-s}.
double GeneralizedHarmonic(uint64_t v, double s);

/// Zipf pmf f(i; s, v) for 1-based popularity rank i.
double ZipfPmf(uint64_t rank, double s, uint64_t v);

/// Sum of squared Zipf frequencies, sum_i f(i; s, v)^2 =
/// H_{v,2s} / H_{v,s}^2 — the expected-posting-length kernel of Eq. (5).
double ZipfSquaredMass(uint64_t v, double s);

/// Draws popularity ranks (0-based, 0 = most popular) with P(rank i-1) =
/// f(i; s, v), via binary search over the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(double s, uint64_t num_items);

  uint64_t Sample(Rng* rng) const;
  /// Draws from the law truncated (and renormalized) to ranks [0, bound)
  /// with 1 <= bound <= num_items() — identical to rejection-sampling
  /// Sample() until it lands below `bound`, but in one draw. The workload
  /// generator uses this to re-issue over a growing distinct-query pool.
  uint64_t SampleBelow(Rng* rng, uint64_t bound) const;
  double s() const { return s_; }
  uint64_t num_items() const { return cdf_.size(); }

 private:
  double s_;
  std::vector<double> cdf_;
};

/// Fits the Zipf skew from an item-frequency table by least-squares
/// regression of log(frequency) on log(popularity rank); the slope's
/// negation is s. Zero frequencies are ignored. Returns 0 for degenerate
/// inputs (fewer than two distinct points).
double EstimateZipfSkew(std::span<const uint64_t> frequencies);

}  // namespace topk

#endif  // TOPK_COSTMODEL_ZIPF_H_
