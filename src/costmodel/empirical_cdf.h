// Empirical distribution of pairwise ranking distances.
//
// The cost model's only distributional assumption about the data is the
// CDF P[X <= x] of the distance between two random rankings (Section 5,
// "we assume we know only the distribution of pairwise distances"). It is
// estimated by sampling random pairs from the store.

#ifndef TOPK_COSTMODEL_EMPIRICAL_CDF_H_
#define TOPK_COSTMODEL_EMPIRICAL_CDF_H_

#include <cstddef>
#include <vector>

#include "core/ranking.h"
#include "core/rng.h"

namespace topk {

class EmpiricalCdf {
 public:
  /// Builds from raw samples (any order); values are normalized distances.
  static EmpiricalCdf FromSamples(std::vector<double> samples);

  /// P[X <= x], a right-continuous step function in [0, 1].
  double P(double x) const;

  size_t num_samples() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// Samples `num_pairs` random (unordered, distinct) ranking pairs and
/// returns the empirical CDF of their normalized Footrule distances.
EmpiricalCdf SamplePairwiseDistances(const RankingStore& store,
                                     size_t num_pairs, Rng* rng);

}  // namespace topk

#endif  // TOPK_COSTMODEL_EMPIRICAL_CDF_H_
