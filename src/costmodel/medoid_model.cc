#include "costmodel/medoid_model.h"

#include <algorithm>
#include <cmath>

namespace topk {

double ExpectedMedoids(uint64_t n, double package) {
  if (n == 0) return 0;
  const auto p = static_cast<uint64_t>(std::llround(
      std::clamp(package, 1.0, static_cast<double>(n))));
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t r = i % p;
    if (r == 0) {
      sum += 1.0;
    } else {
      sum += static_cast<double>(n - r) / static_cast<double>(n - i);
    }
  }
  // The raw coupon sum diverges for small packages (its tail behaves like
  // n * H_n), which would predict more medoids than rankings exist. The
  // count is physically bounded by [1, n]: every ranking is at most one
  // medoid, and one medoid always suffices at full coverage.
  const double m = sum / static_cast<double>(p);
  return std::clamp(m, 1.0, static_cast<double>(n));
}

double ExpectedMedoidsRecurrence(uint64_t n, double package) {
  if (n == 0) return 0;
  const double p = std::clamp(package, 1.0, static_cast<double>(n));
  const double absorb = (p - 1.0) / static_cast<double>(n);
  double remaining = static_cast<double>(n);
  double medoids = 0;
  while (remaining >= 1.0) {
    remaining -= 1.0 + absorb * (remaining - 1.0);
    medoids += 1.0;
  }
  return std::max(1.0, medoids);
}

}  // namespace topk
