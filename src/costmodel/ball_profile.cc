#include "costmodel/ball_profile.h"

#include <algorithm>

#include "core/footrule.h"
#include "core/status.h"
#include "core/types.h"

namespace topk {

BallProfile BallProfile::Sample(const RankingStore& store,
                                size_t num_samples, Rng* rng) {
  TOPK_DCHECK(!store.empty());
  BallProfile profile;
  profile.n_ = store.size();
  profile.k_ = store.k();
  const size_t buckets = MaxDistance(store.k()) + 1;
  num_samples = std::min(num_samples, store.size());

  profile.prefix_.reserve(num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    const auto sample = static_cast<RankingId>(rng->Below(store.size()));
    std::vector<uint32_t> histogram(buckets, 0);
    const SortedRankingView sv = store.sorted(sample);
    for (RankingId id = 0; id < store.size(); ++id) {
      ++histogram[FootruleDistance(sv, store.sorted(id))];
    }
    // In-place prefix sums: histogram[d] becomes #rankings within d.
    for (size_t d = 1; d < buckets; ++d) histogram[d] += histogram[d - 1];
    profile.prefix_.push_back(std::move(histogram));
  }
  return profile;
}

double BallProfile::MeanBall(double theta_norm) const {
  TOPK_DCHECK(!prefix_.empty());
  const RawDistance raw = RawThreshold(theta_norm, k_);
  double total = 0;
  for (const auto& prefix : prefix_) total += prefix[raw];
  return total / static_cast<double>(prefix_.size());
}

double BallProfile::HarmonicBallCount(double theta_norm) const {
  TOPK_DCHECK(!prefix_.empty());
  const RawDistance raw = RawThreshold(theta_norm, k_);
  double inverse_sum = 0;
  for (const auto& prefix : prefix_) {
    inverse_sum += 1.0 / static_cast<double>(std::max<uint32_t>(1,
                                                                prefix[raw]));
  }
  return static_cast<double>(n_) * inverse_sum /
         static_cast<double>(prefix_.size());
}

double BallProfile::P(double theta_norm) const {
  if (n_ <= 1) return 1.0;
  // MeanBall counts the sample itself; exclude self-pairs.
  return std::clamp((MeanBall(theta_norm) - 1.0) /
                        static_cast<double>(n_ - 1),
                    0.0, 1.0);
}

}  // namespace topk
