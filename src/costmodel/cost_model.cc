#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>

#include "core/status.h"
#include "costmodel/medoid_model.h"
#include "costmodel/zipf.h"

namespace topk {

CoarseCostModel::CoarseCostModel(CostModelInputs inputs,
                                 CostModelOptions options)
    : inputs_(std::move(inputs)), options_(options) {
  TOPK_DCHECK(inputs_.n > 0 && inputs_.k > 0 && inputs_.v > 0);
}

double CoarseCostModel::ExpectedMedoidCount(double theta_c) const {
  switch (options_.estimator) {
    case MedoidEstimator::kHarmonicBalls:
      return inputs_.profile.HarmonicBallCount(theta_c);
    case MedoidEstimator::kCouponPackages:
      // The paper's model fed with the average ball size. The recurrence
      // form: the closed-form Eq. (1)-(2) diverges above n for small
      // packages, which would flatten the filter-cost curve exactly where
      // the sweet spot lives (see medoid_model.h).
      return ExpectedMedoidsRecurrence(inputs_.n,
                                       inputs_.profile.MeanBall(theta_c));
  }
  return static_cast<double>(inputs_.n);
}

double CoarseCostModel::ExpectedDistinctMedoidItems(
    double medoid_count) const {
  // Eq (6): v' = v * (1 - (1 - k/v)^M).
  const double v = static_cast<double>(inputs_.v);
  const double ratio = 1.0 - static_cast<double>(inputs_.k) / v;
  return v * (1.0 - std::pow(ratio, medoid_count));
}

double CoarseCostModel::ExpectedIndexListLength(double medoid_count) const {
  // Eq (5): E[Y] = sum_i M * f(i; s, v')^2 = M * H_{v',2s} / H_{v',s}^2.
  const double v_prime = ExpectedDistinctMedoidItems(medoid_count);
  const auto v_items = static_cast<uint64_t>(std::max(1.0, v_prime));
  return medoid_count * ZipfSquaredMass(v_items, inputs_.zipf_s);
}

CostBreakdown CoarseCostModel::Predict(double theta, double theta_c) const {
  const double medoids = ExpectedMedoidCount(theta_c);
  const double list_len = ExpectedIndexListLength(medoids);
  const double k = static_cast<double>(inputs_.k);

  CostBreakdown cost;
  // Table 3, "Find medoids for query": merging k index lists plus a
  // Footrule call per retrieved medoid.
  const double merged_entries = k * list_len;
  cost.filter_ns = merged_entries * inputs_.calib.merge_ns_per_entry +
                   merged_entries * inputs_.calib.footrule_ns;
  // Table 3, "Validation of retrieved rankings" (Eqs 3-4): the candidate
  // rankings of all qualifying partitions.
  const double candidates =
      static_cast<double>(inputs_.n) * inputs_.profile.P(theta + theta_c);
  cost.validate_ns = candidates * inputs_.calib.footrule_ns;
  return cost;
}

CoarseCostModel::TuneResult CoarseCostModel::Tune(
    double theta, std::span<const double> theta_c_grid) const {
  TuneResult result;
  TOPK_DCHECK(!theta_c_grid.empty());
  bool first = true;
  for (double theta_c : theta_c_grid) {
    const CostBreakdown cost = Predict(theta, theta_c);
    result.series.push_back(TunePoint{theta_c, cost});
    if (first || cost.total_ns() < result.best_cost.total_ns()) {
      result.best_theta_c = theta_c;
      result.best_cost = cost;
      first = false;
    }
  }
  return result;
}

std::vector<double> MakeGrid(double lo, double hi, double step) {
  std::vector<double> grid;
  for (double x = lo; x <= hi + 1e-12; x += step) grid.push_back(x);
  return grid;
}

}  // namespace topk
