// Runtime calibration of the cost model's unit costs (Section 5):
// CostFootrule(k), the wall time of one Footrule evaluation, and
// Costmerge(k, size), modeled as a per-posting-entry merge cost. Both are
// measured on the fly with short microbenchmarks so the model speaks the
// same "runtime cost" unit as the measured curves in Figure 3.

#ifndef TOPK_COSTMODEL_CALIBRATION_H_
#define TOPK_COSTMODEL_CALIBRATION_H_

#include <cstdint>

#include "core/rng.h"

namespace topk {

struct Calibration {
  /// Nanoseconds per Footrule distance call at the calibrated k.
  double footrule_ns = 0;
  /// Nanoseconds per posting entry during list merging (scan + dedup).
  double merge_ns_per_entry = 0;
};

/// Measures both unit costs for rankings of size k. Deterministic inputs
/// from `seed`; takes a few milliseconds.
Calibration Calibrate(uint32_t k, uint64_t seed = 12345);

}  // namespace topk

#endif  // TOPK_COSTMODEL_CALIBRATION_H_
