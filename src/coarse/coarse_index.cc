#include "coarse/coarse_index.h"

#include <algorithm>
#include <limits>

#include "cluster/bk_partitioner.h"
#include "cluster/cn_partitioner.h"
#include "core/footrule.h"
#include "core/rng.h"
#include "metric/knn.h"

namespace topk {

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kBkStrict:
      return "bk_strict";
    case PartitionerKind::kBkSubtree:
      return "bk_subtree";
    case PartitionerKind::kChavezNavarro:
      return "chavez_navarro";
  }
  return "unknown";
}

CoarseIndex CoarseIndex::Build(const RankingStore* store,
                               const CoarseOptions& options,
                               Statistics* stats) {
  const RawDistance theta_c_raw = RawThreshold(options.theta_c, store->k());
  Partitioning partitioning;
  switch (options.partitioner) {
    case PartitionerKind::kBkStrict:
      partitioning =
          BkPartition(*store, theta_c_raw, BkPartitionMode::kStrict, stats);
      break;
    case PartitionerKind::kBkSubtree:
      partitioning =
          BkPartition(*store, theta_c_raw, BkPartitionMode::kSubtree, stats);
      break;
    case PartitionerKind::kChavezNavarro: {
      Rng rng(options.seed);
      partitioning = CnPartition(*store, theta_c_raw, &rng, stats);
      break;
    }
  }
  return BuildFromPartitioning(store, options, std::move(partitioning),
                               stats);
}

CoarseIndex CoarseIndex::BuildFromPartitioning(const RankingStore* store,
                                               const CoarseOptions& options,
                                               Partitioning partitioning,
                                               Statistics* stats) {
  CoarseIndex index(store, options);
  index.partitioning_ = std::move(partitioning);
  index.max_radius_ = index.partitioning_.max_radius();

  index.medoids_.reserve(index.partitioning_.partitions.size());
  index.trees_.reserve(index.partitioning_.partitions.size());
  for (const Partition& p : index.partitioning_.partitions) {
    TOPK_DCHECK(!p.members.empty() && p.members.front() == p.medoid);
    index.medoids_.push_back(p.medoid);
    index.trees_.push_back(BkTree::Build(store, p.members, stats));
  }
  index.medoid_index_ = PlainInvertedIndex::BuildSubset(*store,
                                                        index.medoids_);
  return index;
}

std::vector<RankingId> CoarseIndex::Query(const PreparedQuery& query,
                                          RawDistance theta_raw,
                                          CoarseScratch* scratch,
                                          Statistics* stats,
                                          PhaseTimes* phases) const {
  const uint32_t k = store_->k();
  Stopwatch watch;

  // --- Filter phase: find medoids within theta + radius of the query. ---
  std::vector<RankingId>& candidates = scratch->filter.candidates;
  const RawDistance relaxed = theta_raw + max_radius_;
  if (relaxed >= MaxDistance(k)) {
    // Medoids sharing no item with the query could qualify but are
    // invisible to the inverted index: scan the medoid set instead.
    candidates.resize(medoids_.size());
    for (uint32_t pid = 0; pid < medoids_.size(); ++pid) {
      candidates[pid] = pid;
    }
  } else {
    FilterPhase(medoid_index_, query.view(), relaxed, options_.drop,
                medoids_.size(), &scratch->filter, stats);
  }
  AddTicker(stats, Ticker::kCandidates, candidates.size());

  // Distance check on retrieved medoids still belongs to the filter cost
  // in the paper's model (Table 3, "Find medoids for query"). The batched
  // validator binds the query rank table once; medoid probes and the
  // partition-tree traversals below all reuse it.
  scratch->validator.BindQuery(query.view(),
                               static_cast<size_t>(store_->max_item()) + 1);
  struct Probe {
    uint32_t pid;
    RawDistance medoid_dist;
  };
  std::vector<Probe> probes;
  for (uint32_t pid : candidates) {
    AddTicker(stats, Ticker::kDistanceCalls);
    const RawDistance d =
        scratch->validator.Distance(store_->view(medoids_[pid]));
    if (d <= theta_raw + partitioning_.partitions[pid].radius) {
      probes.push_back(Probe{pid, d});
    }
  }
  if (phases != nullptr) phases->filter_ms += watch.ElapsedMillis();

  // --- Validate phase: range-query each qualifying partition's BK-tree
  // with the original theta, reusing the medoid distance as root. ---
  watch.Restart();
  std::vector<RankingId> results;
  for (const Probe& probe : probes) {
    AddTicker(stats, Ticker::kPartitionsProbed);
    trees_[probe.pid].RangeQueryWithRootDistance(scratch->validator,
                                                 theta_raw,
                                                 probe.medoid_dist, stats,
                                                 &results);
  }
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  if (phases != nullptr) phases->validate_ms += watch.ElapsedMillis();
  return results;
}

std::vector<Neighbor> CoarseIndex::Knn(const PreparedQuery& query, size_t j,
                                       Statistics* stats) const {
  std::vector<Neighbor> best;  // max-heap, worst admitted on top
  auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  auto bound = [&]() {
    return best.size() == j ? best.front().distance
                            : std::numeric_limits<RawDistance>::max();
  };
  auto offer = [&](RankingId id, RawDistance d) {
    const Neighbor candidate{id, d};
    if (best.size() < j) {
      best.push_back(candidate);
      std::push_heap(best.begin(), best.end(), less);
    } else if (less(candidate, best.front())) {
      std::pop_heap(best.begin(), best.end(), less);
      best.back() = candidate;
      std::push_heap(best.begin(), best.end(), less);
    }
  };

  if (j > 0 && !medoids_.empty()) {
    // Medoid distances give an optimistic bound per partition: any member
    // tau satisfies d(q, tau) >= d(q, medoid) - radius.
    struct Probe {
      RawDistance optimistic;
      RawDistance medoid_dist;
      uint32_t pid;
    };
    std::vector<Probe> probes;
    probes.reserve(medoids_.size());
    const SortedRankingView q = query.sorted_view();
    for (uint32_t pid = 0; pid < medoids_.size(); ++pid) {
      AddTicker(stats, Ticker::kDistanceCalls);
      const RawDistance d =
          FootruleDistance(q, store_->sorted(medoids_[pid]));
      const RawDistance radius = partitioning_.partitions[pid].radius;
      probes.push_back(Probe{d > radius ? d - radius : 0, d, pid});
    }
    std::sort(probes.begin(), probes.end(),
              [](const Probe& a, const Probe& b) {
                return a.optimistic < b.optimistic;
              });

    for (const Probe& probe : probes) {
      if (probe.optimistic > bound()) break;
      AddTicker(stats, Ticker::kPartitionsProbed);
      // Range-query the partition tree at the current bound and feed the
      // matches into the heap; the bound only shrinks, so this is exact.
      const RawDistance radius_budget = bound();
      std::vector<RankingId> members;
      trees_[probe.pid].RangeQueryWithRootDistance(
          q, radius_budget == std::numeric_limits<RawDistance>::max()
                 ? MaxDistance(store_->k())
                 : radius_budget,
          probe.medoid_dist, stats, &members);
      for (RankingId id : members) {
        AddTicker(stats, Ticker::kDistanceCalls);
        offer(id, FootruleDistance(q, store_->sorted(id)));
      }
    }
  }
  std::sort(best.begin(), best.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.id < b.id;
            });
  return best;
}

size_t CoarseIndex::MemoryUsage() const {
  size_t bytes = medoid_index_.MemoryUsage() +
                 medoids_.capacity() * sizeof(RankingId) +
                 partitioning_.partitions.capacity() * sizeof(Partition);
  for (const Partition& p : partitioning_.partitions) {
    bytes += p.members.capacity() * sizeof(RankingId);
  }
  for (const BkTree& tree : trees_) bytes += tree.MemoryUsage();
  return bytes;
}

}  // namespace topk
