// The coarse hybrid index (Section 4) — the paper's contribution.
//
// Rankings are grouped into partitions of bounded radius around medoid
// rankings; only the medoids enter an inverted index, shrinking it by the
// (near-)duplicate factor of the collection, while each partition is
// represented by its own BK-tree so validation exploits the metric.
//
// Querying (Algorithm 1 + Lemma 1): the inverted index retrieves all
// medoids within theta + radius of the query — any result ranking tau with
// d(tau, q) <= theta satisfies d(medoid(tau), q) <= theta + radius by the
// triangle inequality, so no result can be missed. Each qualifying
// partition's BK-tree is then range-queried with the original theta; the
// medoid's distance, already computed during filtering, is reused as the
// root distance.
//
// Exactness guardrails beyond the paper:
//  * Each partition records its realized radius r_P; retrieval uses
//    theta + max_P r_P globally and theta + r_P per partition. Under the
//    strict partitioner r_P <= theta_C and this is precisely Lemma 1.
//  * The paper requires theta + theta_C < dmax because a medoid sharing no
//    item with the query is invisible to an inverted index. When the
//    relaxed threshold reaches dmax (possible at the far end of the
//    Figure 7 sweep), the engine transparently falls back to scanning the
//    medoid set, preserving exactness at a measurable cost.

#ifndef TOPK_COARSE_COARSE_INDEX_H_
#define TOPK_COARSE_COARSE_INDEX_H_

#include <vector>

#include "cluster/partitioner.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/drop_policy.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "metric/bk_tree.h"

namespace topk {

enum class PartitionerKind { kBkStrict, kBkSubtree, kChavezNavarro };

const char* PartitionerKindName(PartitionerKind kind);

struct CoarseOptions {
  /// Normalized partitioning threshold theta_C in [0, 1].
  double theta_c = 0.5;
  PartitionerKind partitioner = PartitionerKind::kBkStrict;
  /// Drop policy applied to the medoid retrieval (Coarse+Drop).
  DropMode drop = DropMode::kNone;
  /// Seed for the Chavez-Navarro partitioner.
  uint64_t seed = 42;
};

/// Per-caller query scratch (the kernel filter scratch for medoid dedup
/// plus the batched validator's query rank table). The index itself is
/// immutable after Build, so concurrent queries are race-free as long as
/// each thread brings its own CoarseScratch — the serving layer's
/// inter-query parallelism relies on exactly this.
struct CoarseScratch {
  FilterScratch filter;
  FootruleValidator validator;
};

class CoarseIndex {
 public:
  /// Builds the partitioning, the per-partition BK-trees and the medoid
  /// inverted index. Construction distance calls are tallied into `stats`.
  static CoarseIndex Build(const RankingStore* store,
                           const CoarseOptions& options,
                           Statistics* stats = nullptr);

  /// Builds around an externally produced partitioning (partition members
  /// must list the medoid first).
  static CoarseIndex BuildFromPartitioning(const RankingStore* store,
                                           const CoarseOptions& options,
                                           Partitioning partitioning,
                                           Statistics* stats = nullptr);

  /// Exact range query; `phases` (optional) receives the filter/validate
  /// wall-time split reported in Figures 3 and 7. Uses the index's
  /// internal scratch: callers sharing one CoarseIndex across threads must
  /// use the external-scratch overload instead.
  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr,
                               PhaseTimes* phases = nullptr) const {
    return Query(query, theta_raw, &scratch_, stats, phases);
  }

  /// Same query, but with caller-provided scratch: safe to call from many
  /// threads concurrently on one index (one scratch per thread).
  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw, CoarseScratch* scratch,
                               Statistics* stats,
                               PhaseTimes* phases) const;

  /// Exact j-nearest-neighbour query (extension; the paper evaluates
  /// range queries only). Partitions are probed best-first by the
  /// optimistic bound max(0, d(q, medoid) - radius) and abandoned once
  /// the bound exceeds the current j-th best distance.
  std::vector<struct Neighbor> Knn(const PreparedQuery& query, size_t j,
                                   Statistics* stats = nullptr) const;

  const Partitioning& partitioning() const { return partitioning_; }
  size_t num_partitions() const { return partitioning_.partitions.size(); }
  RawDistance max_radius() const { return max_radius_; }
  const CoarseOptions& options() const { return options_; }
  size_t MemoryUsage() const;

 private:
  CoarseIndex(const RankingStore* store, const CoarseOptions& options)
      : store_(store), options_(options) {}

  const RankingStore* store_;
  CoarseOptions options_;
  Partitioning partitioning_;
  std::vector<RankingId> medoids_;  // medoid per partition (parallel array)
  PlainInvertedIndex medoid_index_;  // posting entries are partition indices
  std::vector<BkTree> trees_;        // one BK-tree per partition
  RawDistance max_radius_ = 0;
  mutable CoarseScratch scratch_;  // backs the scratch-less Query overload
};

}  // namespace topk

#endif  // TOPK_COARSE_COARSE_INDEX_H_
