// Batch query processing — the paper's Section 8 outlook, implemented:
// "the query batch can be partitioned into related medoid rankings to
// prune the search space of potential result rankings".
//
// Queries are clustered with the same fixed-radius random-medoid scheme
// used on the data side. For a query partition with medoid query q_m and
// radius r, one index probe at threshold theta + r yields a candidate set
// that provably contains every member's results: d(tau, q) <= theta
// implies d(tau, q_m) <= theta + d(q, q_m) <= theta + r by the triangle
// inequality. Each member query then validates only those candidates.
// Related queries (the common case in query-suggestion workloads, where
// the same information need arrives repeatedly) thus share one filter pass
// instead of paying k posting-list scans each.

#ifndef TOPK_COARSE_BATCH_QUERY_H_
#define TOPK_COARSE_BATCH_QUERY_H_

#include <span>
#include <vector>

#include "coarse/coarse_index.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

struct BatchQueryOptions {
  /// Normalized clustering radius for the query batch. 0 groups only
  /// identical queries; larger values share more filter passes at the
  /// price of looser (larger) shared candidate sets.
  double batch_theta_c = 0.1;
  /// Seed for the random-medoid clustering of the batch.
  uint64_t seed = 17;
};

class BatchQueryProcessor {
 public:
  /// `store` and `index` must outlive the processor.
  BatchQueryProcessor(const RankingStore* store, const CoarseIndex* index,
                      BatchQueryOptions options = {});

  /// Answers every query exactly; results[i] corresponds to queries[i],
  /// each in ascending id order (same contract as the per-query engines).
  std::vector<std::vector<RankingId>> QueryBatch(
      std::span<const PreparedQuery> queries, RawDistance theta_raw,
      Statistics* stats = nullptr);

 private:
  const RankingStore* store_;
  const CoarseIndex* index_;
  BatchQueryOptions options_;
};

}  // namespace topk

#endif  // TOPK_COARSE_BATCH_QUERY_H_
