#include "coarse/batch_query.h"

#include <algorithm>

#include "cluster/cn_partitioner.h"
#include "core/footrule.h"
#include "core/rng.h"

namespace topk {

BatchQueryProcessor::BatchQueryProcessor(const RankingStore* store,
                                         const CoarseIndex* index,
                                         BatchQueryOptions options)
    : store_(store), index_(index), options_(options) {}

std::vector<std::vector<RankingId>> BatchQueryProcessor::QueryBatch(
    std::span<const PreparedQuery> queries, RawDistance theta_raw,
    Statistics* stats) {
  std::vector<std::vector<RankingId>> results(queries.size());
  if (queries.empty()) return results;
  const uint32_t k = store_->k();

  // Cluster the batch itself: load the query rankings into a scratch
  // store and run the fixed-radius random-medoid partitioner over it.
  RankingStore batch_store(k);
  for (const PreparedQuery& query : queries) {
    batch_store.AddUnchecked(query.view().items());
  }
  Rng rng(options_.seed);
  const RawDistance batch_radius = RawThreshold(options_.batch_theta_c, k);
  const Partitioning clusters = CnPartition(batch_store, batch_radius, &rng);

  for (const Partition& cluster : clusters.partitions) {
    const PreparedQuery& medoid_query = queries[cluster.medoid];
    if (cluster.members.size() == 1) {
      results[cluster.medoid] =
          index_->Query(medoid_query, theta_raw, stats);
      continue;
    }

    // One relaxed probe covers the whole cluster (triangle inequality).
    const std::vector<RankingId> shared = index_->Query(
        medoid_query, theta_raw + cluster.radius, stats);

    for (RankingId member : cluster.members) {
      const PreparedQuery& query = queries[member];
      std::vector<RankingId>& out = results[member];
      if (member == cluster.medoid) {
        // The medoid's own results only need the threshold re-applied —
        // the probe already computed every candidate's exact distance, so
        // re-validating against the store is still one Footrule each.
        out.reserve(shared.size());
      }
      const SortedRankingView qs = query.sorted_view();
      for (RankingId candidate : shared) {
        AddTicker(stats, Ticker::kDistanceCalls);
        if (FootruleDistance(qs, store_->sorted(candidate)) <= theta_raw) {
          out.push_back(candidate);
        }
      }
      std::sort(out.begin(), out.end());
      AddTicker(stats, Ticker::kResults, out.size());
    }
  }
  return results;
}

}  // namespace topk
