// Batched one-vs-many Footrule validation (v2: vectorized).
//
// The scalar kernel (core/footrule.h) merges two item-sorted k-arrays per
// call — optimal for one pair, but a validate phase evaluates ONE query
// against hundreds of candidates, re-walking the query side every time
// through a three-way unpredictable branch. The batched validator hoists
// the query out of the loop: BindQuery() publishes an epoch-stamped
// item -> query-rank table once, after which each candidate costs a single
// pass over its own k items with one table probe per item and no merge
// branching.
//
// Identity (the decomposition behind the kernel): with Sq = k(k+1)/2,
//
//   F(q, c) = sum_{p} contrib(c[p], p) + (Sq - qcover)
//   contrib(item, p) = |rank_q(item) - p|   when item is in q
//                    = k - p                otherwise
//   qcover          = sum of (k - rank_q(item)) over matched items
//
// Every contrib term is >= 0, so the running sum is a monotone lower bound
// of the final distance: ValidateSpan abandons a candidate as soon as the
// partial sum exceeds theta (the "running lower bound vs theta" early
// exit), which no merge-order argument is needed to justify.
//
// v2 vector path: when a SIMD backend is compiled in (kernel/simd.h) and
// the caller has not forced the scalar path, ValidateSpan/ValidateAll
// process kSimdLanes candidates at a time (kernel/footrule_simd.h). Lanes
// are SoA row offsets into the store's contiguous item matrix — items are
// gathered straight from RankingStore::flat_items() and query ranks from
// a flat 32-bit rank lane table BindQuery maintains alongside the scalar
// slot table (previous ranks are unpublished explicitly, so absent reads
// are a sentinel, not an epoch check). An early staging-transpose design
// was measured and rejected: it paid for all k positions up front while
// the early exit — here a per-batch running-lower-bound mask — typically
// consumes a fraction of them. Remainder candidates (span sizes not
// divisible by the lane width) always run the scalar code, which stays
// the reference in every build.
//
// Exactness: the arithmetic is the same integers the scalar kernel sums in
// a different order, so accept/reject decisions (and Distance() values)
// are bit-identical — scalar pinned against FootruleDistance by
// kernel_filter_test, SIMD pinned against the scalar path by
// kernel_simd_test, and both by every fuzz differential.
//
// Ticker contract: ValidateSpan/ValidateAll tick kDistanceCalls once per
// candidate (an early-exited candidate still "costs" one distance
// evaluation in the paper's DFC accounting, exactly as the scalar loop it
// replaced did); kCandidates/kResults stay with the caller.
//
// Epoch discipline (scalar table): slot = epoch << 32 | rank, and epoch 0
// is RESERVED as the never-matches stamp — BindQuery skips it when the
// 32-bit counter wraps, which is what makes the zero-fill in
// EnsureItemCapacity epoch-safe: a zero slot can alias "epoch 0, rank 0"
// but epoch 0 is never current while a query is bound.
// set_epoch_for_testing() exists so the wrap path is actually covered by
// a test instead of requiring 2^32 binds.

#ifndef TOPK_KERNEL_FOOTRULE_BATCH_H_
#define TOPK_KERNEL_FOOTRULE_BATCH_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/deadline.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "kernel/footrule_simd.h"
#include "kernel/simd.h"

// Whether a vector backend was compiled (kernel/simd.h resolved one from
// TOPK_SIMD + the target ISA); gates the dispatch branches below so the
// scalar-only build contains no dead lane-table code.
#if defined(TOPK_SIMD_AVX2) || defined(TOPK_SIMD_SSE42) || \
    defined(TOPK_SIMD_NEON)
#define TOPK_SIMD_DISPATCH 1
#else
#define TOPK_SIMD_DISPATCH 0
#endif

namespace topk {

class FootruleValidator {
 public:
  FootruleValidator() = default;

  /// "No cap" sentinel for BindQuery's item_domain.
  static constexpr size_t kUnboundedDomain = SIZE_MAX;

  /// Largest k the vector path accepts: keeps every 32-bit lane
  /// accumulator below k*(k+1) <= INT32_MAX with a wide margin (real
  /// rankings have k in the tens), and real ranks well under the absent
  /// sentinel.
  static constexpr uint32_t kMaxSimdK = 1u << 14;

  /// Grows the rank table to cover item ids < `capacity`. Lookups of
  /// larger ids are handled (absent), at the price of a bounds branch the
  /// table hit path never takes. The fills are epoch-safe: epoch 0 is
  /// reserved (never current) so zeroed scalar slots read as absent, and
  /// the SIMD lane table grows with the explicit absent sentinel.
  void EnsureItemCapacity(size_t capacity) {
    if (capacity > slots_.size()) {
      slots_.resize(capacity, 0);
#if TOPK_SIMD_DISPATCH
      lane_ranks_.resize(capacity, kernel::kAbsentRank);
#endif
    }
  }

  /// Publishes `query`'s item -> rank table; O(k) per bind (epoch-stamped
  /// slots, no clearing; the SIMD lane table unpublishes the previous
  /// query's k ranks explicitly). `item_domain` caps the table size —
  /// pass the store's max_item() + 1 so a malformed or adversarial query
  /// item id cannot force a giant allocation that lives as long as the
  /// validator. Query items >= item_domain are simply never published: no
  /// candidate the store can produce contains them, so they can only be
  /// absent and the (Sq - qcover) term accounts for them exactly —
  /// distances are unchanged.
  void BindQuery(RankingView query, size_t item_domain = kUnboundedDomain) {
    k_ = query.k();
    half_absent_ = static_cast<RawDistance>(k_) * (k_ + 1) / 2;
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: clear lazily and restart past the
      std::fill(slots_.begin(), slots_.end(), 0);  // reserved epoch 0
      epoch_ = 1;
    }
    ItemId max_item = 0;
    for (ItemId item : query.items()) max_item = std::max(max_item, item);
    EnsureItemCapacity(
        std::min(static_cast<size_t>(max_item) + 1, item_domain));
#if TOPK_SIMD_DISPATCH
    for (const ItemId item : published_) {
      lane_ranks_[item] = kernel::kAbsentRank;
    }
    published_.clear();
#endif
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = query[p];
      if (item < item_domain) {
        slots_[item] = (static_cast<uint64_t>(epoch_) << 32) | p;
#if TOPK_SIMD_DISPATCH
        lane_ranks_[item] = p;
        published_.push_back(item);
#endif
      }
    }
  }

  /// Current rank-table coverage (tests assert the domain cap holds).
  size_t table_capacity() const { return slots_.size(); }

  uint32_t k() const { return k_; }

  /// Compiled vector backend ("avx2", "sse4.2", "neon", or "scalar").
  static constexpr const char* SimdBackendName() { return kSimdBackendName; }

  /// Whether a vector backend is compiled in at all.
  static constexpr bool SimdCompiled() { return kSimdLanes > 1; }

  /// Forces the scalar path even when a vector backend is compiled
  /// (differential tests and the scalar-vs-SIMD bench rows use this).
  void set_use_simd(bool use_simd) { use_simd_ = use_simd; }
  bool use_simd() const { return use_simd_; }

  /// Test-only epoch seam: lets a test park the counter at UINT32_MAX so
  /// the next BindQuery exercises the wrap path (clear + restart at 1)
  /// without 2^32 binds. Epoch 0 is the reserved never-matches stamp;
  /// setting it here would violate the invariant BindQuery maintains.
  void set_epoch_for_testing(uint32_t epoch) {
    TOPK_DCHECK(epoch != 0 && "epoch 0 is reserved as never-current");
    epoch_ = epoch;
  }
  uint32_t epoch_for_testing() const { return epoch_; }

  /// Exact Footrule distance from the bound query to `candidate`
  /// (position-order view, same k). Equals FootruleDistance on the sorted
  /// views.
  RawDistance Distance(RankingView candidate) const {
    TOPK_DCHECK(candidate.k() == k_);
    TOPK_DCHECK(epoch_ > 0 || k_ == 0);
    RawDistance running = 0;
    RawDistance qcover = 0;
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = candidate[p];
      const uint64_t slot = item < slots_.size() ? slots_[item] : 0;
      if ((slot >> 32) == epoch_) {
        const Rank rq = static_cast<Rank>(slot);
        running += rq > p ? rq - p : p - rq;
        qcover += k_ - rq;
      } else {
        running += k_ - p;
      }
    }
    return running + (half_absent_ - qcover);
  }

  /// Appends every candidate within `theta_raw` of the bound query to
  /// `out`, in candidate order. Full lane-width batches run the vector
  /// kernel when available; the remainder (and every candidate when SIMD
  /// is off) early-exits scalar once its running lower bound exceeds
  /// theta. Ticks kDistanceCalls per candidate (charged up front: an
  /// abandoned run's partial output is discarded by the caller anyway).
  /// `control` (optional) is polled per lane batch / per scalar
  /// candidate — ShouldStop amortizes its own clock reads — and a stop
  /// returns immediately with `out` truncated mid-span; the owning layer
  /// maps the stop to a Status and must not publish the partial answer.
  void ValidateSpan(const RankingStore& store,
                    std::span<const RankingId> candidates,
                    RawDistance theta_raw, std::vector<RankingId>* out,
                    Statistics* stats, QueryControl* control = nullptr) {
    AddTicker(stats, Ticker::kDistanceCalls, candidates.size());
    size_t i = 0;
#if TOPK_SIMD_DISPATCH
    if (SimdUsable(store)) {
      // Cover the store's whole item domain so the lane gathers need no
      // per-position bounds mask (new slots read absent; distances are
      // unchanged).
      EnsureItemCapacity(static_cast<size_t>(store.max_item()) + 1);
      const ItemId* flat = store.flat_items().data();
      alignas(32) uint32_t rows[kSimdLanes];
      for (; i + kSimdLanes <= candidates.size(); i += kSimdLanes) {
        if (control != nullptr && control->ShouldStop()) return;
        for (unsigned c = 0; c < kSimdLanes; ++c) {
          rows[c] = candidates[i + c] * k_;
        }
        EmitAcceptedLanes(ValidateRowLanes(flat, rows, theta_raw),
                          &candidates[i], out);
      }
    }
#endif
    for (; i < candidates.size(); ++i) {
      if (control != nullptr && control->ShouldStop()) return;
      if (WithinThreshold(store.view(candidates[i]), theta_raw)) {
        out->push_back(candidates[i]);
      }
    }
  }

  /// ValidateSpan over every id in the store (the LinearScan hot loop).
  void ValidateAll(const RankingStore& store, RawDistance theta_raw,
                   std::vector<RankingId>* out, Statistics* stats) {
    AddTicker(stats, Ticker::kDistanceCalls, store.size());
    RankingId id = 0;
#if TOPK_SIMD_DISPATCH
    if (SimdUsable(store)) {
      EnsureItemCapacity(static_cast<size_t>(store.max_item()) + 1);
      const ItemId* flat = store.flat_items().data();
      alignas(32) uint32_t rows[kSimdLanes];
      for (; id + kSimdLanes <= store.size(); id += kSimdLanes) {
        for (unsigned c = 0; c < kSimdLanes; ++c) {
          rows[c] = (id + c) * k_;
        }
        const uint32_t accepted = ValidateRowLanes(flat, rows, theta_raw);
        for (uint32_t mask = accepted; mask != 0; mask &= mask - 1) {
          out->push_back(id + static_cast<RankingId>(
                                  std::countr_zero(mask)));
        }
      }
    }
#endif
    for (; id < store.size(); ++id) {
      if (WithinThreshold(store.view(id), theta_raw)) out->push_back(id);
    }
  }

  /// One candidate of ValidateSpan: true iff F(q, candidate) <= theta_raw.
  /// This scalar loop is the reference implementation in every build.
  bool WithinThreshold(RankingView candidate, RawDistance theta_raw) const {
    TOPK_DCHECK(candidate.k() == k_);
    TOPK_DCHECK(epoch_ > 0 || k_ == 0);
    RawDistance running = 0;
    RawDistance qcover = 0;
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = candidate[p];
      const uint64_t slot = item < slots_.size() ? slots_[item] : 0;
      if ((slot >> 32) == epoch_) {
        const Rank rq = static_cast<Rank>(slot);
        running += rq > p ? rq - p : p - rq;
        qcover += k_ - rq;
      } else {
        running += k_ - p;
      }
      if (running > theta_raw) return false;  // monotone lower bound
    }
    return running + (half_absent_ - qcover) <= theta_raw;
  }

 private:
#if TOPK_SIMD_DISPATCH
  /// The vector path needs a bound query, a k within the lane-arithmetic
  /// bounds, and both gather index domains inside the signed-32-bit range
  /// the hardware gathers use: row offsets (store.size() * k) for the
  /// item gather AND item ids themselves (store.max_item()) for the rank
  /// table gather — an item id >= 2^31 would become a negative index.
  bool SimdUsable(const RankingStore& store) const {
    return use_simd_ && k_ > 0 && k_ <= kMaxSimdK && epoch_ > 0 &&
           static_cast<uint64_t>(store.size()) * k_ <=
               static_cast<uint64_t>(INT32_MAX) &&
           static_cast<uint64_t>(store.max_item()) <=
               static_cast<uint64_t>(INT32_MAX);
  }

  uint32_t ValidateRowLanes(const ItemId* flat, const uint32_t* rows,
                            RawDistance theta_raw) const {
    return kernel::ValidateLanes(lane_ranks_.data(), k_, half_absent_, flat,
                                 rows, theta_raw);
  }

  static void EmitAcceptedLanes(uint32_t accepted, const RankingId* ids,
                                std::vector<RankingId>* out) {
    // countr_zero walks set bits in ascending lane order, preserving
    // candidate order in the output.
    for (uint32_t mask = accepted; mask != 0; mask &= mask - 1) {
      out->push_back(ids[std::countr_zero(mask)]);
    }
  }
#endif

  /// slot = epoch << 32 | rank; a slot is live only under the current
  /// epoch, so rebinding is O(k) and never clears the table. Epoch 0 is
  /// reserved (see the header comment).
  std::vector<uint64_t> slots_;
#if TOPK_SIMD_DISPATCH
  /// Flat 32-bit rank lanes for the vector kernel (kAbsentRank when the
  /// item is not in the bound query); published_ remembers which slots
  /// the current bind wrote so the next bind can unpublish them in O(k).
  std::vector<uint32_t> lane_ranks_;
  std::vector<ItemId> published_;
#endif
  uint32_t epoch_ = 0;
  uint32_t k_ = 0;
  RawDistance half_absent_ = 0;  // Sq = k(k+1)/2
  bool use_simd_ = true;
};

}  // namespace topk

#endif  // TOPK_KERNEL_FOOTRULE_BATCH_H_
