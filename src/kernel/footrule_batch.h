// Batched one-vs-many Footrule validation.
//
// The scalar kernel (core/footrule.h) merges two item-sorted k-arrays per
// call — optimal for one pair, but a validate phase evaluates ONE query
// against hundreds of candidates, re-walking the query side every time
// through a three-way unpredictable branch. The batched validator hoists
// the query out of the loop: BindQuery() publishes an epoch-stamped
// item -> query-rank table once, after which each candidate costs a single
// pass over its own k items with one table probe per item and no merge
// branching.
//
// Identity (the decomposition behind the kernel): with Sq = k(k+1)/2,
//
//   F(q, c) = sum_{p} contrib(c[p], p) + (Sq - qcover)
//   contrib(item, p) = |rank_q(item) - p|   when item is in q
//                    = k - p                otherwise
//   qcover          = sum of (k - rank_q(item)) over matched items
//
// Every contrib term is >= 0, so the running sum is a monotone lower bound
// of the final distance: ValidateSpan abandons a candidate as soon as the
// partial sum exceeds theta (the "running lower bound vs theta" early
// exit), which no merge-order argument is needed to justify.
//
// Exactness: the arithmetic is the same integers the scalar kernel sums in
// a different order, so accept/reject decisions (and Distance() values)
// are bit-identical — pinned against FootruleDistance by kernel_filter_test
// and every fuzz differential.
//
// Ticker contract: ValidateSpan/ValidateAll tick kDistanceCalls once per
// candidate (an early-exited candidate still "costs" one distance
// evaluation in the paper's DFC accounting, exactly as the scalar loop it
// replaced did); kCandidates/kResults stay with the caller.

#ifndef TOPK_KERNEL_FOOTRULE_BATCH_H_
#define TOPK_KERNEL_FOOTRULE_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

class FootruleValidator {
 public:
  FootruleValidator() = default;

  /// "No cap" sentinel for BindQuery's item_domain.
  static constexpr size_t kUnboundedDomain = SIZE_MAX;

  /// Grows the rank table to cover item ids < `capacity`. Lookups of
  /// larger ids are handled (absent), at the price of a bounds branch the
  /// table hit path never takes.
  void EnsureItemCapacity(size_t capacity) {
    if (capacity > slots_.size()) slots_.resize(capacity, 0);
  }

  /// Publishes `query`'s item -> rank table; O(k) per bind (epoch-stamped
  /// slots, no clearing). `item_domain` caps the table size — pass the
  /// store's max_item() + 1 so a malformed or adversarial query item id
  /// cannot force a giant allocation that lives as long as the validator.
  /// Query items >= item_domain are simply never published: no candidate
  /// the store can produce contains them, so they can only be absent and
  /// the (Sq - qcover) term accounts for them exactly — distances are
  /// unchanged.
  void BindQuery(RankingView query, size_t item_domain = kUnboundedDomain) {
    k_ = query.k();
    half_absent_ = static_cast<RawDistance>(k_) * (k_ + 1) / 2;
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: clear lazily and restart
      std::fill(slots_.begin(), slots_.end(), 0);
      epoch_ = 1;
    }
    ItemId max_item = 0;
    for (ItemId item : query.items()) max_item = std::max(max_item, item);
    EnsureItemCapacity(
        std::min(static_cast<size_t>(max_item) + 1, item_domain));
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = query[p];
      if (item < item_domain) {
        slots_[item] = (static_cast<uint64_t>(epoch_) << 32) | p;
      }
    }
  }

  /// Current rank-table coverage (tests assert the domain cap holds).
  size_t table_capacity() const { return slots_.size(); }

  uint32_t k() const { return k_; }

  /// Exact Footrule distance from the bound query to `candidate`
  /// (position-order view, same k). Equals FootruleDistance on the sorted
  /// views.
  RawDistance Distance(RankingView candidate) const {
    TOPK_DCHECK(candidate.k() == k_);
    RawDistance running = 0;
    RawDistance qcover = 0;
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = candidate[p];
      const uint64_t slot = item < slots_.size() ? slots_[item] : 0;
      if ((slot >> 32) == epoch_) {
        const Rank rq = static_cast<Rank>(slot);
        running += rq > p ? rq - p : p - rq;
        qcover += k_ - rq;
      } else {
        running += k_ - p;
      }
    }
    return running + (half_absent_ - qcover);
  }

  /// Appends every candidate within `theta_raw` of the bound query to
  /// `out`, in candidate order. Each candidate early-exits once its
  /// running lower bound exceeds theta. Ticks kDistanceCalls per
  /// candidate.
  void ValidateSpan(const RankingStore& store,
                    std::span<const RankingId> candidates,
                    RawDistance theta_raw, std::vector<RankingId>* out,
                    Statistics* stats) const {
    AddTicker(stats, Ticker::kDistanceCalls, candidates.size());
    for (const RankingId id : candidates) {
      if (WithinThreshold(store.view(id), theta_raw)) out->push_back(id);
    }
  }

  /// ValidateSpan over every id in the store (the LinearScan hot loop).
  void ValidateAll(const RankingStore& store, RawDistance theta_raw,
                   std::vector<RankingId>* out, Statistics* stats) const {
    AddTicker(stats, Ticker::kDistanceCalls, store.size());
    for (RankingId id = 0; id < store.size(); ++id) {
      if (WithinThreshold(store.view(id), theta_raw)) out->push_back(id);
    }
  }

  /// One candidate of ValidateSpan: true iff F(q, candidate) <= theta_raw.
  bool WithinThreshold(RankingView candidate, RawDistance theta_raw) const {
    TOPK_DCHECK(candidate.k() == k_);
    RawDistance running = 0;
    RawDistance qcover = 0;
    for (Rank p = 0; p < k_; ++p) {
      const ItemId item = candidate[p];
      const uint64_t slot = item < slots_.size() ? slots_[item] : 0;
      if ((slot >> 32) == epoch_) {
        const Rank rq = static_cast<Rank>(slot);
        running += rq > p ? rq - p : p - rq;
        qcover += k_ - rq;
      } else {
        running += k_ - p;
      }
      if (running > theta_raw) return false;  // monotone lower bound
    }
    return running + (half_absent_ - qcover) <= theta_raw;
  }

 private:
  /// slot = epoch << 32 | rank; a slot is live only under the current
  /// epoch, so rebinding is O(k) and never clears the table.
  std::vector<uint64_t> slots_;
  uint32_t epoch_ = 0;
  uint32_t k_ = 0;
  RawDistance half_absent_ = 0;  // Sq = k(k+1)/2
};

}  // namespace topk

#endif  // TOPK_KERNEL_FOOTRULE_BATCH_H_
