// Shared F&V filter phase: posting-union + dedup over caller-owned scratch.
//
// Every union-validating path in the library — FilterValidateEngine,
// CoarseIndex's medoid retrieval, QueryFrontend's candidate-cache miss
// path — runs the same loop: pick the accessible posting lists (drop
// policy), scan them, and deduplicate ranking ids through an epoch-stamped
// VisitedSet. Until this header existed each caller carried its own copy,
// pinned together only by the fuzz differentials; now they all call
// FilterPhase and the loop exists once.
//
// Contract (bit-compatible with the historical loops, which
// kernel_filter_test pins):
//  * lists are selected by SelectLists(query, theta_raw, drop, ...) and
//    visited in ascending query-position order;
//  * candidates are appended in first-encounter order (NOT sorted — F&V
//    sorts its *results*, the frontend sorts the union before caching);
//  * kPostingEntriesScanned ticks once per scanned entry (counted per
//    list); kListsDropped ticks inside SelectLists; kCandidates is left to
//    the caller, whose phase accounting differs (the frontend counts
//    candidates in its validate step).
//
// The helper is generic over the index: anything with list(item) /
// list_length(item) works, with PostingEntryId() extracting the ranking id
// from plain (RankingId) and augmented (AugmentedEntry) entries alike. All
// indexes in the library share one structural guarantee the fast paths
// lean on: a posting list never repeats a ranking id (a ranking contains
// an item at most once).
//
// v2 sweep structure, in order of specificity:
//  * one surviving list: its ids ARE the union — copy, no visited set;
//  * two surviving lists of an id-sorted index (Index::kIdSortedLists):
//    emit the first list, then the second minus the first via a galloping
//    sorted merge — no epoch bump, no scattered stamp writes;
//  * general case: the epoch-stamped VisitedSet loop, with the next
//    posting list's arena lines and the upcoming entries' stamp words
//    software-prefetched ahead of use (the stamp probes are the one
//    genuinely random access pattern of the loop).
// All three produce byte-identical candidate sequences and tickers.

#ifndef TOPK_KERNEL_FILTER_PHASE_H_
#define TOPK_KERNEL_FILTER_PHASE_H_

#include <algorithm>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "core/posting_entry.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/drop_policy.h"
#include "invidx/visited_set.h"
#include "kernel/simd.h"

namespace topk {

/// Per-caller filter scratch: the dedup set plus the candidate list, both
/// reused across queries so the hot path never allocates.
struct FilterScratch {
  VisitedSet visited{0};
  std::vector<RankingId> candidates;
  /// Landing buffers for indexes that serve lists through
  /// DecodeList(item, scratch) instead of list(item) — the storage
  /// tier's block-compressed arena. At most two lists are live at once
  /// (the sorted two-list union), so two grow-only buffers cover every
  /// sweep path with zero allocation inside the per-list loops. Plain
  /// and rank-augmented decoded indexes land in separate buffers (the
  /// entry types differ); an index picks its pair via its PostingEntry
  /// typedef, see DecodeLandingA/B.
  std::vector<RankingId> decode_a;
  std::vector<RankingId> decode_b;
  std::vector<AugmentedEntry> decode_aug_a;
  std::vector<AugmentedEntry> decode_aug_b;
};

inline RankingId PostingEntryId(RankingId entry) { return entry; }
/// Rank-augmented entry types expose the ranking id as a member.
template <typename Entry>
RankingId PostingEntryId(const Entry& entry) {
  return entry.id;
}

/// Whether the index declares id-sorted posting lists (plain and
/// augmented do; the blocked index's lists are rank-major and must not
/// take the sorted-merge fast path).
template <typename Index>
constexpr bool IndexHasIdSortedLists() {
  if constexpr (requires { Index::kIdSortedLists; }) {
    return Index::kIdSortedLists;
  } else {
    return false;
  }
}

/// Whether the index serves posting lists through DecodeList(item,
/// scratch) — the storage tier's compressed arena — instead of the
/// zero-cost list(item) span of the RAM-resident CSR arena. Decoded
/// lists land in the FilterScratch buffers; the candidate stream and
/// tickers stay bit-identical either way.
template <typename Index>
constexpr bool IndexHasDecodedLists() {
  if constexpr (requires { Index::kDecodedLists; }) {
    return Index::kDecodedLists;
  } else {
    return false;
  }
}

/// Whether a decoded-lists index additionally supports range-restricted
/// partial decode — DecodeListInRange(item, id_lo, id_hi, landing,
/// skip) returning a superset span of the list's entries in the id
/// range, skipping disjoint compressed blocks on metadata alone.
template <typename Index, typename Landing>
constexpr bool IndexHasRangeDecode() {
  return requires(const Index& index, Landing* landing, BlockSkipStats* s) {
    index.DecodeListInRange(ItemId{0}, RankingId{0}, RankingId{0}, landing,
                            s);
  };
}

/// Whether a decoded-lists index serves rank-augmented entries (its
/// PostingEntry typedef names AugmentedEntry); plain RankingId lists
/// otherwise.
template <typename Index>
constexpr bool IndexHasAugmentedEntries() {
  if constexpr (requires { typename Index::PostingEntry; }) {
    return std::is_same_v<typename Index::PostingEntry, AugmentedEntry>;
  } else {
    return false;
  }
}

/// The landing buffer matching the index's decoded entry type.
template <typename Index>
auto* DecodeLandingA(FilterScratch* scratch) {
  if constexpr (IndexHasAugmentedEntries<Index>()) {
    return &scratch->decode_aug_a;
  } else {
    return &scratch->decode_a;
  }
}

template <typename Index>
auto* DecodeLandingB(FilterScratch* scratch) {
  if constexpr (IndexHasAugmentedEntries<Index>()) {
    return &scratch->decode_aug_b;
  } else {
    return &scratch->decode_b;
  }
}

namespace filter_detail {

/// How many entries ahead the general loop warms the VisitedSet stamp of.
/// Far enough to cover the dedup probe's cache-miss latency, near enough
/// that the line is still resident when the probe arrives.
inline constexpr size_t kStampPrefetchDistance = 16;

/// First index >= `from` whose entry id is >= `target` (exponential
/// search then binary search; the two-list merge advances monotonically,
/// so galloping from the previous cursor is O(log gap) per step).
template <typename List>
size_t GallopLowerBound(const List& list, size_t from, RankingId target) {
  size_t lo = from;
  size_t bound = 1;
  while (from + bound < list.size() &&
         PostingEntryId(list[from + bound]) < target) {
    lo = from + bound + 1;
    bound <<= 1;
  }
  size_t hi = std::min(from + bound, list.size());
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (PostingEntryId(list[mid]) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Union of exactly two id-sorted duplicate-free lists in first-encounter
/// order: all of `first`, then `second` minus `first`.
template <typename List>
void TwoListUnion(const List& first, const List& second,
                  std::vector<RankingId>* out) {
  for (const auto& entry : first) out->push_back(PostingEntryId(entry));
  size_t cursor = 0;
  for (const auto& entry : second) {
    const RankingId id = PostingEntryId(entry);
    cursor = GallopLowerBound(first, cursor, id);
    if (cursor < first.size() && PostingEntryId(first[cursor]) == id) {
      ++cursor;  // present in `first`: already emitted
      continue;
    }
    out->push_back(id);
  }
}

}  // namespace filter_detail

/// Unions the accessible posting lists of `query` into
/// `scratch->candidates` (first-encounter order) and returns a view of
/// them. `id_capacity` bounds the ids the lists may contain (the store
/// size, or the medoid count for subset indexes).
template <typename Index>
std::span<const RankingId> FilterPhase(const Index& index, RankingView query,
                                       RawDistance theta_raw, DropMode drop,
                                       size_t id_capacity,
                                       FilterScratch* scratch,
                                       Statistics* stats = nullptr) {
  scratch->candidates.clear();
  const std::vector<uint32_t> positions = SelectLists(
      query, theta_raw, drop,
      [&index](ItemId item) { return index.list_length(item); }, stats);

  // One access path for both storage tiers: a decoded-lists index lands
  // the list in the given scratch buffer (inline-tier lists come back as
  // direct spans, zero decode); a CSR index returns its arena span and
  // the buffer goes unused.
  auto list_at = [&](uint32_t position, auto* landing) {
    if constexpr (IndexHasDecodedLists<Index>()) {
      return index.DecodeList(query[position], landing);
    } else {
      (void)landing;
      return index.list(query[position]);
    }
  };

  if (positions.size() == 1) {
    const auto list = list_at(positions[0], DecodeLandingA<Index>(scratch));
    AddTicker(stats, Ticker::kPostingEntriesScanned, list.size());
    for (const auto& entry : list) {
      scratch->candidates.push_back(PostingEntryId(entry));
    }
    return scratch->candidates;
  }
  if constexpr (IndexHasIdSortedLists<Index>()) {
    if (positions.size() == 2) {
      const auto first = list_at(positions[0], DecodeLandingA<Index>(scratch));
      const auto second =
          list_at(positions[1], DecodeLandingB<Index>(scratch));
      AddTicker(stats, Ticker::kPostingEntriesScanned,
                first.size() + second.size());
      filter_detail::TwoListUnion(first, second, &scratch->candidates);
      return scratch->candidates;
    }
  }

  scratch->visited.EnsureCapacity(id_capacity);
  scratch->visited.NextEpoch();
  for (size_t li = 0; li < positions.size(); ++li) {
    const auto list = list_at(positions[li], DecodeLandingA<Index>(scratch));
    if constexpr (!IndexHasDecodedLists<Index>()) {
      if (li + 1 < positions.size()) {
        // Warm the next list's head while this one is scanned; its arena
        // span is contiguous, so one line covers the first entries.
        PrefetchRead(index.list(query[positions[li + 1]]).data());
      }
    }
    AddTicker(stats, Ticker::kPostingEntriesScanned, list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      if (i + filter_detail::kStampPrefetchDistance < list.size()) {
        scratch->visited.Prefetch(PostingEntryId(
            list[i + filter_detail::kStampPrefetchDistance]));
      }
      const RankingId id = PostingEntryId(list[i]);
      if (!scratch->visited.TestAndSet(id)) {
        scratch->candidates.push_back(id);
      }
    }
  }
  return scratch->candidates;
}

/// Range-restricted filter phase: the union of the accessible posting
/// lists intersected with ranking ids in [id_lo, id_hi]. This is where
/// the per-block skip metadata of the compressed arena pays off: an
/// index exposing DecodeListInRange has every block whose
/// [first_id, last_id] misses the range discarded without decoding (the
/// returned span is a superset — whole overlapping blocks — so the scan
/// still filters per entry); an id-sorted CSR index narrows each list
/// with two binary searches; anything else scans fully and filters.
/// Candidates come back in first-encounter order, deduplicated, exactly
/// like FilterPhase. kPostingEntriesScanned ticks only entries actually
/// decoded/visited; kBlocksSkipped / kPostingEntriesSkipped account the
/// blocks (and their entries) discarded on metadata alone.
template <typename Index>
std::span<const RankingId> FilterPhaseIdRange(
    const Index& index, RankingView query, RawDistance theta_raw,
    DropMode drop, RankingId id_lo, RankingId id_hi, size_t id_capacity,
    FilterScratch* scratch, Statistics* stats = nullptr) {
  scratch->candidates.clear();
  if (id_lo > id_hi) return scratch->candidates;
  const std::vector<uint32_t> positions = SelectLists(
      query, theta_raw, drop,
      [&index](ItemId item) { return index.list_length(item); }, stats);

  auto* landing = DecodeLandingA<Index>(scratch);
  using Landing = std::remove_pointer_t<decltype(landing)>;
  scratch->visited.EnsureCapacity(id_capacity);
  scratch->visited.NextEpoch();
  for (const uint32_t position : positions) {
    const ItemId item = query[position];
    auto list = [&] {
      if constexpr (IndexHasRangeDecode<Index, Landing>()) {
        BlockSkipStats skip;
        const auto span =
            index.DecodeListInRange(item, id_lo, id_hi, landing, &skip);
        AddTicker(stats, Ticker::kBlocksSkipped, skip.blocks_skipped);
        AddTicker(stats, Ticker::kPostingEntriesSkipped,
                  skip.entries_skipped);
        return span;
      } else if constexpr (IndexHasDecodedLists<Index>()) {
        return index.DecodeList(item, landing);
      } else if constexpr (IndexHasIdSortedLists<Index>()) {
        // CSR twin of the block skip: clip the sorted list to the range
        // with two binary searches; the clipped prefix/suffix entries
        // are never visited.
        const auto full = index.list(item);
        const size_t lo = filter_detail::GallopLowerBound(full, 0, id_lo);
        const size_t hi =
            id_hi == std::numeric_limits<RankingId>::max()
                ? full.size()
                : filter_detail::GallopLowerBound(full, lo, id_hi + 1);
        AddTicker(stats, Ticker::kPostingEntriesSkipped,
                  full.size() - (hi - lo));
        return full.subspan(lo, hi - lo);
      } else {
        return index.list(item);
      }
    }();
    AddTicker(stats, Ticker::kPostingEntriesScanned, list.size());
    for (const auto& entry : list) {
      const RankingId id = PostingEntryId(entry);
      if (id < id_lo || id > id_hi) continue;  // superset-span overhang
      if (!scratch->visited.TestAndSet(id)) {
        scratch->candidates.push_back(id);
      }
    }
  }
  return scratch->candidates;
}

}  // namespace topk

#endif  // TOPK_KERNEL_FILTER_PHASE_H_
