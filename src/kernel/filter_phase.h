// Shared F&V filter phase: posting-union + dedup over caller-owned scratch.
//
// Every union-validating path in the library — FilterValidateEngine,
// CoarseIndex's medoid retrieval, QueryFrontend's candidate-cache miss
// path — runs the same loop: pick the accessible posting lists (drop
// policy), scan them, and deduplicate ranking ids through an epoch-stamped
// VisitedSet. Until this header existed each caller carried its own copy,
// pinned together only by the fuzz differentials; now they all call
// FilterPhase and the loop exists once.
//
// Contract (bit-compatible with the historical loops, which
// kernel_filter_test pins):
//  * lists are selected by SelectLists(query, theta_raw, drop, ...) and
//    visited in ascending query-position order;
//  * candidates are appended in first-encounter order (NOT sorted — F&V
//    sorts its *results*, the frontend sorts the union before caching);
//  * kPostingEntriesScanned ticks once per scanned entry (counted per
//    list); kListsDropped ticks inside SelectLists; kCandidates is left to
//    the caller, whose phase accounting differs (the frontend counts
//    candidates in its validate step).
//
// The helper is generic over the index: anything with list(item) /
// list_length(item) works, with PostingEntryId() extracting the ranking id
// from plain (RankingId) and augmented (AugmentedEntry) entries alike.

#ifndef TOPK_KERNEL_FILTER_PHASE_H_
#define TOPK_KERNEL_FILTER_PHASE_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/drop_policy.h"
#include "invidx/visited_set.h"

namespace topk {

/// Per-caller filter scratch: the dedup set plus the candidate list, both
/// reused across queries so the hot path never allocates.
struct FilterScratch {
  VisitedSet visited{0};
  std::vector<RankingId> candidates;
};

inline RankingId PostingEntryId(RankingId entry) { return entry; }
/// Rank-augmented entry types expose the ranking id as a member.
template <typename Entry>
RankingId PostingEntryId(const Entry& entry) {
  return entry.id;
}

/// Unions the accessible posting lists of `query` into
/// `scratch->candidates` (first-encounter order) and returns a view of
/// them. `id_capacity` bounds the ids the lists may contain (the store
/// size, or the medoid count for subset indexes).
template <typename Index>
std::span<const RankingId> FilterPhase(const Index& index, RankingView query,
                                       RawDistance theta_raw, DropMode drop,
                                       size_t id_capacity,
                                       FilterScratch* scratch,
                                       Statistics* stats = nullptr) {
  scratch->visited.EnsureCapacity(id_capacity);
  scratch->visited.NextEpoch();
  scratch->candidates.clear();
  const std::vector<uint32_t> positions = SelectLists(
      query, theta_raw, drop,
      [&index](ItemId item) { return index.list_length(item); }, stats);
  for (uint32_t pos : positions) {
    const auto list = index.list(query[pos]);
    AddTicker(stats, Ticker::kPostingEntriesScanned, list.size());
    for (const auto& entry : list) {
      const RankingId id = PostingEntryId(entry);
      if (!scratch->visited.TestAndSet(id)) {
        scratch->candidates.push_back(id);
      }
    }
  }
  return scratch->candidates;
}

}  // namespace topk

#endif  // TOPK_KERNEL_FILTER_PHASE_H_
