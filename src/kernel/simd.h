// Compile-time SIMD dispatch for the kernel layer.
//
// The TOPK_SIMD macro (set by the -DTOPK_SIMD=ON CMake option) unlocks the
// vector paths; *which* path compiles is then decided purely by what the
// compiler already targets (-march / -mcpu flags), never by runtime
// detection — the binary has exactly one kernel per function and the
// dispatch costs nothing on the hot path:
//
//   __AVX2__       8 x 32-bit lanes, hardware gathers
//   __SSE4_2__     4 x 32-bit lanes, scalar-emulated gathers
//   __ARM_NEON     4 x 32-bit lanes (AArch64 only), scalar-emulated gathers
//   otherwise      kSimdLanes == 1: every call site falls back to the
//                  portable scalar code, which remains the reference
//                  implementation in all builds
//
// Anything above SSE4.2 on x86 requires opting in via compiler flags
// (e.g. -march=x86-64-v3 for AVX2); plain -DTOPK_SIMD=ON on a default
// x86-64 target compiles the scalar path, because the x86-64 baseline
// stops at SSE2. CI builds one AVX2 leg and one TOPK_SIMD=OFF leg so
// neither side can rot (see .github/workflows/ci.yml).

#ifndef TOPK_KERNEL_SIMD_H_
#define TOPK_KERNEL_SIMD_H_

#if defined(TOPK_SIMD)
#if defined(__AVX2__)
#define TOPK_SIMD_AVX2 1
#elif defined(__SSE4_2__)
#define TOPK_SIMD_SSE42 1
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
#define TOPK_SIMD_NEON 1
#endif
#endif

namespace topk {

#if defined(TOPK_SIMD_AVX2)
inline constexpr unsigned kSimdLanes = 8;
inline constexpr const char* kSimdBackendName = "avx2";
#elif defined(TOPK_SIMD_SSE42)
inline constexpr unsigned kSimdLanes = 4;
inline constexpr const char* kSimdBackendName = "sse4.2";
#elif defined(TOPK_SIMD_NEON)
inline constexpr unsigned kSimdLanes = 4;
inline constexpr const char* kSimdBackendName = "neon";
#else
inline constexpr unsigned kSimdLanes = 1;
inline constexpr const char* kSimdBackendName = "scalar";
#endif

/// Portable best-effort read prefetch (no-op off GCC/Clang). The filter
/// phase uses it to hide the latency of the VisitedSet's scattered stamp
/// words and of the next posting list's arena lines.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace topk

#endif  // TOPK_KERNEL_SIMD_H_
