// CSR posting arena: the single storage backend for every inverted index.
//
// A posting index over n_items lists is two flat arrays in compressed
// sparse row layout:
//
//   entries_   all posting entries, list after list, contiguous
//   offsets_   n_items + 1 cursors; list i is entries_[offsets_[i] ..
//              offsets_[i+1])
//
// compared to one std::vector per item this removes a pointer chase and a
// cache miss per probed list, drops the per-vector capacity slack and
// 3-pointer header (MemoryUsage() becomes exact arithmetic over
// num_entries), and makes whole-index iteration a linear sweep — the
// layout Chen et al. ("Indexing Metric Spaces for Exact Similarity
// Search") identify as the first lever for exact-search throughput.
//
// Construction is the classic two-pass counting build: size every list,
// prefix-sum the counts into offsets, then write each entry at its list's
// cursor. PostingArenaBuilder wraps the dance so index Build() functions
// stay readable; allocation is exact (reserve-then-resize), so capacity
// equals size on every mainstream standard library.

#ifndef TOPK_KERNEL_POSTING_ARENA_H_
#define TOPK_KERNEL_POSTING_ARENA_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/status.h"

namespace topk {

template <typename Entry>
class PostingArena {
 public:
  PostingArena() = default;

  /// Number of posting lists (the item-id directory size).
  size_t num_lists() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total entries across all lists.
  size_t num_entries() const { return entries_.size(); }

  /// Posting list `i`; empty for ids outside the directory.
  std::span<const Entry> list(size_t i) const {
    if (i >= num_lists()) return {};
    return std::span<const Entry>(entries_)
        .subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  size_t list_length(size_t i) const { return list(i).size(); }

  /// Mutable view of list `i` for in-place post-processing (the blocked
  /// index sorts each list rank-major after the fill pass).
  std::span<Entry> mutable_list(size_t i) {
    TOPK_DCHECK(i < num_lists());
    return std::span<Entry>(entries_).subspan(
        offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Start offset of list `i` within the flat entry array.
  uint32_t offset(size_t i) const {
    TOPK_DCHECK(i < offsets_.size());
    return offsets_[i];
  }

  /// The whole entry buffer in list order (bench iteration sweeps).
  std::span<const Entry> entries() const { return entries_; }

  /// Exact heap bytes: both arrays are allocated to exactly their size,
  /// so this equals num_entries() * sizeof(Entry) +
  /// (num_lists() + 1) * sizeof(uint32_t) — asserted by the kernel tests.
  size_t MemoryUsage() const {
    return entries_.capacity() * sizeof(Entry) +
           offsets_.capacity() * sizeof(uint32_t);
  }

 private:
  template <typename E>
  friend class PostingArenaBuilder;

  std::vector<Entry> entries_;
  std::vector<uint32_t> offsets_;  // num_lists + 1
};

/// Two-pass counting builder. Usage:
///
///   PostingArenaBuilder<Entry> builder(num_lists);
///   for (...) builder.Count(item);          // pass 1: size every list
///   builder.FinishCounting();               // prefix sums + allocation
///   for (...) builder.Append(item, entry);  // pass 2: same visit order
///   PostingArena<Entry> arena = std::move(builder).Build();
///
/// Entries land within each list in Append order, so visiting rankings in
/// ascending id yields id-sorted lists exactly as the per-vector push_back
/// builds did.
template <typename Entry>
class PostingArenaBuilder {
 public:
  explicit PostingArenaBuilder(size_t num_lists) {
    arena_.offsets_.reserve(num_lists + 1);
    arena_.offsets_.resize(num_lists + 1, 0);
  }

  void Count(size_t i) {
    TOPK_DCHECK(i + 1 < arena_.offsets_.size());
    ++arena_.offsets_[i + 1];
  }

  void FinishCounting() {
    for (size_t i = 1; i < arena_.offsets_.size(); ++i) {
      arena_.offsets_[i] += arena_.offsets_[i - 1];
    }
    const size_t total = arena_.offsets_.back();
    arena_.entries_.reserve(total);
    arena_.entries_.resize(total);
    cursors_.assign(arena_.offsets_.begin(), arena_.offsets_.end() - 1);
  }

  void Append(size_t i, Entry entry) {
    TOPK_DCHECK(i < cursors_.size());
    TOPK_DCHECK(cursors_[i] < arena_.offsets_[i + 1]);
    arena_.entries_[cursors_[i]++] = entry;
  }

  PostingArena<Entry> Build() && {
#if !defined(NDEBUG)
    for (size_t i = 0; i < cursors_.size(); ++i) {
      TOPK_DCHECK(cursors_[i] == arena_.offsets_[i + 1] &&
                  "Append pass did not match the Count pass");
    }
#endif
    return std::move(arena_);
  }

 private:
  PostingArena<Entry> arena_;
  std::vector<uint32_t> cursors_;
};

}  // namespace topk

#endif  // TOPK_KERNEL_POSTING_ARENA_H_
