// Vectorized inner loop of the batched Footrule validator.
//
// ValidateLanes evaluates kSimdLanes candidates against the bound query
// at once. Lanes are addressed SoA-style by row offset into the store's
// contiguous position-order item matrix (RankingStore::flat_items()):
// lane c's item at position p sits at flat[row_offsets[c] + p], so the
// AVX2 path turns the whole batch's item column into one hardware gather
// and the 4-lane backends into four scalar loads — there is no staging
// transpose, which would pay for all k positions while the early exit
// typically uses a fraction of them. Per position the kernel
//
//   1. gathers the lanes' items from the store rows;
//   2. probes the validator's flat 32-bit rank lane table (absent items
//      and out-of-table ids read the kAbsentRank sentinel via the gather
//      mask — no epoch check needed: BindQuery unpublishes the previous
//      query's ranks explicitly);
//   3. accumulates |rank_q - p| into matched lanes and (k - p) into
//      absent lanes, plus the matched lanes' (k - rank_q) coverage term.
//
// The running sums are monotone lower bounds of the final distances, so
// the batch is abandoned as soon as *every* lane's bound exceeds theta —
// the vectorized counterpart of the scalar per-item early exit ("checked
// per batch via a running-lower-bound mask"). The accept decision per
// lane is made on the exact 64-bit total running + (Sq - qcover), the
// same integers the scalar kernel sums in a different order, so decisions
// and distances are bit-identical to the scalar path (pinned by
// kernel_simd_test and the fuzz differentials).
//
// Arithmetic safety: all lane values are bounded by k*(k+1), and the
// validator only dispatches here for k <= FootruleValidator::kMaxSimdK,
// row offsets <= INT32_MAX (item gather), and item ids <= INT32_MAX
// (rank table gather — the hardware treats indices as signed 32-bit), so
// 32-bit lane accumulators cannot overflow and neither gather can see a
// negative index. theta is clamped to INT32_MAX for the early-exit
// comparison only; clamping can only delay the exit, never change a
// decision.

#ifndef TOPK_KERNEL_FOOTRULE_SIMD_H_
#define TOPK_KERNEL_FOOTRULE_SIMD_H_

#include <cstdint>

#include "core/types.h"
#include "kernel/simd.h"

#if defined(TOPK_SIMD_AVX2)
#include <immintrin.h>
#elif defined(TOPK_SIMD_SSE42)
#include <nmmintrin.h>
#include <smmintrin.h>
#elif defined(TOPK_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace topk {
namespace kernel {

/// "Item not in the bound query" sentinel of the SIMD rank lane table
/// (reads as -1 in the signed lane compare; real ranks are < kMaxSimdK).
inline constexpr uint32_t kAbsentRank = 0xffffffffu;

#if defined(TOPK_SIMD_AVX2) || defined(TOPK_SIMD_SSE42) || \
    defined(TOPK_SIMD_NEON)

/// theta clamped into the 32-bit lane domain for the early-exit compare;
/// clamping can only delay the exit, never change a decision (decisions
/// come from the exact 64-bit totals in ReduceAcceptedLanes).
inline int32_t ClampTheta32(RawDistance theta_raw) {
  return theta_raw > static_cast<RawDistance>(INT32_MAX)
             ? INT32_MAX
             : static_cast<int32_t>(theta_raw);
}

/// Shared epilogue of every backend: per lane, accept iff the exact
/// 64-bit total running + (Sq - qcover) is within theta. One copy above
/// the backend #if chain so a semantic change cannot miss an ISA.
inline uint32_t ReduceAcceptedLanes(const uint32_t* running,
                                    const uint32_t* qcover,
                                    RawDistance half_absent,
                                    RawDistance theta_raw) {
  uint32_t accepted = 0;
  for (unsigned c = 0; c < kSimdLanes; ++c) {
    const RawDistance total = static_cast<RawDistance>(running[c]) +
                              half_absent -
                              static_cast<RawDistance>(qcover[c]);
    if (total <= theta_raw) accepted |= 1u << c;
  }
  return accepted;
}

#endif  // any backend

#if defined(TOPK_SIMD_AVX2)

/// Returns a bitmask with bit c set iff the candidate whose row starts at
/// flat[row_offsets[c]] is within `theta_raw` of the bound query.
/// `ranks` is the sentinel-cleared rank lane table; the caller guarantees
/// it covers every item id the candidate rows can contain (the validator
/// grows it to the store's item domain before dispatching), so the
/// gathers run unmasked — no per-position bounds arithmetic.
inline uint32_t ValidateLanes(const uint32_t* ranks, uint32_t k,
                              RawDistance half_absent, const ItemId* flat,
                              const uint32_t* row_offsets,
                              RawDistance theta_raw) {
  const __m256i k_v = _mm256_set1_epi32(static_cast<int32_t>(k));
  const __m256i absent_v = _mm256_set1_epi32(-1);
  const __m256i theta_v = _mm256_set1_epi32(ClampTheta32(theta_raw));
  const __m256i rows = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(row_offsets));

  __m256i running = _mm256_setzero_si256();
  __m256i qcover = _mm256_setzero_si256();
  // One position's contribution: two chained gathers (candidate items,
  // then their query ranks) and branch-free blend arithmetic.
  const auto accumulate = [&](uint32_t p) {
    const __m256i items = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(flat),
        _mm256_add_epi32(rows, _mm256_set1_epi32(static_cast<int32_t>(p))),
        4);
    const __m256i rank = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(ranks), items, 4);
    const __m256i match = _mm256_cmpgt_epi32(rank, absent_v);  // rank >= 0
    const __m256i p_v = _mm256_set1_epi32(static_cast<int32_t>(p));
    const __m256i diff = _mm256_abs_epi32(_mm256_sub_epi32(rank, p_v));
    const __m256i absent_cost = _mm256_sub_epi32(k_v, p_v);
    running = _mm256_add_epi32(
        running, _mm256_blendv_epi8(absent_cost, diff, match));
    qcover = _mm256_add_epi32(
        qcover, _mm256_and_si256(match, _mm256_sub_epi32(k_v, rank)));
  };
  // Two positions per round: their gather chains are independent, so the
  // out-of-order core overlaps them; the early exit is checked once per
  // round (every running sum is a monotone lower bound — once all lanes
  // exceed theta no lane can be accepted, and checking later can only
  // delay the exit, never change a decision).
  uint32_t p = 0;
  for (; p + 2 <= k; p += 2) {
    accumulate(p);
    accumulate(p + 1);
    const __m256i dead = _mm256_cmpgt_epi32(running, theta_v);
    if (_mm256_movemask_epi8(dead) == -1) return 0;
  }
  if (p < k) accumulate(p);

  alignas(32) uint32_t running_a[kSimdLanes];
  alignas(32) uint32_t qcover_a[kSimdLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(running_a), running);
  _mm256_store_si256(reinterpret_cast<__m256i*>(qcover_a), qcover);
  return ReduceAcceptedLanes(running_a, qcover_a, half_absent, theta_raw);
}

#elif defined(TOPK_SIMD_SSE42)

inline uint32_t ValidateLanes(const uint32_t* ranks, uint32_t k,
                              RawDistance half_absent, const ItemId* flat,
                              const uint32_t* row_offsets,
                              RawDistance theta_raw) {
  const __m128i k_v = _mm_set1_epi32(static_cast<int32_t>(k));
  const __m128i absent_v = _mm_set1_epi32(-1);
  const __m128i theta_v = _mm_set1_epi32(ClampTheta32(theta_raw));

  __m128i running = _mm_setzero_si128();
  __m128i qcover = _mm_setzero_si128();
  alignas(16) int32_t rank_a[kSimdLanes];
  for (uint32_t p = 0; p < k; ++p) {
    // SSE has no gather: emulate both the item and the rank-table loads
    // with scalar code (the caller guarantees the table covers every
    // item), then keep the contribution arithmetic vectorized.
    for (unsigned c = 0; c < kSimdLanes; ++c) {
      rank_a[c] = static_cast<int32_t>(ranks[flat[row_offsets[c] + p]]);
    }
    const __m128i rank =
        _mm_load_si128(reinterpret_cast<const __m128i*>(rank_a));
    const __m128i match = _mm_cmpgt_epi32(rank, absent_v);
    const __m128i p_v = _mm_set1_epi32(static_cast<int32_t>(p));
    const __m128i diff = _mm_abs_epi32(_mm_sub_epi32(rank, p_v));
    const __m128i absent_cost = _mm_sub_epi32(k_v, p_v);
    running =
        _mm_add_epi32(running, _mm_blendv_epi8(absent_cost, diff, match));
    qcover =
        _mm_add_epi32(qcover, _mm_and_si128(match, _mm_sub_epi32(k_v, rank)));
    const __m128i dead = _mm_cmpgt_epi32(running, theta_v);
    if (_mm_movemask_epi8(dead) == 0xffff) return 0;
  }

  alignas(16) uint32_t running_a[kSimdLanes];
  alignas(16) uint32_t qcover_a[kSimdLanes];
  _mm_store_si128(reinterpret_cast<__m128i*>(running_a), running);
  _mm_store_si128(reinterpret_cast<__m128i*>(qcover_a), qcover);
  return ReduceAcceptedLanes(running_a, qcover_a, half_absent, theta_raw);
}

#elif defined(TOPK_SIMD_NEON)

inline uint32_t ValidateLanes(const uint32_t* ranks, uint32_t k,
                              RawDistance half_absent, const ItemId* flat,
                              const uint32_t* row_offsets,
                              RawDistance theta_raw) {
  const int32x4_t k_v = vdupq_n_s32(static_cast<int32_t>(k));
  const int32x4_t absent_v = vdupq_n_s32(-1);
  const uint32x4_t theta_v =
      vdupq_n_u32(static_cast<uint32_t>(ClampTheta32(theta_raw)));

  uint32x4_t running = vdupq_n_u32(0);
  uint32x4_t qcover = vdupq_n_u32(0);
  alignas(16) int32_t rank_a[kSimdLanes];
  for (uint32_t p = 0; p < k; ++p) {
    for (unsigned c = 0; c < kSimdLanes; ++c) {
      rank_a[c] = static_cast<int32_t>(ranks[flat[row_offsets[c] + p]]);
    }
    const int32x4_t rank = vld1q_s32(rank_a);
    const uint32x4_t match = vcgtq_s32(rank, absent_v);
    const int32x4_t p_v = vdupq_n_s32(static_cast<int32_t>(p));
    const uint32x4_t diff = vreinterpretq_u32_s32(vabdq_s32(rank, p_v));
    const uint32x4_t absent_cost =
        vreinterpretq_u32_s32(vsubq_s32(k_v, p_v));
    running = vaddq_u32(running, vbslq_u32(match, diff, absent_cost));
    qcover = vaddq_u32(
        qcover,
        vandq_u32(match, vreinterpretq_u32_s32(vsubq_s32(k_v, rank))));
    const uint32x4_t dead = vcgtq_u32(running, theta_v);
    if (vminvq_u32(dead) == 0xffffffffu) return 0;
  }

  alignas(16) uint32_t running_a[kSimdLanes];
  alignas(16) uint32_t qcover_a[kSimdLanes];
  vst1q_u32(running_a, running);
  vst1q_u32(qcover_a, qcover);
  return ReduceAcceptedLanes(running_a, qcover_a, half_absent, theta_raw);
}

#endif  // backend selection

}  // namespace kernel
}  // namespace topk

#endif  // TOPK_KERNEL_FOOTRULE_SIMD_H_
