// Block-skipping sweep over one rank-blocked posting list.
//
// The blocked inverted index keeps each item's posting list rank-major
// with a (k+1)-offset directory per item, so all entries where the item
// appears at rank j form the contiguous block B_item@j. A threshold query
// only cares about blocks whose rank-partial distance |j - t| fits the
// remaining budget; BlockRangeSweep walks the directory across the
// accessible range, skips empty blocks without ever touching the entry
// arena, prefetches the next non-empty block's first line while the
// current one is processed, and hands each non-empty block to the visitor
// with its rank — so the per-entry |j - t| of the old windowed loop hoists
// to one subtraction per block.
//
// Both BlockedEngine modes route their block access through this helper:
// the windowed mode sweeps each list's accessible window in one call, the
// scheduled mode sweeps the degenerate range [j, j] per scheduling round.

#ifndef TOPK_KERNEL_BLOCK_SWEEP_H_
#define TOPK_KERNEL_BLOCK_SWEEP_H_

#include <algorithm>
#include <span>

#include "core/deadline.h"
#include "core/status.h"
#include "core/types.h"
#include "kernel/simd.h"

namespace topk {

/// Inclusive block-rank window [lo, hi]; empty (lo > hi) when the budget
/// cannot reach any block.
struct BlockWindow {
  Rank lo;
  Rank hi;
  bool empty() const { return lo > hi; }
};

/// Blocks of list position t accessible under `budget`: |j - t| <= budget,
/// clipped to the directory's [0, k-1].
inline BlockWindow AccessibleBlockWindow(Rank t, uint32_t k,
                                         RawDistance budget) {
  TOPK_DCHECK(t < k);
  return BlockWindow{
      budget >= t ? 0 : t - static_cast<Rank>(budget),
      static_cast<Rank>(std::min<RawDistance>(k - 1, t + budget))};
}

/// Visits every non-empty block of `list` with rank in [window.lo,
/// window.hi] as visit(rank, entries), in ascending rank order, and
/// returns the number of entries visited. `block_offsets` is the list's
/// (k+1)-cursor directory (block j is list[block_offsets[j] ..
/// block_offsets[j+1])); pass nullptr for an item outside the directory
/// (nothing is visited).
///
/// When `control` is given, the sweep checks it once per block and stops
/// early when the query's deadline expired or it was cancelled; the
/// caller owns discarding the partial accumulator state it fed `visit`.
template <typename Entry, typename Visit>
size_t BlockRangeSweep(std::span<const Entry> list,
                       const uint32_t* block_offsets, BlockWindow window,
                       Visit&& visit, QueryControl* control = nullptr) {
  if (block_offsets == nullptr || window.empty()) return 0;
  size_t visited = 0;
  for (Rank j = window.lo; j <= window.hi; ++j) {
    if (control != nullptr && control->ShouldStop()) break;
    const uint32_t begin = block_offsets[j];
    const uint32_t end = block_offsets[j + 1];
    if (begin == end) continue;  // skip without touching the arena
    if (j < window.hi) {
      // The next block starts right where this one ends (CSR layout):
      // warm its first line while this block is processed.
      PrefetchRead(list.data() + end);
    }
    visit(j, list.subspan(begin, end - begin));
    visited += end - begin;
  }
  return visited;
}

}  // namespace topk

#endif  // TOPK_KERNEL_BLOCK_SWEEP_H_
