// A BK-tree generic over the distance function — backing the paper's
// claim that "the proposed coarse index can be applied to any metric
// distance function" (Sections 1 and 3).
//
// The optimized BkTree hardwires the Footrule kernel for the hot path;
// this header-only template takes any integral discrete metric over
// arbitrary objects. The test suite instantiates it with Kendall's tau
// over rankings (the paper's other canonical rank distance) and verifies
// range-query exactness; generic_metric_test.cc also demonstrates a
// non-ranking payload.
//
// Requirements on Distance: a callable `RawDistance(const T&, const T&)`
// that is a metric (symmetry, identity of indiscernibles, triangle
// inequality) with integral values. Correctness of the range search rests
// exactly on those properties.

#ifndef TOPK_METRIC_GENERIC_BK_TREE_H_
#define TOPK_METRIC_GENERIC_BK_TREE_H_

#include <cstdint>
#include <vector>

#include "core/statistics.h"
#include "core/types.h"

namespace topk {

template <typename T, typename Distance>
class GenericBkTree {
 public:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  explicit GenericBkTree(Distance distance = {})
      : distance_(std::move(distance)) {}

  /// Inserts a copy of `value`; returns its slot index.
  uint32_t Insert(T value, Statistics* stats = nullptr) {
    const auto index = static_cast<uint32_t>(nodes_.size());
    if (nodes_.empty()) {
      nodes_.push_back(Node{std::move(value), 0, kNoNode, kNoNode});
      return index;
    }
    uint32_t current = 0;
    for (;;) {
      AddTicker(stats, Ticker::kDistanceCalls);
      const RawDistance d = distance_(value, nodes_[current].value);
      uint32_t child = nodes_[current].first_child;
      uint32_t found = kNoNode;
      while (child != kNoNode) {
        if (nodes_[child].parent_dist == d) {
          found = child;
          break;
        }
        child = nodes_[child].next_sibling;
      }
      if (found != kNoNode) {
        current = found;
        continue;
      }
      nodes_.push_back(
          Node{std::move(value), d, kNoNode, nodes_[current].first_child});
      nodes_[current].first_child = index;
      return index;
    }
  }

  /// Slot indices of all stored values within `theta` of `query`.
  std::vector<uint32_t> RangeQuery(const T& query, RawDistance theta,
                                   Statistics* stats = nullptr) const {
    std::vector<uint32_t> out;
    if (nodes_.empty()) return out;
    std::vector<std::pair<uint32_t, RawDistance>> stack;
    AddTicker(stats, Ticker::kDistanceCalls);
    stack.emplace_back(0, distance_(query, nodes_[0].value));
    while (!stack.empty()) {
      const auto [node_index, node_dist] = stack.back();
      stack.pop_back();
      AddTicker(stats, Ticker::kTreeNodesVisited);
      if (node_dist <= theta) out.push_back(node_index);
      for (uint32_t child = nodes_[node_index].first_child;
           child != kNoNode; child = nodes_[child].next_sibling) {
        const RawDistance e = nodes_[child].parent_dist;
        const RawDistance gap =
            e > node_dist ? e - node_dist : node_dist - e;
        if (gap > theta) continue;
        AddTicker(stats, Ticker::kDistanceCalls);
        stack.emplace_back(child, distance_(query, nodes_[child].value));
      }
    }
    return out;
  }

  const T& value(uint32_t index) const { return nodes_[index].value; }
  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    T value;
    RawDistance parent_dist;
    uint32_t first_child;
    uint32_t next_sibling;
  };

  Distance distance_;
  std::vector<Node> nodes_;
};

}  // namespace topk

#endif  // TOPK_METRIC_GENERIC_BK_TREE_H_
