// Burkhard-Keller tree over the discrete Footrule metric (Section 4.1).
//
// Every node holds one ranking; a child subtree groups all descendants at
// one specific raw distance from its parent. Range queries descend into a
// child with edge distance e only when |d(query, node) - e| <= theta, by
// the triangle inequality.
//
// Nodes are kept in one flat vector using first-child/next-sibling links —
// no per-node maps, cache-friendly traversal, trivially serializable. The
// coarse index additionally uses the tree's structure to carve partitions
// (see cluster/bk_partitioner).

#ifndef TOPK_METRIC_BK_TREE_H_
#define TOPK_METRIC_BK_TREE_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "kernel/footrule_batch.h"

namespace topk {

struct BkTreeOptions {
  /// Reuse the parent's query distance for 0-edge children (identical
  /// rankings) instead of recomputing it. Strictly beneficial and always
  /// sound (the metric is regular), so it defaults to on; the Figure 5/6
  /// benches disable it to stay faithful to the paper's baseline BK-tree,
  /// which is implemented straight from Burkhard-Keller without the trick
  /// (the paper only applies it inside the coarse index's partitions).
  bool reuse_duplicate_distances = true;
};

class BkTree {
 public:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  struct Node {
    RankingId id;
    RawDistance parent_dist;  // edge label; 0 for the root
    uint32_t first_child = kNoNode;
    uint32_t next_sibling = kNoNode;
  };

  /// `store` must outlive the tree.
  explicit BkTree(const RankingStore* store, BkTreeOptions options = {})
      : store_(store), options_(options) {}

  /// Builds by inserting `ids` in order (the paper's construction; the
  /// tree shape depends on insertion order). Distance computations during
  /// construction are tallied into `stats` if given.
  static BkTree Build(const RankingStore* store,
                      std::span<const RankingId> ids,
                      Statistics* stats = nullptr,
                      BkTreeOptions options = {});

  /// Builds over the entire store.
  static BkTree BuildAll(const RankingStore* store,
                         Statistics* stats = nullptr,
                         BkTreeOptions options = {});

  void Insert(RankingId id, Statistics* stats = nullptr);

  /// Appends all rankings within `theta_raw` of the query to `out`.
  void RangeQueryInto(SortedRankingView query, RawDistance theta_raw,
                      Statistics* stats, std::vector<RankingId>* out) const;

  std::vector<RankingId> RangeQuery(SortedRankingView query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr) const;

  /// Range query when d(query, root) is already known — the coarse index
  /// computes medoid distances during filtering and must not pay twice.
  void RangeQueryWithRootDistance(SortedRankingView query,
                                  RawDistance theta_raw,
                                  RawDistance root_dist, Statistics* stats,
                                  std::vector<RankingId>* out) const;

  /// Same traversal driven by a pre-bound kernel validator: node distances
  /// come from the query rank table instead of per-node merges. The coarse
  /// validate phase binds the validator once per query and reuses it
  /// across every probed partition tree. Results and tickers are identical
  /// to the scalar overload (distances are exact either way).
  void RangeQueryWithRootDistance(const FootruleValidator& validator,
                                  RawDistance theta_raw,
                                  RawDistance root_dist, Statistics* stats,
                                  std::vector<RankingId>* out) const;

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const RankingStore& store() const { return *store_; }
  size_t MemoryUsage() const { return nodes_.capacity() * sizeof(Node); }

 private:
  /// One traversal body for both overloads: `distance(id)` supplies the
  /// query distance of a node's ranking (scalar merge kernel or the
  /// pre-bound batched validator), so the pruning rule, the 0-edge
  /// duplicate-distance reuse, and the tickers cannot diverge.
  template <typename DistanceFn>
  void QueryNodeImpl(const DistanceFn& distance, RawDistance theta_raw,
                     uint32_t node_index, RawDistance node_dist,
                     Statistics* stats, std::vector<RankingId>* out) const;
  void QueryNode(SortedRankingView query, RawDistance theta_raw,
                 uint32_t node_index, RawDistance node_dist,
                 Statistics* stats, std::vector<RankingId>* out) const;
  void QueryNodeBatched(const FootruleValidator& validator,
                        RawDistance theta_raw, uint32_t node_index,
                        RawDistance node_dist, Statistics* stats,
                        std::vector<RankingId>* out) const;

  const RankingStore* store_;
  BkTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace topk

#endif  // TOPK_METRIC_BK_TREE_H_
