#include "metric/linear_scan.h"

#include "core/footrule.h"

namespace topk {

std::vector<RankingId> LinearScanQuery(const RankingStore& store,
                                       const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       Statistics* stats) {
  std::vector<RankingId> results;
  const SortedRankingView q = query.sorted_view();
  for (RankingId id = 0; id < store.size(); ++id) {
    AddTicker(stats, Ticker::kDistanceCalls);
    if (FootruleDistance(q, store.sorted(id)) <= theta_raw) {
      results.push_back(id);
    }
  }
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

std::vector<RankingId> LinearScanQueryBatched(const RankingStore& store,
                                              const PreparedQuery& query,
                                              RawDistance theta_raw,
                                              FootruleValidator* validator,
                                              Statistics* stats) {
  std::vector<RankingId> results;
  validator->BindQuery(query.view(),
                       static_cast<size_t>(store.max_item()) + 1);
  validator->ValidateAll(store, theta_raw, &results, stats);
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace topk
