// Brute-force range search over the whole store.
//
// The exhaustive baseline; every other algorithm's result set is tested
// for equality against this one, and it bootstraps the Minimal F&V oracle.
//
// Two entry points: the classic free function evaluates the scalar merge
// kernel per ranking and stays the *independent* reference the
// differential suites trust, while the batched overload routes through
// the kernel validator (query rank table bound once, early-exit per
// candidate) — that is what the harness engine and the serving layer run.

#ifndef TOPK_METRIC_LINEAR_SCAN_H_
#define TOPK_METRIC_LINEAR_SCAN_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "kernel/footrule_batch.h"

namespace topk {

/// All rankings within raw distance `theta_raw` of the query, ascending
/// id. Scalar reference path: one merge-kernel call per ranking.
std::vector<RankingId> LinearScanQuery(const RankingStore& store,
                                       const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       Statistics* stats = nullptr);

/// Same answer via the batched kernel: binds `query` on the caller-owned
/// validator and sweeps the store with ValidateAll. Bit-identical to the
/// scalar path (the kernel tests pin this).
std::vector<RankingId> LinearScanQueryBatched(const RankingStore& store,
                                              const PreparedQuery& query,
                                              RawDistance theta_raw,
                                              FootruleValidator* validator,
                                              Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_METRIC_LINEAR_SCAN_H_
