// Brute-force range search over the whole store.
//
// The exhaustive baseline; every other algorithm's result set is tested
// for equality against this one, and it bootstraps the Minimal F&V oracle.

#ifndef TOPK_METRIC_LINEAR_SCAN_H_
#define TOPK_METRIC_LINEAR_SCAN_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

/// All rankings within raw distance `theta_raw` of the query, ascending id.
std::vector<RankingId> LinearScanQuery(const RankingStore& store,
                                       const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_METRIC_LINEAR_SCAN_H_
