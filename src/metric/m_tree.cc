#include "metric/m_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/footrule.h"
#include "metric/knn.h"

namespace topk {

MTree::MTree(const RankingStore* store, MTreeOptions options)
    : store_(store), options_(options), rng_(options.seed) {
  TOPK_DCHECK(options_.node_capacity >= 2);
}

MTree MTree::Build(const RankingStore* store, std::span<const RankingId> ids,
                   MTreeOptions options, Statistics* stats) {
  MTree tree(store, options);
  for (RankingId id : ids) tree.Insert(id, stats);
  return tree;
}

MTree MTree::BuildAll(const RankingStore* store, MTreeOptions options,
                      Statistics* stats) {
  MTree tree(store, options);
  for (RankingId id = 0; id < store->size(); ++id) tree.Insert(id, stats);
  return tree;
}

RawDistance MTree::Distance(RankingId a, RankingId b, Statistics* stats) const {
  AddTicker(stats, Ticker::kDistanceCalls);
  return FootruleDistance(store_->sorted(a), store_->sorted(b));
}

RawDistance MTree::DistanceToQuery(SortedRankingView query, RankingId id,
                                   Statistics* stats) const {
  AddTicker(stats, Ticker::kDistanceCalls);
  return FootruleDistance(query, store_->sorted(id));
}

void MTree::Insert(RankingId id, Statistics* stats) {
  ++size_;
  if (root_ < 0) {
    Node root;
    root.is_leaf = true;
    root.entries.push_back(Entry{id, 0, 0, -1});
    nodes_.push_back(std::move(root));
    root_ = 0;
    return;
  }

  // Descend to a leaf, choosing at each level the routing entry that needs
  // the least (ideally zero) radius enlargement; enlarge radii on the way.
  int32_t current = root_;
  RawDistance dist_to_routing = 0;
  while (!nodes_[current].is_leaf) {
    Node& node = nodes_[current];
    int32_t best = -1;
    RawDistance best_dist = 0;
    bool best_inside = false;
    RawDistance best_enlarge = std::numeric_limits<RawDistance>::max();
    for (size_t e = 0; e < node.entries.size(); ++e) {
      const RawDistance d = Distance(id, node.entries[e].obj, stats);
      const bool inside = d <= node.entries[e].radius;
      if (inside) {
        if (!best_inside || d < best_dist) {
          best = static_cast<int32_t>(e);
          best_dist = d;
          best_inside = true;
        }
      } else if (!best_inside) {
        const RawDistance enlarge = d - node.entries[e].radius;
        if (enlarge < best_enlarge) {
          best = static_cast<int32_t>(e);
          best_dist = d;
          best_enlarge = enlarge;
        }
      }
    }
    TOPK_DCHECK(best >= 0);
    Entry& chosen = node.entries[best];
    chosen.radius = std::max(chosen.radius, best_dist);
    dist_to_routing = best_dist;
    current = chosen.child;
  }

  nodes_[current].entries.push_back(Entry{id, dist_to_routing, 0, -1});
  if (nodes_[current].entries.size() > options_.node_capacity) {
    Split(current, stats);
  }
}

std::pair<uint32_t, uint32_t> MTree::Promote(
    const std::vector<Entry>& entries,
    const std::vector<std::vector<RawDistance>>& dist, Statistics* stats) {
  (void)stats;
  const size_t m = entries.size();
  switch (options_.promotion) {
    case MTreeOptions::Promotion::kRandom: {
      const auto a = static_cast<uint32_t>(rng_.Below(m));
      uint32_t b = static_cast<uint32_t>(rng_.Below(m - 1));
      if (b >= a) ++b;
      return {a, b};
    }
    case MTreeOptions::Promotion::kMaxSpread: {
      // Two linear passes from entry 0: farthest, then farthest from that.
      uint32_t a = 0;
      for (uint32_t i = 1; i < m; ++i) {
        if (dist[0][i] > dist[0][a]) a = i;
      }
      uint32_t b = a == 0 ? 1 : 0;
      for (uint32_t i = 0; i < m; ++i) {
        if (i != a && dist[a][i] > dist[a][b]) b = i;
      }
      return {a, b};
    }
    case MTreeOptions::Promotion::kMinMaxRadius: {
      // mM_RAD: over all pairs, partition by the hyperplane rule and pick
      // the pair whose larger covering radius is smallest.
      uint32_t best_a = 0;
      uint32_t best_b = 1;
      auto worst = std::numeric_limits<RawDistance>::max();
      for (uint32_t a = 0; a < m; ++a) {
        for (uint32_t b = a + 1; b < m; ++b) {
          RawDistance ra = 0;
          RawDistance rb = 0;
          for (uint32_t i = 0; i < m; ++i) {
            // Internal entries extend the radius by their own radius.
            const RawDistance da = dist[a][i] + entries[i].radius;
            const RawDistance db = dist[b][i] + entries[i].radius;
            if (dist[a][i] <= dist[b][i]) {
              ra = std::max(ra, da);
            } else {
              rb = std::max(rb, db);
            }
          }
          const RawDistance max_radius = std::max(ra, rb);
          if (max_radius < worst) {
            worst = max_radius;
            best_a = a;
            best_b = b;
          }
        }
      }
      return {best_a, best_b};
    }
  }
  return {0, 1};
}

void MTree::Split(int32_t node_index, Statistics* stats) {
  // Take the overflowing entries out of the node.
  std::vector<Entry> entries = std::move(nodes_[node_index].entries);
  nodes_[node_index].entries.clear();
  const size_t m = entries.size();

  // Full pairwise distance matrix among the split entries: promotion and
  // partitioning both read from it, so every distance is computed once.
  std::vector<std::vector<RawDistance>> dist(m,
                                             std::vector<RawDistance>(m, 0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      dist[i][j] = dist[j][i] = Distance(entries[i].obj, entries[j].obj,
                                         stats);
    }
  }

  const auto [p1, p2] = Promote(entries, dist, stats);

  // Generalized hyperplane: each entry goes to the closer promoted object
  // (ties to p1); the promoted objects anchor their own sides.
  const int32_t left_index = node_index;
  Node& left = nodes_[left_index];
  Node right_node;
  right_node.is_leaf = left.is_leaf;
  const auto right_index = static_cast<int32_t>(nodes_.size());

  RawDistance left_radius = 0;
  RawDistance right_radius = 0;
  std::vector<Entry> left_entries;
  std::vector<Entry> right_entries;
  for (uint32_t i = 0; i < m; ++i) {
    Entry entry = entries[i];
    // Hyperplane rule with balanced ties: duplicate-heavy collections make
    // dist[p1][i] == dist[p2][i] common (often all zero), and sending every
    // tie to one side degenerates the tree into (capacity, 1) splits —
    // quadratic build time and one node per entry.
    bool to_left;
    if (i == p1) {
      to_left = true;
    } else if (i == p2) {
      to_left = false;
    } else if (dist[p1][i] != dist[p2][i]) {
      to_left = dist[p1][i] < dist[p2][i];
    } else {
      to_left = left_entries.size() <= right_entries.size();
    }
    if (to_left) {
      entry.parent_dist = dist[p1][i];
      left_radius = std::max(left_radius, dist[p1][i] + entry.radius);
      left_entries.push_back(entry);
    } else {
      entry.parent_dist = dist[p2][i];
      right_radius = std::max(right_radius, dist[p2][i] + entry.radius);
      right_entries.push_back(entry);
    }
  }
  left.entries = std::move(left_entries);
  right_node.entries = std::move(right_entries);

  const RankingId obj1 = entries[p1].obj;
  const RankingId obj2 = entries[p2].obj;

  nodes_.push_back(std::move(right_node));
  // Fix child back-pointers for internal splits.
  for (int32_t side : {left_index, right_index}) {
    Node& node = nodes_[side];
    if (node.is_leaf) continue;
    for (size_t e = 0; e < node.entries.size(); ++e) {
      Node& child = nodes_[node.entries[e].child];
      child.parent_node = side;
      child.parent_entry = static_cast<int32_t>(e);
    }
  }

  const int32_t parent = nodes_[left_index].parent_node;
  if (parent < 0) {
    // Split of the root: grow the tree by one level.
    Node new_root;
    new_root.is_leaf = false;
    new_root.entries.push_back(Entry{obj1, 0, left_radius, left_index});
    new_root.entries.push_back(Entry{obj2, 0, right_radius, right_index});
    const auto new_root_index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(new_root));
    nodes_[left_index].parent_node = new_root_index;
    nodes_[left_index].parent_entry = 0;
    nodes_[right_index].parent_node = new_root_index;
    nodes_[right_index].parent_entry = 1;
    root_ = new_root_index;
    return;
  }

  // Replace the parent's entry for this node and add one for the new node.
  const int32_t parent_entry = nodes_[left_index].parent_entry;
  Node& parent_node = nodes_[parent];
  const RankingId parent_routing =
      nodes_[parent].parent_node < 0
          ? kInvalidRankingId
          : nodes_[nodes_[parent].parent_node]
                .entries[nodes_[parent].parent_entry]
                .obj;
  auto dist_to_parent_routing = [&](RankingId obj) -> RawDistance {
    if (parent_routing == kInvalidRankingId) return 0;  // parent is root
    return Distance(obj, parent_routing, stats);
  };

  parent_node.entries[parent_entry] =
      Entry{obj1, dist_to_parent_routing(obj1), left_radius, left_index};
  parent_node.entries.push_back(
      Entry{obj2, dist_to_parent_routing(obj2), right_radius, right_index});
  nodes_[right_index].parent_node = parent;
  nodes_[right_index].parent_entry =
      static_cast<int32_t>(parent_node.entries.size() - 1);

  if (parent_node.entries.size() > options_.node_capacity) {
    Split(parent, stats);
  }
}

void MTree::RangeQueryInto(SortedRankingView query, RawDistance theta_raw,
                           Statistics* stats,
                           std::vector<RankingId>* out) const {
  if (root_ < 0) return;
  QueryNode(query, theta_raw, root_, 0, /*has_parent_dist=*/false, stats,
            out);
}

std::vector<RankingId> MTree::RangeQuery(SortedRankingView query,
                                         RawDistance theta_raw,
                                         Statistics* stats) const {
  std::vector<RankingId> out;
  RangeQueryInto(query, theta_raw, stats, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void MTree::QueryNode(SortedRankingView query, RawDistance theta_raw,
                      int32_t node_index, RawDistance parent_query_dist,
                      bool has_parent_dist, Statistics* stats,
                      std::vector<RankingId>* out) const {
  AddTicker(stats, Ticker::kTreeNodesVisited);
  const Node& node = nodes_[node_index];
  for (const Entry& entry : node.entries) {
    if (has_parent_dist) {
      // Cheap triangle-inequality filter using the precomputed
      // entry-to-parent distance: no Footrule call needed to discard.
      const RawDistance gap = entry.parent_dist > parent_query_dist
                                  ? entry.parent_dist - parent_query_dist
                                  : parent_query_dist - entry.parent_dist;
      if (gap > theta_raw + entry.radius) continue;
    }
    const RawDistance d = DistanceToQuery(query, entry.obj, stats);
    if (node.is_leaf) {
      if (d <= theta_raw) out->push_back(entry.obj);
    } else if (d <= theta_raw + entry.radius) {
      QueryNode(query, theta_raw, entry.child, d, /*has_parent_dist=*/true,
                stats, out);
    }
  }
}

std::vector<Neighbor> MTree::Knn(SortedRankingView query, size_t j,
                                 Statistics* stats) const {
  // Bounded best-j set; mirrors NeighborHeap in knn.cc but kept local so
  // the M-tree stays self-contained.
  std::vector<Neighbor> best;  // max-heap under Less
  auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  auto bound = [&]() {
    return best.size() == j ? best.front().distance
                            : std::numeric_limits<RawDistance>::max();
  };
  auto offer = [&](RankingId id, RawDistance d) {
    const Neighbor candidate{id, d};
    if (best.size() < j) {
      best.push_back(candidate);
      std::push_heap(best.begin(), best.end(), less);
    } else if (less(candidate, best.front())) {
      std::pop_heap(best.begin(), best.end(), less);
      best.back() = candidate;
      std::push_heap(best.begin(), best.end(), less);
    }
  };

  if (root_ >= 0 && j > 0) {
    // Best-first over nodes keyed by the optimistic subtree bound.
    struct Pending {
      RawDistance optimistic;
      int32_t node;
      bool operator>(const Pending& other) const {
        return optimistic > other.optimistic;
      }
    };
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
    queue.push(Pending{0, root_});
    while (!queue.empty()) {
      const Pending pending = queue.top();
      queue.pop();
      if (pending.optimistic > bound()) break;  // nothing left can improve
      AddTicker(stats, Ticker::kTreeNodesVisited);
      const Node& node = nodes_[pending.node];
      for (const Entry& entry : node.entries) {
        const RawDistance d = DistanceToQuery(query, entry.obj, stats);
        if (node.is_leaf) {
          offer(entry.obj, d);
        } else {
          // Routing objects are promoted *copies* of objects that also
          // live in some leaf; offering them here would duplicate ids.
          const RawDistance optimistic =
              d > entry.radius ? d - entry.radius : 0;
          if (optimistic <= bound()) {
            queue.push(Pending{optimistic, entry.child});
          }
        }
      }
    }
  }
  std::sort(best.begin(), best.end(), less);
  return best;
}

size_t MTree::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.entries.capacity() * sizeof(Entry);
  }
  return bytes;
}

bool MTree::CheckInvariants() const {
  if (root_ < 0) return true;
  const Node& root = nodes_[root_];
  for (const Entry& entry : root.entries) {
    if (entry.child >= 0 && !CheckNode(entry.child, entry.obj, entry.radius)) {
      return false;
    }
  }
  return true;
}

bool MTree::CheckNode(int32_t node_index, RankingId routing,
                      RawDistance radius) const {
  // Invariants for the subtree rooted at `node_index`, whose routing
  // object is `routing` with covering radius `radius`:
  //  (a) every entry's parent_dist is the exact distance to `routing`;
  //  (b) every object anywhere in the subtree lies within `radius` of
  //      `routing` — checked transitively through CollectWithin.
  const Node& node = nodes_[node_index];
  for (const Entry& entry : node.entries) {
    const RawDistance d =
        FootruleDistance(store_->sorted(entry.obj), store_->sorted(routing));
    if (d != entry.parent_dist) return false;
    if (d > radius) return false;
    if (entry.child >= 0) {
      // The child's own covering ball must hold its subtree...
      if (!CheckNode(entry.child, entry.obj, entry.radius)) return false;
      // ...and so must this node's ball around `routing`: walk the child
      // subtree and verify each object directly.
      std::vector<RankingId> objs;
      std::vector<int32_t> stack = {entry.child};
      while (!stack.empty()) {
        const Node& sub = nodes_[stack.back()];
        stack.pop_back();
        for (const Entry& se : sub.entries) {
          objs.push_back(se.obj);
          if (se.child >= 0) stack.push_back(se.child);
        }
      }
      for (RankingId obj : objs) {
        if (FootruleDistance(store_->sorted(obj), store_->sorted(routing)) >
            radius) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace topk
