#include "metric/knn.h"

#include <algorithm>
#include <limits>

#include "core/footrule.h"

namespace topk {

namespace {

/// Bounded best-j set over (distance, id) pairs: a max-heap whose top is
/// the current worst admitted neighbour.
class NeighborHeap {
 public:
  explicit NeighborHeap(size_t capacity) : capacity_(capacity) {}

  bool full() const { return heap_.size() == capacity_; }

  /// Worst admitted distance; infinite while not full.
  RawDistance Bound() const {
    return full() ? heap_.front().distance
                  : std::numeric_limits<RawDistance>::max();
  }

  void Offer(RankingId id, RawDistance distance) {
    if (capacity_ == 0) return;
    const Neighbor candidate{id, distance};
    if (!full()) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), Less);
      return;
    }
    if (Less(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  std::vector<Neighbor> Finish() && {
    std::sort(heap_.begin(), heap_.end(), Less);
    return std::move(heap_);
  }

 private:
  static bool Less(const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  }

  size_t capacity_;
  std::vector<Neighbor> heap_;  // max-heap under Less
};

}  // namespace

std::vector<Neighbor> LinearScanKnn(const RankingStore& store,
                                    const PreparedQuery& query, size_t j,
                                    Statistics* stats) {
  NeighborHeap heap(j);
  const SortedRankingView q = query.sorted_view();
  for (RankingId id = 0; id < store.size(); ++id) {
    AddTicker(stats, Ticker::kDistanceCalls);
    heap.Offer(id, FootruleDistance(q, store.sorted(id)));
  }
  return std::move(heap).Finish();
}

std::vector<Neighbor> BkTreeKnn(const BkTree& tree,
                                const PreparedQuery& query, size_t j,
                                Statistics* stats) {
  NeighborHeap heap(j);
  if (tree.empty() || j == 0) return std::move(heap).Finish();
  const auto& nodes = tree.nodes();
  const RankingStore& store = tree.store();
  const SortedRankingView q = query.sorted_view();

  // Depth-first with children visited in order of optimistic subtree
  // distance. Every node x below a child with edge label e satisfies
  // d(x, parent) = e by construction, so |d(q, parent) - e| lower-bounds
  // the whole subtree and pruning against the current j-th best is sound.
  // Distances are offered the moment they are computed so the bound
  // tightens as early as possible.
  struct Frame {
    uint32_t node;
    RawDistance dist;
  };
  std::vector<Frame> stack;
  AddTicker(stats, Ticker::kDistanceCalls);
  const RawDistance root_dist =
      FootruleDistance(q, store.sorted(nodes[0].id));
  heap.Offer(nodes[0].id, root_dist);
  stack.push_back(Frame{0, root_dist});

  std::vector<std::pair<RawDistance, Frame>> children;  // (optimistic, ...)
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    AddTicker(stats, Ticker::kTreeNodesVisited);

    children.clear();
    for (uint32_t child = nodes[frame.node].first_child;
         child != BkTree::kNoNode; child = nodes[child].next_sibling) {
      const RawDistance e = nodes[child].parent_dist;
      const RawDistance optimistic =
          e > frame.dist ? e - frame.dist : frame.dist - e;
      if (optimistic > heap.Bound()) continue;
      RawDistance child_dist;
      if (e == 0) {
        child_dist = frame.dist;  // identical ranking, reuse
      } else {
        AddTicker(stats, Ticker::kDistanceCalls);
        child_dist = FootruleDistance(q, store.sorted(nodes[child].id));
      }
      heap.Offer(nodes[child].id, child_dist);
      children.emplace_back(optimistic, Frame{child, child_dist});
    }
    // Push most promising last so it is explored first.
    std::sort(children.begin(), children.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [optimistic, child_frame] : children) {
      if (optimistic <= heap.Bound()) stack.push_back(child_frame);
    }
  }
  return std::move(heap).Finish();
}

std::vector<Neighbor> MTreeKnn(const MTree& tree, const PreparedQuery& query,
                               size_t j, Statistics* stats) {
  return tree.Knn(query.sorted_view(), j, stats);
}

}  // namespace topk
