// k-nearest-neighbour queries over the ranking indexes.
//
// The paper evaluates range queries only, but its related-work section
// frames KNN as the sibling problem and every structure here supports it
// naturally: best-first search with a shrinking distance bound. The
// result is the j rankings closest to the query (ties broken by id), with
// the same exactness guarantees as the range API.
//
// All searchers share the contract: results sorted by (distance, id),
// exactly min(j, n) entries.

#ifndef TOPK_METRIC_KNN_H_
#define TOPK_METRIC_KNN_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "metric/bk_tree.h"
#include "metric/m_tree.h"

namespace topk {

struct Neighbor {
  RankingId id;
  RawDistance distance;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Exhaustive baseline (and differential-test oracle).
std::vector<Neighbor> LinearScanKnn(const RankingStore& store,
                                    const PreparedQuery& query, size_t j,
                                    Statistics* stats = nullptr);

/// BK-tree KNN: depth-first traversal keeping the j best seen; a subtree
/// is entered only while |d(q, node) - edge| can still beat the current
/// j-th best distance. Degenerates to a full scan when j >= n.
std::vector<Neighbor> BkTreeKnn(const BkTree& tree,
                                const PreparedQuery& query, size_t j,
                                Statistics* stats = nullptr);

/// M-tree KNN: best-first descent ordered by the optimistic subtree bound
/// max(0, d(q, routing) - radius), pruned against the current j-th best.
std::vector<Neighbor> MTreeKnn(const MTree& tree, const PreparedQuery& query,
                               size_t j, Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_METRIC_KNN_H_
