// M-tree (Ciaccia, Patella, Zezula; VLDB 1997) over the Footrule metric.
//
// The balanced metric-tree baseline of the paper's Figure 5. Routing
// entries carry a covering radius and their distance to the parent routing
// object, which lets range search discard whole subtrees twice: once with
// the parent-distance test |d(q, parent) - parent_dist| <= theta + radius
// (no distance computation needed) and once with the covering-radius test
// d(q, routing) <= theta + radius.
//
// Node splits follow the original design: a promotion policy picks two new
// routing objects and the generalized-hyperplane rule partitions entries
// to the closer one. The default policy is the exact mM_RAD rule —
// minimize the larger covering radius over all candidate pairs — computed
// from the split node's full pairwise-distance matrix (node capacities are
// small, so this is cheap and deterministic).

#ifndef TOPK_METRIC_M_TREE_H_
#define TOPK_METRIC_M_TREE_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

struct MTreeOptions {
  /// Maximum entries per node; a node holding capacity + 1 entries splits.
  uint32_t node_capacity = 32;

  enum class Promotion {
    kRandom,        // two distinct random entries
    kMaxSpread,     // heuristic: far apart pair via two linear passes
    kMinMaxRadius,  // mM_RAD: minimize the larger covering radius (default)
  };
  Promotion promotion = Promotion::kMinMaxRadius;

  /// Seed for the kRandom policy.
  uint64_t seed = 7;
};

class MTree {
 public:
  /// `store` must outlive the tree.
  explicit MTree(const RankingStore* store, MTreeOptions options = {});

  static MTree Build(const RankingStore* store,
                     std::span<const RankingId> ids, MTreeOptions options = {},
                     Statistics* stats = nullptr);
  static MTree BuildAll(const RankingStore* store, MTreeOptions options = {},
                        Statistics* stats = nullptr);

  void Insert(RankingId id, Statistics* stats = nullptr);

  void RangeQueryInto(SortedRankingView query, RawDistance theta_raw,
                      Statistics* stats, std::vector<RankingId>* out) const;
  std::vector<RankingId> RangeQuery(SortedRankingView query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr) const;

  /// The j nearest stored rankings as (id, distance) pairs sorted by
  /// (distance, id): best-first descent ordered by the optimistic subtree
  /// bound max(0, d(q, routing) - radius), pruned against the current
  /// j-th best. Returned pairs are declared in metric/knn.h.
  std::vector<struct Neighbor> Knn(SortedRankingView query, size_t j,
                                   Statistics* stats = nullptr) const;

  size_t size() const { return size_; }
  size_t MemoryUsage() const;

  /// Validates the M-tree invariants (covering radii dominate subtrees,
  /// parent distances are exact); test-only, O(n * depth) distances.
  bool CheckInvariants() const;

 private:
  struct Entry {
    RankingId obj;
    RawDistance parent_dist;  // d(obj, parent routing object); 0 at root
    RawDistance radius;       // covering radius; 0 for leaf entries
    int32_t child;            // node index, or -1 for leaf entries
  };
  struct Node {
    bool is_leaf = true;
    int32_t parent_node = -1;   // -1 for the root
    int32_t parent_entry = -1;  // entry index within the parent node
    std::vector<Entry> entries;
  };

  RawDistance Distance(RankingId a, RankingId b, Statistics* stats) const;
  RawDistance DistanceToQuery(SortedRankingView query, RankingId id,
                              Statistics* stats) const;
  void Split(int32_t node_index, Statistics* stats);
  std::pair<uint32_t, uint32_t> Promote(
      const std::vector<Entry>& entries,
      const std::vector<std::vector<RawDistance>>& dist,
      Statistics* stats);
  void QueryNode(SortedRankingView query, RawDistance theta_raw,
                 int32_t node_index, RawDistance parent_query_dist,
                 bool has_parent_dist, Statistics* stats,
                 std::vector<RankingId>* out) const;
  bool CheckNode(int32_t node_index, RankingId routing,
                 RawDistance radius) const;

  const RankingStore* store_;
  MTreeOptions options_;
  mutable Rng rng_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
};

}  // namespace topk

#endif  // TOPK_METRIC_M_TREE_H_
