#include "metric/bk_tree.h"

#include <algorithm>

#include "core/footrule.h"

namespace topk {

BkTree BkTree::Build(const RankingStore* store, std::span<const RankingId> ids,
                     Statistics* stats, BkTreeOptions options) {
  BkTree tree(store, options);
  tree.nodes_.reserve(ids.size());
  for (RankingId id : ids) tree.Insert(id, stats);
  return tree;
}

BkTree BkTree::BuildAll(const RankingStore* store, Statistics* stats,
                        BkTreeOptions options) {
  BkTree tree(store, options);
  tree.nodes_.reserve(store->size());
  for (RankingId id = 0; id < store->size(); ++id) tree.Insert(id, stats);
  return tree;
}

void BkTree::Insert(RankingId id, Statistics* stats) {
  if (nodes_.empty()) {
    nodes_.push_back(Node{id, 0, kNoNode, kNoNode});
    return;
  }
  const SortedRankingView inserted = store_->sorted(id);
  uint32_t current = 0;
  // Once a distance of 0 is observed the new ranking is *identical* to
  // the current node (the metric is regular), so every node further down
  // the 0-edge chain is identical too: descend without recomputing.
  bool known_zero = false;
  for (;;) {
    RawDistance d = 0;
    if (!known_zero) {
      AddTicker(stats, Ticker::kDistanceCalls);
      d = FootruleDistance(inserted, store_->sorted(nodes_[current].id));
      known_zero = d == 0;
    }
    // Find the child whose edge label equals d; descend if present.
    uint32_t child = nodes_[current].first_child;
    uint32_t found = kNoNode;
    while (child != kNoNode) {
      if (nodes_[child].parent_dist == d) {
        found = child;
        break;
      }
      child = nodes_[child].next_sibling;
    }
    if (found != kNoNode) {
      current = found;
      continue;
    }
    const auto new_index = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{id, d, kNoNode, nodes_[current].first_child});
    nodes_[current].first_child = new_index;
    return;
  }
}

void BkTree::RangeQueryInto(SortedRankingView query, RawDistance theta_raw,
                            Statistics* stats,
                            std::vector<RankingId>* out) const {
  if (nodes_.empty()) return;
  AddTicker(stats, Ticker::kDistanceCalls);
  const RawDistance root_dist =
      FootruleDistance(query, store_->sorted(nodes_[0].id));
  QueryNode(query, theta_raw, 0, root_dist, stats, out);
}

std::vector<RankingId> BkTree::RangeQuery(SortedRankingView query,
                                          RawDistance theta_raw,
                                          Statistics* stats) const {
  std::vector<RankingId> out;
  RangeQueryInto(query, theta_raw, stats, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void BkTree::RangeQueryWithRootDistance(SortedRankingView query,
                                        RawDistance theta_raw,
                                        RawDistance root_dist,
                                        Statistics* stats,
                                        std::vector<RankingId>* out) const {
  if (nodes_.empty()) return;
  QueryNode(query, theta_raw, 0, root_dist, stats, out);
}

void BkTree::RangeQueryWithRootDistance(const FootruleValidator& validator,
                                        RawDistance theta_raw,
                                        RawDistance root_dist,
                                        Statistics* stats,
                                        std::vector<RankingId>* out) const {
  if (nodes_.empty()) return;
  QueryNodeBatched(validator, theta_raw, 0, root_dist, stats, out);
}

template <typename DistanceFn>
void BkTree::QueryNodeImpl(const DistanceFn& distance, RawDistance theta_raw,
                           uint32_t node_index, RawDistance node_dist,
                           Statistics* stats,
                           std::vector<RankingId>* out) const {
  AddTicker(stats, Ticker::kTreeNodesVisited);
  const Node& node = nodes_[node_index];
  if (node_dist <= theta_raw) out->push_back(node.id);

  // A child at edge distance e can contain matches only if
  // |node_dist - e| <= theta (triangle inequality on the discrete metric).
  for (uint32_t child = node.first_child; child != kNoNode;
       child = nodes_[child].next_sibling) {
    const RawDistance e = nodes_[child].parent_dist;
    const RawDistance gap = e > node_dist ? e - node_dist : node_dist - e;
    if (gap > theta_raw) continue;
    if (e == 0 && options_.reuse_duplicate_distances) {
      // A 0-edge child is an identical ranking: its query distance equals
      // the parent's, no Footrule call needed. This is the paper's
      // "exact matching rankings in one partition" effect that lets the
      // coarse index undercut even the Minimal F&V oracle in Figure 10.
      QueryNodeImpl(distance, theta_raw, child, node_dist, stats, out);
      continue;
    }
    AddTicker(stats, Ticker::kDistanceCalls);
    const RawDistance child_dist = distance(nodes_[child].id);
    QueryNodeImpl(distance, theta_raw, child, child_dist, stats, out);
  }
}

void BkTree::QueryNode(SortedRankingView query, RawDistance theta_raw,
                       uint32_t node_index, RawDistance node_dist,
                       Statistics* stats, std::vector<RankingId>* out) const {
  QueryNodeImpl(
      [this, query](RankingId id) {
        return FootruleDistance(query, store_->sorted(id));
      },
      theta_raw, node_index, node_dist, stats, out);
}

void BkTree::QueryNodeBatched(const FootruleValidator& validator,
                              RawDistance theta_raw, uint32_t node_index,
                              RawDistance node_dist, Statistics* stats,
                              std::vector<RankingId>* out) const {
  QueryNodeImpl(
      [this, &validator](RankingId id) {
        return validator.Distance(store_->view(id));
      },
      theta_raw, node_index, node_dist, stats, out);
}

}  // namespace topk
