// Fixed-size worker pool for parallel query serving.
//
// The pool is created once and reused across query batches: workers block
// on a condition variable between tasks, so an idle pool costs nothing on
// the query path. Two usage styles:
//
//   Submit(f)        enqueue one task, get a std::future for its result;
//                    exceptions thrown inside f surface at future.get().
//   ParallelFor(n,f) run f(0..n-1) across the pool *and* the calling
//                    thread, return when all are done; the first exception
//                    (if any) is rethrown on the caller.
//
// A pool constructed with 0 workers degrades to inline execution in
// ParallelFor — that is the exact single-threaded code path, which makes
// "1 thread" a fair baseline in scaling benchmarks (no queueing overhead
// is charged to it).

#ifndef TOPK_HARNESS_THREAD_POOL_H_
#define TOPK_HARNESS_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace topk {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is valid: ParallelFor runs inline and
  /// Submit executes on the calling thread at enqueue time).
  explicit ThreadPool(size_t num_workers) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mutex_);
      stopping_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `f` and returns a future for its result. Exceptions escape
  /// through the future, never into the worker loop. With zero workers the
  /// task runs synchronously here (the future is already ready).
  template <typename F>
  auto Submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // The failpoint probe lives INSIDE the packaged task so an injected
    // worker failure surfaces through the future exactly like an
    // exception from f itself — never into WorkerLoop (where a throw
    // would std::terminate) and never swallowed where a caller joining
    // the future would hang on a forever-unready result.
    auto probed = [f = std::move(f)]() mutable -> R {
      if (TOPK_FAILPOINT("harness.thread_pool.task")) {
        throw std::runtime_error("injected failure: harness.thread_pool.task");
      }
      return f();
    };
    // packaged_task is move-only but std::function wants copyable targets;
    // the shared_ptr wrapper is the standard bridge.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(probed));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return result;
    }
    {
      MutexLock lock(&mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.NotifyOne();
    return result;
  }

  /// Runs `fn(i)` for every i in [0, n). The calling thread participates,
  /// so a pool of W workers gives up to W+1-way parallelism. Returns after
  /// every iteration finished; if any threw, the first captured exception
  /// is rethrown (the remaining iterations still run to completion, so the
  /// pool is reusable afterwards).
  template <typename F>
  void ParallelFor(size_t n, const F& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ParallelForState>();
    auto drain = [state, n, &fn] {
      for (size_t i; (i = state->next.fetch_add(1)) < n;) {
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(&state->error_mutex);
          if (!state->error) state->error = std::current_exception();
        }
      }
    };
    // Helpers share one index counter with the caller, so whichever thread
    // is free grabs the next iteration (work sharing, not static split).
    const size_t helpers = std::min(workers_.size(), n - 1);
    std::vector<std::future<void>> pending;
    pending.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) pending.push_back(Submit(drain));
    drain();
    // Join EVERY helper before surfacing any error: rethrowing out of the
    // first get() while later helpers were still draining would race them
    // against a caller that has already unwound `fn` off its stack.
    // Helper futures only carry an exception when the task layer itself
    // failed (e.g. an injected harness.thread_pool.task fault) — drain()
    // captures fn's own exceptions into the shared slot.
    std::exception_ptr task_error;
    for (std::future<void>& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!task_error) task_error = std::current_exception();
      }
    }
    // The future handshake above is the happens-before edge, but the
    // error slot is a guarded member, so read it under its own lock
    // (uncontended by now) instead of punching an analysis hole.
    std::exception_ptr error;
    {
      MutexLock lock(&state->error_mutex);
      error = state->error;
    }
    if (!error) error = task_error;
    if (error) std::rethrow_exception(error);
  }

 private:
  struct ParallelForState {
    std::atomic<size_t> next{0};
    Mutex error_mutex;
    std::exception_ptr error TOPK_GUARDED_BY(error_mutex);
  };

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mutex_);
        // Explicit predicate loop (no lambda-predicate overload): the
        // guarded reads stay in this scope, where the analysis can see
        // the capability held by `lock`.
        while (!stopping_ && queue_.empty()) wake_.Wait(mutex_);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ TOPK_GUARDED_BY(mutex_);
  bool stopping_ TOPK_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace topk

#endif  // TOPK_HARNESS_THREAD_POOL_H_
