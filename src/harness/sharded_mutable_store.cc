#include "harness/sharded_mutable_store.h"

#include <algorithm>
#include <utility>

#include "core/status.h"

namespace topk {

ShardedMutableStore::ShardedMutableStore(uint32_t k, size_t num_shards,
                                         ShardingStrategy strategy,
                                         MutableStoreOptions shard_options)
    : k_(k), strategy_(strategy) {
  TOPK_DCHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<MutableStore>(k, shard_options));
  }
  shard_to_global_.resize(num_shards);
}

// generation: delegated to the owning shard's Insert bump.
RankingId ShardedMutableStore::Insert(RankingView record) {
  MutexLock lock(&mutex_);
  const RankingId global = next_global_id_++;
  const size_t s = ShardPlacement(strategy_, global, shards_.size());
  const RankingId local = shards_[s]->Insert(record);
  // The shard assigns dense local ids in its own insert order, which is
  // exactly the order the wrapper routes to it.
  TOPK_DCHECK(local == shard_to_global_[s].size());
  (void)local;
  shard_to_global_[s].push_back(global);
  return global;
}

// generation: delegated to the owning shard's Delete bump.
bool ShardedMutableStore::Delete(RankingId id) {
  MutexLock lock(&mutex_);
  if (id >= next_global_id_) return false;
  const size_t s = ShardPlacement(strategy_, id, shards_.size());
  const std::vector<RankingId>& map = shard_to_global_[s];
  const auto it = std::lower_bound(map.begin(), map.end(), id);
  TOPK_DCHECK(it != map.end() && *it == id);
  const auto local = static_cast<RankingId>(it - map.begin());
  return shards_[s]->Delete(local);
}

bool ShardedMutableStore::Contains(RankingId id) const {
  MutexLock lock(&mutex_);
  if (id >= next_global_id_) return false;
  const size_t s = ShardPlacement(strategy_, id, shards_.size());
  const std::vector<RankingId>& map = shard_to_global_[s];
  const auto it = std::lower_bound(map.begin(), map.end(), id);
  TOPK_DCHECK(it != map.end() && *it == id);
  return shards_[s]->Contains(static_cast<RankingId>(it - map.begin()));
}

std::vector<RankingId> ShardedMutableStore::RangeQuery(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  MutexLock lock(&mutex_);
  std::vector<RankingId> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<RankingId> locals =
        shards_[s]->RangeQuery(query, theta_raw, stats);
    const std::vector<RankingId>& map = shard_to_global_[s];
    for (const RankingId local : locals) out.push_back(map[local]);
  }
  // Per-shard lists are ascending in global id (increasing local ->
  // global maps); one sort merges them into the global order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Neighbor> ShardedMutableStore::KnnQuery(
    const PreparedQuery& query, size_t j, Statistics* stats) {
  MutexLock lock(&mutex_);
  std::vector<Neighbor> all;
  size_t live = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    live += shards_[s]->live_size();
    std::vector<Neighbor> part = shards_[s]->KnnQuery(query, j, stats);
    const std::vector<RankingId>& map = shard_to_global_[s];
    for (Neighbor& n : part) {
      n.id = map[n.id];
      all.push_back(n);
    }
  }
  // Each shard contributed its exact top-min(j, shard live) on
  // (distance, id), and local -> global maps preserve id order within a
  // shard, so the global top-j is contained in `all`.
  const size_t take = std::min(j, std::min(live, all.size()));
  const auto by_distance_then_id = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(take),
                    all.end(), by_distance_then_id);
  all.resize(take);
  return all;
}

bool ShardedMutableStore::MergeAllNow() {
  MutexLock lock(&mutex_);
  bool any = false;
  for (const auto& shard : shards_) any = shard->MergeNow() || any;
  return any;
}

void ShardedMutableStore::AddMutationListener(std::function<void()> listener) {
  MutexLock lock(&mutex_);
  for (const auto& shard : shards_) shard->AddMutationListener(listener);
}

uint64_t ShardedMutableStore::generation() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->generation();
  return sum;
}

size_t ShardedMutableStore::live_size() const {
  MutexLock lock(&mutex_);
  size_t sum = 0;
  for (const auto& shard : shards_) sum += shard->live_size();
  return sum;
}

size_t ShardedMutableStore::total_inserted() const {
  MutexLock lock(&mutex_);
  return next_global_id_;
}

}  // namespace topk
