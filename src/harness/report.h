// Fixed-width text tables for the bench binaries, which print the same
// rows/series the paper's figures and tables report.

#ifndef TOPK_HARNESS_REPORT_H_
#define TOPK_HARNESS_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace topk {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("12.34").
std::string FormatDouble(double value, int precision = 2);

/// Bytes rendered in MB with two decimals.
std::string FormatMegabytes(size_t bytes);

/// Section banner for bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace topk

#endif  // TOPK_HARNESS_REPORT_H_
