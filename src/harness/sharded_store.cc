#include "harness/sharded_store.h"

#include <cstdint>

#include "core/status.h"

namespace topk {

const char* ShardingStrategyName(ShardingStrategy strategy) {
  switch (strategy) {
    case ShardingStrategy::kRoundRobin:
      return "round_robin";
    case ShardingStrategy::kHashById:
      return "hash_by_id";
  }
  return "unknown";
}

ShardedStore::ShardedStore(const RankingStore& store, size_t num_shards,
                           ShardingStrategy strategy)
    : strategy_(strategy), k_(store.k()), size_(store.size()) {
  TOPK_DCHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) shards_.emplace_back(k_);
  global_ids_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // Round-robin fills shards within one ranking of evenly; the hash is
    // close to even for the sizes we shard. Reserving the even split
    // avoids most growth reallocations either way.
    shards_[s].Reserve(size_ / num_shards + 1);
    global_ids_[s].reserve(size_ / num_shards + 1);
  }
  for (RankingId id = 0; id < store.size(); ++id) {
    const size_t s = ShardPlacement(strategy, id, num_shards);
    shards_[s].AddUnchecked(store.view(id).items());
    global_ids_[s].push_back(id);
  }
}

void ShardedStore::MapToGlobal(size_t s, std::vector<RankingId>* ids) const {
  const std::vector<RankingId>& map = global_ids_[s];
  for (RankingId& id : *ids) id = map[id];
}

}  // namespace topk
