// Partitioning of one RankingStore into N disjoint shards for parallel
// query serving.
//
// Each shard is itself a plain RankingStore, so every existing index and
// algorithm works unchanged on a shard; the ShardedStore keeps the
// shard-local-id -> global-id mapping needed to report results in terms
// of the original collection. Both placement strategies append rankings
// to their shard in global-id order, so the mapping is strictly
// increasing per shard — merging per-shard result lists (each ascending
// in local id) therefore yields globally ascending ids with a plain
// k-way merge, and shard-local (distance, id) KNN order coincides with
// global (distance, id) order.
//
// Thread safety: immutable after construction (Partition builds the
// shards; nothing mutates afterwards), so concurrent readers need no
// lock and the class deliberately carries no mutex or thread-safety
// annotations — const access from many threads is the contract the
// parallel harness relies on.

#ifndef TOPK_HARNESS_SHARDED_STORE_H_
#define TOPK_HARNESS_SHARDED_STORE_H_

#include <vector>

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

enum class ShardingStrategy {
  /// Ranking i goes to shard i % N: perfectly balanced, placement is a
  /// pure function of insertion order.
  kRoundRobin,
  /// Ranking i goes to shard mix(i) % N (a splitmix64 finalizer):
  /// placement is stable under re-partitioning with the same N and does
  /// not correlate with insertion order (generators emit clustered
  /// near-duplicates consecutively; hashing spreads a cluster over all
  /// shards instead of loading one).
  kHashById,
};

const char* ShardingStrategyName(ShardingStrategy strategy);

/// Shard index for global ranking `id` under `strategy`. This is THE
/// placement function: the static ShardedStore partitioner and the live
/// ShardedMutableStore write router both call it, so a collection grown
/// by inserts and one re-partitioned from scratch place every id on the
/// same shard.
inline size_t ShardPlacement(ShardingStrategy strategy, RankingId id,
                             size_t num_shards) {
  return strategy == ShardingStrategy::kRoundRobin
             ? id % num_shards
             : MixId64(id) % num_shards;
}

class ShardedStore {
 public:
  /// Copies `store` into `num_shards` shards (num_shards >= 1; shards may
  /// end up empty when num_shards > store.size(), which is legal).
  ShardedStore(const RankingStore& store, size_t num_shards,
               ShardingStrategy strategy);

  size_t num_shards() const { return shards_.size(); }
  ShardingStrategy strategy() const { return strategy_; }
  uint32_t k() const { return k_; }

  /// Total rankings across all shards (== source store size).
  size_t size() const { return size_; }

  const RankingStore& shard(size_t s) const { return shards_[s]; }

  /// Global id of shard `s`'s local ranking `local`.
  RankingId ToGlobal(size_t s, RankingId local) const {
    return global_ids_[s][local];
  }

  /// Maps a shard-local ascending id list to global ids in place; the
  /// output stays ascending (the local -> global map is increasing).
  void MapToGlobal(size_t s, std::vector<RankingId>* ids) const;

 private:
  ShardingStrategy strategy_;
  uint32_t k_;
  size_t size_ = 0;
  std::vector<RankingStore> shards_;
  std::vector<std::vector<RankingId>> global_ids_;
};

}  // namespace topk

#endif  // TOPK_HARNESS_SHARDED_STORE_H_
