// Parallel query serving over a ShardedStore.
//
// Architecture: every shard owns a full EngineSuite, so each of the
// paper's algorithms runs unchanged against its shard. A query fans out
// across all shards on a reusable fixed-size ThreadPool (the calling
// thread participates), and the per-shard answers are merged exactly:
//
//   range  per-shard result lists arrive ascending in shard-local id;
//          mapping to global ids preserves order (see ShardedStore), so a
//          k-way merge reproduces the single-store ascending id list
//          bit-for-bit.
//   k-NN   every shard returns its local j best by (distance, global id);
//          the global j best is a subset of that union, so a heap merge
//          that stops after j results — tightening the admission bound
//          theta to the current j-th best distance as it goes, which cuts
//          off each shard's sorted tail early — is exact.
//
// Accounting is aggregation-safe by construction: each shard task writes
// only its own Statistics / PhaseTimes slot, and the coordinator merges
// the slots after the fan-out joins (the pool's future handshake is the
// happens-before edge). No ticker is ever shared between threads.
//
// The coordinator methods (Prepare / RangeQuery / KnnQuery / RunQueries)
// serialize on an internal coordinator mutex, and the fan-out scratch
// arrays are TOPK_GUARDED_BY it (compiler-enforced on the clang
// thread-safety CI leg): one query drives the runner at a time, and a
// second thread calling in now blocks instead of racing. Per-shard state
// reached from inside pool tasks (each task owns exactly its shard's
// slot) is deliberately outside the capability system — that one-writer-
// per-slot discipline is what the TSan leg and the fuzz differentials
// check. See DESIGN.md "Locking order & epoch contracts".

#ifndef TOPK_HARNESS_PARALLEL_RUNNER_H_
#define TOPK_HARNESS_PARALLEL_RUNNER_H_

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "harness/query_algorithms.h"
#include "harness/runner.h"
#include "harness/sharded_store.h"
#include "harness/thread_pool.h"
#include "metric/knn.h"

namespace topk {

struct ParallelRunnerOptions {
  /// Total threads doing query work, including the calling thread
  /// (the pool spawns num_threads - 1 workers). 0 means "one per shard".
  size_t num_threads = 0;
  /// Forwarded to every per-shard EngineSuite.
  EngineSuiteConfig suite_config;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(const ShardedStore* store,
                          ParallelRunnerOptions options = {});

  size_t num_shards() const { return store_->num_shards(); }
  size_t num_threads() const { return num_threads_; }
  const ShardedStore& store() const { return *store_; }

  /// Per-shard suite access (benches inspect index build cost per shard).
  EngineSuite& suite(size_t s) { return shards_[s]->suite; }

  /// Builds the per-shard indexes and engines behind `algorithm`, one
  /// shard per pool thread. Idempotent; called implicitly by the query
  /// methods. kMinimalFV is workload-bound — use PrepareOracle.
  void Prepare(Algorithm algorithm) TOPK_EXCLUDES(mutex_);

  /// Materializes the per-shard Minimal-F&V oracles for this workload;
  /// afterwards RangeQuery/RunQueries accept Algorithm::kMinimalFV with
  /// query indexes into `queries`.
  void PrepareOracle(std::span<const PreparedQuery> queries,
                     RawDistance theta_raw) TOPK_EXCLUDES(mutex_);

  /// Exact sharded range query; the returned global ids are ascending,
  /// identical to the same engine over the unsharded store. `query_index`
  /// only matters for kMinimalFV. Merged per-shard tickers/phases land in
  /// `stats`/`phases` when non-null.
  std::vector<RankingId> RangeQuery(Algorithm algorithm, size_t query_index,
                                    const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr,
                                    PhaseTimes* phases = nullptr)
      TOPK_EXCLUDES(mutex_);

  std::vector<RankingId> RangeQuery(Algorithm algorithm,
                                    const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr) {
    return RangeQuery(algorithm, 0, query, theta_raw, stats, nullptr);
  }

  /// Deadline/cancel-aware sharded range query. The control is checked
  /// before the fan-out and at shard-task granularity inside it (shards
  /// that have not started yet are skipped once the query stops). On a
  /// stop the partial per-shard results are discarded, `*out` is left
  /// empty, kDeadlineExceeded is ticked, and the status is
  /// DeadlineExceeded (deadline) or Aborted (cancel) — never a hang, and
  /// never a partial answer presented as exact.
  Status RangeQuery(Algorithm algorithm, size_t query_index,
                    const PreparedQuery& query, RawDistance theta_raw,
                    QueryControl* control, std::vector<RankingId>* out,
                    Statistics* stats = nullptr, PhaseTimes* phases = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Exact sharded k-NN (kLinearScan, kBkTree or kMTree backends): the
  /// min(j, size()) nearest rankings by (distance, global id), identical
  /// to the unsharded searcher.
  std::vector<Neighbor> KnnQuery(Algorithm algorithm,
                                 const PreparedQuery& query, size_t j,
                                 Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Sharded counterpart of RunQueries (harness/runner.h): runs the whole
  /// workload, aggregating latencies, tickers and per-shard phase splits.
  RunResult RunQueries(Algorithm algorithm,
                       std::span<const PreparedQuery> queries,
                       RawDistance theta_raw) TOPK_EXCLUDES(mutex_);

 private:
  struct ShardState {
    ShardState(const RankingStore* shard_store, EngineSuiteConfig config)
        : suite(shard_store, config) {}
    EngineSuite suite;
    std::map<Algorithm, std::unique_ptr<QueryEngine>> engines;
    std::unique_ptr<QueryEngine> oracle;
  };

  /// Prepare/PrepareOracle bodies for callers already holding mutex_.
  void PrepareLocked(Algorithm algorithm) TOPK_REQUIRES(mutex_);
  void PrepareOracleLocked(std::span<const PreparedQuery> queries,
                           RawDistance theta_raw) TOPK_REQUIRES(mutex_);

  /// Runs one query on every shard (range form), leaving shard s's global
  /// ids in (*results)[s] and its tickers/phases in the s-th slots. A
  /// non-null `control` is consulted once per shard task: a shard whose
  /// task starts after the stop leaves its slot empty (the caller must
  /// then discard the whole fan-out, not merge it).
  void FanOut(Algorithm algorithm, size_t query_index,
              const PreparedQuery& query, RawDistance theta_raw,
              std::vector<std::vector<RankingId>>* results,
              std::vector<Statistics>* stats, std::vector<PhaseTimes>* phases,
              QueryControl* control = nullptr) TOPK_REQUIRES(mutex_);

  /// Engine lookup for one shard. Called from inside pool tasks (which
  /// hold no capability), so it must stay annotation-free: the per-shard
  /// engine maps are written only by PrepareLocked's fan-out (one task
  /// per shard) and read-only while queries run.
  QueryEngine* engine(size_t s, Algorithm algorithm);

  const ShardedStore* store_;
  ParallelRunnerOptions options_;
  size_t num_threads_;
  ThreadPool pool_;
  /// Serializes the coordinator methods (above the pool's queue mutex in
  /// the lock order; shard tasks never touch it).
  Mutex mutex_;
  // Shard handles: the vector itself is immutable after construction;
  // the per-shard state behind it follows the one-task-per-shard rule
  // documented on engine().
  std::vector<std::unique_ptr<ShardState>> shards_;

  // Fan-out scratch, reused across queries. Guarded coordinator-side;
  // during a fan-out each shard task writes only its own slot through
  // the pointers FanOut hands it.
  std::vector<std::vector<RankingId>> scratch_results_ TOPK_GUARDED_BY(mutex_);
  std::vector<Statistics> scratch_stats_ TOPK_GUARDED_BY(mutex_);
  std::vector<PhaseTimes> scratch_phases_ TOPK_GUARDED_BY(mutex_);
};

/// Exact ascending merge of per-shard ascending id lists (exposed for the
/// differential tests).
std::vector<RankingId> MergeShardRangeResults(
    std::span<const std::vector<RankingId>> per_shard);

/// Exact theta-tightening merge of per-shard k-NN lists, each sorted by
/// (distance, id): pops the global best until j results are admitted; a
/// shard's remaining tail is discarded as soon as its head exceeds the
/// tightened bound.
std::vector<Neighbor> MergeShardKnnResults(
    std::span<const std::vector<Neighbor>> per_shard, size_t j);

}  // namespace topk

#endif  // TOPK_HARNESS_PARALLEL_RUNNER_H_
