// Timed workload execution: runs a query engine over a prepared workload
// and aggregates wall time, phase splits and tickers — the measurement
// loop behind every figure in Section 7.

#ifndef TOPK_HARNESS_RUNNER_H_
#define TOPK_HARNESS_RUNNER_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "harness/query_algorithms.h"

namespace topk {

struct RunResult {
  double wall_ms = 0;       // total wall time over all queries
  PhaseTimes phases;        // filter/validate split (engines that report it)
  Statistics stats;         // aggregated tickers
  size_t total_results = 0;
  size_t num_queries = 0;

  // Order-insensitive checksum: the wrapped sum of MixId64(id) over every
  // match of every query. The check is one-sided: unequal hashes prove
  // the overall result multisets differ; equal hashes imply agreement
  // only with overwhelming probability (a wrapping sum can collide in
  // principle). The scaling bench uses it to flag parallel answers that
  // diverge from the sequential run without retaining the results; the
  // exactness *guarantee* comes from the differential test suites.
  uint64_t result_hash = 0;

  // Execution-shape metadata: the sequential runner reports 1/1 and leaves
  // shard_phases empty; the ParallelRunner fills in its fan-out. phases
  // and stats above are always the cross-shard aggregate.
  size_t num_threads = 1;
  size_t num_shards = 1;
  std::vector<PhaseTimes> shard_phases;  // one entry per shard when sharded

  // Per-query latency distribution (tail behaviour matters for ad-hoc
  // query serving; the paper reports only totals).
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  double mean_ms_per_query() const {
    return num_queries == 0 ? 0 : wall_ms / static_cast<double>(num_queries);
  }
};

/// Runs every query once and aggregates. Results are consumed (their sizes
/// are tallied) but not retained.
RunResult RunQueries(QueryEngine* engine,
                     std::span<const PreparedQuery> queries,
                     RawDistance theta_raw);

/// Sorts `latencies` in place and fills result's p50/p95/p99/max fields —
/// shared by the sequential and parallel runners so both compute the tail
/// the same way.
void FinalizeLatencyStats(std::vector<double>* latencies, RunResult* result);

}  // namespace topk

#endif  // TOPK_HARNESS_RUNNER_H_
