// Timed workload execution: runs a query engine over a prepared workload
// and aggregates wall time, phase splits and tickers — the measurement
// loop behind every figure in Section 7.

#ifndef TOPK_HARNESS_RUNNER_H_
#define TOPK_HARNESS_RUNNER_H_

#include <span>

#include "core/ranking.h"
#include "core/statistics.h"
#include "harness/query_algorithms.h"

namespace topk {

struct RunResult {
  double wall_ms = 0;       // total wall time over all queries
  PhaseTimes phases;        // filter/validate split (engines that report it)
  Statistics stats;         // aggregated tickers
  size_t total_results = 0;
  size_t num_queries = 0;

  // Per-query latency distribution (tail behaviour matters for ad-hoc
  // query serving; the paper reports only totals).
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  double mean_ms_per_query() const {
    return num_queries == 0 ? 0 : wall_ms / static_cast<double>(num_queries);
  }
};

/// Runs every query once and aggregates. Results are consumed (their sizes
/// are tallied) but not retained.
RunResult RunQueries(QueryEngine* engine,
                     std::span<const PreparedQuery> queries,
                     RawDistance theta_raw);

}  // namespace topk

#endif  // TOPK_HARNESS_RUNNER_H_
