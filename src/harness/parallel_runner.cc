#include "harness/parallel_runner.h"

#include "core/status.h"

namespace topk {

namespace {

/// Maps a stopped control to its caller-facing status, ticking the
/// deadline counter (cancellation shares it: both are "the query did not
/// run to completion by request").
Status StopStatus(const QueryControl& control, Statistics* stats) {
  AddTicker(stats, Ticker::kDeadlineExceeded);
  if (control.cancelled()) {
    return Status::Aborted("sharded range query cancelled");
  }
  return Status::DeadlineExceeded("sharded range query deadline exceeded");
}

}  // namespace

ParallelRunner::ParallelRunner(const ShardedStore* store,
                               ParallelRunnerOptions options)
    : store_(store),
      options_(options),
      num_threads_(options.num_threads == 0 ? store->num_shards()
                                            : options.num_threads),
      pool_(num_threads_ - 1) {
  TOPK_DCHECK(num_threads_ >= 1);
  shards_.reserve(store_->num_shards());
  for (size_t s = 0; s < store_->num_shards(); ++s) {
    shards_.push_back(
        std::make_unique<ShardState>(&store_->shard(s), options_.suite_config));
  }
  scratch_results_.resize(store_->num_shards());
  scratch_stats_.resize(store_->num_shards());
  scratch_phases_.resize(store_->num_shards());
}

void ParallelRunner::Prepare(Algorithm algorithm) {
  MutexLock lock(&mutex_);
  PrepareLocked(algorithm);
}

void ParallelRunner::PrepareLocked(Algorithm algorithm) {
  TOPK_DCHECK(algorithm != Algorithm::kMinimalFV &&
              "kMinimalFV is workload-bound: use PrepareOracle");
  if (shards_[0]->engines.contains(algorithm)) return;  // already prepared
  // Index construction dominates preparation; build shard indexes in
  // parallel (each task touches only its own suite).
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    ShardState& shard = *shards_[s];
    shard.engines[algorithm] = shard.suite.MakeEngine(algorithm);
  });
}

void ParallelRunner::PrepareOracle(std::span<const PreparedQuery> queries,
                                   RawDistance theta_raw) {
  MutexLock lock(&mutex_);
  PrepareOracleLocked(queries, theta_raw);
}

void ParallelRunner::PrepareOracleLocked(std::span<const PreparedQuery> queries,
                                         RawDistance theta_raw) {
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    shards_[s]->oracle = shards_[s]->suite.MakeOracleEngine(queries, theta_raw);
  });
}

QueryEngine* ParallelRunner::engine(size_t s, Algorithm algorithm) {
  if (algorithm == Algorithm::kMinimalFV) {
    TOPK_DCHECK(shards_[s]->oracle != nullptr &&
                "call PrepareOracle before querying kMinimalFV");
    return shards_[s]->oracle.get();
  }
  return shards_[s]->engines.at(algorithm).get();
}

void ParallelRunner::FanOut(Algorithm algorithm, size_t query_index,
                            const PreparedQuery& query, RawDistance theta_raw,
                            std::vector<std::vector<RankingId>>* results,
                            std::vector<Statistics>* stats,
                            std::vector<PhaseTimes>* phases,
                            QueryControl* control) {
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    // Task-granular cooperative check: a shard task that starts after
    // the deadline fell (or the token tripped) skips its engine run
    // entirely. The coordinator discards the whole fan-out on stop, so
    // an empty slot is never merged into an answer.
    if (control != nullptr && control->ShouldStop()) {
      (*results)[s].clear();
      return;
    }
    (*results)[s] = engine(s, algorithm)
                        ->Query(query_index, query, theta_raw, &(*stats)[s],
                                &(*phases)[s]);
    store_->MapToGlobal(s, &(*results)[s]);
  });
}

std::vector<RankingId> ParallelRunner::RangeQuery(
    Algorithm algorithm, size_t query_index, const PreparedQuery& query,
    RawDistance theta_raw, Statistics* stats, PhaseTimes* phases) {
  MutexLock lock(&mutex_);
  if (algorithm != Algorithm::kMinimalFV) PrepareLocked(algorithm);
  for (size_t s = 0; s < shards_.size(); ++s) {
    scratch_stats_[s].Reset();
    scratch_phases_[s] = PhaseTimes{};
  }
  FanOut(algorithm, query_index, query, theta_raw, &scratch_results_,
         &scratch_stats_, &scratch_phases_);
  if (stats != nullptr) {
    for (const Statistics& shard_stats : scratch_stats_) {
      stats->MergeFrom(shard_stats);
    }
  }
  if (phases != nullptr) {
    for (const PhaseTimes& shard_phases : scratch_phases_) {
      phases->MergeFrom(shard_phases);
    }
  }
  return MergeShardRangeResults(scratch_results_);
}

Status ParallelRunner::RangeQuery(Algorithm algorithm, size_t query_index,
                                  const PreparedQuery& query,
                                  RawDistance theta_raw, QueryControl* control,
                                  std::vector<RankingId>* out,
                                  Statistics* stats, PhaseTimes* phases) {
  out->clear();
  MutexLock lock(&mutex_);
  if (algorithm != Algorithm::kMinimalFV) PrepareLocked(algorithm);
  if (control != nullptr && control->ShouldStop()) {
    return StopStatus(*control, stats);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    scratch_stats_[s].Reset();
    scratch_phases_[s] = PhaseTimes{};
  }
  FanOut(algorithm, query_index, query, theta_raw, &scratch_results_,
         &scratch_stats_, &scratch_phases_, control);
  // Shard tickers still merge on a stop (the work they account really
  // happened); only the answer itself is withheld.
  if (stats != nullptr) {
    for (const Statistics& shard_stats : scratch_stats_) {
      stats->MergeFrom(shard_stats);
    }
  }
  if (phases != nullptr) {
    for (const PhaseTimes& shard_phases : scratch_phases_) {
      phases->MergeFrom(shard_phases);
    }
  }
  if (control != nullptr && control->ShouldStop()) {
    return StopStatus(*control, stats);
  }
  *out = MergeShardRangeResults(scratch_results_);
  return Status::OK();
}

std::vector<Neighbor> ParallelRunner::KnnQuery(Algorithm algorithm,
                                               const PreparedQuery& query,
                                               size_t j, Statistics* stats) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(algorithm == Algorithm::kLinearScan ||
              algorithm == Algorithm::kBkTree || algorithm == Algorithm::kMTree);
  if (algorithm != Algorithm::kLinearScan) PrepareLocked(algorithm);
  std::vector<std::vector<Neighbor>> per_shard(shards_.size());
  for (Statistics& shard_stats : scratch_stats_) shard_stats.Reset();
  // Shard tasks reach their stats slot through this pointer (slot s is
  // task s's alone for the fan-out), not through the guarded member.
  Statistics* const stats_slots = scratch_stats_.data();
  pool_.ParallelFor(shards_.size(), [&, stats_slots](size_t s) {
    Statistics* shard_stats = stats != nullptr ? &stats_slots[s] : nullptr;
    switch (algorithm) {
      case Algorithm::kBkTree:
        per_shard[s] = BkTreeKnn(shards_[s]->suite.bk_tree(), query, j,
                                 shard_stats);
        break;
      case Algorithm::kMTree:
        per_shard[s] =
            MTreeKnn(shards_[s]->suite.m_tree(), query, j, shard_stats);
        break;
      default:
        per_shard[s] =
            LinearScanKnn(store_->shard(s), query, j, shard_stats);
        break;
    }
    // Shard-local (distance, id) order survives the global re-labelling
    // because the local -> global map is increasing.
    for (Neighbor& neighbor : per_shard[s]) {
      neighbor.id = store_->ToGlobal(s, neighbor.id);
    }
  });
  if (stats != nullptr) {
    for (const Statistics& shard_stats : scratch_stats_) {
      stats->MergeFrom(shard_stats);
    }
  }
  return MergeShardKnnResults(per_shard, j);
}

RunResult ParallelRunner::RunQueries(Algorithm algorithm,
                                     std::span<const PreparedQuery> queries,
                                     RawDistance theta_raw) {
  MutexLock lock(&mutex_);
  if (algorithm == Algorithm::kMinimalFV) {
    PrepareOracleLocked(queries, theta_raw);
  } else {
    PrepareLocked(algorithm);
  }

  RunResult result;
  result.num_queries = queries.size();
  result.num_threads = num_threads_;
  result.num_shards = store_->num_shards();
  result.shard_phases.assign(result.num_shards, PhaseTimes{});
  std::vector<Statistics> shard_stats(result.num_shards);
  std::vector<double> latencies;
  latencies.reserve(queries.size());

  Stopwatch total;
  for (size_t i = 0; i < queries.size(); ++i) {
    Stopwatch per_query;
    // Tickers and phase splits accumulate shard-locally over the whole
    // run and are merged once at the end (merge order is immaterial —
    // see Merge in core/statistics.h).
    FanOut(algorithm, i, queries[i], theta_raw, &scratch_results_,
           &shard_stats, &result.shard_phases);
    const std::vector<RankingId> matches =
        MergeShardRangeResults(scratch_results_);
    latencies.push_back(per_query.ElapsedMillis());
    result.total_results += matches.size();
    for (const RankingId id : matches) result.result_hash += MixId64(id);
  }
  result.wall_ms = total.ElapsedMillis();

  for (const Statistics& stats : shard_stats) result.stats.MergeFrom(stats);
  for (const PhaseTimes& phases : result.shard_phases) {
    result.phases.MergeFrom(phases);
  }

  FinalizeLatencyStats(&latencies, &result);
  return result;
}

std::vector<RankingId> MergeShardRangeResults(
    std::span<const std::vector<RankingId>> per_shard) {
  size_t total = 0;
  for (const std::vector<RankingId>& ids : per_shard) total += ids.size();
  std::vector<RankingId> merged;
  merged.reserve(total);

  // Index-based k-way merge; the shard count is small (<= 16 in every
  // configuration we run), so the linear head scan beats a heap.
  std::vector<size_t> heads(per_shard.size(), 0);
  while (merged.size() < total) {
    size_t best = per_shard.size();
    RankingId best_id = 0;
    for (size_t s = 0; s < per_shard.size(); ++s) {
      if (heads[s] == per_shard[s].size()) continue;
      const RankingId id = per_shard[s][heads[s]];
      if (best == per_shard.size() || id < best_id) {
        best = s;
        best_id = id;
      }
    }
    merged.push_back(best_id);
    ++heads[best];
  }
  return merged;
}

std::vector<Neighbor> MergeShardKnnResults(
    std::span<const std::vector<Neighbor>> per_shard, size_t j) {
  std::vector<Neighbor> merged;
  if (j == 0) return merged;
  merged.reserve(j);
  const auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  std::vector<size_t> heads(per_shard.size(), 0);
  while (merged.size() < j) {
    // The admission bound ("theta") is implicitly the j-th best distance:
    // each pop takes the global minimum over shard heads, so once j
    // results are out, every unconsumed tail is provably worse and is
    // dropped without inspection.
    size_t best = per_shard.size();
    for (size_t s = 0; s < per_shard.size(); ++s) {
      if (heads[s] == per_shard[s].size()) continue;
      if (best == per_shard.size() ||
          less(per_shard[s][heads[s]], per_shard[best][heads[best]])) {
        best = s;
      }
    }
    if (best == per_shard.size()) break;  // fewer than j rankings exist
    merged.push_back(per_shard[best][heads[best]]);
    ++heads[best];
  }
  return merged;
}

}  // namespace topk
