#include "harness/query_algorithms.h"

#include <utility>

#include "metric/linear_scan.h"

namespace topk {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFV:
      return "F&V";
    case Algorithm::kFVDrop:
      return "F&V+Drop";
    case Algorithm::kListMerge:
      return "ListMerge";
    case Algorithm::kLaatPrune:
      return "LaaT+Prune";
    case Algorithm::kBlockedPrune:
      return "Blocked+Prune";
    case Algorithm::kBlockedPruneDrop:
      return "Blocked+Prune+Drop";
    case Algorithm::kCoarse:
      return "Coarse";
    case Algorithm::kCoarseDrop:
      return "Coarse+Drop";
    case Algorithm::kAdaptSearch:
      return "AdaptSearch";
    case Algorithm::kMinimalFV:
      return "Minimal F&V";
    case Algorithm::kBkTree:
      return "BK-tree";
    case Algorithm::kMTree:
      return "M-tree";
    case Algorithm::kLinearScan:
      return "LinearScan";
  }
  return "unknown";
}

namespace {

// --- Thin adapters binding each engine type to the common interface. ---

class FvAdapter : public QueryEngine {
 public:
  FvAdapter(const RankingStore* store, const PlainInvertedIndex* index,
            DropMode drop)
      : engine_(store, index, FilterValidateOptions{drop}) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return engine_.Query(query, theta_raw, stats);
  }

 private:
  FilterValidateEngine engine_;
};

class ListMergeAdapter : public QueryEngine {
 public:
  explicit ListMergeAdapter(const AugmentedInvertedIndex* index)
      : engine_(index) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return engine_.Query(query, theta_raw, stats);
  }

 private:
  ListMergeEngine engine_;
};

class LaatAdapter : public QueryEngine {
 public:
  explicit LaatAdapter(const AugmentedInvertedIndex* index)
      : engine_(index) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return engine_.Query(query, theta_raw, stats);
  }

 private:
  ListAtATimeEngine engine_;
};

class BlockedAdapter : public QueryEngine {
 public:
  BlockedAdapter(const RankingStore* store, const BlockedInvertedIndex* index,
                 DropMode drop)
      : engine_(store, index, BlockedOptions{drop, /*scheduled=*/true}) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return engine_.Query(query, theta_raw, stats);
  }

 private:
  BlockedEngine engine_;
};

class CoarseAdapter : public QueryEngine {
 public:
  explicit CoarseAdapter(const CoarseIndex* index) : index_(index) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes* phases) override {
    // Adapter-owned scratch: engines made from one suite can query the
    // shared (immutable) coarse index from different threads.
    return index_->Query(query, theta_raw, &scratch_, stats, phases);
  }

 private:
  const CoarseIndex* index_;
  CoarseScratch scratch_;
};

class AdaptAdapter : public QueryEngine {
 public:
  AdaptAdapter(const RankingStore* store, const DeltaInvertedIndex* index)
      : engine_(store, index) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return engine_.Query(query, theta_raw, stats);
  }

 private:
  AdaptSearchEngine engine_;
};

class OracleAdapter : public QueryEngine {
 public:
  explicit OracleAdapter(OracleIndex index) : index_(std::move(index)) {}
  std::vector<RankingId> Query(size_t query_index, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return index_.Query(query_index, query, theta_raw, stats);
  }

 private:
  OracleIndex index_;
};

class BkTreeAdapter : public QueryEngine {
 public:
  explicit BkTreeAdapter(const BkTree* tree) : tree_(tree) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return tree_->RangeQuery(query.sorted_view(), theta_raw, stats);
  }

 private:
  const BkTree* tree_;
};

class MTreeAdapter : public QueryEngine {
 public:
  explicit MTreeAdapter(const MTree* tree) : tree_(tree) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    return tree_->RangeQuery(query.sorted_view(), theta_raw, stats);
  }

 private:
  const MTree* tree_;
};

class LinearScanAdapter : public QueryEngine {
 public:
  explicit LinearScanAdapter(const RankingStore* store) : store_(store) {}
  std::vector<RankingId> Query(size_t, const PreparedQuery& query,
                               RawDistance theta_raw, Statistics* stats,
                               PhaseTimes*) override {
    // Engine-owned validator: the harness path runs the batched kernel;
    // the free LinearScanQuery stays the scalar reference the
    // differential suites compare against.
    return LinearScanQueryBatched(*store_, query, theta_raw, &validator_,
                                  stats);
  }

 private:
  const RankingStore* store_;
  FootruleValidator validator_;
};

}  // namespace

EngineSuite::EngineSuite(const RankingStore* store, EngineSuiteConfig config)
    : store_(store), config_(config) {}

const PlainInvertedIndex& EngineSuite::plain_index() {
  if (!plain_.has_value()) {
    Stopwatch watch;
    plain_ = PlainInvertedIndex::Build(*store_);
    plain_info_ = {watch.ElapsedMillis(), plain_->MemoryUsage()};
  }
  return *plain_;
}

const AugmentedInvertedIndex& EngineSuite::augmented_index() {
  if (!augmented_.has_value()) {
    Stopwatch watch;
    augmented_ = AugmentedInvertedIndex::Build(*store_);
    augmented_info_ = {watch.ElapsedMillis(), augmented_->MemoryUsage()};
  }
  return *augmented_;
}

const BlockedInvertedIndex& EngineSuite::blocked_index() {
  if (!blocked_.has_value()) {
    Stopwatch watch;
    blocked_ = BlockedInvertedIndex::Build(*store_);
    blocked_info_ = {watch.ElapsedMillis(), blocked_->MemoryUsage()};
  }
  return *blocked_;
}

const DeltaInvertedIndex& EngineSuite::delta_index() {
  if (!delta_.has_value()) {
    Stopwatch watch;
    delta_ = DeltaInvertedIndex::Build(*store_);
    delta_info_ = {watch.ElapsedMillis(), delta_->MemoryUsage()};
  }
  return *delta_;
}

const BkTree& EngineSuite::bk_tree() {
  if (!bk_tree_.has_value()) {
    Stopwatch watch;
    bk_tree_ = BkTree::BuildAll(store_);
    bk_tree_info_ = {watch.ElapsedMillis(), bk_tree_->MemoryUsage()};
  }
  return *bk_tree_;
}

const MTree& EngineSuite::m_tree() {
  if (!m_tree_.has_value()) {
    Stopwatch watch;
    m_tree_ = MTree::BuildAll(store_, config_.mtree);
    m_tree_info_ = {watch.ElapsedMillis(), m_tree_->MemoryUsage()};
  }
  return *m_tree_;
}

const CoarseIndex& EngineSuite::coarse_index() {
  if (!coarse_.has_value()) {
    CoarseOptions options;
    options.theta_c = config_.coarse_theta_c;
    options.partitioner = config_.coarse_partitioner;
    options.drop = DropMode::kNone;
    Stopwatch watch;
    coarse_ = CoarseIndex::Build(store_, options);
    coarse_info_ = {watch.ElapsedMillis(), coarse_->MemoryUsage()};
  }
  return *coarse_;
}

const CoarseIndex& EngineSuite::coarse_drop_index() {
  if (!coarse_drop_.has_value()) {
    CoarseOptions options;
    options.theta_c = config_.coarse_drop_theta_c;
    options.partitioner = config_.coarse_partitioner;
    options.drop = DropMode::kPositionRefined;
    Stopwatch watch;
    coarse_drop_ = CoarseIndex::Build(store_, options);
    coarse_drop_info_ = {watch.ElapsedMillis(), coarse_drop_->MemoryUsage()};
  }
  return *coarse_drop_;
}

std::unique_ptr<QueryEngine> EngineSuite::MakeEngine(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFV:
      return std::make_unique<FvAdapter>(store_, &plain_index(),
                                         DropMode::kNone);
    case Algorithm::kFVDrop:
      return std::make_unique<FvAdapter>(store_, &plain_index(),
                                         DropMode::kPositionRefined);
    case Algorithm::kListMerge:
      return std::make_unique<ListMergeAdapter>(&augmented_index());
    case Algorithm::kLaatPrune:
      return std::make_unique<LaatAdapter>(&augmented_index());
    case Algorithm::kBlockedPrune:
      return std::make_unique<BlockedAdapter>(store_, &blocked_index(),
                                              DropMode::kNone);
    case Algorithm::kBlockedPruneDrop:
      return std::make_unique<BlockedAdapter>(store_, &blocked_index(),
                                              DropMode::kPositionRefined);
    case Algorithm::kCoarse:
      return std::make_unique<CoarseAdapter>(&coarse_index());
    case Algorithm::kCoarseDrop:
      return std::make_unique<CoarseAdapter>(&coarse_drop_index());
    case Algorithm::kAdaptSearch:
      return std::make_unique<AdaptAdapter>(store_, &delta_index());
    case Algorithm::kMinimalFV:
      TOPK_DCHECK(false &&
                  "Minimal F&V is workload-bound: use MakeOracleEngine");
      return nullptr;
    case Algorithm::kBkTree:
      return std::make_unique<BkTreeAdapter>(&bk_tree());
    case Algorithm::kMTree:
      return std::make_unique<MTreeAdapter>(&m_tree());
    case Algorithm::kLinearScan:
      return std::make_unique<LinearScanAdapter>(store_);
  }
  return nullptr;
}

std::unique_ptr<QueryEngine> EngineSuite::MakeOracleEngine(
    std::span<const PreparedQuery> queries, RawDistance theta_raw) {
  // Ground truth comes from the (exact) F&V engine — far cheaper than a
  // brute-force scan and verified equivalent by the test suite.
  FilterValidateEngine fv(store_, &plain_index(), FilterValidateOptions{});
  std::vector<std::vector<RankingId>> truth;
  truth.reserve(queries.size());
  for (const PreparedQuery& query : queries) {
    truth.push_back(fv.Query(query, theta_raw));
  }
  return std::make_unique<OracleAdapter>(
      OracleIndex::Build(store_, std::move(truth)));
}

IndexBuildInfo EngineSuite::BuildInfo(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFV:
    case Algorithm::kFVDrop:
      plain_index();
      return plain_info_;
    case Algorithm::kListMerge:
    case Algorithm::kLaatPrune:
      augmented_index();
      return augmented_info_;
    case Algorithm::kBlockedPrune:
    case Algorithm::kBlockedPruneDrop:
      blocked_index();
      return blocked_info_;
    case Algorithm::kAdaptSearch:
      delta_index();
      return delta_info_;
    case Algorithm::kCoarse:
      coarse_index();
      return coarse_info_;
    case Algorithm::kCoarseDrop:
      coarse_drop_index();
      return coarse_drop_info_;
    case Algorithm::kBkTree:
      bk_tree();
      return bk_tree_info_;
    case Algorithm::kMTree:
      m_tree();
      return m_tree_info_;
    case Algorithm::kMinimalFV:
    case Algorithm::kLinearScan:
      return {};
  }
  return {};
}

}  // namespace topk
