#include "harness/runner.h"

#include <algorithm>
#include <vector>

namespace topk {

namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

void FinalizeLatencyStats(std::vector<double>* latencies, RunResult* result) {
  std::sort(latencies->begin(), latencies->end());
  result->p50_ms = Percentile(*latencies, 0.50);
  result->p95_ms = Percentile(*latencies, 0.95);
  result->p99_ms = Percentile(*latencies, 0.99);
  result->max_ms = latencies->empty() ? 0 : latencies->back();
}

RunResult RunQueries(QueryEngine* engine,
                     std::span<const PreparedQuery> queries,
                     RawDistance theta_raw) {
  RunResult result;
  result.num_queries = queries.size();
  std::vector<double> latencies;
  latencies.reserve(queries.size());

  Stopwatch total;
  for (size_t i = 0; i < queries.size(); ++i) {
    Stopwatch per_query;
    const std::vector<RankingId> matches =
        engine->Query(i, queries[i], theta_raw, &result.stats,
                      &result.phases);
    latencies.push_back(per_query.ElapsedMillis());
    result.total_results += matches.size();
    for (const RankingId id : matches) result.result_hash += MixId64(id);
  }
  result.wall_ms = total.ElapsedMillis();

  FinalizeLatencyStats(&latencies, &result);
  return result;
}

}  // namespace topk
