// ShardedMutableStore: the live-write counterpart of ShardedStore.
//
// N independent MutableStore shards behind one coordinator. Writes route
// to their shard with the SAME placement function the static partitioner
// uses (ShardPlacement in sharded_store.h), so a collection grown by
// Insert() and a ShardedStore re-partitioned from the equivalent rebuilt
// RankingStore place every ranking identically — the differential
// contract tests/mutate_store_test.cc holds per strategy.
//
// Ids: the wrapper assigns dense global ids in insert order (never
// reused), each shard assigns its own dense shard-local ids, and
// shard_to_global_[s] is the strictly increasing local -> global map —
// the exact invariant ShardedStore relies on for exact k-way merging, so
// per-shard range results concatenate + sort into the global ascending
// order and per-shard (distance, local-order) k-NN prefixes merge into
// the global (distance, id) order.
//
// Locking order (DESIGN.md): the coordinator mutex_ here is ABOVE every
// shard's store mutex — wrapper methods hold mutex_ while calling into a
// shard, never the reverse. Each shard still runs its own background
// merge worker (per shard_options.merge_threshold) entirely below the
// coordinator: a merge swap takes only that shard's mutex, so it never
// blocks writes or queries routed to other shards.
//
// Generations: mutations delegate the bump to the owning shard (the
// wrapper's mutation entry points carry the lint marker
// "generation: delegated"); generation() sums the shard generations, so
// it is monotone across wrapper writes AND background merge swaps.
// AddMutationListener fans the listener out to every shard.

#ifndef TOPK_HARNESS_SHARDED_MUTABLE_STORE_H_
#define TOPK_HARNESS_SHARDED_MUTABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/mutex.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "harness/sharded_store.h"
#include "metric/knn.h"
#include "mutate/mutable_store.h"

namespace topk {

class ShardedMutableStore {
 public:
  /// `num_shards` >= 1 empty shards of rankings of size `k`;
  /// `shard_options` (e.g. merge_threshold for per-shard background
  /// merge workers) applies to every shard.
  ShardedMutableStore(uint32_t k, size_t num_shards,
                      ShardingStrategy strategy,
                      MutableStoreOptions shard_options = {});

  ShardedMutableStore(const ShardedMutableStore&) = delete;
  ShardedMutableStore& operator=(const ShardedMutableStore&) = delete;

  uint32_t k() const { return k_; }
  size_t num_shards() const { return shards_.size(); }
  ShardingStrategy strategy() const { return strategy_; }

  /// Read-only view of one shard (diagnostics/tests). Mutations must go
  /// through the wrapper so the id maps stay consistent.
  const MutableStore& shard(size_t s) const { return *shards_[s]; }

  /// Appends one ranking, routed to ShardPlacement(strategy, id, N);
  /// returns its wrapper-global id (dense, never reused).
  RankingId Insert(RankingView record) TOPK_EXCLUDES(mutex_);

  /// Tombstones wrapper-global `id` in its shard. False when never
  /// assigned or already dead.
  bool Delete(RankingId id) TOPK_EXCLUDES(mutex_);

  /// Whether wrapper-global `id` is alive.
  bool Contains(RankingId id) const TOPK_EXCLUDES(mutex_);

  /// Exact fan-out over all shards; ascending wrapper-global ids —
  /// bit-identical to an unsharded MutableStore (and to the rebuilt
  /// store) over the same mutation stream.
  std::vector<RankingId> RangeQuery(const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Exact k-NN: per-shard top-j prefixes merged on (distance, global
  /// id); exactly min(j, live_size()) entries.
  std::vector<Neighbor> KnnQuery(const PreparedQuery& query, size_t j,
                                 Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Runs MergeNow on every shard (on the calling thread). Returns true
  /// when any shard had something to merge.
  bool MergeAllNow() TOPK_EXCLUDES(mutex_);

  /// Registers `listener` with EVERY shard, so it fires on each
  /// mutation wherever it lands (including background merge swaps).
  void AddMutationListener(std::function<void()> listener)
      TOPK_EXCLUDES(mutex_);

  /// Sum of shard generations: monotone, bumps on every wrapper
  /// mutation and every shard-local merge swap. Lock-free.
  uint64_t generation() const;

  size_t live_size() const TOPK_EXCLUDES(mutex_);
  size_t total_inserted() const TOPK_EXCLUDES(mutex_);

 private:
  const uint32_t k_;
  const ShardingStrategy strategy_;

  /// Coordinator lock: keeps next_global_id_/shard_to_global_ consistent
  /// with the shard contents across concurrent wrapper calls. Ordered
  /// ABOVE every shard's store mutex.
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<MutableStore>> shards_;
  /// Per shard: shard-local id -> wrapper-global id, strictly
  /// increasing, append-only (rows merged away keep their entry — local
  /// ids are never reused, so the map stays a function).
  std::vector<std::vector<RankingId>> shard_to_global_
      TOPK_GUARDED_BY(mutex_);
  RankingId next_global_id_ TOPK_GUARDED_BY(mutex_) = 0;
};

}  // namespace topk

#endif  // TOPK_HARNESS_SHARDED_MUTABLE_STORE_H_
