#include "harness/report.h"

#include <algorithm>
#include <cstdio>

namespace topk {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatMegabytes(size_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace topk
