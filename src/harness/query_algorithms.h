// Unified registry of every query-processing algorithm the paper
// evaluates (Section 7, "Algorithms under Investigation"), behind one
// virtual interface so benches and tests can sweep them uniformly.
//
// EngineSuite owns the indexes; each index kind is built lazily on first
// use and its construction time and memory footprint are recorded for the
// Table 6 bench.

#ifndef TOPK_HARNESS_QUERY_ALGORITHMS_H_
#define TOPK_HARNESS_QUERY_ALGORITHMS_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "adapt/adapt_search.h"
#include "adapt/delta_inverted_index.h"
#include "coarse/coarse_index.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/blocked_inverted_index.h"
#include "invidx/filter_validate.h"
#include "invidx/list_at_a_time.h"
#include "invidx/list_merge.h"
#include "invidx/oracle_index.h"
#include "metric/bk_tree.h"
#include "metric/m_tree.h"

namespace topk {

enum class Algorithm {
  kFV,                // Filter & Validate, plain inverted index
  kFVDrop,            // + overlap-bound list dropping
  kListMerge,         // merge of id-sorted augmented lists
  kLaatPrune,         // List-at-a-Time with partial-information bounds
  kBlockedPrune,      // blocked access with pruning and scheduling
  kBlockedPruneDrop,  // blocked access + pruning + list dropping
  kCoarse,            // coarse index with F&V medoid retrieval
  kCoarseDrop,        // coarse index with F&V+Drop medoid retrieval
  kAdaptSearch,       // the competitor
  kMinimalFV,         // per-query oracle lower bound
  kBkTree,            // metric baseline
  kMTree,             // metric baseline
  kLinearScan,        // exhaustive baseline / ground truth
};

const char* AlgorithmName(Algorithm algorithm);

/// One query-processing algorithm bound to its indexes. `query_index`
/// identifies the workload query (the Minimal F&V oracle is keyed by it);
/// all other engines ignore it. `phases` (optional) receives the
/// filter/validate split for engines that report it (coarse index).
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;
  virtual std::vector<RankingId> Query(size_t query_index,
                                       const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       Statistics* stats,
                                       PhaseTimes* phases) = 0;

  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr) {
    return Query(0, query, theta_raw, stats, nullptr);
  }
};

struct IndexBuildInfo {
  double build_ms = 0;
  size_t memory_bytes = 0;
};

struct EngineSuiteConfig {
  /// theta_C for the Coarse engine (the paper's comparison figures fix
  /// 0.5, the optimum for theta = 0.3).
  double coarse_theta_c = 0.5;
  /// theta_C for Coarse+Drop (the paper measured 0.06 as its optimum).
  double coarse_drop_theta_c = 0.06;
  PartitionerKind coarse_partitioner = PartitionerKind::kBkStrict;
  MTreeOptions mtree;
};

class EngineSuite {
 public:
  explicit EngineSuite(const RankingStore* store,
                       EngineSuiteConfig config = {});

  /// Builds (if needed) the indexes behind `algorithm` and returns a fresh
  /// engine. kMinimalFV must go through MakeOracleEngine.
  std::unique_ptr<QueryEngine> MakeEngine(Algorithm algorithm);

  /// The Minimal F&V oracle is materialized per (workload, theta).
  std::unique_ptr<QueryEngine> MakeOracleEngine(
      std::span<const PreparedQuery> queries, RawDistance theta_raw);

  /// Build info for the index kind behind `algorithm` (building it first
  /// if necessary). For kCoarse/kCoarseDrop this is the full coarse index
  /// (partitioning + trees + medoid index).
  IndexBuildInfo BuildInfo(Algorithm algorithm);

  const RankingStore& store() const { return *store_; }
  const EngineSuiteConfig& config() const { return config_; }

  // Direct index access (built on demand) for benches that need it.
  const PlainInvertedIndex& plain_index();
  const AugmentedInvertedIndex& augmented_index();
  const BlockedInvertedIndex& blocked_index();
  const DeltaInvertedIndex& delta_index();
  const BkTree& bk_tree();
  const MTree& m_tree();
  const CoarseIndex& coarse_index();
  const CoarseIndex& coarse_drop_index();

 private:
  const RankingStore* store_;
  EngineSuiteConfig config_;

  std::optional<PlainInvertedIndex> plain_;
  std::optional<AugmentedInvertedIndex> augmented_;
  std::optional<BlockedInvertedIndex> blocked_;
  std::optional<DeltaInvertedIndex> delta_;
  std::optional<BkTree> bk_tree_;
  std::optional<MTree> m_tree_;
  std::optional<CoarseIndex> coarse_;
  std::optional<CoarseIndex> coarse_drop_;

  IndexBuildInfo plain_info_;
  IndexBuildInfo augmented_info_;
  IndexBuildInfo blocked_info_;
  IndexBuildInfo delta_info_;
  IndexBuildInfo bk_tree_info_;
  IndexBuildInfo m_tree_info_;
  IndexBuildInfo coarse_info_;
  IndexBuildInfo coarse_drop_info_;
};

}  // namespace topk

#endif  // TOPK_HARNESS_QUERY_ALGORITHMS_H_
