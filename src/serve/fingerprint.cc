#include "serve/fingerprint.h"

namespace topk {

ResultCacheKey MakeResultCacheKey(ServeKind kind, uint32_t algorithm,
                                  uint64_t param, const PreparedQuery& query) {
  ResultCacheKey key;
  key.kind = static_cast<uint8_t>(kind);
  key.algorithm = algorithm;
  key.param = param;
  const auto items = query.view().items();
  key.items.assign(items.begin(), items.end());
  const uint64_t tag =
      (static_cast<uint64_t>(key.kind) << 32) | key.algorithm;
  key.hash = MixId64(SequenceFingerprint(items) ^ MixId64(param) ^
                     MixId64(tag));
  return key;
}

CandidateCacheKey MakeCandidateCacheKey(const PreparedQuery& query) {
  CandidateCacheKey key;
  const auto items = query.sorted_view().items();
  key.items.assign(items.begin(), items.end());
  key.hash = ItemSetFingerprint(items);
  return key;
}

}  // namespace topk
