#include "serve/frontend.h"

#include <algorithm>
#include <exception>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/mutex.h"
#include "mutate/mutable_store.h"

namespace topk {

namespace {

/// Stopped control -> caller-facing status + the deadline ticker (the
/// counter covers cancellations too: both mean "stopped by request").
Status StopStatus(const QueryControl& control, Statistics* stats) {
  AddTicker(stats, Ticker::kDeadlineExceeded);
  if (control.cancelled()) return Status::Aborted("request cancelled");
  return Status::DeadlineExceeded("request deadline exceeded");
}

}  // namespace

bool CandidateCacheApplies(Algorithm algorithm) {
  return algorithm == Algorithm::kFV || algorithm == Algorithm::kLinearScan;
}

QueryFrontend::QueryFrontend(const RankingStore* store,
                             QueryFrontendOptions options)
    : store_(store),
      options_(options),
      num_threads_(std::max<size_t>(options.num_threads, 1)),
      pool_(num_threads_ - 1),
      suite_(store, options.suite_config),
      executors_(num_threads_),
      result_cache_(options.result_cache_capacity, options.cache_shards),
      candidate_cache_(options.candidate_cache_capacity,
                       options.cache_shards) {}

void QueryFrontend::PrepareEngines(Algorithm algorithm) {
  if (algorithm == Algorithm::kMinimalFV) return;  // rejected at serve time
  if (!executors_[0].engines.contains(algorithm)) {
    // The first MakeEngine builds the shared indexes; the remaining
    // engines are thin per-executor adapters over them. All of this is
    // serial — the suite's lazy index construction is not thread-safe,
    // which is exactly why engines are made here and not inside ServeOne.
    for (Executor& executor : executors_) {
      executor.engines[algorithm] = suite_.MakeEngine(algorithm);
    }
  }
  switch (algorithm) {  // k-NN backends need the raw index handles
    case Algorithm::kBkTree:
      bk_tree_ = &suite_.bk_tree();
      break;
    case Algorithm::kMTree:
      m_tree_ = &suite_.m_tree();
      break;
    case Algorithm::kCoarse:
      coarse_index_ = &suite_.coarse_index();
      break;
    default:
      break;
  }
}

void QueryFrontend::Prepare(Algorithm algorithm) {
  MutexLock lock(&serve_mutex_);
  PrepareLocked(algorithm);
}

void QueryFrontend::WatchStore(MutableStore* store) {
  // The listener body is an atomic epoch bump only — cheap, lock-free,
  // and legal under the store mutex (no lock ordered above the store is
  // taken; the hierarchy in DESIGN.md stays intact).
  store->AddMutationListener([this] { InvalidateCaches(); });
}

void QueryFrontend::PrepareLocked(Algorithm algorithm) {
  PrepareEngines(algorithm);
  // An explicit Prepare means "keep every build out of my timed window",
  // so also bind the candidate-path index when this algorithm can use it.
  // The batch path instead binds it only for *range* requests — a pure
  // k-NN stream never touches the posting union and skips the build.
  if (candidate_cache_.enabled() && CandidateCacheApplies(algorithm) &&
      plain_index_ == nullptr) {
    plain_index_ = &suite_.plain_index();
  }
}

std::vector<ServeResponse> QueryFrontend::ShedBatch(
    std::span<const ServeRequest> requests, Statistics* stats) const {
  std::vector<ServeResponse> responses(requests.size());
  for (ServeResponse& response : responses) {
    response.status =
        Status::Unavailable("frontend at capacity; retry after back-off");
    response.retry_after_ms = options_.shed_retry_after_ms;
  }
  AddTicker(stats, Ticker::kLoadShed, requests.size());
  return responses;
}

std::vector<ServeResponse> QueryFrontend::ServeBatch(
    std::span<const ServeRequest> requests, Statistics* stats,
    PhaseTimes* phases) {
  // Admission BEFORE the coordinator mutex: with the limit reached the
  // caller is told to back off immediately instead of queueing on the
  // lock for an unbounded wait (that queue is invisible to clients and
  // grows without bound under overload — shedding keeps the tail finite).
  struct InflightGuard {
    std::atomic<size_t>* gauge;
    ~InflightGuard() { gauge->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&inflight_batches_};
  const size_t inflight =
      inflight_batches_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.max_inflight_batches > 0 &&
      inflight >= options_.max_inflight_batches) {
    return ShedBatch(requests, stats);
  }
  MutexLock lock(&serve_mutex_);
  return ServeBatchLocked(requests, stats, phases, nullptr);
}

std::vector<ServeResponse> QueryFrontend::ServeBatchLocked(
    std::span<const ServeRequest> requests, Statistics* stats,
    PhaseTimes* phases, std::vector<double>* latencies) {
  for (const ServeRequest& request : requests) {
    PrepareEngines(request.algorithm);
    if (request.kind == ServeKind::kRange && candidate_cache_.enabled() &&
        CandidateCacheApplies(request.algorithm) && plain_index_ == nullptr) {
      plain_index_ = &suite_.plain_index();
    }
  }

  std::vector<ServeResponse> responses(requests.size());
  if (latencies != nullptr) latencies->assign(requests.size(), 0.0);
  for (Executor& executor : executors_) {
    executor.stats.Reset();
    executor.phases = PhaseTimes{};
  }
  // Requests in this batch observe the generation current at batch start;
  // an InvalidateCaches racing the batch linearizes after these requests.
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);

  // Work sharing as in ThreadPool::ParallelFor, but with an explicit
  // executor id so every in-flight request has private engines/scratch.
  std::atomic<size_t> next{0};
  Mutex error_mutex;
  std::exception_ptr error;
  // The drain tasks reach their slot through this pointer, not through
  // the guarded executors_ member: the per-slot discipline (task e owns
  // slot e for the whole fan-out) is what makes that sound, and the
  // coordinator only touches the slots again after the join below.
  Executor* const executor_slots = executors_.data();
  auto drain = [&, executor_slots](size_t e) {
    Executor& executor = executor_slots[e];
    for (size_t i; (i = next.fetch_add(1)) < requests.size();) {
      Stopwatch watch;
      try {
        ServeOne(&executor, requests[i], epoch, &responses[i]);
      } catch (...) {
        // First exception wins; the batch still drains so the frontend
        // (and its pool) stays usable after the rethrow below.
        MutexLock error_lock(&error_mutex);
        if (!error) error = std::current_exception();
      }
      if (latencies != nullptr) (*latencies)[i] = watch.ElapsedMillis();
    }
  };
  const size_t helpers =
      requests.empty() ? 0 : std::min(num_threads_ - 1, requests.size() - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (size_t e = 0; e < helpers; ++e) {
    pending.push_back(pool_.Submit([&drain, e] { drain(e + 1); }));
  }
  drain(0);
  for (std::future<void>& f : pending) f.get();

  // Per-executor accounting merges only after the join (the future
  // handshake is the happens-before edge), mirroring ParallelRunner.
  for (const Executor& executor : executors_) {
    if (stats != nullptr) stats->MergeFrom(executor.stats);
    if (phases != nullptr) phases->MergeFrom(executor.phases);
  }
  if (error) std::rethrow_exception(error);
  return responses;
}

void QueryFrontend::ServeOne(Executor* executor, const ServeRequest& request,
                             uint64_t epoch, ServeResponse* response) {
  if (request.query == nullptr) {
    throw std::invalid_argument("ServeRequest.query must not be null");
  }
  if (request.query->k() != store_->k()) {
    throw std::invalid_argument("query size does not match the store's k");
  }
  QueryControl control(request.deadline, request.cancel);
  // A request already past its deadline (it sat behind slower batch
  // peers) fails fast — except through the result cache below, whose
  // lookup is cheaper than building the rejection.
  const bool cacheable = result_cache_.enabled();
  if (!cacheable && control.ShouldStop()) {
    response->status = StopStatus(control, &executor->stats);
    return;
  }
  if (cacheable) {
    const ResultCacheKey key =
        request.kind == ServeKind::kRange
            ? MakeResultCacheKey(ServeKind::kRange,
                                 static_cast<uint32_t>(request.algorithm),
                                 request.theta_raw, *request.query)
            : MakeResultCacheKey(ServeKind::kKnn,
                                 static_cast<uint32_t>(request.algorithm),
                                 request.j, *request.query);
    const bool hit =
        request.kind == ServeKind::kRange
            ? result_cache_.LookupRange(key, epoch, &response->ids,
                                        &executor->stats)
            : result_cache_.LookupKnn(key, epoch, &response->neighbors,
                                      &executor->stats);
    if (hit) {
      response->result_cache_hit = true;
      return;
    }
    if (control.ShouldStop()) {
      response->status = StopStatus(control, &executor->stats);
      return;
    }
    if (request.kind == ServeKind::kRange) {
      response->ids = ServeRange(executor, request, epoch, response, &control);
    } else {
      response->neighbors = ServeKnn(executor, request);
    }
    // A stopped request discards its partial answer and is NEVER
    // cached: a truncated result under an OK-looking cache entry would
    // poison every later identical query.
    if (control.ShouldStop()) {
      response->ids.clear();
      response->neighbors.clear();
      response->candidate_cache_hit = false;
      response->status = StopStatus(control, &executor->stats);
      return;
    }
    if (request.kind == ServeKind::kRange) {
      result_cache_.InsertRange(key, epoch, response->ids, &executor->stats);
    } else {
      result_cache_.InsertKnn(key, epoch, response->neighbors,
                              &executor->stats);
    }
    return;
  }
  if (request.kind == ServeKind::kRange) {
    response->ids = ServeRange(executor, request, epoch, response, &control);
  } else {
    response->neighbors = ServeKnn(executor, request);
  }
  if (control.ShouldStop()) {
    response->ids.clear();
    response->neighbors.clear();
    response->candidate_cache_hit = false;
    response->status = StopStatus(control, &executor->stats);
  }
}

std::vector<RankingId> QueryFrontend::ServeRange(Executor* executor,
                                                 const ServeRequest& request,
                                                 uint64_t epoch,
                                                 ServeResponse* response,
                                                 QueryControl* control) {
  const PreparedQuery& query = *request.query;
  // The candidate union is only a provable superset below dmax (a
  // disjoint ranking sits at exactly dmax and appears in no posting
  // list), and only a *profitable* one for union-validating engines (see
  // CandidateCacheApplies); otherwise the engine path answers directly.
  const bool candidates_applicable =
      candidate_cache_.enabled() && CandidateCacheApplies(request.algorithm) &&
      request.theta_raw < MaxDistance(store_->k());
  if (!candidates_applicable) return RunEngine(executor, request);

  const CandidateCacheKey key = MakeCandidateCacheKey(query);
  CandidateList memoized;
  if (candidate_cache_.Lookup(key, epoch, &memoized, &executor->stats)) {
    // Filter phase skipped entirely: only re-validate the memoized
    // superset against this query's exact distances.
    response->candidate_cache_hit = true;
    Stopwatch watch;
    std::vector<RankingId> results = ValidateCandidates(
        executor, *memoized, query, request.theta_raw, control);
    executor->phases.validate_ms += watch.ElapsedMillis();
    return results;
  }
  // Miss: for the union-validating algorithms the filter output IS the
  // posting union, so compute it once, validate it directly (this is
  // exactly plain F&V — exact below dmax), and memoize it. Running the
  // engine and recomputing the union would filter twice. Both phases are
  // the same kernel calls FilterValidateEngine makes (FilterPhase + the
  // batched validator); the FuzzServe differential keeps them
  // bit-identical to the engines.
  Stopwatch watch;
  std::vector<RankingId> candidates = PostingUnion(executor, query);
  executor->phases.filter_ms += watch.ElapsedMillis();
  watch.Restart();
  std::vector<RankingId> results = ValidateCandidates(
      executor, candidates, query, request.theta_raw, control);
  executor->phases.validate_ms += watch.ElapsedMillis();
  // The memoized union is still exact when the query stopped mid-
  // validation (the filter phase completed to produce it), so inserting
  // it is safe — only the *answer* is withheld by the caller.
  candidate_cache_.Insert(key, epoch, std::move(candidates),
                          &executor->stats);
  return results;
}

std::vector<RankingId> QueryFrontend::RunEngine(Executor* executor,
                                                const ServeRequest& request) {
  const auto it = executor->engines.find(request.algorithm);
  if (it == executor->engines.end()) {
    throw std::invalid_argument(
        std::string("algorithm not servable through the frontend: ") +
        AlgorithmName(request.algorithm));
  }
  return it->second->Query(0, *request.query, request.theta_raw,
                           &executor->stats, &executor->phases);
}

std::vector<Neighbor> QueryFrontend::ServeKnn(Executor* executor,
                                              const ServeRequest& request) {
  Statistics* stats = &executor->stats;
  switch (request.algorithm) {
    case Algorithm::kLinearScan:
      return LinearScanKnn(*store_, *request.query, request.j, stats);
    case Algorithm::kBkTree:
      return BkTreeKnn(*bk_tree_, *request.query, request.j, stats);
    case Algorithm::kMTree:
      return MTreeKnn(*m_tree_, *request.query, request.j, stats);
    case Algorithm::kCoarse:
      return coarse_index_->Knn(*request.query, request.j, stats);
    default:
      throw std::invalid_argument(
          std::string("k-NN backend not servable through the frontend: ") +
          AlgorithmName(request.algorithm));
  }
}

std::vector<RankingId> QueryFrontend::PostingUnion(
    Executor* executor, const PreparedQuery& query) {
  // DropMode::kNone accesses every list, so the union depends only on the
  // item set (the candidate-cache key); theta is irrelevant to it.
  FilterPhase(*plain_index_, query.view(), /*theta_raw=*/0, DropMode::kNone,
              store_->size(), &executor->filter, &executor->stats);
  std::vector<RankingId>& out = executor->filter.candidates;
  std::sort(out.begin(), out.end());
  return out;  // copies out of the reusable scratch
}

std::vector<RankingId> QueryFrontend::ValidateCandidates(
    Executor* executor, std::span<const RankingId> candidates,
    const PreparedQuery& query, RawDistance theta_raw,
    QueryControl* control) const {
  Statistics* stats = &executor->stats;
  std::vector<RankingId> results;
  AddTicker(stats, Ticker::kCandidates, candidates.size());
  executor->validator.BindQuery(query.view(),
                                static_cast<size_t>(store_->max_item()) + 1);
  executor->validator.ValidateSpan(*store_, candidates, theta_raw, &results,
                                   stats, control);
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

RunResult QueryFrontend::ServeWorkload(Algorithm algorithm,
                                       std::span<const PreparedQuery> queries,
                                       RawDistance theta_raw) {
  // Workloads count toward the admission gauge (they hold the
  // coordinator for a long time) but are never shed themselves — the
  // measurement loop is operator-driven, not client traffic.
  struct InflightGuard {
    std::atomic<size_t>* gauge;
    ~InflightGuard() { gauge->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&inflight_batches_};
  inflight_batches_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lock(&serve_mutex_);
  PrepareLocked(algorithm);
  std::vector<ServeRequest> requests;
  requests.reserve(queries.size());
  for (const PreparedQuery& query : queries) {
    requests.push_back(ServeRequest::Range(algorithm, query, theta_raw));
  }

  RunResult result;
  result.num_queries = queries.size();
  result.num_threads = num_threads_;
  std::vector<double> latencies;
  Stopwatch total;
  const std::vector<ServeResponse> responses =
      ServeBatchLocked(requests, &result.stats, &result.phases, &latencies);
  result.wall_ms = total.ElapsedMillis();
  for (const ServeResponse& response : responses) {
    result.total_results += response.ids.size();
    for (const RankingId id : response.ids) {
      result.result_hash += MixId64(id);
    }
  }
  FinalizeLatencyStats(&latencies, &result);
  return result;
}

}  // namespace topk
