// Online serving frontend: inter-query batched execution with exact
// result/candidate caching.
//
// The harness so far parallelizes *within* one query (ParallelRunner fans
// a query across shards); production query streams are instead dominated
// by many small, often repeated queries. QueryFrontend closes that gap:
//
//   batching      a batch of range/k-NN requests is scheduled across a
//                 reusable ThreadPool as *whole queries* (work sharing:
//                 whichever executor is free grabs the next request; the
//                 calling thread participates). Responses land at the
//                 index of their request, so ordering per request id is
//                 deterministic regardless of execution interleaving.
//   result cache  an exact sharded LRU keyed by the canonical query
//                 sequence + (kind, algorithm, theta or j): an identical
//                 re-issued query is answered without touching any engine.
//   candidate     near-duplicate queries that permute an item set reuse
//   cache         the memoized plain-F&V posting union and skip the
//                 filter phase, paying only validation (exact for
//                 theta_raw < dmax; see serve/candidate_cache.h).
//   generations   InvalidateCaches() bumps an epoch; entries from older
//                 generations can never be served again (lazy erase).
//                 The hook covers the *caches*; the frontend's indexes
//                 and engines bind the store contents at Prepare time,
//                 so a store/partitioning rebuild must construct a new
//                 QueryFrontend (bumping the old one's epoch only
//                 guarantees its caches cannot leak into the new
//                 generation while it is being drained).
//
// Exactness: every served answer is bit-identical to a cold run of the
// requested engine — enforced by the serve differential suites
// (serve_frontend_test, FuzzServeTest in fuzz_differential_test).
//
// Concurrency contract (compiler-enforced where the analysis can see
// it): the coordinator methods (Prepare/ServeBatch/ServeWorkload) run
// one-at-a-time under serve_mutex_ — concurrent callers serialize
// instead of racing — and the per-executor table is TOPK_GUARDED_BY that
// mutex. InvalidateCaches() may be called from any thread at any time.
// A request observes the generation current when its batch started:
// requests racing an invalidation linearize before it. The lock
// hierarchy (serve_mutex_ above the cache shard mutexes, never the
// reverse) is recorded in DESIGN.md "Locking order & epoch contracts".
//
// Engine thread safety: each executor owns a private QueryEngine per
// algorithm (per-engine scratch), all sharing the suite's immutable
// indexes; the coarse index takes a per-executor CoarseScratch. Exceptions
// thrown while serving a request are captured and the first one is
// rethrown on the caller after the batch joins (remaining requests still
// complete, so the frontend stays usable).

#ifndef TOPK_SERVE_FRONTEND_H_
#define TOPK_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "harness/query_algorithms.h"
#include "harness/runner.h"
#include "harness/thread_pool.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "metric/knn.h"
#include "serve/candidate_cache.h"
#include "serve/fingerprint.h"
#include "serve/result_cache.h"

namespace topk {

class MutableStore;

/// One query in a serving batch. `query` must outlive the ServeBatch call
/// (requests reference workload-owned PreparedQuery objects; copying the
/// prepared views per request would dominate small-query serving).
struct ServeRequest {
  ServeKind kind = ServeKind::kRange;
  Algorithm algorithm = Algorithm::kFV;
  const PreparedQuery* query = nullptr;
  RawDistance theta_raw = 0;  // range requests
  size_t j = 0;               // k-NN requests
  /// Per-request deadline; infinite by default. An expired request is
  /// answered with Status::DeadlineExceeded and an empty result (a
  /// result-cache hit still serves — it beats the deadline by
  /// construction); a request that expires mid-execution discards its
  /// partial answer and is never cached.
  Deadline deadline = Deadline::Infinite();
  /// Optional cooperative cancellation; must outlive the batch. A
  /// tripped token answers with Status::Aborted under the same
  /// discard-partials rule as the deadline.
  const CancelToken* cancel = nullptr;

  static ServeRequest Range(Algorithm algorithm, const PreparedQuery& query,
                            RawDistance theta_raw) {
    return ServeRequest{ServeKind::kRange, algorithm, &query, theta_raw, 0};
  }
  static ServeRequest Knn(Algorithm algorithm, const PreparedQuery& query,
                          size_t j) {
    return ServeRequest{ServeKind::kKnn, algorithm, &query, 0, j};
  }
  // A temporary would leave a dangling pointer in the request; make the
  // lifetime rule a compile error instead of a comment.
  static ServeRequest Range(Algorithm, const PreparedQuery&&,
                            RawDistance) = delete;
  static ServeRequest Knn(Algorithm, const PreparedQuery&&, size_t) = delete;
};

struct ServeResponse {
  std::vector<RankingId> ids;       // range answer, ascending ids
  std::vector<Neighbor> neighbors;  // k-NN answer, (distance, id) ascending
  bool result_cache_hit = false;
  bool candidate_cache_hit = false;
  /// OK for a served answer; DeadlineExceeded / Aborted / Unavailable
  /// for a request that was stopped or shed (ids/neighbors empty then).
  Status status = Status::OK();
  /// Client back-off hint, set only with Status::Unavailable.
  double retry_after_ms = 0.0;
};

struct QueryFrontendOptions {
  /// Executors serving requests, including the calling thread (the pool
  /// spawns num_threads - 1 workers). Must be >= 1.
  size_t num_threads = 1;
  /// Entry budgets; 0 disables the respective cache. The result budget
  /// applies per answer kind (range and k-NN entries are kept in
  /// independent stores of this size).
  size_t result_cache_capacity = 64 * 1024;
  size_t candidate_cache_capacity = 16 * 1024;
  /// Lock shards per cache (clamped to capacity).
  size_t cache_shards = 8;
  /// Admission control: batches admitted concurrently (counting the one
  /// holding the serve mutex *and* the ones queued behind it). When a
  /// caller would push the count past this, the whole batch is shed —
  /// every response carries Status::Unavailable + retry_after_ms and no
  /// engine runs — instead of queueing unboundedly. 0 disables shedding.
  size_t max_inflight_batches = 0;
  /// Back-off hint stamped on shed responses.
  double shed_retry_after_ms = 50.0;
  /// Forwarded to the shared EngineSuite.
  EngineSuiteConfig suite_config;
};

/// Whether the frontend routes `algorithm` through the candidate cache.
/// The memoized posting union equals F&V's own validation set and
/// undercuts LinearScan's full scan, so skipping their filter is a pure
/// win; every pruning engine (drop/blocked/coarse/adapt) validates fewer
/// candidates than the full union, so reusing it would cost more distance
/// calls than the skipped filter saves — those algorithms rely on the
/// result cache alone.
bool CandidateCacheApplies(Algorithm algorithm);

class QueryFrontend {
 public:
  explicit QueryFrontend(const RankingStore* store,
                         QueryFrontendOptions options = {});

  size_t num_threads() const { return num_threads_; }
  const RankingStore& store() const { return *store_; }
  EngineSuite& suite() { return suite_; }
  uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  size_t result_cache_size() const { return result_cache_.size(); }
  size_t candidate_cache_size() const { return candidate_cache_.size(); }
  /// Batches currently admitted — running plus queued on the serve mutex
  /// (the gauge max_inflight_batches sheds on; an operator load signal).
  size_t inflight_batches() const {
    return inflight_batches_.load(std::memory_order_acquire);
  }

  /// Builds the shared indexes and the per-executor engines behind
  /// `algorithm` (range and/or k-NN use). Idempotent; ServeBatch prepares
  /// implicitly, so calling this is only needed to keep index construction
  /// out of a timed window. kMinimalFV is rejected at serve time (the
  /// oracle is workload-bound and has no place in an online frontend).
  void Prepare(Algorithm algorithm) TOPK_EXCLUDES(serve_mutex_);

  /// Serves `requests` across the pool; response i answers request i.
  /// Per-request tickers (including cache hit/miss/eviction counts) are
  /// merged into `stats` when non-null, phase splits into `phases`. If any
  /// request threw (e.g. kMinimalFV or an unsupported k-NN backend), the
  /// first exception is rethrown after every other request completed.
  std::vector<ServeResponse> ServeBatch(std::span<const ServeRequest> requests,
                                        Statistics* stats = nullptr,
                                        PhaseTimes* phases = nullptr)
      TOPK_EXCLUDES(serve_mutex_);

  /// Harness-style measurement loop: serves the whole workload as one
  /// batch of range requests and aggregates the usual RunResult (cache
  /// tickers included in .stats; per-request latencies feed the tail
  /// percentiles).
  RunResult ServeWorkload(Algorithm algorithm,
                          std::span<const PreparedQuery> queries,
                          RawDistance theta_raw) TOPK_EXCLUDES(serve_mutex_);

  /// Generation bump: every currently cached entry becomes unservable.
  /// Thread-safe. This invalidates the *caches* only — the indexes and
  /// engines still bind the store contents from Prepare time, so a
  /// store/partitioning rebuild requires a new QueryFrontend (call this
  /// on the old instance so its entries cannot outlive the handover).
  void InvalidateCaches() {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Subscribes this frontend's cache invalidation to every mutation of
  /// `store` (insert, delete, merge swap): the registered listener calls
  /// InvalidateCaches() under the store's mutex, so the epoch bump is
  /// atomic with the write — a cached answer can never be served across
  /// a mutation it predates. The frontend must outlive the store (the
  /// store holds a raw back-pointer through the listener); the caveat
  /// above still applies — this keeps the *caches* honest, while the
  /// engines keep binding their Prepare-time snapshot.
  void WatchStore(MutableStore* store) TOPK_EXCLUDES(serve_mutex_);

 private:
  struct Executor {
    std::map<Algorithm, std::unique_ptr<QueryEngine>> engines;
    // Per-batch accounting, merged after the join.
    Statistics stats;
    PhaseTimes phases;
    // Kernel scratch: posting-union dedup + the batched validator's
    // query rank table.
    FilterScratch filter;
    FootruleValidator validator;
  };

  std::vector<ServeResponse> ServeBatchLocked(
      std::span<const ServeRequest> requests, Statistics* stats,
      PhaseTimes* phases, std::vector<double>* latencies)
      TOPK_REQUIRES(serve_mutex_);
  /// Engines + k-NN index handles for `algorithm` (no candidate-path
  /// index; ServeBatch binds that only when a range request needs it).
  void PrepareEngines(Algorithm algorithm) TOPK_REQUIRES(serve_mutex_);
  /// Prepare's body, for callers already inside the coordinator section.
  void PrepareLocked(Algorithm algorithm) TOPK_REQUIRES(serve_mutex_);
  /// Shed path: stamps every response Unavailable with the retry hint,
  /// ticking kLoadShed per request; no engine, cache, or pool touched.
  std::vector<ServeResponse> ShedBatch(std::span<const ServeRequest> requests,
                                       Statistics* stats) const;
  void ServeOne(Executor* executor, const ServeRequest& request,
                uint64_t epoch, ServeResponse* response);
  std::vector<RankingId> ServeRange(Executor* executor,
                                    const ServeRequest& request,
                                    uint64_t epoch, ServeResponse* response,
                                    QueryControl* control);
  std::vector<RankingId> RunEngine(Executor* executor,
                                   const ServeRequest& request);
  std::vector<Neighbor> ServeKnn(Executor* executor,
                                 const ServeRequest& request);
  /// The deduplicated, ascending union of the query items' posting lists
  /// (the kernel FilterPhase plus a sort for the canonical cache form).
  std::vector<RankingId> PostingUnion(Executor* executor,
                                      const PreparedQuery& query);
  /// Validates `candidates` (ascending) against theta through the
  /// executor's batched validator, ticking the same counters a plain
  /// validate phase would.
  std::vector<RankingId> ValidateCandidates(
      Executor* executor, std::span<const RankingId> candidates,
      const PreparedQuery& query, RawDistance theta_raw,
      QueryControl* control = nullptr) const;

  const RankingStore* store_;
  QueryFrontendOptions options_;
  size_t num_threads_;
  ThreadPool pool_;
  /// Serializes the coordinator methods; held across a whole batch.
  /// Ordered above every cache shard mutex and the pool's queue mutex
  /// (both are leaves acquired under it, never the reverse).
  Mutex serve_mutex_;
  EngineSuite suite_;
  /// Executor slots. Guarded accesses are the coordinator's (reset,
  /// engine setup, post-join merge); during the fan-out each drain task
  /// works through a pointer to its private slot, which is the
  /// one-writer-per-slot discipline the TSan leg checks.
  std::vector<Executor> executors_ TOPK_GUARDED_BY(serve_mutex_);
  ResultCache result_cache_;
  CandidateCache candidate_cache_;
  // Index handles are written only inside the coordinator section and
  // read by executor tasks after the fan-out publishes them (the pool's
  // future handshake is the happens-before edge), so they are plain
  // pointers rather than guarded members: a guarded read from a worker
  // would need the coordinator lock the workers must not take.
  const PlainInvertedIndex* plain_index_ = nullptr;  // set on first prepare
  const BkTree* bk_tree_ = nullptr;                  // k-NN backends,
  const MTree* m_tree_ = nullptr;                    // built by Prepare
  const CoarseIndex* coarse_index_ = nullptr;
  std::atomic<uint64_t> epoch_{0};
  /// Batches admitted and not yet finished (includes callers queued on
  /// serve_mutex_) — the admission-control gauge ServeBatch sheds on.
  std::atomic<size_t> inflight_batches_{0};
};

}  // namespace topk

#endif  // TOPK_SERVE_FRONTEND_H_
