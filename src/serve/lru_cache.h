// Sharded, epoch-validated LRU cache — the storage engine behind both the
// result cache and the candidate cache (the RediSearch pattern: front an
// exact index with a cache that writes invalidate, adapted to exactness
// guarantees).
//
// Design:
//
//   sharding      entries are spread over independently locked shards by
//                 their key fingerprint, so concurrent executors rarely
//                 contend on one mutex. Capacity is split evenly across
//                 shards (eviction is enforced per shard).
//   epochs        every entry is stamped with the generation it was
//                 computed under. A lookup presents the caller's current
//                 generation; any entry from an older generation is
//                 treated as a miss and erased on touch — after a
//                 store/partitioning rebuild bumps the generation, a stale
//                 answer can never be served, without an eager sweep.
//   exactness     the shard map buckets by the key's 64-bit fingerprint,
//                 but a hit additionally requires full key equality
//                 (Key::operator== compares the canonical item vectors).
//                 A fingerprint collision therefore degrades to a
//                 miss/replacement, never to a wrong answer.
//
// Locking contract (compiler-enforced, see core/thread_annotations.h):
// all shard state is TOPK_GUARDED_BY the shard's own mutex, and every
// operation is a Shard member that takes a MutexLock on entry — shard
// mutexes are leaves of the lock hierarchy (DESIGN.md "Locking order &
// epoch contracts"), never held across calls out of this header.
//
// Key must provide a `uint64_t hash` member (precomputed fingerprint) and
// operator==. Value must be copyable (hits copy the value out under the
// shard lock).

#ifndef TOPK_SERVE_LRU_CACHE_H_
#define TOPK_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace topk {

template <typename Key, typename Value>
class ShardedLruCache {
 public:
  /// A cache with room for ~`capacity` entries over `num_shards` locks.
  /// capacity 0 disables the cache (lookups miss, inserts are dropped);
  /// otherwise the shard count is clamped to the capacity so even
  /// capacity 1 is enforced exactly (one shard holding one entry). The
  /// per-shard budget is the ceiling division, so the cache never holds
  /// fewer than `capacity` entries overall (at most shards-1 more).
  ShardedLruCache(size_t capacity, size_t num_shards)
      : capacity_(capacity),
        shards_(capacity == 0
                    ? 1
                    : std::min(std::max<size_t>(num_shards, 1), capacity)) {
    per_shard_capacity_ =
        capacity == 0 ? 0 : (capacity + shards_.size() - 1) / shards_.size();
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the value for `key` into `*out` and returns true iff an entry
  /// with the exact same key exists AND carries the caller's `epoch`.
  /// Touching a stale-epoch entry erases it (lazy invalidation).
  bool Lookup(const Key& key, uint64_t epoch, Value* out) {
    if (per_shard_capacity_ == 0) return false;
    return shard_for(key).Lookup(key, epoch, out);
  }

  /// Inserts (or replaces) the entry for `key`, stamped with `epoch`.
  /// Returns the number of entries evicted to make room (for ticker
  /// accounting); replacing an entry with the same fingerprint does not
  /// count as an eviction.
  size_t Insert(const Key& key, uint64_t epoch, Value value) {
    if (per_shard_capacity_ == 0) return 0;
    return shard_for(key).Insert(key, epoch, std::move(value),
                                 per_shard_capacity_);
  }

  /// Drops every entry immediately (epoch bumps alone invalidate lazily).
  void Clear() {
    for (Shard& shard : shards_) shard.Clear();
  }

  /// Current entry count (includes not-yet-touched stale entries).
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) total += shard.Size();
    return total;
  }

  size_t capacity() const { return capacity_; }
  bool enabled() const { return per_shard_capacity_ > 0; }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t epoch;
  };

  /// One lock's worth of the cache. Locking lives inside the shard's own
  /// methods so every guarded access resolves against `this->mutex` —
  /// the pattern the thread-safety analysis verifies without any alias
  /// reasoning.
  struct Shard {
    mutable Mutex mutex;
    // front = most recently used.
    std::list<Entry> lru TOPK_GUARDED_BY(mutex);
    // Buckets by fingerprint; full-key equality is verified on hit.
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> map
        TOPK_GUARDED_BY(mutex);

    bool Lookup(const Key& key, uint64_t epoch, Value* out)
        TOPK_EXCLUDES(mutex) {
      MutexLock lock(&mutex);
      const auto it = map.find(key.hash);
      if (it == map.end()) return false;
      const auto entry = it->second;
      if (entry->epoch != epoch) {  // stale generation: invalidate on touch
        map.erase(it);
        lru.erase(entry);
        return false;
      }
      if (!(entry->key == key)) return false;  // fingerprint collision
      lru.splice(lru.begin(), lru, entry);     // most recent
      *out = entry->value;
      return true;
    }

    size_t Insert(const Key& key, uint64_t epoch, Value value,
                  size_t shard_capacity) TOPK_EXCLUDES(mutex) {
      MutexLock lock(&mutex);
      const auto it = map.find(key.hash);
      if (it != map.end()) {  // refresh (or fingerprint-collision swap)
        const auto entry = it->second;
        entry->key = key;
        entry->value = std::move(value);
        entry->epoch = epoch;
        lru.splice(lru.begin(), lru, entry);
        return 0;
      }
      size_t evicted = 0;
      while (lru.size() >= shard_capacity) {
        map.erase(lru.back().key.hash);
        lru.pop_back();
        ++evicted;
      }
      lru.push_front(Entry{key, std::move(value), epoch});
      map.emplace(key.hash, lru.begin());
      return evicted;
    }

    void Clear() TOPK_EXCLUDES(mutex) {
      MutexLock lock(&mutex);
      map.clear();
      lru.clear();
    }

    size_t Size() const TOPK_EXCLUDES(mutex) {
      MutexLock lock(&mutex);
      return lru.size();
    }
  };

  Shard& shard_for(const Key& key) {
    // The fingerprint is already well mixed (splitmix64 finalizer), so
    // modulo sharding is unbiased.
    return shards_[key.hash % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
  size_t per_shard_capacity_;
};

}  // namespace topk

#endif  // TOPK_SERVE_LRU_CACHE_H_
