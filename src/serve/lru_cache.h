// Sharded, epoch-validated LRU cache — the storage engine behind both the
// result cache and the candidate cache (the RediSearch pattern: front an
// exact index with a cache that writes invalidate, adapted to exactness
// guarantees).
//
// Design:
//
//   sharding      entries are spread over independently locked shards by
//                 their key fingerprint, so concurrent executors rarely
//                 contend on one mutex. Capacity is split evenly across
//                 shards (eviction is enforced per shard).
//   epochs        every entry is stamped with the generation it was
//                 computed under. A lookup presents the caller's current
//                 generation; any entry from an older generation is
//                 treated as a miss and erased on touch — after a
//                 store/partitioning rebuild bumps the generation, a stale
//                 answer can never be served, without an eager sweep.
//   exactness     the shard map buckets by the key's 64-bit fingerprint,
//                 but a hit additionally requires full key equality
//                 (Key::operator== compares the canonical item vectors).
//                 A fingerprint collision therefore degrades to a
//                 miss/replacement, never to a wrong answer.
//
// Key must provide a `uint64_t hash` member (precomputed fingerprint) and
// operator==. Value must be copyable (hits copy the value out under the
// shard lock).

#ifndef TOPK_SERVE_LRU_CACHE_H_
#define TOPK_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace topk {

template <typename Key, typename Value>
class ShardedLruCache {
 public:
  /// A cache with room for ~`capacity` entries over `num_shards` locks.
  /// capacity 0 disables the cache (lookups miss, inserts are dropped);
  /// otherwise the shard count is clamped to the capacity so even
  /// capacity 1 is enforced exactly (one shard holding one entry). The
  /// per-shard budget is the ceiling division, so the cache never holds
  /// fewer than `capacity` entries overall (at most shards-1 more).
  ShardedLruCache(size_t capacity, size_t num_shards)
      : capacity_(capacity),
        shards_(capacity == 0
                    ? 1
                    : std::min(std::max<size_t>(num_shards, 1), capacity)) {
    per_shard_capacity_ =
        capacity == 0 ? 0 : (capacity + shards_.size() - 1) / shards_.size();
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the value for `key` into `*out` and returns true iff an entry
  /// with the exact same key exists AND carries the caller's `epoch`.
  /// Touching a stale-epoch entry erases it (lazy invalidation).
  bool Lookup(const Key& key, uint64_t epoch, Value* out) {
    if (per_shard_capacity_ == 0) return false;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key.hash);
    if (it == shard.map.end()) return false;
    const auto entry = it->second;
    if (entry->epoch != epoch) {  // stale generation: invalidate on touch
      shard.map.erase(it);
      shard.lru.erase(entry);
      return false;
    }
    if (!(entry->key == key)) return false;  // fingerprint collision
    shard.lru.splice(shard.lru.begin(), shard.lru, entry);  // most recent
    *out = entry->value;
    return true;
  }

  /// Inserts (or replaces) the entry for `key`, stamped with `epoch`.
  /// Returns the number of entries evicted to make room (for ticker
  /// accounting); replacing an entry with the same fingerprint does not
  /// count as an eviction.
  size_t Insert(const Key& key, uint64_t epoch, Value value) {
    if (per_shard_capacity_ == 0) return 0;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key.hash);
    if (it != shard.map.end()) {  // refresh (or fingerprint-collision swap)
      const auto entry = it->second;
      entry->key = key;
      entry->value = std::move(value);
      entry->epoch = epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, entry);
      return 0;
    }
    size_t evicted = 0;
    while (shard.lru.size() >= per_shard_capacity_) {
      shard.map.erase(shard.lru.back().key.hash);
      shard.lru.pop_back();
      ++evicted;
    }
    shard.lru.push_front(Entry{key, std::move(value), epoch});
    shard.map.emplace(key.hash, shard.lru.begin());
    return evicted;
  }

  /// Drops every entry immediately (epoch bumps alone invalidate lazily).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  /// Current entry count (includes not-yet-touched stale entries).
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.lru.size();
    }
    return total;
  }

  size_t capacity() const { return capacity_; }
  bool enabled() const { return per_shard_capacity_ > 0; }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t epoch;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    // Buckets by fingerprint; full-key equality is verified on hit.
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> map;
  };

  Shard& shard_for(const Key& key) {
    // The fingerprint is already well mixed (splitmix64 finalizer), so
    // modulo sharding is unbiased.
    return shards_[key.hash % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
  size_t per_shard_capacity_;
};

}  // namespace topk

#endif  // TOPK_SERVE_LRU_CACHE_H_
