// Candidate-set cache for the serving layer: memoizes the plain-F&V
// filter output (the deduplicated union of the query items' posting
// lists) keyed by the query's *item set*.
//
// Why this is exact (Section 4 of the paper gives the filter/validate
// contract): the posting-list union depends only on which items the query
// contains — not on their order — and it is a superset of the exact
// answer for any theta_raw < dmax, because a ranking sharing no item with
// the query sits at exactly dmax. A near-duplicate query that permutes
// positions (the dominant edit in re-issued query logs) therefore reuses
// the memoized candidates and pays only the validation scan; the final
// answer is exact because validation computes true Footrule distances.
// Requests with theta_raw >= dmax must bypass this cache (the frontend
// does), since then even disjoint rankings qualify.
//
// Scope: the frontend routes only union-validating algorithms through
// this cache (F&V, whose validation set IS the union, and LinearScan,
// whose full scan the union undercuts). Pruning engines validate fewer
// candidates than the full union, so reusing it would cost more distance
// calls than the skipped filter saves — measured in BENCH_serving.json's
// cache_ablation section.
//
// Hit/miss/eviction counts use the kCandidateCache* tickers.
//
// Thread safety: internally synchronized through the ShardedLruCache's
// annotated per-shard mutexes (serve/lru_cache.h) — like ResultCache,
// this wrapper holds no mutable state of its own.

#ifndef TOPK_SERVE_CANDIDATE_CACHE_H_
#define TOPK_SERVE_CANDIDATE_CACHE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/statistics.h"
#include "core/types.h"
#include "serve/fingerprint.h"
#include "serve/lru_cache.h"

namespace topk {

/// Candidate sets are large (a posting union often spans a sizeable
/// fraction of the store), so the cache stores them behind a shared_ptr:
/// a hit hands out a reference under the shard lock instead of copying
/// thousands of ids, and an entry evicted mid-validation stays alive for
/// the reader that holds it.
using CandidateList = std::shared_ptr<const std::vector<RankingId>>;

class CandidateCache {
 public:
  CandidateCache(size_t capacity, size_t num_shards)
      : cache_(capacity, num_shards) {}

  bool enabled() const { return cache_.enabled(); }

  /// Hands out the memoized candidate ids (ascending) for the query's
  /// item set; ticks kCandidateCacheHits/Misses.
  bool Lookup(const CandidateCacheKey& key, uint64_t epoch,
              CandidateList* out, Statistics* stats) {
    const bool hit = cache_.Lookup(key, epoch, out);
    AddTicker(stats, hit ? Ticker::kCandidateCacheHits
                         : Ticker::kCandidateCacheMisses);
    return hit;
  }

  /// `candidates` must be the complete posting-list union for the item
  /// set, ascending (so validation emits ascending results directly).
  void Insert(const CandidateCacheKey& key, uint64_t epoch,
              std::vector<RankingId> candidates, Statistics* stats) {
    AddTicker(stats, Ticker::kCandidateCacheEvictions,
              cache_.Insert(key, epoch,
                            std::make_shared<const std::vector<RankingId>>(
                                std::move(candidates))));
  }

  void Clear() { cache_.Clear(); }
  size_t size() const { return cache_.size(); }

 private:
  ShardedLruCache<CandidateCacheKey, CandidateList> cache_;
};

}  // namespace topk

#endif  // TOPK_SERVE_CANDIDATE_CACHE_H_
