// LiveFrontend: exact result caching over the live write path.
//
// QueryFrontend binds an immutable RankingStore snapshot at Prepare
// time, so it cannot sit on a store that mutates. LiveFrontend is the
// serving adapter for mutate/MutableStore: the same epoch-stamped exact
// ResultCache, but every answer is computed by the store itself (which
// is always current) and every mutation invalidates the cache through
// the store's mutation listener.
//
// Exactness under concurrency: ServeRange/ServeKnn read the epoch
// BEFORE the cache lookup and insert the computed answer under that same
// epoch. A mutation that lands after the read bumps the epoch under the
// store mutex — before the store could have answered the query — so a
// stale answer is inserted under an epoch that is already dead and can
// never be served. The served answer therefore always equals the store's
// answer at some point inside the call (linearizable), and an identical
// re-issued query after any mutation recomputes.
//
// The options_.wire_invalidation seam exists for the regression test
// that reproduces the pre-PR bug (caches serving answers that predate a
// write): with wiring off, serve_frontend_test shows the stale hit; with
// the default wiring on, the same sequence returns fresh answers.
//
// Thread safety: no mutex of its own — the cache is internally
// synchronized, the epoch is atomic, and the store serializes its own
// queries. Calls may race mutations arbitrarily (TSan-checked).

#ifndef TOPK_SERVE_LIVE_FRONTEND_H_
#define TOPK_SERVE_LIVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/deadline.h"
#include "core/statistics.h"
#include "core/status.h"
#include "core/types.h"
#include "metric/knn.h"
#include "mutate/mutable_store.h"
#include "serve/fingerprint.h"
#include "serve/result_cache.h"

namespace topk {

struct LiveFrontendOptions {
  /// Entry budget per answer kind; 0 disables caching.
  size_t result_cache_capacity = 64 * 1024;
  /// Lock shards for the cache (clamped to capacity).
  size_t cache_shards = 8;
  /// When true (the default, and the satellite bugfix), the constructor
  /// registers a mutation listener on the store so every Insert/Delete/
  /// merge swap bumps the epoch. False reproduces the unwired pre-PR
  /// behavior for the stale-hit regression test — never use in
  /// production.
  bool wire_invalidation = true;
  /// Admission control: queries served concurrently before new arrivals
  /// are shed with Status::Unavailable (a cache hit is still attempted
  /// first — it costs less than building the rejection). 0 = unlimited.
  size_t max_inflight = 0;
  /// Back-off hint attached to shed responses.
  double shed_retry_after_ms = 50.0;
};

class LiveFrontend {
 public:
  /// The cache-key algorithm slot for live-store answers. The store is
  /// engine-agnostic (one exact kernel), so a sentinel outside the
  /// Algorithm enum keeps live entries disjoint from any QueryFrontend
  /// sharing a key scheme.
  static constexpr uint32_t kLiveAlgorithm = 0xFFFFFFFFu;

  /// `store` must outlive the frontend. With wiring on, the frontend
  /// must also outlive the store's last mutation (the listener holds a
  /// raw back-pointer); destroy store-then-frontend.
  explicit LiveFrontend(MutableStore* store, LiveFrontendOptions options = {});

  MutableStore& store() { return *store_; }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  size_t result_cache_size() const { return result_cache_.size(); }
  /// Queries currently inside a Serve* call (the admission gauge
  /// max_inflight sheds on; an operator load signal).
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }

  /// Exact range answer (ascending global ids), from cache when the
  /// identical query+theta was served in the current epoch. Requires the
  /// default options (no admission limit): with limits configured use
  /// the Status overload, which can report the shed.
  std::vector<RankingId> ServeRange(const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr);

  /// Exact k-NN answer ((distance, id) ascending, min(j, live) entries).
  std::vector<Neighbor> ServeKnn(const PreparedQuery& query, size_t j,
                                 Statistics* stats = nullptr);

  /// Deadline/cancel/admission-aware range serving. `*out` holds the
  /// exact answer on OK; on Unavailable (shed, see retry_after_ms()),
  /// DeadlineExceeded, or Aborted it is empty, and nothing non-OK is
  /// ever cached. `control` may be null (no deadline).
  Status ServeRange(const PreparedQuery& query, RawDistance theta_raw,
                    QueryControl* control, std::vector<RankingId>* out,
                    Statistics* stats = nullptr);

  /// Deadline/cancel/admission-aware k-NN serving; same contract.
  Status ServeKnn(const PreparedQuery& query, size_t j, QueryControl* control,
                  std::vector<Neighbor>* out, Statistics* stats = nullptr);

  /// Back-off hint for Status::Unavailable responses.
  double retry_after_ms() const { return options_.shed_retry_after_ms; }

  /// Generation bump: every cached entry becomes unservable. Thread-safe;
  /// this is what the store's mutation listener calls.
  void InvalidateCaches() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  MutableStore* store_;
  LiveFrontendOptions options_;
  ResultCache result_cache_;
  std::atomic<uint64_t> epoch_{0};
  /// Queries currently inside a Serve* call (admission gauge).
  std::atomic<size_t> inflight_{0};
};

}  // namespace topk

#endif  // TOPK_SERVE_LIVE_FRONTEND_H_
