#include "serve/live_frontend.h"

#include <utility>

namespace topk {

LiveFrontend::LiveFrontend(MutableStore* store, LiveFrontendOptions options)
    : store_(store),
      options_(options),
      result_cache_(options.result_cache_capacity, options.cache_shards) {
  if (options_.wire_invalidation) {
    store_->AddMutationListener([this] { InvalidateCaches(); });
  }
}

std::vector<RankingId> LiveFrontend::ServeRange(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  // Epoch read FIRST: a mutation racing this call bumps after our read,
  // so the insert below lands under an already-dead epoch (see header).
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  std::vector<RankingId> out;
  if (result_cache_.enabled()) {
    const ResultCacheKey key = MakeResultCacheKey(
        ServeKind::kRange, kLiveAlgorithm, theta_raw, query);
    if (result_cache_.LookupRange(key, epoch, &out, stats)) return out;
    out = store_->RangeQuery(query, theta_raw, stats);
    result_cache_.InsertRange(key, epoch, out, stats);
    return out;
  }
  return store_->RangeQuery(query, theta_raw, stats);
}

std::vector<Neighbor> LiveFrontend::ServeKnn(const PreparedQuery& query,
                                             size_t j, Statistics* stats) {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  std::vector<Neighbor> out;
  if (result_cache_.enabled()) {
    const ResultCacheKey key =
        MakeResultCacheKey(ServeKind::kKnn, kLiveAlgorithm, j, query);
    if (result_cache_.LookupKnn(key, epoch, &out, stats)) return out;
    out = store_->KnnQuery(query, j, stats);
    result_cache_.InsertKnn(key, epoch, out, stats);
    return out;
  }
  return store_->KnnQuery(query, j, stats);
}

}  // namespace topk
