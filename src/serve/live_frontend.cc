#include "serve/live_frontend.h"

#include <utility>

#include "core/types.h"

namespace topk {

namespace {

/// RAII admission slot: the gauge counts every query inside a Serve*
/// call, shed or served, so the decrement must be unconditional.
struct InflightGuard {
  std::atomic<size_t>* gauge;
  ~InflightGuard() { gauge->fetch_sub(1, std::memory_order_acq_rel); }
};

}  // namespace

LiveFrontend::LiveFrontend(MutableStore* store, LiveFrontendOptions options)
    : store_(store),
      options_(options),
      result_cache_(options.result_cache_capacity, options.cache_shards) {
  if (options_.wire_invalidation) {
    store_->AddMutationListener([this] { InvalidateCaches(); });
  }
}

std::vector<RankingId> LiveFrontend::ServeRange(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  std::vector<RankingId> out;
  const Status status = ServeRange(query, theta_raw, nullptr, &out, stats);
  // Infinite deadline and (per the header contract) no admission limit:
  // the only losable statuses cannot occur here.
  TOPK_DCHECK(status.ok());
  return out;
}

std::vector<Neighbor> LiveFrontend::ServeKnn(const PreparedQuery& query,
                                             size_t j, Statistics* stats) {
  std::vector<Neighbor> out;
  const Status status = ServeKnn(query, j, nullptr, &out, stats);
  TOPK_DCHECK(status.ok());
  return out;
}

Status LiveFrontend::ServeRange(const PreparedQuery& query,
                                RawDistance theta_raw, QueryControl* control,
                                std::vector<RankingId>* out,
                                Statistics* stats) {
  out->clear();
  InflightGuard guard{&inflight_};
  const size_t inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Epoch read FIRST: a mutation racing this call bumps after our read,
  // so the insert below lands under an already-dead epoch (see header).
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const bool cacheable = result_cache_.enabled();
  ResultCacheKey key{};
  if (cacheable) {
    key = MakeResultCacheKey(ServeKind::kRange, kLiveAlgorithm, theta_raw,
                             query);
    if (result_cache_.LookupRange(key, epoch, out, stats)) {
      return Status::OK();
    }
  }
  // Shed AFTER the cache attempt: a hit costs less than the rejection
  // it would replace, and it never touches the (overloaded) store.
  if (options_.max_inflight > 0 && inflight >= options_.max_inflight) {
    AddTicker(stats, Ticker::kLoadShed);
    return Status::Unavailable("live frontend at capacity; retry after back-off");
  }
  Status status = store_->RangeQuery(query, theta_raw, control, out, stats);
  if (!status.ok()) {
    out->clear();
    return status;  // never cache a non-answer
  }
  if (cacheable) result_cache_.InsertRange(key, epoch, *out, stats);
  return Status::OK();
}

Status LiveFrontend::ServeKnn(const PreparedQuery& query, size_t j,
                              QueryControl* control, std::vector<Neighbor>* out,
                              Statistics* stats) {
  out->clear();
  InflightGuard guard{&inflight_};
  const size_t inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const bool cacheable = result_cache_.enabled();
  ResultCacheKey key{};
  if (cacheable) {
    key = MakeResultCacheKey(ServeKind::kKnn, kLiveAlgorithm, j, query);
    if (result_cache_.LookupKnn(key, epoch, out, stats)) {
      return Status::OK();
    }
  }
  if (options_.max_inflight > 0 && inflight >= options_.max_inflight) {
    AddTicker(stats, Ticker::kLoadShed);
    return Status::Unavailable("live frontend at capacity; retry after back-off");
  }
  Status status = store_->KnnQuery(query, j, control, out, stats);
  if (!status.ok()) {
    out->clear();
    return status;
  }
  if (cacheable) result_cache_.InsertKnn(key, epoch, *out, stats);
  return Status::OK();
}

}  // namespace topk
