// Canonical cache keys for the online serving layer.
//
// Two key shapes back the two caches:
//
//   ResultCacheKey     identifies an *answer*: the query's exact item
//                      sequence plus (kind, algorithm, theta or j). Any
//                      difference in the ranking's order changes the
//                      Footrule distances and therefore the answer, so the
//                      canonical form is the full position-order sequence.
//   CandidateCacheKey  identifies a *filter result*: the query's item set
//                      in ascending order. The plain-F&V filter phase is
//                      the union of the query items' posting lists, which
//                      depends only on WHICH items the query contains —
//                      near-duplicate queries that permute positions share
//                      the key and skip filtering entirely.
//
// Both keys carry a precomputed 64-bit fingerprint for bucketing, but
// exactness never rests on it: the caches compare the full key (operator==
// includes the item vectors) before serving, so a fingerprint collision
// degrades to a miss, never to a wrong answer.

#ifndef TOPK_SERVE_FINGERPRINT_H_
#define TOPK_SERVE_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

/// What a serving request asks for; part of every result-cache key.
enum class ServeKind : uint8_t {
  kRange = 0,  // all rankings within theta_raw
  kKnn = 1,    // the j nearest rankings
};

struct ResultCacheKey {
  uint8_t kind;        // ServeKind
  uint32_t algorithm;  // Algorithm enum value (serving keeps per-algorithm
                       // entries separate even though all engines agree)
  uint64_t param;      // theta_raw for range requests, j for k-NN
  std::vector<ItemId> items;  // query items in position order (canonical)
  uint64_t hash;              // precomputed over every field above

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.hash == b.hash && a.kind == b.kind &&
           a.algorithm == b.algorithm && a.param == b.param &&
           a.items == b.items;
  }
};

ResultCacheKey MakeResultCacheKey(ServeKind kind, uint32_t algorithm,
                                  uint64_t param, const PreparedQuery& query);

struct CandidateCacheKey {
  std::vector<ItemId> items;  // query item set, ascending (canonical)
  uint64_t hash;              // ItemSetFingerprint of the set

  friend bool operator==(const CandidateCacheKey& a,
                         const CandidateCacheKey& b) {
    return a.hash == b.hash && a.items == b.items;
  }
};

CandidateCacheKey MakeCandidateCacheKey(const PreparedQuery& query);

}  // namespace topk

#endif  // TOPK_SERVE_FINGERPRINT_H_
