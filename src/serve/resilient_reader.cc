#include "serve/resilient_reader.h"

#include <algorithm>
#include <utility>

#include "core/failpoint.h"

namespace topk {

namespace {

Status StopStatus(const QueryControl& control, Statistics* stats) {
  AddTicker(stats, Ticker::kDeadlineExceeded);
  if (control.cancelled()) return Status::Aborted("range query cancelled");
  return Status::DeadlineExceeded("range query deadline exceeded");
}

}  // namespace

ResilientReader::ResilientReader(const RankingStore* ram_store,
                                 ResilientReaderOptions options)
    : ram_store_(ram_store),
      options_(std::move(options)),
      manager_(options_.snapshot_dir,
               storage::SnapshotManagerOptions{options_.keep_generations}) {}

Status ResilientReader::OpenSnapshotTier(Statistics* stats) {
  if (options_.snapshot_dir.empty()) {
    return Status::InvalidArgument("no snapshot_dir configured");
  }
  // The whole scan runs under the reader mutex: SnapshotManager is
  // externally synchronized, and this also keeps a concurrent query
  // from observing a half-swapped tier.
  MutexLock lock(&mutex_);
  Result<storage::OpenedSnapshot> opened = manager_.OpenNewestValid(stats);
  if (!opened.ok()) return opened.status();
  snapshot_ = std::move(opened).ValueOrDie();
  degraded_ = false;
  return Status::OK();
}

Status ResilientReader::RestoreSnapshotTier(Statistics* stats) {
  return OpenSnapshotTier(stats);
}

bool ResilientReader::degraded() const {
  MutexLock lock(&mutex_);
  return degraded_;
}

bool ResilientReader::snapshot_open() const {
  MutexLock lock(&mutex_);
  return snapshot_.has_value();
}

uint64_t ResilientReader::snapshot_generation() const {
  MutexLock lock(&mutex_);
  return snapshot_.has_value() ? snapshot_->generation : 0;
}

Status ResilientReader::RangeQuery(const PreparedQuery& query,
                                   RawDistance theta_raw,
                                   QueryControl* control,
                                   std::vector<RankingId>* out,
                                   Statistics* stats) {
  out->clear();
  MutexLock lock(&mutex_);
  if (control != nullptr && control->ShouldStop()) {
    return StopStatus(*control, stats);
  }
  if (snapshot_.has_value() && !degraded_) {
    // The failpoint stands in for the unscriptable hardware fault: a
    // cold mmap page whose backing device died surfaces here, on first
    // touch, not at open time. Degradation is sticky — one fault means
    // the mapping cannot be trusted for any later page either.
    if (TOPK_FAILPOINT("serve.snapshot.query")) {
      degraded_ = true;
      snapshot_.reset();  // drop the failing mapping
    } else {
      return SnapshotRangeLocked(query, theta_raw, control, out, stats);
    }
  }
  if (degraded_) AddTicker(stats, Ticker::kDegradedReads);
  return RamRangeLocked(query, theta_raw, control, out, stats);
}

std::vector<RankingId> ResilientReader::RangeQuery(const PreparedQuery& query,
                                                   RawDistance theta_raw,
                                                   Statistics* stats) {
  std::vector<RankingId> out;
  const Status status = RangeQuery(query, theta_raw, nullptr, &out, stats);
  TOPK_DCHECK(status.ok());  // no deadline, no fault surfaces as a status
  return out;
}

Status ResilientReader::SnapshotRangeLocked(const PreparedQuery& query,
                                            RawDistance theta_raw,
                                            QueryControl* control,
                                            std::vector<RankingId>* out,
                                            Statistics* stats) {
  const RankingStore& store = snapshot_->snapshot.store();
  if (theta_raw >= MaxDistance(store.k())) {
    // A posting union misses rankings disjoint from the query (they sit
    // at exactly dmax); validate the whole domain instead, exactly like
    // the RAM tier does — the tiers stay bit-identical at every theta.
    return ValidateLocked(store, AllIdsLocked(store.size()), query, theta_raw,
                          control, out, stats);
  }
  const std::span<const RankingId> candidates =
      FilterPhase(snapshot_->snapshot.index(), query.view(), theta_raw,
                  DropMode::kNone, store.size(), &filter_, stats);
  Status status = ValidateLocked(store, candidates, query, theta_raw, control,
                                 out, stats);
  if (status.ok()) std::sort(out->begin(), out->end());
  return status;
}

Status ResilientReader::RamRangeLocked(const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       QueryControl* control,
                                       std::vector<RankingId>* out,
                                       Statistics* stats) {
  // No index survives on this tier (the compressed postings lived in the
  // dropped mapping), so the fallback is a straight validate-everything
  // scan: slower, never wrong, and alive — which is the whole point.
  return ValidateLocked(*ram_store_, AllIdsLocked(ram_store_->size()), query,
                        theta_raw, control, out, stats);
}

Status ResilientReader::ValidateLocked(const RankingStore& store,
                                       std::span<const RankingId> candidates,
                                       const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       QueryControl* control,
                                       std::vector<RankingId>* out,
                                       Statistics* stats) {
  AddTicker(stats, Ticker::kCandidates, candidates.size());
  validator_.BindQuery(query.view(),
                       static_cast<size_t>(store.max_item()) + 1);
  validator_.ValidateSpan(store, candidates, theta_raw, out, stats, control);
  if (control != nullptr && control->ShouldStop()) {
    out->clear();
    return StopStatus(*control, stats);
  }
  AddTicker(stats, Ticker::kResults, out->size());
  return Status::OK();
}

std::span<const RankingId> ResilientReader::AllIdsLocked(size_t n) {
  if (all_ids_.size() < n) {
    const size_t old = all_ids_.size();
    all_ids_.resize(n);
    for (size_t id = old; id < n; ++id) {
      all_ids_[id] = static_cast<RankingId>(id);
    }
  }
  return std::span<const RankingId>(all_ids_.data(), n);
}

}  // namespace topk
