// Exact result cache for the serving layer: memoizes complete answers
// (range result lists and k-NN neighbor lists) keyed by the canonical
// query sequence + (kind, algorithm, theta or j).
//
// A hit returns the previously computed answer verbatim — exact because
// (a) the key compares the full item sequence, so only a byte-identical
// query under identical parameters can hit, (b) every engine in the
// registry is exact, so the memoized answer equals what any cold run
// would produce, and (c) entries are epoch-stamped: a generation bump
// (store/partitioning rebuild) makes every older entry unservable.
//
// Hit/miss/eviction counts are reported through the standard Statistics
// tickers (kResultCache*), so they aggregate into RunResult like every
// other counter.
//
// Thread safety: internally synchronized — all state lives in the
// ShardedLruCache, whose per-shard mutexes carry the compile-checked
// annotations (see serve/lru_cache.h); this wrapper adds no state of
// its own beyond the cache, so it needs no lock and no annotations.
// The Statistics object passed per call is caller-owned (thread-local
// in the frontend's executors).

#ifndef TOPK_SERVE_RESULT_CACHE_H_
#define TOPK_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <vector>

#include "core/statistics.h"
#include "core/types.h"
#include "metric/knn.h"
#include "serve/fingerprint.h"
#include "serve/lru_cache.h"

namespace topk {

class ResultCache {
 public:
  /// `capacity` is the entry budget *per answer kind*: the range and
  /// k-NN stores are independent, each holding up to `capacity` entries
  /// (a stream of one kind gets the full budget; a mixed stream can hold
  /// up to 2x). 0 disables both.
  ResultCache(size_t capacity, size_t num_shards)
      : range_(capacity, num_shards), knn_(capacity, num_shards) {}

  bool enabled() const { return range_.enabled(); }

  /// Range lookups/inserts. Lookup ticks kResultCacheHits/Misses; Insert
  /// ticks kResultCacheEvictions for entries displaced by capacity.
  bool LookupRange(const ResultCacheKey& key, uint64_t epoch,
                   std::vector<RankingId>* out, Statistics* stats) {
    const bool hit = range_.Lookup(key, epoch, out);
    AddTicker(stats,
              hit ? Ticker::kResultCacheHits : Ticker::kResultCacheMisses);
    return hit;
  }
  void InsertRange(const ResultCacheKey& key, uint64_t epoch,
                   std::vector<RankingId> value, Statistics* stats) {
    AddTicker(stats, Ticker::kResultCacheEvictions,
              range_.Insert(key, epoch, std::move(value)));
  }

  /// k-NN counterparts (same tickers).
  bool LookupKnn(const ResultCacheKey& key, uint64_t epoch,
                 std::vector<Neighbor>* out, Statistics* stats) {
    const bool hit = knn_.Lookup(key, epoch, out);
    AddTicker(stats,
              hit ? Ticker::kResultCacheHits : Ticker::kResultCacheMisses);
    return hit;
  }
  void InsertKnn(const ResultCacheKey& key, uint64_t epoch,
                 std::vector<Neighbor> value, Statistics* stats) {
    AddTicker(stats, Ticker::kResultCacheEvictions,
              knn_.Insert(key, epoch, std::move(value)));
  }

  void Clear() {
    range_.Clear();
    knn_.Clear();
  }
  size_t size() const { return range_.size() + knn_.size(); }

 private:
  ShardedLruCache<ResultCacheKey, std::vector<RankingId>> range_;
  ShardedLruCache<ResultCacheKey, std::vector<Neighbor>> knn_;
};

}  // namespace topk

#endif  // TOPK_SERVE_RESULT_CACHE_H_
