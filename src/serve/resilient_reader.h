// ResilientReader: degraded-read serving over a failing storage tier.
//
// The preferred read path is the mmap'd snapshot tier (zero-copy
// compressed postings, storage/snapshot.h): cheap to open, larger than
// RAM, but backed by a device that can fail *after* open — a torn cable
// or a dying disk surfaces as SIGBUS/EIO on first touch of a cold page,
// long after OpenStoreSnapshot validated the metadata. ResilientReader
// is the serving-side answer: every range query first probes the
// snapshot tier; a read fault there (modelled by the
// "serve.snapshot.query" failpoint — the hardware itself cannot be
// scripted in a test) trips a *sticky* degradation to the in-RAM store,
// the failing mapping is dropped, and serving continues without a
// user-visible error. Each degraded answer ticks kDegradedReads so an
// operator sees the fallback instead of discovering it from a latency
// regression, and RestoreSnapshotTier() re-arms the fast tier once the
// fault is cleared (it re-runs the SnapshotManager recovery scan, so a
// corrupted generation is quarantined rather than re-trusted).
//
// Exactness across tiers: both paths answer bit-identically for every
// theta. Below dmax the snapshot tier runs filter+validate over the
// compressed index; at or above dmax (where a posting union provably
// misses disjoint rankings) both tiers validate the full id domain.
// tests/serve_robustness_test.cc differentials pin this.
//
// Thread safety: all methods serialize on an internal mutex (the
// kernel scratch and the tier state are shared); concurrent callers
// block rather than race. Deadlines/cancellation thread through
// QueryControl into the validate kernels at candidate granularity.

#ifndef TOPK_SERVE_RESILIENT_READER_H_
#define TOPK_SERVE_RESILIENT_READER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "storage/snapshot_manager.h"

namespace topk {

struct ResilientReaderOptions {
  /// Directory holding gen-*.topksnp files (see SnapshotManager). Empty
  /// disables the snapshot tier entirely (RAM-only, never "degraded").
  std::string snapshot_dir;
  /// Forwarded to the SnapshotManager recovery scan.
  size_t keep_generations = 3;
};

class ResilientReader {
 public:
  /// `ram_store` must outlive the reader and hold the same logical
  /// contents as the snapshots in `snapshot_dir` (it is the fallback
  /// truth the degraded tier serves from). The snapshot tier starts
  /// closed; call OpenSnapshotTier().
  ResilientReader(const RankingStore* ram_store,
                  ResilientReaderOptions options);

  /// Opens the newest valid snapshot generation (quarantining corrupt
  /// ones — see SnapshotManager::OpenNewestValid) and makes it the
  /// preferred read tier. NotFound when no valid generation exists; the
  /// reader then keeps serving from RAM.
  Status OpenSnapshotTier(Statistics* stats = nullptr) TOPK_EXCLUDES(mutex_);

  /// Operator lever after a degradation: re-runs the recovery scan and,
  /// on success, promotes the snapshot tier back to preferred.
  Status RestoreSnapshotTier(Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// True once a snapshot-tier read fault tripped the fallback (sticky
  /// until RestoreSnapshotTier succeeds).
  bool degraded() const TOPK_EXCLUDES(mutex_);
  /// True while the snapshot tier is open and preferred.
  bool snapshot_open() const TOPK_EXCLUDES(mutex_);
  /// Generation of the open snapshot (0 when closed).
  uint64_t snapshot_generation() const TOPK_EXCLUDES(mutex_);

  /// Exact range query (ascending ids) from whichever tier is healthy.
  /// On a deadline/cancel stop `*out` is left empty and the status is
  /// DeadlineExceeded / Aborted; a snapshot-tier fault never surfaces
  /// here — it degrades and the RAM tier answers.
  Status RangeQuery(const PreparedQuery& query, RawDistance theta_raw,
                    QueryControl* control, std::vector<RankingId>* out,
                    Statistics* stats = nullptr) TOPK_EXCLUDES(mutex_);

  /// Convenience wrapper: no deadline, asserts OK.
  std::vector<RankingId> RangeQuery(const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

 private:
  Status SnapshotRangeLocked(const PreparedQuery& query, RawDistance theta_raw,
                             QueryControl* control,
                             std::vector<RankingId>* out, Statistics* stats)
      TOPK_REQUIRES(mutex_);
  Status RamRangeLocked(const PreparedQuery& query, RawDistance theta_raw,
                        QueryControl* control, std::vector<RankingId>* out,
                        Statistics* stats) TOPK_REQUIRES(mutex_);
  /// Validates candidates (or, for all_ids == true, the whole id domain
  /// of `store`) through the shared kernel scratch.
  Status ValidateLocked(const RankingStore& store,
                        std::span<const RankingId> candidates,
                        const PreparedQuery& query, RawDistance theta_raw,
                        QueryControl* control, std::vector<RankingId>* out,
                        Statistics* stats) TOPK_REQUIRES(mutex_);
  std::span<const RankingId> AllIdsLocked(size_t n) TOPK_REQUIRES(mutex_);

  const RankingStore* ram_store_;
  ResilientReaderOptions options_;
  storage::SnapshotManager manager_;

  mutable Mutex mutex_;
  std::optional<storage::OpenedSnapshot> snapshot_ TOPK_GUARDED_BY(mutex_);
  bool degraded_ TOPK_GUARDED_BY(mutex_) = false;
  FilterScratch filter_ TOPK_GUARDED_BY(mutex_);
  FootruleValidator validator_ TOPK_GUARDED_BY(mutex_);
  std::vector<RankingId> all_ids_ TOPK_GUARDED_BY(mutex_);
};

}  // namespace topk

#endif  // TOPK_SERVE_RESILIENT_READER_H_
