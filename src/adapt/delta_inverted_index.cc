#include "adapt/delta_inverted_index.h"

#include <algorithm>
#include <numeric>

#include "data/dataset_stats.h"

namespace topk {

DeltaInvertedIndex DeltaInvertedIndex::Build(const RankingStore& store) {
  DeltaInvertedIndex index;
  index.k_ = store.k();
  index.num_indexed_ = store.size();
  const size_t num_items = static_cast<size_t>(store.max_item()) + 1;

  // Global order: ascending frequency, ties by item id. order_[item] is
  // the item's position in that order.
  const std::vector<uint64_t> freqs = ItemFrequencies(store);
  std::vector<ItemId> by_freq(num_items);
  std::iota(by_freq.begin(), by_freq.end(), 0);
  std::stable_sort(by_freq.begin(), by_freq.end(),
                   [&freqs](ItemId a, ItemId b) { return freqs[a] < freqs[b]; });
  index.order_.resize(num_items);
  for (size_t pos = 0; pos < by_freq.size(); ++pos) {
    index.order_[by_freq[pos]] = pos;
  }

  // Entries keyed by (item, sorted position within record).
  index.lists_.resize(num_items);
  std::vector<ItemId> sorted_record;
  for (RankingId id = 0; id < store.size(); ++id) {
    const RankingView v = store.view(id);
    sorted_record.assign(v.items().begin(), v.items().end());
    std::sort(sorted_record.begin(), sorted_record.end(),
              [&index](ItemId a, ItemId b) {
                return index.order_[a] < index.order_[b];
              });
    for (uint32_t pos = 0; pos < sorted_record.size(); ++pos) {
      index.lists_[sorted_record[pos]].push_back(
          AugmentedEntry{id, pos});
    }
  }

  // Position-major layout with a directory, as in the blocked index.
  index.offsets_.assign(num_items * (index.k_ + 1), 0);
  for (size_t item = 0; item < num_items; ++item) {
    auto& list = index.lists_[item];
    std::stable_sort(list.begin(), list.end(),
                     [](const AugmentedEntry& a, const AugmentedEntry& b) {
                       return a.rank < b.rank;
                     });
    uint32_t* off = &index.offsets_[item * (index.k_ + 1)];
    size_t pos = 0;
    for (uint32_t j = 0; j < index.k_; ++j) {
      off[j] = static_cast<uint32_t>(pos);
      while (pos < list.size() && list[pos].rank == j) ++pos;
    }
    off[index.k_] = static_cast<uint32_t>(list.size());
  }
  return index;
}

void DeltaInvertedIndex::EnsureItemsLocked(ItemId max_item) {
  const size_t needed = static_cast<size_t>(max_item) + 1;
  if (needed <= order_.size()) return;
  // Newly covered items extend the frozen order: positions continue past
  // every already-assigned one (in id order within the new range), so no
  // existing record's sorted positions are disturbed and OrderOf's
  // beyond-capacity fallback (order_.size() + item) still sorts strictly
  // after everything assigned here.
  size_t next_position = order_.size();
  order_.resize(needed);
  for (size_t item = next_position; item < needed; ++item) {
    order_[item] = next_position++;
  }
  lists_.resize(needed);
  offsets_.resize(needed * (k_ + 1), 0);  // new items: every block empty
}

void DeltaInvertedIndex::Insert(RankingId id, RankingView record) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(static_cast<size_t>(id) == num_indexed_ &&
              "ranking ids are dense: insert in id order");
  if (k_ == 0 && num_indexed_ == 0) {  // first record of an empty index
    k_ = static_cast<uint32_t>(record.items().size());
    offsets_.assign(order_.size() * (k_ + 1), 0);
  }
  TOPK_DCHECK(record.items().size() == k_);

  ItemId max_item = 0;
  for (const ItemId item : record.items()) max_item = std::max(max_item, item);
  EnsureItemsLocked(max_item);

  std::vector<ItemId> sorted(record.items().begin(), record.items().end());
  std::sort(sorted.begin(), sorted.end(), [this](ItemId a, ItemId b) {
    return order_[a] < order_[b];
  });
  for (uint32_t pos = 0; pos < sorted.size(); ++pos) {
    const ItemId item = sorted[pos];
    auto& list = lists_[item];
    uint32_t* off = &offsets_[static_cast<size_t>(item) * (k_ + 1)];
    // The new entry lands at the end of its rank-`pos` block: `id` is the
    // largest id yet, so ids stay ascending within the block (matching
    // Build's stable sort), and every later block shifts right by one.
    list.insert(list.begin() + off[pos + 1], AugmentedEntry{id, pos});
    for (uint32_t r = pos + 1; r <= k_; ++r) ++off[r];
  }
  ++num_indexed_;
}

std::vector<ItemId> DeltaInvertedIndex::SortByGlobalOrder(
    RankingView query) const {
  std::vector<ItemId> sorted(query.items().begin(), query.items().end());
  std::sort(sorted.begin(), sorted.end(), [this](ItemId a, ItemId b) {
    return OrderOf(a) < OrderOf(b);
  });
  return sorted;
}

size_t DeltaInvertedIndex::MemoryUsage() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<AugmentedEntry>) +
                 offsets_.capacity() * sizeof(uint32_t) +
                 order_.capacity() * sizeof(uint64_t);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(AugmentedEntry);
  }
  return bytes;
}

}  // namespace topk
