// Delta inverted index for prefix filtering, after Wang, Li, Feng's
// AdaptJoin/AdaptSearch (SIGMOD 2012) — the competitor of Section 7.
//
// A global total order over items (ascending frequency, rare items first —
// the standard prefix-filtering order) sorts each record's items; the
// index stores, for every item, the records containing it *at each sorted
// position*. Entries are grouped by position with a block directory, so
// the index lists for prefix length p are exactly the first offsets[p]
// entries of each list — extending a prefix from length p to p+1 touches
// only the "delta" block, which is what gives the index its name.

#ifndef TOPK_ADAPT_DELTA_INVERTED_INDEX_H_
#define TOPK_ADAPT_DELTA_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"

namespace topk {

class DeltaInvertedIndex {
 public:
  static DeltaInvertedIndex Build(const RankingStore& store);

  /// Entries whose record holds `item` within its first `prefix_len`
  /// sorted positions (the ".rank" field is the sorted position).
  std::span<const AugmentedEntry> Prefix(ItemId item,
                                         uint32_t prefix_len) const {
    if (item >= lists_.size()) return {};
    const uint32_t* off = &offsets_[static_cast<size_t>(item) * (k_ + 1)];
    const uint32_t end = off[prefix_len > k_ ? k_ : prefix_len];
    return std::span<const AugmentedEntry>(lists_[item]).first(end);
  }

  std::span<const AugmentedEntry> list(ItemId item) const {
    if (item >= lists_.size()) return {};
    return lists_[item];
  }

  /// Global-order position of an item (lower = rarer = earlier in
  /// prefixes); items unseen at build time order after all seen ones.
  uint64_t OrderOf(ItemId item) const {
    return item < order_.size() ? order_[item]
                                : static_cast<uint64_t>(order_.size()) + item;
  }

  /// The query's items arranged by the global order.
  std::vector<ItemId> SortByGlobalOrder(RankingView query) const;

  uint32_t k() const { return k_; }
  size_t num_indexed() const { return num_indexed_; }
  size_t MemoryUsage() const;

 private:
  uint32_t k_ = 0;
  size_t num_indexed_ = 0;
  std::vector<uint64_t> order_;
  std::vector<std::vector<AugmentedEntry>> lists_;
  std::vector<uint32_t> offsets_;  // (#items) * (k+1) position directory
};

}  // namespace topk

#endif  // TOPK_ADAPT_DELTA_INVERTED_INDEX_H_
