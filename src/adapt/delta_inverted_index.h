// Delta inverted index for prefix filtering, after Wang, Li, Feng's
// AdaptJoin/AdaptSearch (SIGMOD 2012) — the competitor of Section 7.
//
// A global total order over items (ascending frequency, rare items first —
// the standard prefix-filtering order) sorts each record's items; the
// index stores, for every item, the records containing it *at each sorted
// position*. Entries are grouped by position with a block directory, so
// the index lists for prefix length p are exactly the first offsets[p]
// entries of each list — extending a prefix from length p to p+1 touches
// only the "delta" block, which is what gives the index its name.
//
// Live mutability (the ROADMAP write-path hook): Insert() appends one
// record without a rebuild. The global item order is frozen incrementally
// — items unseen so far are assigned the next order positions as they
// arrive, extending (never permuting) the existing order — so every
// previously indexed record's sorted positions stay valid and the prefix-
// filter lemma keeps holding across inserts. An incrementally grown index
// therefore answers queries bit-identically to a freshly built one (the
// frequency-optimized Build order differs, which moves scan cost, never
// results); tests/adapt_delta_test.cc holds that differential.
//
// Locking: mutex_ serializes writers (concurrent Insert calls are safe).
// Readers are lock-free and run in the query phase only — Insert must not
// overlap queries. Used raw, that reader/writer phase exclusion is the
// caller's obligation; the system's real write path (mutate/MutableStore)
// discharges it by holding its store mutex across both mutations and
// queries and swapping merged segments under a generation bump — see
// DESIGN.md ("Locking order & epoch contracts").

#ifndef TOPK_ADAPT_DELTA_INVERTED_INDEX_H_
#define TOPK_ADAPT_DELTA_INVERTED_INDEX_H_

#include <span>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/ranking.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"

namespace topk {

class DeltaInvertedIndex {
 public:
  DeltaInvertedIndex() = default;

  // Movable so Build can return by value and EngineSuite can cache one
  // in an optional; the mutex is not state, so the moved-to object just
  // gets a fresh one. Moving is a build/handover-phase operation — never
  // legal concurrently with Insert or queries.
  //
  // The moved-from object is reset to the EMPTY state (k 0, nothing
  // indexed, containers cleared) and is immediately reusable: the next
  // Insert defines k afresh. MutableStore's merge seal leans on exactly
  // this — it moves the active delta into the sealed segment and keeps
  // inserting into the moved-from index. Leaving k_/num_indexed_ stale
  // here (the pre-fix behavior) made a reused moved-from index
  // double-count; adapt_delta_test pins the reset and the self-move
  // guard.
  DeltaInvertedIndex(DeltaInvertedIndex&& other) noexcept
      : k_(std::exchange(other.k_, 0)),
        num_indexed_(std::exchange(other.num_indexed_, 0)),
        order_(std::move(other.order_)),
        lists_(std::move(other.lists_)),
        offsets_(std::move(other.offsets_)) {
    // Moved-from std::vector contents are unspecified; pin the documented
    // empty state explicitly.
    other.order_.clear();
    other.lists_.clear();
    other.offsets_.clear();
  }
  DeltaInvertedIndex& operator=(DeltaInvertedIndex&& other) noexcept {
    if (this == &other) return *this;  // self-move: keep the index intact
    k_ = std::exchange(other.k_, 0);
    num_indexed_ = std::exchange(other.num_indexed_, 0);
    order_ = std::move(other.order_);
    lists_ = std::move(other.lists_);
    offsets_ = std::move(other.offsets_);
    other.order_.clear();
    other.lists_.clear();
    other.offsets_.clear();
    return *this;
  }
  DeltaInvertedIndex(const DeltaInvertedIndex&) = delete;
  DeltaInvertedIndex& operator=(const DeltaInvertedIndex&) = delete;

  static DeltaInvertedIndex Build(const RankingStore& store);

  /// Appends one record to the index (the live-mutability hook). `id`
  /// must be the next dense ranking id, i.e. num_indexed(); `record` is
  /// its item list (size k, or defines k for the first record of an
  /// empty index). Items never seen before extend the frozen global
  /// order in first-seen order. Thread-safe against concurrent Insert;
  /// must not overlap the query phase (see the header comment).
  void Insert(RankingId id, RankingView record) TOPK_EXCLUDES(mutex_);

  /// Entries whose record holds `item` within its first `prefix_len`
  /// sorted positions (the ".rank" field is the sorted position).
  std::span<const AugmentedEntry> Prefix(ItemId item,
                                         uint32_t prefix_len) const {
    if (item >= lists_.size()) return {};
    const uint32_t* off = &offsets_[static_cast<size_t>(item) * (k_ + 1)];
    const uint32_t end = off[prefix_len > k_ ? k_ : prefix_len];
    return std::span<const AugmentedEntry>(lists_[item]).first(end);
  }

  std::span<const AugmentedEntry> list(ItemId item) const {
    if (item >= lists_.size()) return {};
    return lists_[item];
  }

  /// Posting-list length for `item` (0 for items never indexed). This is
  /// the accessor the kernel FilterPhase's list selection requires, so the
  /// delta segment of a MutableStore runs through the exact same
  /// filter/validate kernel as the main CSR arena. Lists are rank-major
  /// (grouped by sorted position), NOT id-sorted, so the index deliberately
  /// does not declare kIdSortedLists — FilterPhase must not take its
  /// sorted-merge fast path here.
  size_t list_length(ItemId item) const {
    return item < lists_.size() ? lists_[item].size() : 0;
  }

  /// Global-order position of an item (lower = rarer = earlier in
  /// prefixes); items unseen at build time order after all seen ones.
  uint64_t OrderOf(ItemId item) const {
    return item < order_.size() ? order_[item]
                                : static_cast<uint64_t>(order_.size()) + item;
  }

  /// The query's items arranged by the global order.
  std::vector<ItemId> SortByGlobalOrder(RankingView query) const;

  uint32_t k() const { return k_; }
  size_t num_indexed() const { return num_indexed_; }
  size_t MemoryUsage() const;

 private:
  /// Grows order_/lists_/offsets_ to cover items up to `max_item`,
  /// assigning fresh order positions to newly seen items.
  void EnsureItemsLocked(ItemId max_item) TOPK_REQUIRES(mutex_);

  // Serializes writers (Insert). Readers are phase-excluded, not locked
  // — see the header comment — so the data members below carry no
  // GUARDED_BY: annotating them would force every lock-free query-path
  // read to claim a capability it deliberately does not hold.
  Mutex mutex_;
  uint32_t k_ = 0;
  size_t num_indexed_ = 0;
  std::vector<uint64_t> order_;
  std::vector<std::vector<AugmentedEntry>> lists_;
  std::vector<uint32_t> offsets_;  // (#items) * (k+1) position directory
};

}  // namespace topk

#endif  // TOPK_ADAPT_DELTA_INVERTED_INDEX_H_
