#include "adapt/adapt_search.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "core/footrule.h"

namespace topk {

namespace {

/// P[Poisson(lambda) >= ell] * n — the expected number of records with at
/// least ell prefix hits under the independence approximation.
double EstimateCandidates(double n, double lambda, uint32_t ell) {
  if (lambda <= 0) return 0;
  double term = std::exp(-lambda);  // P[X = 0]
  double below = 0;
  for (uint32_t j = 0; j < ell; ++j) {
    below += term;
    term *= lambda / static_cast<double>(j + 1);
  }
  return n * std::max(0.0, 1.0 - below);
}

}  // namespace

AdaptSearchEngine::AdaptSearchEngine(const RankingStore* store,
                                     const DeltaInvertedIndex* index,
                                     AdaptSearchOptions options)
    : store_(store), index_(index), options_(options) {
  counters_.resize(index_->num_indexed());
}

uint32_t AdaptSearchEngine::ChooseEll(const PreparedQuery& query,
                                      RawDistance theta_raw) const {
  const uint32_t k = query.k();
  const uint32_t c = MinOverlap(k, theta_raw);
  if (c <= 1) return 1;
  const std::vector<ItemId> sorted = index_->SortByGlobalOrder(query.view());
  const double n = static_cast<double>(index_->num_indexed());

  uint32_t best_ell = 1;
  double best_cost = 0;
  for (uint32_t ell = 1; ell <= c; ++ell) {
    const uint32_t prefix_len = k - c + ell;
    double scanned = 0;
    for (uint32_t t = 0; t < prefix_len; ++t) {
      scanned += static_cast<double>(
          index_->Prefix(sorted[t], prefix_len).size());
    }
    const double candidates =
        EstimateCandidates(n, scanned / std::max(1.0, n), ell);
    const double cost =
        scanned + candidates * options_.validate_cost_ratio;
    if (ell == 1 || cost < best_cost) {
      best_cost = cost;
      best_ell = ell;
    }
  }
  return best_ell;
}

std::vector<RankingId> AdaptSearchEngine::Query(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  const uint32_t k = query.k();
  // The index may have grown (live inserts) since this engine was built;
  // fresh counter slots start at epoch 0, which is never current, so they
  // read as unvisited under any live epoch.
  if (counters_.size() < index_->num_indexed()) {
    counters_.resize(index_->num_indexed());
  }
  ++epoch_;
  if (epoch_ == 0) {
    for (auto& counter : counters_) counter.epoch = 0;
    epoch_ = 1;
  }
  touched_.clear();

  const uint32_t c = MinOverlap(k, theta_raw);
  const std::vector<ItemId> sorted = index_->SortByGlobalOrder(query.view());

  // c == 0 would mean disjoint records can qualify; like every inverted
  // index method this requires theta < dmax. c >= 1 always scans at least
  // the full-length prefix with a count-1 filter, which degenerates to
  // plain filter-and-validate.
  const uint32_t ell = c == 0 ? 1 : ChooseEll(query, theta_raw);
  const uint32_t prefix_len = c == 0 ? k : k - c + ell;
  const uint32_t required = c == 0 ? 1 : ell;

  for (uint32_t t = 0; t < prefix_len; ++t) {
    const auto entries = index_->Prefix(sorted[t], prefix_len);
    AddTicker(stats, Ticker::kPostingEntriesScanned, entries.size());
    for (const AugmentedEntry& entry : entries) {
      Counter& counter = counters_[entry.id];
      if (counter.epoch != epoch_) {
        counter.epoch = epoch_;
        counter.count = 0;
        touched_.push_back(entry.id);
      }
      ++counter.count;
    }
  }

  std::vector<RankingId> results;
  const SortedRankingView q = query.sorted_view();
  size_t candidates = 0;
  for (RankingId id : touched_) {
    if (counters_[id].count < required) continue;
    ++candidates;
    AddTicker(stats, Ticker::kDistanceCalls);
    if (FootruleDistance(q, store_->sorted(id)) <= theta_raw) {
      results.push_back(id);
    }
  }
  AddTicker(stats, Ticker::kCandidates, candidates);
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace topk
