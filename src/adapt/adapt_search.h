// AdaptSearch: ad-hoc set-similarity search with a variable-length prefix
// scheme (Wang, Li, Feng; SIGMOD 2012), adapted to Footrule range queries
// exactly as the paper's Section 7 describes: the required overlap c comes
// from the Section 6 bound, and candidates are validated with Footrule.
//
// Prefix-filter principle for equal-size records: if |q ∩ r| >= c, then
// the (k - c + ell)-prefixes of q and r under the global order share at
// least ell items, for any ell in [1, c]. Larger ell means longer prefix
// lists to scan but a stronger filter (count >= ell) and fewer candidates
// to validate. AdaptSearch picks ell per query with a cost model:
//
//   cost(ell) = scanned_entries(ell) * c_scan
//             + estimated_candidates(ell) * c_validate
//
// scanned_entries is exact (list-prefix lengths are in the directory);
// the candidate count is estimated from a Poisson model of per-record hit
// counts (lambda = scanned/n), a cheap stand-in for AdaptJoin's sampling
// estimator — the substitution is documented in DESIGN.md.

#ifndef TOPK_ADAPT_ADAPT_SEARCH_H_
#define TOPK_ADAPT_ADAPT_SEARCH_H_

#include <vector>

#include "adapt/delta_inverted_index.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

struct AdaptSearchOptions {
  /// Relative cost of one Footrule validation vs. scanning one posting
  /// entry, for the ell-selection model.
  double validate_cost_ratio = 8.0;
};

class AdaptSearchEngine {
 public:
  AdaptSearchEngine(const RankingStore* store,
                    const DeltaInvertedIndex* index,
                    AdaptSearchOptions options = {});

  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

  /// The prefix-extension length the cost model would pick (test hook).
  uint32_t ChooseEll(const PreparedQuery& query, RawDistance theta_raw) const;

 private:
  struct Counter {
    uint32_t epoch = 0;
    uint32_t count = 0;
  };

  const RankingStore* store_;
  const DeltaInvertedIndex* index_;
  AdaptSearchOptions options_;
  std::vector<Counter> counters_;
  std::vector<RankingId> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace topk

#endif  // TOPK_ADAPT_ADAPT_SEARCH_H_
