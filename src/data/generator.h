// Synthetic dataset generators standing in for the paper's private
// datasets (Section 7; substitution rationale in DESIGN.md Section 3).
//
// Both generators share one mechanism — cluster-seeded Zipf sampling:
// seed rankings draw their items from a Zipf(s) popularity law over the
// item domain, and each seed spawns a geometrically-sized cluster of
// near-duplicates obtained by small perturbations (adjacent-rank swaps and
// tail-item replacements). The two presets differ exactly where the paper
// says the real datasets differ:
//
//   NYT-like  — high skew (s = 0.87), large clusters: popular documents
//               appear in many query-result rankings and similar queries
//               yield near-identical rankings.
//   Yago-like — mild skew (s = 0.53), tiny clusters: entities occur in few
//               rankings; result sets are nearly singletons.

#ifndef TOPK_DATA_GENERATOR_H_
#define TOPK_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/ranking.h"
#include "core/rng.h"
#include "costmodel/zipf.h"

namespace topk {

struct GeneratorOptions {
  /// Number of rankings to generate.
  uint32_t n = 25000;
  /// Ranking size.
  uint32_t k = 10;
  /// Item-domain size (items are ids 0 .. domain-1, id = popularity rank).
  uint32_t domain = 100000;
  /// Zipf skew of item popularity.
  double zipf_s = 0.7;
  /// Mean cluster size (1 = no near-duplicates); cluster sizes are
  /// geometric with this mean unless cluster_zipf_exponent is set.
  double mean_cluster_size = 4.0;
  /// If > 1, cluster sizes follow a truncated Zipf law with this exponent
  /// instead of the geometric law — the query-log regime where popular
  /// queries recur thousands of times (mean_cluster_size is then ignored).
  double cluster_zipf_exponent = 0.0;
  /// Truncation for Zipf-tailed cluster sizes.
  uint32_t max_cluster_size = 1;
  /// Probability that a cluster member is an exact copy of the seed (the
  /// same query re-issued) rather than a perturbation.
  double exact_duplicate_probability = 0.0;
  /// Maximum number of perturbation operations applied to a near-duplicate
  /// (the actual count is uniform in [1, max]).
  uint32_t max_perturb_ops = 3;
  /// Probability that a perturbation op replaces an item (vs. swapping two
  /// adjacent ranks).
  double replace_probability = 0.5;
  uint64_t seed = 1;
};

/// Generates a clustered-Zipf collection per the options.
RankingStore Generate(const GeneratorOptions& options);

/// Preset mimicking the paper's NYT workload properties at laptop scale.
GeneratorOptions NytLikeOptions(uint32_t n = 60000, uint32_t k = 10,
                                uint64_t seed = 1);

/// Preset mimicking the paper's Yago workload properties (the paper's
/// Yago set really is 25k rankings).
GeneratorOptions YagoLikeOptions(uint32_t n = 25000, uint32_t k = 10,
                                 uint64_t seed = 2);

/// Draws one duplicate-free ranking of `k` Zipf-distributed items.
/// Exposed for workload generation and tests.
void SampleRanking(const ZipfSampler& sampler, uint32_t k, Rng* rng,
                   std::vector<ItemId>* out);

/// Applies `ops` random perturbation operations in place (swap adjacent
/// ranks or replace an item with a fresh Zipf draw not already present).
void Perturb(std::vector<ItemId>* items, const ZipfSampler& sampler,
             uint32_t ops, double replace_probability, Rng* rng);

}  // namespace topk

#endif  // TOPK_DATA_GENERATOR_H_
