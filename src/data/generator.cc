#include "data/generator.h"

#include <algorithm>
#include <cmath>

namespace topk {

void SampleRanking(const ZipfSampler& sampler, uint32_t k, Rng* rng,
                   std::vector<ItemId>* out) {
  out->clear();
  while (out->size() < k) {
    const auto item = static_cast<ItemId>(sampler.Sample(rng));
    if (std::find(out->begin(), out->end(), item) == out->end()) {
      out->push_back(item);
    }
  }
}

void Perturb(std::vector<ItemId>* items, const ZipfSampler& sampler,
             uint32_t ops, double replace_probability, Rng* rng) {
  const auto k = static_cast<uint32_t>(items->size());
  for (uint32_t op = 0; op < ops; ++op) {
    if (rng->NextDouble() < replace_probability) {
      // Replace the item at a random position with a fresh draw; reject
      // draws already present to keep the ranking duplicate-free.
      const auto pos = static_cast<uint32_t>(rng->Below(k));
      for (;;) {
        const auto item = static_cast<ItemId>(sampler.Sample(rng));
        if (std::find(items->begin(), items->end(), item) == items->end()) {
          (*items)[pos] = item;
          break;
        }
      }
    } else if (k >= 2) {
      // Swap two adjacent ranks (raw Footrule delta of at most 2).
      const auto pos = static_cast<uint32_t>(rng->Below(k - 1));
      std::swap((*items)[pos], (*items)[pos + 1]);
    }
  }
}

RankingStore Generate(const GeneratorOptions& options) {
  TOPK_DCHECK(options.domain >= 2 * options.k);
  Rng rng(options.seed);
  ZipfSampler sampler(options.zipf_s, options.domain);
  RankingStore store(options.k);

  // Cluster sizes: geometric by default; Zipf-tailed (inverse-power
  // inversion sampling, truncated) for query-log-like duplication.
  const double mean = std::max(1.0, options.mean_cluster_size);
  auto cluster_size = [&]() -> uint32_t {
    if (options.cluster_zipf_exponent > 1.0) {
      const double u = std::max(1e-12, rng.NextDouble());
      const double tail = 1.0 / (options.cluster_zipf_exponent - 1.0);
      const double c = std::pow(u, -tail);
      const double capped =
          std::min(c, static_cast<double>(options.max_cluster_size));
      return static_cast<uint32_t>(capped);
    }
    if (mean <= 1.0) return 1;
    uint32_t size = 1;
    const double p_continue = 1.0 - 1.0 / mean;
    while (rng.NextDouble() < p_continue) ++size;
    return size;
  };

  std::vector<ItemId> seed_items;
  std::vector<ItemId> dup_items;
  while (store.size() < options.n) {
    SampleRanking(sampler, options.k, &rng, &seed_items);
    store.AddUnchecked(seed_items);
    uint32_t remaining = cluster_size() - 1;
    while (remaining > 0 && store.size() < options.n) {
      dup_items = seed_items;
      if (rng.NextDouble() >= options.exact_duplicate_probability) {
        const auto ops =
            1 + static_cast<uint32_t>(rng.Below(options.max_perturb_ops));
        Perturb(&dup_items, sampler, ops, options.replace_probability, &rng);
      }
      store.AddUnchecked(dup_items);
      --remaining;
    }
  }
  return store;
}

GeneratorOptions NytLikeOptions(uint32_t n, uint32_t k, uint64_t seed) {
  GeneratorOptions options;
  options.n = n;
  options.k = k;
  // Domain scaled so popular documents recur across many rankings, as in
  // the query-log workload (n >> distinct hot documents).
  options.domain = std::max<uint32_t>(4 * k, n / 2);
  options.zipf_s = 0.87;
  // Query-log duplication: cluster sizes are Zipf-tailed (popular queries
  // recur thousands of times) and most of a cluster's members are exact
  // re-issues of the same query, the rest related variations. Intra-
  // cluster distances spread over [0, ~0.5] via 1..6 perturbation ops.
  // This is what makes the paper's NYT result sets huge and lets the
  // coarse index skip re-validating duplicates (Figure 10).
  options.cluster_zipf_exponent = 1.6;
  options.max_cluster_size = std::max<uint32_t>(8, n / 8);
  options.exact_duplicate_probability = 0.7;
  options.max_perturb_ops = 6;
  options.replace_probability = 0.45;
  options.seed = seed;
  return options;
}

GeneratorOptions YagoLikeOptions(uint32_t n, uint32_t k, uint64_t seed) {
  GeneratorOptions options;
  options.n = n;
  options.k = k;
  // Entities occur in few rankings: domain comparable to n * k / small
  // factor, mild skew, small clusters ("chunks of rankings similar to
  // each other", Section 7).
  options.domain = std::max<uint32_t>(4 * k, 3 * n);
  options.zipf_s = 0.53;
  options.mean_cluster_size = 2.5;
  options.max_perturb_ops = 4;
  options.replace_probability = 0.5;
  options.seed = seed;
  return options;
}

}  // namespace topk
