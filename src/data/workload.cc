#include "data/workload.h"

#include <algorithm>

#include "core/rng.h"
#include "data/dataset_stats.h"

namespace topk {

namespace {

/// Samples items proportionally to their frequency in the store via binary
/// search over the cumulative frequency table.
class FrequencySampler {
 public:
  explicit FrequencySampler(const RankingStore& store) {
    const std::vector<uint64_t> freqs = ItemFrequencies(store);
    cumulative_.reserve(freqs.size());
    uint64_t acc = 0;
    for (uint64_t f : freqs) {
      acc += f;
      cumulative_.push_back(acc);
    }
    total_ = acc;
  }

  ItemId Sample(Rng* rng) const {
    const uint64_t u = rng->Below(total_) + 1;
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<ItemId>(it - cumulative_.begin());
  }

 private:
  std::vector<uint64_t> cumulative_;
  uint64_t total_ = 0;
};

}  // namespace

std::vector<PreparedQuery> MakeWorkload(const RankingStore& store,
                                        const WorkloadOptions& options) {
  TOPK_DCHECK(!store.empty());
  Rng rng(options.seed);
  const FrequencySampler sampler(store);
  const uint32_t k = store.k();

  std::vector<PreparedQuery> queries;
  queries.reserve(options.num_queries);
  std::vector<ItemId> items;
  for (size_t i = 0; i < options.num_queries; ++i) {
    items.clear();
    if (rng.NextDouble() < options.perturbed_fraction) {
      // Perturbed copy of a stored ranking.
      const auto id = static_cast<RankingId>(rng.Below(store.size()));
      const auto view = store.view(id);
      items.assign(view.items().begin(), view.items().end());
      for (uint32_t op = 0; op < options.perturb_ops; ++op) {
        if (rng.NextDouble() < 0.5 && k >= 2) {
          const auto pos = static_cast<uint32_t>(rng.Below(k - 1));
          std::swap(items[pos], items[pos + 1]);
        } else {
          const auto pos = static_cast<uint32_t>(rng.Below(k));
          for (;;) {
            const ItemId item = sampler.Sample(&rng);
            if (std::find(items.begin(), items.end(), item) == items.end()) {
              items[pos] = item;
              break;
            }
          }
        }
      }
    } else {
      // Fresh draw from the empirical item distribution.
      while (items.size() < k) {
        const ItemId item = sampler.Sample(&rng);
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
    }
    queries.emplace_back(
        std::move(Ranking::Create(items)).ValueOrDie());
  }
  return queries;
}

}  // namespace topk
