#include "data/workload.h"

#include <algorithm>
#include <optional>

#include "core/rng.h"
#include "costmodel/zipf.h"
#include "data/dataset_stats.h"

namespace topk {

namespace {

/// Samples items proportionally to their frequency in the store via binary
/// search over the cumulative frequency table.
class FrequencySampler {
 public:
  explicit FrequencySampler(const RankingStore& store) {
    const std::vector<uint64_t> freqs = ItemFrequencies(store);
    cumulative_.reserve(freqs.size());
    uint64_t acc = 0;
    for (uint64_t f : freqs) {
      acc += f;
      cumulative_.push_back(acc);
    }
    total_ = acc;
  }

  ItemId Sample(Rng* rng) const {
    const uint64_t u = rng->Below(total_) + 1;
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<ItemId>(it - cumulative_.begin());
  }

 private:
  std::vector<uint64_t> cumulative_;
  uint64_t total_ = 0;
};

}  // namespace

std::vector<PreparedQuery> MakeWorkload(const RankingStore& store,
                                        const WorkloadOptions& options) {
  TOPK_DCHECK(!store.empty());
  Rng rng(options.seed);
  const FrequencySampler sampler(store);
  const uint32_t k = store.k();

  // Re-issue machinery (repeat_fraction > 0 only — the guard keeps the
  // RNG consumption, and therefore the generated stream, bit-identical to
  // older workloads when the knob is off).
  std::optional<ZipfSampler> repeat_sampler;
  if (options.repeat_fraction > 0) {
    repeat_sampler.emplace(options.repeat_zipf_s,
                           std::max<uint64_t>(options.num_queries, 1));
  }
  std::vector<size_t> distinct;  // indices into `queries` of first issues

  std::vector<PreparedQuery> queries;
  queries.reserve(options.num_queries);
  std::vector<ItemId> items;
  for (size_t i = 0; i < options.num_queries; ++i) {
    items.clear();
    if (options.repeat_fraction > 0 && !distinct.empty() &&
        rng.NextDouble() < options.repeat_fraction) {
      // Exact re-issue of an earlier distinct query, Zipf-ranked by issue
      // order (rank 0 = most popular). The sampler covers the maximum
      // possible pool; the truncated draw renormalizes the law onto the
      // queries issued so far in a single inversion (equivalent to
      // rejection sampling, without its O(pool/issued) draws at low skew).
      const uint64_t rank = repeat_sampler->SampleBelow(&rng,
                                                        distinct.size());
      const auto target = queries[distinct[rank]].view().items();
      items.assign(target.begin(), target.end());
      queries.emplace_back(
          std::move(Ranking::Create(items)).ValueOrDie());
      continue;
    }
    if (rng.NextDouble() < options.perturbed_fraction) {
      // Perturbed copy of a stored ranking.
      const auto id = static_cast<RankingId>(rng.Below(store.size()));
      const auto view = store.view(id);
      items.assign(view.items().begin(), view.items().end());
      for (uint32_t op = 0; op < options.perturb_ops; ++op) {
        if (rng.NextDouble() < 0.5 && k >= 2) {
          const auto pos = static_cast<uint32_t>(rng.Below(k - 1));
          std::swap(items[pos], items[pos + 1]);
        } else {
          const auto pos = static_cast<uint32_t>(rng.Below(k));
          for (;;) {
            const ItemId item = sampler.Sample(&rng);
            if (std::find(items.begin(), items.end(), item) == items.end()) {
              items[pos] = item;
              break;
            }
          }
        }
      }
    } else {
      // Fresh draw from the empirical item distribution.
      while (items.size() < k) {
        const ItemId item = sampler.Sample(&rng);
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
    }
    distinct.push_back(queries.size());
    queries.emplace_back(
        std::move(Ranking::Create(items)).ValueOrDie());
  }
  return queries;
}

}  // namespace topk
