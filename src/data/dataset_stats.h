// Dataset statistics feeding the cost model: the item-frequency table,
// the fitted Zipf skew, the distinct-item count, and the sampled pairwise
// distance CDF (Section 5 estimates all of these from the data).

#ifndef TOPK_DATA_DATASET_STATS_H_
#define TOPK_DATA_DATASET_STATS_H_

#include <cstdint>
#include <vector>

#include "core/ranking.h"
#include "costmodel/cost_model.h"

namespace topk {

/// Frequency (number of containing rankings) per item id, indexed by item.
std::vector<uint64_t> ItemFrequencies(const RankingStore& store);

/// Number of distinct items appearing in the store.
uint64_t CountDistinctItems(const RankingStore& store);

/// Assembles every cost-model input by measurement: fits the Zipf skew,
/// samples the distance profile (`profile_samples` rankings against the
/// whole store), and calibrates the unit costs.
CostModelInputs MeasureCostModelInputs(const RankingStore& store,
                                       size_t profile_samples = 128,
                                       uint64_t seed = 7);

}  // namespace topk

#endif  // TOPK_DATA_DATASET_STATS_H_
