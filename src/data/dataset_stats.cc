#include "data/dataset_stats.h"

#include "core/rng.h"
#include "costmodel/zipf.h"

namespace topk {

std::vector<uint64_t> ItemFrequencies(const RankingStore& store) {
  std::vector<uint64_t> freqs(static_cast<size_t>(store.max_item()) + 1, 0);
  for (RankingId id = 0; id < store.size(); ++id) {
    for (ItemId item : store.view(id).items()) ++freqs[item];
  }
  return freqs;
}

uint64_t CountDistinctItems(const RankingStore& store) {
  uint64_t distinct = 0;
  for (uint64_t f : ItemFrequencies(store)) {
    if (f > 0) ++distinct;
  }
  return distinct;
}

CostModelInputs MeasureCostModelInputs(const RankingStore& store,
                                       size_t profile_samples,
                                       uint64_t seed) {
  CostModelInputs inputs;
  inputs.n = store.size();
  inputs.k = store.k();
  const std::vector<uint64_t> freqs = ItemFrequencies(store);
  uint64_t distinct = 0;
  for (uint64_t f : freqs) {
    if (f > 0) ++distinct;
  }
  inputs.v = distinct;
  inputs.zipf_s = EstimateZipfSkew(freqs);
  Rng rng(seed);
  inputs.profile = BallProfile::Sample(store, profile_samples, &rng);
  inputs.calib = Calibrate(store.k(), seed);
  return inputs;
}

}  // namespace topk
