// Query workload construction (Section 7 runs 1000 queries per
// configuration).
//
// Queries follow the data distribution, matching both the paper's setup
// (query-log queries over the same corpus) and the cost model's assumption
// that query items obey the data's Zipf law. A fraction of the queries are
// light perturbations of stored rankings (guaranteeing non-empty result
// sets at small theta, as real repeated queries do); the rest are fresh
// draws weighted by the store's empirical item frequencies.

#ifndef TOPK_DATA_WORKLOAD_H_
#define TOPK_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/ranking.h"

namespace topk {

struct WorkloadOptions {
  size_t num_queries = 1000;
  /// Fraction of queries that perturb an existing ranking.
  double perturbed_fraction = 0.7;
  /// Perturbation ops for the perturbed queries.
  uint32_t perturb_ops = 2;
  uint64_t seed = 99;
  /// Fraction of queries that exactly re-issue an earlier query of the
  /// stream — the repetition structure of real query logs that serving-
  /// layer caches exploit. 0 disables the mechanism entirely (the stream
  /// is bit-identical to workloads generated before the knob existed).
  double repeat_fraction = 0.0;
  /// Popularity skew of the re-issues: the target is drawn Zipf(s) over
  /// the distinct queries issued so far, so rank-0 (the first distinct
  /// query) is re-issued most. Higher s concentrates repeats on fewer
  /// distinct queries.
  double repeat_zipf_s = 1.0;
};

std::vector<PreparedQuery> MakeWorkload(const RankingStore& store,
                                        const WorkloadOptions& options);

}  // namespace topk

#endif  // TOPK_DATA_WORKLOAD_H_
