// mmap-backed store snapshots: the larger-than-RAM load path.
//
// A snapshot file freezes a RankingStore plus the compressed posting
// arena of its plain inverted index into one page-aligned, sectioned
// image, so OpenStoreSnapshot can mmap the file and serve queries
// zero-copy: the three store columns and the four arena sections are
// pointed at in place (RankingStore::AdoptExternal,
// CompressedPostingArena::Adopt) and page in on demand. Nothing but the
// header, the section table, and the arena *metadata* sections is
// touched at open time — the posting payload and the row columns stay
// cold until a query walks them, which is what makes a collection
// larger than RAM servable (bench/bench_storage.cc evidences this with
// mincore residency counts).
//
// Layout (all integers in host byte order — like io/serialization.h
// this is cache persistence, not an interchange format; see DESIGN.md
// "On-disk formats"):
//
//   SnapshotHeader        magic "TOPKSNP1", version, counts (k, n,
//                         max_item, arena entries), and an FNV-1a
//                         checksum over the section table;
//   SectionEntry[7]       id, byte offset, byte size, FNV-1a checksum
//                         of the payload;
//   sections              each padded to a 4096-byte boundary:
//                         1 items, 2 sorted_items, 3 sorted_ranks,
//                         4 list metas, 5 block metas, 6 inline
//                         entries, 7 block byte stream.
//
// Integrity is two-tier by design: OpenStoreSnapshot verifies the
// header and the section-table checksum and bounds-checks every
// section (plus the arena metadata, via Adopt) — cheap, O(metadata).
// Per-section payload checksums are verified only by the separate
// VerifySnapshotChecksums, because checksumming gigabytes of payload
// at open would fault in every page and defeat the zero-copy load.

#ifndef TOPK_STORAGE_SNAPSHOT_H_
#define TOPK_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/ranking.h"
#include "core/status.h"
#include "storage/compressed_index.h"

namespace topk {
namespace storage {

inline constexpr char kSnapshotMagic[8] = {'T', 'O', 'P', 'K',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotSectionCount = 7;
inline constexpr size_t kSnapshotPageSize = 4096;

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint32_t k;
  uint32_t max_item;
  uint64_t num_rankings;
  uint64_t num_arena_entries;
  uint64_t directory_checksum;  // FNV-1a over the section table bytes
};
static_assert(sizeof(SnapshotHeader) == 48);

struct SnapshotSection {
  enum Id : uint32_t {
    kItems = 1,
    kSortedItems = 2,
    kSortedRanks = 3,
    kListMetas = 4,
    kBlockMetas = 5,
    kInlineEntries = 6,
    kByteStream = 7,
  };
  uint32_t id;
  uint32_t reserved;  // zero; keeps the 64-bit fields aligned
  uint64_t offset;    // from file start, kSnapshotPageSize-aligned
  uint64_t size;      // payload bytes (padding excluded)
  uint64_t checksum;  // FNV-1a of the payload bytes
};
static_assert(sizeof(SnapshotSection) == 32);

/// FNV-1a 64-bit, the same checksum io/serialization.cc uses.
uint64_t SnapshotChecksum(const void* data, size_t size);

/// Writes `store` + `arena` (the compressed arena of the store's plain
/// inverted index) as a snapshot at `path`. The store must not be
/// empty; the arena must have one list per item id in [0, max_item].
Status WriteStoreSnapshot(const RankingStore& store,
                          const CompressedPostingArena<RankingId>& arena,
                          const std::string& path);

/// An open snapshot: a frozen RankingStore and CompressedInvertedIndex
/// served zero-copy out of one shared mmap'd region. Move-only; the
/// mapping unmaps when the last StoreSnapshot referencing it dies.
class StoreSnapshot {
 public:
  StoreSnapshot(StoreSnapshot&&) = default;
  StoreSnapshot& operator=(StoreSnapshot&&) = default;

  const RankingStore& store() const { return store_; }
  const CompressedInvertedIndex& index() const { return index_; }

  /// Total bytes mapped (the file size).
  size_t mapped_bytes() const;

  /// Bytes of the mapping currently resident in memory (via mincore);
  /// returns 0 where unsupported. Right after open this is a small
  /// fraction of mapped_bytes() — the zero-copy evidence the storage
  /// bench records.
  size_t ResidentBytes() const;

 private:
  friend Result<StoreSnapshot> OpenStoreSnapshot(const std::string& path);

  class Mapping;  // RAII mmap region (defined in snapshot.cc)

  StoreSnapshot(std::shared_ptr<Mapping> mapping, RankingStore store,
                CompressedInvertedIndex index)
      : mapping_(std::move(mapping)),
        store_(std::move(store)),
        index_(std::move(index)) {}

  std::shared_ptr<Mapping> mapping_;
  RankingStore store_;
  CompressedInvertedIndex index_;
};

/// Maps `path` and wires the zero-copy store + index. Verifies the
/// header, the section-table checksum, section bounds/alignment, and
/// the arena metadata; does NOT read the payload sections (see the
/// header comment for why).
Result<StoreSnapshot> OpenStoreSnapshot(const std::string& path);

/// Reads every section payload and verifies its checksum. O(file
/// size); run this when integrity matters more than load latency
/// (e.g. after a transfer), not on every open.
Status VerifySnapshotChecksums(const std::string& path);

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_SNAPSHOT_H_
