// mmap-backed store snapshots: the larger-than-RAM load path.
//
// A snapshot file freezes a RankingStore plus the compressed posting
// arenas of BOTH its serving indexes — the plain inverted index and the
// rank-augmented index — into one page-aligned, sectioned image, so
// OpenStoreSnapshot can mmap the file and serve queries zero-copy: the
// three store columns and the arena sections are pointed at in place
// (RankingStore::AdoptExternal, CompressedPostingArena::Adopt) and page
// in on demand. Nothing but the header, the section table, and the
// arena *metadata* sections is touched at open time — the posting
// payloads and the row columns stay cold until a query walks them,
// which is what makes a collection larger than RAM servable
// (bench/bench_storage.cc evidences this with mincore residency
// counts).
//
// Layout (all integers in host byte order — like io/serialization.h
// this is cache persistence, not an interchange format; see DESIGN.md
// "On-disk formats". Unlike TOPKSNP1, the header now *records* the
// writer's byte order and element-layout fingerprint so a reader on a
// foreign ABI fails with a Status instead of misinterpreting the
// sections):
//
//   SnapshotHeader        magic "TOPKSNP2", version, byte-order and
//                         layout tags, counts (k, n, max_item, arena
//                         entries for both tiers), and an FNV-1a
//                         checksum over the section table;
//   SectionEntry[12]      id, byte offset, byte size, FNV-1a checksum
//                         of the payload;
//   sections              each padded to a 4096-byte boundary:
//                         1 items, 2 sorted_items, 3 sorted_ranks,
//                         4 list metas, 5 block metas, 6 inline
//                         entries, 7 block byte stream (the plain
//                         arena), then the augmented arena:
//                         8 list metas, 9 block metas, 10 per-block
//                         rank ranges, 11 inline entries, 12 byte
//                         stream.
//
// Integrity is two-tier by design: OpenStoreSnapshot verifies the
// header and the section-table checksum and bounds-checks every
// section (plus the arena metadata, via Adopt) — cheap, O(metadata).
// Per-section payload checksums are verified only by the separate
// VerifySnapshotChecksums, because checksumming gigabytes of payload
// at open would fault in every page and defeat the zero-copy load.

#ifndef TOPK_STORAGE_SNAPSHOT_H_
#define TOPK_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/ranking.h"
#include "core/status.h"
#include "storage/compressed_augmented.h"
#include "storage/compressed_index.h"

namespace topk {
namespace storage {

inline constexpr char kSnapshotMagic[8] = {'T', 'O', 'P', 'K',
                                           'S', 'N', 'P', '2'};
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotSectionCount = 12;
inline constexpr size_t kSnapshotPageSize = 4096;

/// Stored in the header as a native integer: a reader whose byte order
/// differs from the writer's sees the bytes permuted and rejects.
inline constexpr uint32_t kSnapshotByteOrder = 0x01020304u;

/// Element-layout fingerprint: the packed sizeofs of every type the
/// sections are reinterpreted as. A writer compiled with a different
/// struct layout (padding, word size) produces a different tag, and
/// the reader rejects instead of walking misaligned metadata.
inline constexpr uint32_t kSnapshotLayout =
    (static_cast<uint32_t>(sizeof(CompressedListMeta)) << 0) |
    (static_cast<uint32_t>(sizeof(CompressedBlockMeta)) << 8) |
    (static_cast<uint32_t>(sizeof(BlockRankRange)) << 16) |
    (static_cast<uint32_t>(sizeof(AugmentedEntry)) << 24);

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint32_t byte_order;  // kSnapshotByteOrder as written by the producer
  uint32_t layout;      // kSnapshotLayout of the producer's build
  uint32_t k;
  uint32_t max_item;
  uint64_t num_rankings;
  uint64_t num_arena_entries;      // plain arena
  uint64_t num_augmented_entries;  // augmented arena
  uint64_t directory_checksum;     // FNV-1a over the section table bytes
};
static_assert(sizeof(SnapshotHeader) == 64);

struct SnapshotSection {
  enum Id : uint32_t {
    kItems = 1,
    kSortedItems = 2,
    kSortedRanks = 3,
    kListMetas = 4,
    kBlockMetas = 5,
    kInlineEntries = 6,
    kByteStream = 7,
    kAugListMetas = 8,
    kAugBlockMetas = 9,
    kAugRankRanges = 10,
    kAugInlineEntries = 11,
    kAugByteStream = 12,
  };
  uint32_t id;
  uint32_t reserved;  // zero; keeps the 64-bit fields aligned
  uint64_t offset;    // from file start, kSnapshotPageSize-aligned
  uint64_t size;      // payload bytes (padding excluded)
  uint64_t checksum;  // FNV-1a of the payload bytes
};
static_assert(sizeof(SnapshotSection) == 32);

/// FNV-1a 64-bit, the same checksum io/serialization.cc uses.
uint64_t SnapshotChecksum(const void* data, size_t size);

/// Writes `store` + both compressed arenas (plain inverted index and
/// rank-augmented index over the same store) as a snapshot at `path`.
/// The store must not be empty; both arenas must have one list per
/// item id in [0, max_item].
Status WriteStoreSnapshot(
    const RankingStore& store,
    const CompressedPostingArena<RankingId>& arena,
    const CompressedPostingArena<AugmentedEntry>& augmented_arena,
    const std::string& path);

/// Convenience overload: builds and compresses the augmented arena from
/// `store` (one extra indexing pass at write time).
Status WriteStoreSnapshot(const RankingStore& store,
                          const CompressedPostingArena<RankingId>& arena,
                          const std::string& path);

/// An open snapshot: a frozen RankingStore plus the compressed plain
/// AND augmented indexes, all served zero-copy out of one shared
/// mmap'd region. Move-only; the mapping unmaps when the last
/// StoreSnapshot referencing it dies.
class StoreSnapshot {
 public:
  StoreSnapshot(StoreSnapshot&&) = default;
  StoreSnapshot& operator=(StoreSnapshot&&) = default;

  const RankingStore& store() const { return store_; }
  const CompressedInvertedIndex& index() const { return index_; }
  const CompressedAugmentedIndex& augmented_index() const {
    return augmented_;
  }

  /// Total bytes mapped (the file size).
  size_t mapped_bytes() const;

  /// Bytes of the mapping currently resident in memory (via mincore);
  /// returns 0 where unsupported. Right after open this is a small
  /// fraction of mapped_bytes() — the zero-copy evidence the storage
  /// bench records.
  size_t ResidentBytes() const;

 private:
  friend Result<StoreSnapshot> OpenStoreSnapshot(const std::string& path);

  class Mapping;  // RAII mmap region (defined in snapshot.cc)

  StoreSnapshot(std::shared_ptr<Mapping> mapping, RankingStore store,
                CompressedInvertedIndex index,
                CompressedAugmentedIndex augmented)
      : mapping_(std::move(mapping)),
        store_(std::move(store)),
        index_(std::move(index)),
        augmented_(std::move(augmented)) {}

  std::shared_ptr<Mapping> mapping_;
  RankingStore store_;
  CompressedInvertedIndex index_;
  CompressedAugmentedIndex augmented_;
};

/// Maps `path` and wires the zero-copy store + indexes. Verifies the
/// header (including the byte-order and layout tags), the
/// section-table checksum, section bounds/alignment, and the arena
/// metadata; does NOT read the payload sections (see the header
/// comment for why).
Result<StoreSnapshot> OpenStoreSnapshot(const std::string& path);

/// Reads every section payload and verifies its checksum. O(file
/// size); run this when integrity matters more than load latency
/// (e.g. after a transfer), not on every open.
Status VerifySnapshotChecksums(const std::string& path);

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_SNAPSHOT_H_
