#include "storage/snapshot_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace topk {
namespace storage {

namespace fs = std::filesystem;

namespace {

constexpr char kGenerationPrefix[] = "gen-";
constexpr char kGenerationSuffix[] = ".topksnp";
constexpr char kQuarantineSuffix[] = ".bad";
constexpr char kTempSuffix[] = ".tmp";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Parses "gen-<digits>.topksnp" into its generation number; false for
/// anything else (quarantined files, temp files, strangers).
bool ParseGenerationName(const std::string& name, uint64_t* generation) {
  const std::string prefix(kGenerationPrefix);
  const std::string suffix(kGenerationSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (!EndsWith(name, suffix)) return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *generation = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

}  // namespace

SnapshotManager::SnapshotManager(std::string directory,
                                 SnapshotManagerOptions options)
    : directory_(std::move(directory)), options_(options) {
  if (options_.keep_generations == 0) options_.keep_generations = 1;
}

std::string SnapshotManager::GenerationFileName(uint64_t generation) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%020llu%s", kGenerationPrefix,
                static_cast<unsigned long long>(generation),
                kGenerationSuffix);
  return buffer;
}

std::string SnapshotManager::GenerationPath(uint64_t generation) const {
  return directory_ + "/" + GenerationFileName(generation);
}

Status SnapshotManager::EnsureDirectory() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + directory_ +
                           ": " + ec.message());
  }
  return Status::OK();
}

std::vector<uint64_t> SnapshotManager::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    uint64_t generation = 0;
    if (ParseGenerationName(entry.path().filename().string(), &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

size_t SnapshotManager::QuarantinedCount() const {
  size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (EndsWith(entry.path().filename().string(), kQuarantineSuffix)) {
      ++count;
    }
  }
  return count;
}

void SnapshotManager::SweepOrphans() {
  std::error_code ec;
  std::vector<fs::path> orphans;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (EndsWith(entry.path().filename().string(), kTempSuffix)) {
      orphans.push_back(entry.path());
    }
  }
  for (const fs::path& orphan : orphans) {
    std::error_code remove_ec;
    fs::remove(orphan, remove_ec);  // best-effort; rescanned next time
  }
}

void SnapshotManager::PruneOldGenerations() {
  std::vector<uint64_t> generations = ListGenerations();
  while (generations.size() > options_.keep_generations) {
    std::error_code ec;
    fs::remove(GenerationPath(generations.front()), ec);
    generations.erase(generations.begin());
  }
}

void SnapshotManager::Quarantine(const std::string& path,
                                 const std::string& reason,
                                 Statistics* stats) {
  const std::string quarantined = path + kQuarantineSuffix;
  std::error_code ec;
  fs::rename(path, quarantined, ec);
  if (ec) return;  // the file vanished or the rename lost a race; rescan
  if (std::FILE* f = std::fopen((quarantined + ".reason").c_str(), "w")) {
    // Best effort: the reason file is operator breadcrumbs, not state
    // the recovery protocol depends on.
    std::fputs(reason.c_str(), f);  // syscall-ok: best-effort breadcrumb
    std::fputs("\n", f);            // syscall-ok: best-effort breadcrumb
    std::fclose(f);                 // syscall-ok: best-effort breadcrumb file
  }
  AddTicker(stats, Ticker::kSnapshotsQuarantined);
}

Status SnapshotManager::WriteSnapshot(
    const RankingStore& store, const CompressedPostingArena<RankingId>& arena,
    const CompressedPostingArena<AugmentedEntry>& augmented_arena) {
  Status dir_status = EnsureDirectory();
  if (!dir_status.ok()) return dir_status;
  SweepOrphans();
  const std::vector<uint64_t> generations = ListGenerations();
  const uint64_t next = generations.empty() ? 1 : generations.back() + 1;
  Status status = WriteStoreSnapshot(store, arena, augmented_arena,
                                     GenerationPath(next));
  if (!status.ok()) return status;
  PruneOldGenerations();
  return Status::OK();
}

Status SnapshotManager::WriteSnapshot(
    const RankingStore& store,
    const CompressedPostingArena<RankingId>& arena) {
  const CompressedAugmentedIndex augmented =
      CompressedAugmentedIndex::Build(store);
  return WriteSnapshot(store, arena, augmented.arena());
}

Result<OpenedSnapshot> SnapshotManager::OpenNewestValid(Statistics* stats) {
  SweepOrphans();
  std::vector<uint64_t> generations = ListGenerations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = GenerationPath(*it);
    // Full payload verification before trusting a generation: open-time
    // checks alone would accept a file whose metadata survived a torn
    // write but whose cold payload pages did not.
    Status verified = VerifySnapshotChecksums(path);
    if (verified.code() == Status::Code::kNotFound) continue;  // raced away
    if (!verified.ok()) {
      Quarantine(path, verified.ToString(), stats);
      continue;
    }
    Result<StoreSnapshot> opened = OpenStoreSnapshot(path);
    if (!opened.ok()) {
      // Quarantine only evidence of corruption (InvalidArgument from the
      // format checks). IOError here is environmental — an mmap that ran
      // out of address space says nothing about the bytes on disk — so
      // the file stays eligible for the next recovery attempt.
      if (opened.status().code() == Status::Code::kInvalidArgument) {
        Quarantine(path, opened.status().ToString(), stats);
      }
      continue;
    }
    OpenedSnapshot result{*it, path, std::move(opened).ValueOrDie()};
    return result;
  }
  return Status::NotFound("no valid snapshot generation in " + directory_);
}

}  // namespace storage
}  // namespace topk
