// Compressed plain inverted index: the storage-tier counterpart of
// PlainInvertedIndex, serving the same id-sorted posting lists out of a
// CompressedPostingArena.
//
// The kernel FilterPhase consumes it through the decoded-lists protocol
// (kernel/filter_phase.h): list_length() answers O(1) from metadata (so
// SelectLists never decodes), and each selected list is decoded once
// into the caller-owned FilterScratch landing buffers — the short-list
// inline tier is handed out as a direct span with zero decode. The
// candidate stream, tickers, and results are bit-identical to the
// uncompressed index (tests/storage_compress_test.cc pins every engine
// configuration, fuzzed).
//
// CompressedFilterValidateEngine mirrors FilterValidateEngine exactly —
// same FilterPhase call, same batched SIMD FootruleValidator, same
// result sort — so the only moving part between the two is where the
// posting bytes come from.

#ifndef TOPK_STORAGE_COMPRESSED_INDEX_H_
#define TOPK_STORAGE_COMPRESSED_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/drop_policy.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "storage/compressed_arena.h"

namespace topk {
namespace storage {

class CompressedInvertedIndex {
 public:
  /// Lists are id-sorted (they decode to exactly PlainInvertedIndex's
  /// lists): FilterPhase may take its sorted-merge fast path.
  static constexpr bool kIdSortedLists = true;
  /// Lists are served through DecodeList(item, scratch), not list(item).
  static constexpr bool kDecodedLists = true;
  /// Decoded entry type (selects the FilterScratch landing buffers).
  using PostingEntry = RankingId;

  CompressedInvertedIndex() = default;

  /// Compresses an already-built plain index's arena.
  static CompressedInvertedIndex FromPlain(const PlainInvertedIndex& plain) {
    CompressedInvertedIndex index;
    index.arena_ = CompressedPostingArena<RankingId>::FromArena(plain.arena());
    index.num_indexed_ = plain.num_indexed();
    return index;
  }

  /// Indexes every ranking in `store` (builds the plain CSR arena, then
  /// compresses it; the intermediate is dropped).
  static CompressedInvertedIndex Build(const RankingStore& store) {
    return FromPlain(PlainInvertedIndex::Build(store));
  }

  /// Wraps adopted (mmap'd) sections; see CompressedPostingArena::Adopt.
  static CompressedInvertedIndex FromParts(
      CompressedPostingArena<RankingId> arena, size_t num_indexed) {
    CompressedInvertedIndex index;
    index.arena_ = std::move(arena);
    index.num_indexed_ = num_indexed;
    return index;
  }

  /// Posting list for `item`, decoded into `scratch` when compressed,
  /// served directly from the inline tier otherwise.
  std::span<const RankingId> DecodeList(
      ItemId item, std::vector<RankingId>* scratch) const {
    return arena_.DecodeList(item, scratch);
  }

  /// Partial decode for an id-range sweep: blocks disjoint from
  /// [id_lo, id_hi] are skipped on metadata alone (payload untouched).
  /// Superset semantics — see CompressedPostingArena::DecodeBlocksInRange.
  std::span<const RankingId> DecodeListInRange(ItemId item, RankingId id_lo,
                                               RankingId id_hi,
                                               std::vector<RankingId>* scratch,
                                               BlockSkipStats* skip) const {
    return arena_.DecodeBlocksInRange(item, id_lo, id_hi, scratch, skip);
  }

  size_t list_length(ItemId item) const { return arena_.list_length(item); }
  size_t num_indexed() const { return num_indexed_; }
  size_t num_entries() const { return arena_.num_entries(); }
  size_t MemoryUsage() const { return arena_.MemoryUsage(); }

  const CompressedPostingArena<RankingId>& arena() const { return arena_; }

 private:
  CompressedPostingArena<RankingId> arena_;
  size_t num_indexed_ = 0;
};

struct CompressedEngineOptions {
  DropMode drop = DropMode::kNone;
};

/// F&V / F&V+Drop over the compressed index: FilterValidateEngine with
/// the storage tier underneath, bit-identical results.
class CompressedFilterValidateEngine {
 public:
  /// `store` and `index` must outlive the engine.
  CompressedFilterValidateEngine(const RankingStore* store,
                                 const CompressedInvertedIndex* index,
                                 CompressedEngineOptions options = {});

  /// All rankings within raw distance `theta_raw` of the query, in
  /// ascending id order.
  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

  /// Query restricted to ids in [id_lo, id_hi]: the filter phase decodes
  /// only the posting blocks intersecting the range (kBlocksSkipped /
  /// kPostingEntriesSkipped account the savings). Results are identical
  /// to Query() filtered to the id range.
  std::vector<RankingId> QueryIdRange(const PreparedQuery& query,
                                      RawDistance theta_raw, RankingId id_lo,
                                      RankingId id_hi,
                                      Statistics* stats = nullptr);

 private:
  const RankingStore* store_;
  const CompressedInvertedIndex* index_;
  CompressedEngineOptions options_;
  FilterScratch filter_;
  FootruleValidator validator_;
};

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_COMPRESSED_INDEX_H_
