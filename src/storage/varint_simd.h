// SIMD group-varint decode: the storage tier's vector kernels.
//
// Group varint's control byte makes the decode side table-drivable: the
// byte indexes a 256-entry table of byte-shuffle masks that expand the
// 1..4-byte little-endian payloads of one group straight into four
// zero-extended 32-bit lanes with a single PSHUFB (SSSE3) / TBL (NEON),
// plus a total-payload-length table that advances the cursor without
// touching the lengths individually. Delta streams then become absolute
// ids through a vectorized inclusive prefix sum (4 lanes under
// SSE4.2/NEON, 8 under AVX2).
//
// Dispatch mirrors kernel/simd.h exactly: compile-time only, driven by
// the TOPK_SIMD option plus whatever ISA -march already targets. Both
// x86 tiers the kernel layer distinguishes (SSE4.2, AVX2) include SSSE3,
// so the shuffle decode is available on either; AVX2 additionally widens
// the prefix sum. The scalar group loop in storage/group_varint.h stays
// the reference implementation in every build — the SIMD paths are
// bit-identical to it (wraparound uint32 arithmetic in the prefix sum,
// same truncation failures), which tests/storage_simd_decode_test.cc
// pins per length and per fuzzed stream.
//
// Decode contract (same as the scalar codec): raw pointers against a
// hard stream end, nullptr on truncation, no allocation anywhere
// (`decode-noalloc` in scripts/check_invariants.py covers these bodies
// like every other Decode* in src/storage/).

#ifndef TOPK_STORAGE_VARINT_SIMD_H_
#define TOPK_STORAGE_VARINT_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "kernel/simd.h"
#include "storage/group_varint.h"

#if defined(TOPK_SIMD_AVX2) || defined(TOPK_SIMD_SSE42)
#define TOPK_DECODE_SIMD_X86 1
#include <immintrin.h>
#elif defined(TOPK_SIMD_NEON)
#define TOPK_DECODE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace topk {
namespace storage {

#if defined(TOPK_SIMD_AVX2)
inline constexpr const char* kDecodeBackendName = "ssse3+avx2";
#elif defined(TOPK_SIMD_SSE42)
inline constexpr const char* kDecodeBackendName = "ssse3";
#elif defined(TOPK_SIMD_NEON)
inline constexpr const char* kDecodeBackendName = "neon";
#else
inline constexpr const char* kDecodeBackendName = "scalar";
#endif

namespace varint_detail {

/// Per-control-byte decode tables: a 16-byte shuffle mask expanding the
/// group's packed payload into four 32-bit lanes (0x80 lanes shuffle to
/// zero under both PSHUFB and TBL), and the group's total payload length.
struct GroupVarintTables {
  alignas(16) uint8_t shuffle[256][16];
  uint8_t length[256];
};

constexpr GroupVarintTables MakeGroupVarintTables() {
  GroupVarintTables tables{};
  for (unsigned control = 0; control < 256; ++control) {
    uint8_t offset = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      const uint8_t length =
          static_cast<uint8_t>(((control >> (2 * lane)) & 0x3u) + 1u);
      for (unsigned byte = 0; byte < 4; ++byte) {
        tables.shuffle[control][4 * lane + byte] =
            byte < length ? static_cast<uint8_t>(offset + byte)
                          : static_cast<uint8_t>(0x80);
      }
      offset = static_cast<uint8_t>(offset + length);
    }
    tables.length[control] = offset;
  }
  return tables;
}

inline constexpr GroupVarintTables kGroupVarintTables =
    MakeGroupVarintTables();

/// A full group needs the control byte plus at most 16 payload bytes
/// readable for the unconditional 16-byte load the shuffle consumes.
inline constexpr ptrdiff_t kGroupLoadSlack = 17;

}  // namespace varint_detail

/// Decodes `count` group-varint values from `in` into `out`, returning
/// the advanced cursor or nullptr on a truncated stream — bit- and
/// failure-identical to chaining GroupVarintDecodeGroup. Full groups
/// with at least 17 readable bytes take the shuffle-table fast path
/// (one table load, one unaligned load, one shuffle, one store); the
/// trailing partial group and the last full groups of a nearly-exhausted
/// stream fall back to the scalar reference, which also preserves its
/// exact per-value truncation semantics. No allocation.
inline const uint8_t* DecodeValuesSimd(const uint8_t* in, const uint8_t* end,
                                       size_t count, uint32_t* out) {
  size_t produced = 0;
#if defined(TOPK_DECODE_SIMD_X86)
  using varint_detail::kGroupVarintTables;
  while (produced + 4 <= count &&
         end - in >= varint_detail::kGroupLoadSlack) {
    const uint8_t control = *in;
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 1));
    const __m128i mask = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kGroupVarintTables.shuffle[control]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + produced),
                     _mm_shuffle_epi8(raw, mask));
    in += 1 + kGroupVarintTables.length[control];
    produced += 4;
  }
#elif defined(TOPK_DECODE_SIMD_NEON)
  using varint_detail::kGroupVarintTables;
  while (produced + 4 <= count &&
         end - in >= varint_detail::kGroupLoadSlack) {
    const uint8_t control = *in;
    const uint8x16_t raw = vld1q_u8(in + 1);
    const uint8x16_t mask = vld1q_u8(kGroupVarintTables.shuffle[control]);
    vst1q_u8(reinterpret_cast<uint8_t*>(out + produced),
             vqtbl1q_u8(raw, mask));
    in += 1 + kGroupVarintTables.length[control];
    produced += 4;
  }
#endif
  while (produced < count) {
    const size_t m = count - produced < 4 ? count - produced : 4;
    in = GroupVarintDecodeGroup(in, end, m, out + produced);
    if (in == nullptr) return nullptr;
    produced += m;
  }
  return in;
}

/// Turns `count` deltas in `values` into absolute values in place:
/// values[i] becomes base + values[0] + ... + values[i], with uint32
/// wraparound — bit-identical to the scalar running sum. Vectorized as
/// an inclusive prefix sum (shift-and-add within the register, carry
/// broadcast between iterations); the scalar tail finishes lengths that
/// are not a lane multiple.
inline void DeltaPrefixSumInPlace(uint32_t* values, size_t count,
                                  uint32_t base) {
  size_t i = 0;
#if defined(TOPK_SIMD_AVX2)
  __m256i running = _mm256_set1_epi32(static_cast<int>(base));
  for (; i + 8 <= count; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    // In-lane inclusive scan, then carry the low lane's total into the
    // high lane (permute2x128 with a zeroed low half + broadcast of each
    // lane's last element).
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i low_lane = _mm256_permute2x128_si256(x, x, 0x08);
    x = _mm256_add_epi32(x, _mm256_shuffle_epi32(low_lane, 0xFF));
    x = _mm256_add_epi32(x, running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + i), x);
    running = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  uint32_t previous = i > 0 ? values[i - 1] : base;
#elif defined(TOPK_DECODE_SIMD_X86)
  __m128i running = _mm_set1_epi32(static_cast<int>(base));
  for (; i + 4 <= count; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, running);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(values + i), x);
    running = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t previous = i > 0 ? values[i - 1] : base;
#elif defined(TOPK_DECODE_SIMD_NEON)
  uint32x4_t running = vdupq_n_u32(base);
  const uint32x4_t zero = vdupq_n_u32(0);
  for (; i + 4 <= count; i += 4) {
    uint32x4_t x = vld1q_u32(values + i);
    x = vaddq_u32(x, vextq_u32(zero, x, 3));
    x = vaddq_u32(x, vextq_u32(zero, x, 2));
    x = vaddq_u32(x, running);
    vst1q_u32(values + i, x);
    running = vdupq_laneq_u32(x, 3);
  }
  uint32_t previous = i > 0 ? values[i - 1] : base;
#else
  uint32_t previous = base;
#endif
  for (; i < count; ++i) {
    previous += values[i];
    values[i] = previous;
  }
}

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_VARINT_SIMD_H_
