#include "storage/compressed_index.h"

#include <algorithm>

namespace topk {
namespace storage {

CompressedFilterValidateEngine::CompressedFilterValidateEngine(
    const RankingStore* store, const CompressedInvertedIndex* index,
    CompressedEngineOptions options)
    : store_(store), index_(index), options_(options) {
  filter_.visited.EnsureCapacity(store->size());
  validator_.EnsureItemCapacity(
      store->empty() ? 0 : static_cast<size_t>(store->max_item()) + 1);
}

std::vector<RankingId> CompressedFilterValidateEngine::Query(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  TOPK_DCHECK(query.k() == store_->k());

  // Filter phase: union of the (possibly drop-reduced) posting lists,
  // decoded through the scratch landing buffers.
  const std::span<const RankingId> candidates =
      FilterPhase(*index_, query.view(), theta_raw, options_.drop,
                  store_->size(), &filter_, stats);
  AddTicker(stats, Ticker::kCandidates, candidates.size());

  // Validate phase: one batched pass, exact distance per candidate.
  std::vector<RankingId> results;
  validator_.BindQuery(query.view(),
                       static_cast<size_t>(store_->max_item()) + 1);
  validator_.ValidateSpan(*store_, candidates, theta_raw, &results, stats);
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

std::vector<RankingId> CompressedFilterValidateEngine::QueryIdRange(
    const PreparedQuery& query, RawDistance theta_raw, RankingId id_lo,
    RankingId id_hi, Statistics* stats) {
  TOPK_DCHECK(query.k() == store_->k());

  const std::span<const RankingId> candidates =
      FilterPhaseIdRange(*index_, query.view(), theta_raw, options_.drop,
                         id_lo, id_hi, store_->size(), &filter_, stats);
  AddTicker(stats, Ticker::kCandidates, candidates.size());

  std::vector<RankingId> results;
  validator_.BindQuery(query.view(),
                       static_cast<size_t>(store_->max_item()) + 1);
  validator_.ValidateSpan(*store_, candidates, theta_raw, &results, stats);
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace storage
}  // namespace topk
